// TLS connection model: what a passive monitor at the network border can
// see of one TLS session. This is the unit the whole pipeline measures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/net/ip.hpp"
#include "mtlscope/util/time.hpp"
#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::tls {

enum class TlsVersion : std::uint8_t {
  kTls10,
  kTls11,
  kTls12,
  kTls13,
};

std::string_view version_name(TlsVersion v);
std::optional<TlsVersion> version_from_name(std::string_view name);

struct Endpoint {
  net::IpAddress addr;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// One observed TLS connection. Certificate chains are leaf-first.
/// For TLS 1.3 both chains are empty: certificates are encrypted and the
/// monitor cannot see them (paper §3.3).
struct TlsConnection {
  std::string uid;  // Zeek-style connection uid
  util::UnixSeconds timestamp = 0;
  Endpoint client;
  Endpoint server;
  TlsVersion version = TlsVersion::kTls12;
  std::string sni;  // empty when the ClientHello carried no SNI
  bool established = false;

  std::vector<x509::Certificate> server_chain;
  std::vector<x509::Certificate> client_chain;

  /// The paper's mutual-TLS criterion (§3.2.1): both chains present.
  bool is_mutual() const {
    return !server_chain.empty() && !client_chain.empty();
  }

  const x509::Certificate* server_leaf() const {
    return server_chain.empty() ? nullptr : &server_chain.front();
  }
  const x509::Certificate* client_leaf() const {
    return client_chain.empty() ? nullptr : &client_chain.front();
  }
};

}  // namespace mtlscope::tls
