// Handshake simulation: negotiates what a real TLS handshake would have
// produced and renders it as the TlsConnection a border monitor records.
//
// This replaces the paper's collection substrate (real endpoints observed
// by Zeek). Version negotiation, certificate-request behaviour, and the
// TLS-1.3 certificate-encryption blind spot are modeled; record-layer
// crypto is not, since the monitor never sees it anyway.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mtlscope/tls/connection.hpp"

namespace mtlscope::tls {

/// What the server endpoint is configured to do.
struct ServerProfile {
  Endpoint endpoint;
  TlsVersion max_version = TlsVersion::kTls12;
  std::vector<x509::Certificate> chain;  // leaf first
  bool request_client_certificate = false;
  /// Paper finding: many servers accept clients whose certificates would
  /// fail validation (expired, no issuer…). Modeled as a server that
  /// requests but never rejects.
  bool validate_client_certificate = false;
};

/// What the client endpoint is configured to do.
struct ClientProfile {
  Endpoint endpoint;
  TlsVersion max_version = TlsVersion::kTls12;
  std::optional<std::string> sni;
  std::vector<x509::Certificate> chain;  // empty → no client certificate
};

struct HandshakeOptions {
  std::string uid;
  util::UnixSeconds timestamp = 0;
  /// Wall-clock time used when the server does validate client certs.
  util::UnixSeconds validation_time = 0;
};

/// Runs the simulated handshake and returns the monitor's view.
///
/// Rules:
///  - negotiated version = min(client.max_version, server.max_version);
///  - under TLS 1.3 both chains are invisible to the monitor (empty in
///    the result) but the connection is still recorded;
///  - the client sends its chain only if the server requested one;
///  - if the server validates and the client leaf is expired at
///    `validation_time`, the connection is recorded as not established.
TlsConnection simulate_handshake(const ClientProfile& client,
                                 const ServerProfile& server,
                                 const HandshakeOptions& options);

}  // namespace mtlscope::tls
