// Zero-copy Zeek record parsing: compiled column plans and an
// allocation-free tokenizer over record-aligned byte ranges.
//
// The legacy parser materialized every row as a vector<std::string> and
// probed a map<string, size_t> with a freshly allocated string per column
// per row. This layer compiles the `#fields` header ONCE into a plan of
// direct slot indices, then walks each data line in place with
// string_view tokens. Unescaping is lazy: a field allocates only when a
// `\x` escape byte is actually present (the overwhelmingly common case is
// escape-free, where the token is assigned straight into the record).
//
// Invariants (see DESIGN §10):
//   * The first #fields line wins; later ones are ignored as comments
//     (Zeek never re-declares the schema mid-file). A data row seen
//     before any #fields line is a structured LogParseError.
//   * Error determinism matches the legacy parser byte-for-byte:
//     "field count mismatch" / "data row before #fields header" report
//     physical line numbers (header included via `header_lines`); bad
//     numeric fields report the 1-based data-row index; missing required
//     columns report line 0. Streamed runs keep smallest-offset-wins.
//   * split_fields() and decode_field() never touch the heap for
//     escape-free input (verified by an allocation-counting test).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/zeek/records.hpp"

namespace mtlscope::zeek {

struct LogParseError;  // defined in log_io.hpp

/// Slot value for a schema field absent from the #fields header.
inline constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);

/// The compiled form of one `#fields` header line: column names in file
/// order. Name→index resolution happens here exactly once per log, never
/// per row.
class ColumnPlan {
 public:
  /// Compiles the payload after "#fields\t" (tab-separated names).
  static ColumnPlan from_fields_payload(std::string_view payload);
  /// Scans a '#'-metadata block for the first #fields line. A header
  /// without one yields an invalid plan (valid() == false), which the
  /// batch parsers turn into the legacy "missing #fields header" /
  /// "data row before #fields header" errors.
  static ColumnPlan from_header(std::string_view header);

  bool valid() const { return valid_; }
  std::size_t column_count() const { return names_.size(); }
  /// kNoColumn when absent. Linear scan: called only at compile time.
  std::size_t index_of(std::string_view name) const;
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  bool valid_ = false;
};

/// ssl.log schema resolved to direct slot indices. ts..resp_p are
/// required (missing → `missing` names the first absent one); the rest
/// default when kNoColumn.
struct SslPlan {
  std::size_t ts = kNoColumn;
  std::size_t uid = kNoColumn;
  std::size_t orig_h = kNoColumn;
  std::size_t orig_p = kNoColumn;
  std::size_t resp_h = kNoColumn;
  std::size_t resp_p = kNoColumn;
  std::size_t version = kNoColumn;
  std::size_t server_name = kNoColumn;
  std::size_t established = kNoColumn;
  std::size_t cert_chain_fuids = kNoColumn;
  std::size_t client_cert_chain_fuids = kNoColumn;
  std::size_t columns = 0;      // expected field count per row
  bool valid = false;           // a #fields header was compiled
  const char* missing = nullptr;  // first missing required field, or null

  static SslPlan compile(const ColumnPlan& columns);
};

/// x509.log schema resolved to slot indices. Only fuid is required.
struct X509Plan {
  std::size_t fuid = kNoColumn;
  std::size_t version = kNoColumn;
  std::size_t serial = kNoColumn;
  std::size_t subject = kNoColumn;
  std::size_t issuer = kNoColumn;
  std::size_t not_valid_before = kNoColumn;
  std::size_t not_valid_after = kNoColumn;
  std::size_t key_alg = kNoColumn;
  std::size_t key_length = kNoColumn;
  std::size_t san_dns = kNoColumn;
  std::size_t san_email = kNoColumn;
  std::size_t san_uri = kNoColumn;
  std::size_t san_ip = kNoColumn;
  std::size_t cert_der = kNoColumn;
  std::size_t columns = 0;
  bool valid = false;
  const char* missing = nullptr;

  static X509Plan compile(const ColumnPlan& columns);
};

/// Splits one data line into its tab-separated raw fields, writing at
/// most `max_fields` views into `out`. Returns the TOTAL field count
/// (which may exceed max_fields — the caller compares it against the
/// plan's column count). Never allocates.
std::size_t split_fields(std::string_view line, std::string_view* out,
                         std::size_t max_fields);

/// Decodes one raw field value: returns `raw` unchanged when it contains
/// no backslash (zero-copy, zero allocation), otherwise unescapes Zeek's
/// `\xNN` sequences into `storage` and returns a view of it. `storage`
/// is reused across calls, so even escaped fields stop allocating once
/// its capacity covers them.
std::string_view decode_field(std::string_view raw, std::string& storage);

/// Parses every data row of `body` (a record-aligned byte range WITHOUT
/// the '#'-metadata header) and appends into the caller-owned `out`.
/// '#' lines inside the body are skipped; CRLF endings are tolerated; a
/// final record without a trailing newline is parsed. `header_lines`
/// offsets physical line numbers in errors so chunked and whole-file
/// parses report identical positions. Returns false with `error` filled
/// on the first malformed row; `out` contents are unspecified then.
bool parse_ssl_records(std::string_view body, const SslPlan& plan,
                       std::vector<SslRecord>& out,
                       LogParseError* error = nullptr,
                       std::size_t header_lines = 0);

bool parse_x509_records(std::string_view body, const X509Plan& plan,
                        std::vector<X509Record>& out,
                        LogParseError* error = nullptr,
                        std::size_t header_lines = 0);

// --- tolerant (best-effort) variants ----------------------------------------

/// One quarantined data row from a tolerant parse. Every field is a pure
/// function of the input bytes — no wall times, no host paths — so
/// quarantine output is byte-stable across threads and chunk sizes.
struct RowIssue {
  /// Physical line number, header included, relative to the parsed body
  /// plus `header_lines` (the stream-order fold rewrites it to an
  /// absolute file line by adding the prior chunks' line counts).
  std::size_t line = 0;
  /// Absolute byte offset of the row's first byte (`base_offset` plus
  /// the row's position within `body`).
  std::size_t byte_offset = 0;
  /// Length of the raw row in bytes (trailing CR/LF excluded).
  std::size_t raw_length = 0;
  /// Structured reason, same vocabulary as the strict parser's errors
  /// ("field count mismatch", "bad numeric field", ...).
  std::string reason;
  /// Hex prefix of the SHA-256 of the raw row bytes: identifies the
  /// quarantined record without copying hostile bytes into reports.
  std::string digest;
};

/// What a tolerant parse covered, so callers can merge chunked results.
struct TolerantStats {
  std::size_t rows_ok = 0;   ///< records appended to `out`
  std::size_t rows_bad = 0;  ///< rows quarantined (counted even when
                             ///< `issues` is null)
  std::size_t lines = 0;     ///< physical lines walked in `body`
};

/// Best-effort counterparts of parse_*_records: malformed rows are
/// appended to `issues` (when non-null) instead of aborting the parse,
/// and every well-formed row still lands in `out`. Divergence from the
/// strict path, by design (DESIGN §11): a #fields line inside the body
/// is never compiled — honouring it would make output depend on how the
/// input was chunked. With an unusable plan every data row is
/// quarantined ("data row before #fields header" / "missing field ...");
/// a rowless body with no plan yields one "missing #fields header"
/// issue.
TolerantStats parse_ssl_records_tolerant(std::string_view body,
                                         const SslPlan& plan,
                                         std::vector<SslRecord>& out,
                                         std::vector<RowIssue>* issues,
                                         std::size_t header_lines = 0,
                                         std::size_t base_offset = 0);

TolerantStats parse_x509_records_tolerant(std::string_view body,
                                          const X509Plan& plan,
                                          std::vector<X509Record>& out,
                                          std::vector<RowIssue>* issues,
                                          std::size_t header_lines = 0,
                                          std::size_t base_offset = 0);

/// Hex prefix (16 chars) of SHA-256(`raw`) — the digest format RowIssue
/// and the error ledger use for quarantined records.
std::string quarantine_digest(std::string_view raw);

}  // namespace mtlscope::zeek
