// Zeek-schema records: ssl.log and x509.log rows, and the in-memory
// Dataset that joins them by certificate file id (fuid) — the same join
// the paper performs (§3.1).
//
// Repeated values (addresses, versions, SNIs, fuids, DNs, DER blobs)
// are interned `colfmt::Str` handles into the global string/cert arenas
// (DESIGN §14): a million-row log stores each distinct issuer or chain
// fuid once, and copying a record copies pointers, not heap strings.
// Only `uid` — unique per row — stays an owned std::string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mtlscope/colfmt/arena.hpp"
#include "mtlscope/tls/connection.hpp"
#include "mtlscope/util/time.hpp"

namespace mtlscope::zeek {

/// One ssl.log row. Field names follow Zeek's SSL::Info.
struct SslRecord {
  util::UnixSeconds ts = 0;
  std::string uid;      // unique per row: owned, never interned
  colfmt::Str orig_h;   // client address
  std::uint16_t orig_p = 0;
  colfmt::Str resp_h;   // server address
  std::uint16_t resp_p = 0;
  colfmt::Str version;      // "TLSv12"; empty → unset
  colfmt::Str server_name;  // SNI; empty → unset
  bool established = false;
  colfmt::StrVec cert_chain_fuids;         // server chain
  colfmt::StrVec client_cert_chain_fuids;  // client chain

  bool is_mutual() const {
    return !cert_chain_fuids.empty() && !client_cert_chain_fuids.empty();
  }
};

/// One x509.log row. Zeek logs parsed fields; we additionally carry the
/// DER (as Zeek can be configured to do), which lets the analysis
/// pipeline re-parse certificates rather than trusting the log fields.
struct X509Record {
  colfmt::Str fuid;
  int version = 0;
  colfmt::Str serial;   // upper-case hex
  colfmt::Str subject;  // DN string form
  colfmt::Str issuer;
  util::UnixSeconds not_valid_before = 0;
  util::UnixSeconds not_valid_after = 0;
  colfmt::Str key_alg;
  int key_length = 0;
  colfmt::StrVec san_dns;
  colfmt::StrVec san_email;
  colfmt::StrVec san_uri;
  colfmt::StrVec san_ip;
  /// Raw DER bytes, interned in the CertArena (TSV logs carry base64;
  /// the parser decodes once at ingest, the writer re-encodes). Empty
  /// when the log had no cert_der column or the value was undecodable —
  /// enrichment then falls back to the logged fields, as before.
  colfmt::Str cert_der;
};

/// Computes Zeek-style file id for a certificate ("F" + 17 hex chars of
/// the SHA-256 fingerprint) — stable across connections, which is what
/// makes certificate-level dedup work downstream.
std::string fuid_of(const x509::Certificate& cert);

/// Converts a parsed certificate into its x509.log row.
X509Record to_x509_record(const x509::Certificate& cert);

/// An ssl.log + x509.log pair over the same capture window.
class Dataset {
 public:
  /// Byte-ordered (StrLess), so iteration matches the old string-keyed map.
  using X509Map = std::map<colfmt::Str, X509Record, colfmt::StrLess>;

  /// Appends a connection: one ssl row plus x509 rows for any not-yet-seen
  /// certificates.
  void add_connection(const tls::TlsConnection& conn);

  const std::vector<SslRecord>& ssl() const { return ssl_; }
  std::vector<SslRecord>& ssl() { return ssl_; }
  const X509Map& x509() const { return x509_; }

  const X509Record* find_certificate(std::string_view fuid) const;
  void add_x509(X509Record record);
  void add_ssl(SslRecord record) { ssl_.push_back(std::move(record)); }

  std::size_t connection_count() const { return ssl_.size(); }
  std::size_t certificate_count() const { return x509_.size(); }

 private:
  std::vector<SslRecord> ssl_;
  X509Map x509_;
};

}  // namespace mtlscope::zeek
