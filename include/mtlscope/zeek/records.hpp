// Zeek-schema records: ssl.log and x509.log rows, and the in-memory
// Dataset that joins them by certificate file id (fuid) — the same join
// the paper performs (§3.1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mtlscope/tls/connection.hpp"
#include "mtlscope/util/time.hpp"

namespace mtlscope::zeek {

/// One ssl.log row. Field names follow Zeek's SSL::Info.
struct SslRecord {
  util::UnixSeconds ts = 0;
  std::string uid;
  std::string orig_h;  // client address
  std::uint16_t orig_p = 0;
  std::string resp_h;  // server address
  std::uint16_t resp_p = 0;
  std::string version;      // "TLSv12"; empty → unset
  std::string server_name;  // SNI; empty → unset
  bool established = false;
  std::vector<std::string> cert_chain_fuids;         // server chain
  std::vector<std::string> client_cert_chain_fuids;  // client chain

  bool is_mutual() const {
    return !cert_chain_fuids.empty() && !client_cert_chain_fuids.empty();
  }
};

/// One x509.log row. Zeek logs parsed fields; we additionally carry the
/// DER (as Zeek can be configured to do), which lets the analysis
/// pipeline re-parse certificates rather than trusting the log fields.
struct X509Record {
  std::string fuid;
  int version = 0;
  std::string serial;   // upper-case hex
  std::string subject;  // DN string form
  std::string issuer;
  util::UnixSeconds not_valid_before = 0;
  util::UnixSeconds not_valid_after = 0;
  std::string key_alg;
  int key_length = 0;
  std::vector<std::string> san_dns;
  std::vector<std::string> san_email;
  std::vector<std::string> san_uri;
  std::vector<std::string> san_ip;
  std::string cert_der_base64;
};

/// Computes Zeek-style file id for a certificate ("F" + 17 hex chars of
/// the SHA-256 fingerprint) — stable across connections, which is what
/// makes certificate-level dedup work downstream.
std::string fuid_of(const x509::Certificate& cert);

/// Converts a parsed certificate into its x509.log row.
X509Record to_x509_record(const x509::Certificate& cert);

/// An ssl.log + x509.log pair over the same capture window.
class Dataset {
 public:
  /// Appends a connection: one ssl row plus x509 rows for any not-yet-seen
  /// certificates.
  void add_connection(const tls::TlsConnection& conn);

  const std::vector<SslRecord>& ssl() const { return ssl_; }
  std::vector<SslRecord>& ssl() { return ssl_; }
  const std::map<std::string, X509Record>& x509() const { return x509_; }

  const X509Record* find_certificate(const std::string& fuid) const;
  void add_x509(X509Record record);
  void add_ssl(SslRecord record) { ssl_.push_back(std::move(record)); }

  std::size_t connection_count() const { return ssl_.size(); }
  std::size_t certificate_count() const { return x509_.size(); }

 private:
  std::vector<SslRecord> ssl_;
  std::map<std::string, X509Record> x509_;
};

}  // namespace mtlscope::zeek
