// Zeek ASCII log format (TSV with #-prefixed metadata) writer and parser
// for ssl.log and x509.log.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/zeek/records.hpp"

namespace mtlscope::zeek {

void write_ssl_log(std::ostream& out, const std::vector<SslRecord>& records);
void write_x509_log(std::ostream& out, const Dataset& dataset);

struct LogParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parses a Zeek ssl.log. Unknown fields are ignored; required fields
/// missing from the #fields header is an error, as is a data row
/// appearing before the #fields line. CRLF line endings are tolerated
/// (trailing '\r' is stripped). Thin wrapper over the compiled-plan
/// batch parser in parse_plan.hpp — the istream is slurped once and the
/// rows are tokenized in place.
std::optional<std::vector<SslRecord>> parse_ssl_log(
    std::istream& in, LogParseError* error = nullptr);

std::optional<std::vector<X509Record>> parse_x509_log(
    std::istream& in, LogParseError* error = nullptr);

/// Row-materializing reference parsers: same schema handling and
/// LogParseError semantics as parse_*_log, but through the historical
/// vector<std::string>-per-row path (one heap allocation per field).
/// Kept as the parity oracle for tests and as the baseline that
/// perf_zeek_parse measures the zero-copy fast path against.
std::optional<std::vector<SslRecord>> parse_ssl_log_reference(
    std::istream& in, LogParseError* error = nullptr);

std::optional<std::vector<X509Record>> parse_x509_log_reference(
    std::istream& in, LogParseError* error = nullptr);

/// Serializes a whole dataset to a directory-less pair of strings (used by
/// tests and by the examples that persist logs to disk).
std::string ssl_log_to_string(const std::vector<SslRecord>& records);
std::string x509_log_to_string(const Dataset& dataset);

/// Round-trips a dataset through the ASCII format: parse both logs and
/// reassemble. Returns nullopt on parse failure.
std::optional<Dataset> parse_dataset(std::istream& ssl_in,
                                     std::istream& x509_in,
                                     LogParseError* error = nullptr);

/// Splits a Zeek ASCII log into `chunks` standalone logs at record (line)
/// boundaries: the leading #-metadata header block is replicated onto
/// every chunk so each parses independently. Data rows keep their order,
/// so concatenating the parsed chunks reproduces the serial parse
/// exactly. Never returns fewer than one chunk; trailing chunks may be
/// header-only when rows run out. Implemented on the mtlscope::ingest
/// chunker (byte-balanced, record-aligned cuts); the executor streams
/// chunk views directly and no longer goes through this string API.
std::vector<std::string> split_log_text(const std::string& text,
                                        std::size_t chunks);

}  // namespace mtlscope::zeek
