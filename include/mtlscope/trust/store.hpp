// Trust stores and the public/private CA classification used throughout
// the paper (§2.1, §3.2.1).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::trust {

/// One named root store (e.g. "Mozilla NSS"). Holds trusted CA
/// certificates and recognizes trust either by CA subject DN or by the
/// issuer-organization name (the paper also accepts issuer-organization
/// membership in CCADB, §4.2 "Methodology").
class TrustStore {
 public:
  explicit TrustStore(std::string name) : name_(std::move(name)) {}

  void add_ca(const x509::Certificate& ca_cert);
  /// Registers an organization name as trusted without a certificate
  /// (CCADB records issuer organizations, not only certificates).
  void add_organization(std::string org);

  bool contains_subject(const x509::DistinguishedName& dn) const;
  bool contains_organization(std::string_view org) const;

  const std::string& name() const { return name_; }
  std::size_t size() const { return subjects_.size() + organizations_.size(); }

 private:
  std::string name_;
  std::set<std::string> subjects_;       // DN string form
  std::set<std::string, std::less<>> organizations_;
};

enum class IssuerClass : std::uint8_t {
  kPublic,   // chains to (or issuer listed in) a major root store / CCADB
  kPrivate,  // everything else, including self-signed
};

enum class ChainStatus : std::uint8_t {
  kValid,
  kExpired,
  kUntrustedRoot,
  kBadSignature,
  kEmptyChain,
};

/// Union over the four stores the paper consults: Apple, Microsoft,
/// Mozilla NSS, CCADB.
class TrustEvaluator {
 public:
  void add_store(TrustStore store);

  /// Paper rule: a certificate is public-CA-issued when its root or
  /// intermediate certificate, or its issuer (DN or organization), is in
  /// at least one store. `chain` is leaf-first with any intermediates
  /// following, as captured from the TLS handshake.
  IssuerClass classify(const x509::Certificate& leaf,
                       const std::vector<x509::Certificate>& chain = {}) const;

  /// Full chain validation (used by the quickstart example and the
  /// validation tests; the measurement pipeline itself only classifies).
  /// `chain` is leaf-first; validation walks issuer links, checks tsig
  /// signatures where the issuer certificate is present, validity windows
  /// at `now`, and that the terminating issuer is trusted.
  ChainStatus validate(const std::vector<x509::Certificate>& chain,
                       util::UnixSeconds now) const;

  bool is_trusted_issuer(const x509::DistinguishedName& issuer) const;

  const std::vector<TrustStore>& stores() const { return stores_; }

 private:
  std::vector<TrustStore> stores_;
};

/// The default evaluator: synthetic Apple / Microsoft / Mozilla NSS /
/// CCADB stores populated with this reproduction's public CAs
/// (see public_cas.hpp).
TrustEvaluator make_default_evaluator();

}  // namespace mtlscope::trust
