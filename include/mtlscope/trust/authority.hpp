// A certificate authority in the simulated PKI: a DN plus a tsig key,
// able to issue leaf and intermediate certificates.
#pragma once

#include <string>

#include "mtlscope/crypto/tsig.hpp"
#include "mtlscope/x509/builder.hpp"
#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::trust {

class CertificateAuthority {
 public:
  /// Creates a self-signed root CA. The key is derived from the DN string,
  /// so the same authority reconstructed elsewhere issues byte-identical
  /// certificates.
  static CertificateAuthority make_root(x509::DistinguishedName dn,
                                        util::UnixSeconds not_before,
                                        util::UnixSeconds not_after);

  /// Creates an intermediate CA signed by `parent`.
  static CertificateAuthority make_intermediate(
      const CertificateAuthority& parent, x509::DistinguishedName dn,
      util::UnixSeconds not_before, util::UnixSeconds not_after);

  /// Signs a prepared leaf builder. The builder's issuer becomes this CA's
  /// DN. (Misconfigured leaves — dummy serials, wrong dates — are expressed
  /// on the builder before calling this.)
  x509::Certificate issue(const x509::CertificateBuilder& builder) const;

  const x509::DistinguishedName& dn() const { return dn_; }
  const x509::Certificate& certificate() const { return cert_; }
  const crypto::TsigKey& key() const { return key_; }

 private:
  CertificateAuthority(x509::DistinguishedName dn, crypto::TsigKey key,
                       x509::Certificate cert);

  x509::DistinguishedName dn_;
  crypto::TsigKey key_;
  x509::Certificate cert_;
};

}  // namespace mtlscope::trust
