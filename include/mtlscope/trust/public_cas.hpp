// The reproduction's synthetic public PKI: root and intermediate CAs named
// after the issuers the paper reports (Let's Encrypt, DigiCert, Sectigo,
// GoDaddy, IdenTrust, Apple, Microsoft, FNMT-RCM, …). Substitutes for the
// real Apple/Microsoft/NSS/CCADB stores, which we cannot embed.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/store.hpp"

namespace mtlscope::trust {

/// One public CA hierarchy: a root plus the intermediate that actually
/// issues leaves (mirroring how Let's Encrypt R3 hangs off ISRG Root X1).
struct PublicCa {
  std::string label;  // short id used by the generator, e.g. "lets-encrypt"
  CertificateAuthority root;
  CertificateAuthority intermediate;
};

/// The full synthetic public PKI, built deterministically.
class PublicPki {
 public:
  PublicPki();

  const std::vector<PublicCa>& cas() const { return cas_; }
  /// Lookup by label; returns nullptr if unknown.
  const PublicCa* find(std::string_view label) const;

  /// Builds the four paper trust stores over this PKI. Each store gets a
  /// (deliberately overlapping) subset, as in reality; the union covers
  /// all of them.
  std::vector<TrustStore> make_stores() const;

 private:
  std::vector<PublicCa> cas_;
};

/// Shared instance — building the PKI signs ~30 certificates, so callers
/// (generator, benches, tests) reuse one.
const PublicPki& public_pki();

}  // namespace mtlscope::trust
