// Civil-time utilities over an int64 unix-seconds timestamp.
//
// The paper's dataset contains certificates dated 1849, 1970 and 2157
// (§5.3.1), so conversions must be correct over the whole proleptic
// Gregorian calendar, not just the 1970..2038 range. We use Howard
// Hinnant's days_from_civil / civil_from_days algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mtlscope::util {

/// Seconds since 1970-01-01T00:00:00Z. Negative values are valid.
using UnixSeconds = std::int64_t;

constexpr std::int64_t kSecondsPerDay = 86'400;

struct CivilTime {
  int year = 1970;   // proleptic Gregorian
  int month = 1;     // 1..12
  int day = 1;       // 1..31
  int hour = 0;      // 0..23
  int minute = 0;    // 0..59
  int second = 0;    // 0..59 (no leap seconds)

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days between 1970-01-01 and y-m-d (Hinnant).
std::int64_t days_from_civil(int y, int m, int d);

/// Inverse of days_from_civil.
CivilTime civil_from_days(std::int64_t days);

UnixSeconds to_unix(const CivilTime& ct);
CivilTime from_unix(UnixSeconds ts);

bool is_leap_year(int y);
int days_in_month(int y, int m);

/// "2024-03-31T23:59:59Z"
std::string format_iso8601(UnixSeconds ts);

/// "2024-03-31"
std::string format_date(UnixSeconds ts);

/// Parses "YYYY-MM-DD" or full ISO-8601 "YYYY-MM-DDTHH:MM:SSZ".
std::optional<UnixSeconds> parse_iso8601(std::string_view s);

/// Month index since year 0 (year*12 + month-1); used for monthly bucketing
/// in the Figure-1 time series.
int month_index(UnixSeconds ts);

/// "2023-10" label for a month index produced by month_index().
std::string month_label(int month_idx);

}  // namespace mtlscope::util
