// DER (Distinguished Encoding Rules) writer and reader.
//
// Only the subset of ASN.1 needed by X.509 is implemented: definite-length
// TLVs, universal tags up to GeneralizedTime, and context-specific tags.
// The reader rejects indefinite lengths and non-minimal length encodings,
// as DER requires.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/asn1/oid.hpp"
#include "mtlscope/util/time.hpp"

namespace mtlscope::asn1 {

enum class TagClass : std::uint8_t {
  kUniversal = 0,
  kApplication = 1,
  kContextSpecific = 2,
  kPrivate = 3,
};

/// Universal tag numbers used by X.509.
namespace tags {
inline constexpr std::uint32_t kBoolean = 1;
inline constexpr std::uint32_t kInteger = 2;
inline constexpr std::uint32_t kBitString = 3;
inline constexpr std::uint32_t kOctetString = 4;
inline constexpr std::uint32_t kNull = 5;
inline constexpr std::uint32_t kOid = 6;
inline constexpr std::uint32_t kUtf8String = 12;
inline constexpr std::uint32_t kSequence = 16;
inline constexpr std::uint32_t kSet = 17;
inline constexpr std::uint32_t kPrintableString = 19;
inline constexpr std::uint32_t kTeletexString = 20;
inline constexpr std::uint32_t kIa5String = 22;
inline constexpr std::uint32_t kUtcTime = 23;
inline constexpr std::uint32_t kGeneralizedTime = 24;
}  // namespace tags

struct Tag {
  TagClass cls = TagClass::kUniversal;
  bool constructed = false;
  std::uint32_t number = 0;

  static Tag universal(std::uint32_t n, bool constructed = false) {
    return {TagClass::kUniversal, constructed, n};
  }
  static Tag context(std::uint32_t n, bool constructed) {
    return {TagClass::kContextSpecific, constructed, n};
  }
  static Tag sequence() { return universal(tags::kSequence, true); }
  static Tag set() { return universal(tags::kSet, true); }

  bool is_universal(std::uint32_t n) const {
    return cls == TagClass::kUniversal && number == n;
  }
  bool is_context(std::uint32_t n) const {
    return cls == TagClass::kContextSpecific && number == n;
  }

  friend bool operator==(const Tag&, const Tag&) = default;
};

/// Thrown by DerReader on malformed input.
class DerError : public std::runtime_error {
 public:
  explicit DerError(const std::string& what) : std::runtime_error(what) {}
};

/// Serializes DER. Nested structures are written through a callback so the
/// length octets can be computed after the content:
///
///   DerWriter w;
///   w.sequence([&](DerWriter& s) { s.integer(2); s.oid(some_oid); });
class DerWriter {
 public:
  using BuildFn = std::function<void(DerWriter&)>;

  /// Appends a complete TLV with the given content.
  void tlv(Tag tag, std::span<const std::uint8_t> content);

  /// Appends pre-encoded DER verbatim.
  void raw(std::span<const std::uint8_t> der);

  void boolean(bool v);
  /// Two's-complement INTEGER from a native integer.
  void integer(std::int64_t v);
  /// INTEGER from a big-endian unsigned magnitude; inserts the leading zero
  /// octet required when the high bit is set. An empty span encodes 0.
  void integer_unsigned(std::span<const std::uint8_t> magnitude);
  void null();
  void oid(const Oid& oid);
  void octet_string(std::span<const std::uint8_t> bytes);
  /// BIT STRING with zero unused bits (sufficient for X.509 payloads).
  void bit_string(std::span<const std::uint8_t> bytes);
  void utf8_string(std::string_view s);
  void printable_string(std::string_view s);
  void ia5_string(std::string_view s);

  /// Writes a validity timestamp: UTCTime for years in [1950, 2050),
  /// GeneralizedTime otherwise — matching RFC 5280 §4.1.2.5 plus the
  /// out-of-range years the paper observed (1849, 2157).
  void time(util::UnixSeconds ts);

  void sequence(const BuildFn& build);
  void set(const BuildFn& build);
  void constructed(Tag tag, const BuildFn& build);
  /// Context-specific primitive TLV, e.g. GeneralName [2] dNSName.
  void context_primitive(std::uint32_t n,
                         std::span<const std::uint8_t> content);
  void context_primitive(std::uint32_t n, std::string_view content);

  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void write_tag(Tag tag);
  void write_length(std::size_t len);

  std::vector<std::uint8_t> out_;
};

/// One decoded TLV.
struct DerValue {
  Tag tag;
  std::span<const std::uint8_t> content;  // value octets
  std::span<const std::uint8_t> full;     // tag + length + value octets

  /// Content interpreted as text (no charset validation beyond ASCII/UTF-8
  /// pass-through, mirroring how Zeek logs subject strings).
  std::string_view text() const {
    return {reinterpret_cast<const char*>(content.data()), content.size()};
  }

  DerValue expect(Tag t, const char* what) const;

  // Typed decoders; each throws DerError if the tag or encoding mismatches.
  bool as_boolean() const;
  std::int64_t as_integer() const;
  /// INTEGER content octets as stored (two's complement, minimal).
  std::span<const std::uint8_t> integer_bytes() const;
  Oid as_oid() const;
  std::span<const std::uint8_t> as_bit_string() const;  // strips unused-bits octet
  util::UnixSeconds as_time() const;
};

/// Sequential reader over a DER byte range. Does not own the bytes.
class DerReader {
 public:
  explicit DerReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit DerReader(const DerValue& v) : data_(v.content) {}

  bool empty() const { return pos_ >= data_.size(); }

  /// Reads the next TLV; throws DerError at end of input or on malformed
  /// tag/length.
  DerValue read();

  /// Reads the next TLV and checks its tag.
  DerValue read(Tag expected, const char* what);

  /// Peeks at the next TLV's tag without consuming (nullopt at end).
  std::optional<Tag> peek_tag() const;

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mtlscope::asn1
