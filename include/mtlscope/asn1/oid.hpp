// ASN.1 OBJECT IDENTIFIER value type plus the OID constants used by X.509.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mtlscope::asn1 {

/// An OBJECT IDENTIFIER as a sequence of arcs. Value type with full
/// ordering so it can key std::map.
class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted-decimal ("2.5.4.3"). Returns nullopt on malformed input
  /// or fewer than two arcs.
  static std::optional<Oid> parse(std::string_view dotted);

  const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  bool empty() const { return arcs_.empty(); }

  std::string to_string() const;

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

/// Well-known OIDs. Functions (not globals) to avoid static-init-order
/// concerns; each returns a reference to a function-local constant.
namespace oids {

// X.520 attribute types (DN components).
const Oid& common_name();             // 2.5.4.3
const Oid& serial_number_attr();      // 2.5.4.5
const Oid& country_name();            // 2.5.4.6
const Oid& locality_name();           // 2.5.4.7
const Oid& state_or_province_name();  // 2.5.4.8
const Oid& organization_name();       // 2.5.4.10
const Oid& organizational_unit();     // 2.5.4.11
const Oid& email_address();           // 1.2.840.113549.1.9.1 (PKCS#9)

// Certificate extensions.
const Oid& subject_alt_name();        // 2.5.29.17
const Oid& basic_constraints();       // 2.5.29.19
const Oid& key_usage();               // 2.5.29.15
const Oid& ext_key_usage();           // 2.5.29.37
const Oid& subject_key_id();          // 2.5.29.14
const Oid& authority_key_id();        // 2.5.29.35

// Extended key usage purposes.
const Oid& eku_server_auth();         // 1.3.6.1.5.5.7.3.1
const Oid& eku_client_auth();         // 1.3.6.1.5.5.7.3.2

// Algorithms. tsig uses a private-enterprise arc; the RSA OIDs exist so the
// generator can label 1024-bit "RSA" keys as the paper describes.
const Oid& alg_tsig();                // 1.3.6.1.4.1.57264.1.1 (private arc)
const Oid& alg_rsa_encryption();      // 1.2.840.113549.1.1.1
const Oid& alg_sha256_with_rsa();     // 1.2.840.113549.1.1.11

}  // namespace oids

}  // namespace mtlscope::asn1
