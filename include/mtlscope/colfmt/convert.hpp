// TSV → compact-container conversion and re-expansion verification
// (DESIGN §14). `compact_logs` streams a Zeek ssl.log/x509.log pair
// through the same tolerant chunked parse a run uses — identical issue
// coordinates, reasons, and digests — into a ContainerWriter, recording
// the parse's ErrorLedger inside the container so a compact run reports
// the exact data-quality block of the TSV run it mirrors.
// `verify_container` is the independent check behind
// `mtlscope compact --verify`: re-expand every block, field-compare the
// reconstructed records against a fresh tolerant TSV parse (including
// quarantined-row counts), and fail loudly on any divergence.
#pragma once

#include <cstdint>
#include <string>

#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/ingest/error.hpp"

namespace mtlscope::colfmt {

struct CompactRequest {
  std::string ssl_path;
  std::string x509_path;
  std::string out_path;
  WriterOptions writer;
  /// Abort-vs-skip for malformed TSV rows, same semantics as a run:
  /// abort fails the conversion on the first bad row; skip quarantines
  /// into the container's ledger frame (budget still enforced).
  ingest::ErrorPolicy errors;
  std::size_t chunk_bytes = std::size_t{1} << 20;
};

struct CompactStats {
  std::uint64_t ssl_rows = 0;
  std::uint64_t x509_rows = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t blocks = 0;
};

/// Converts the TSV pair into a container at `out_path`. Returns false
/// with `error` filled (and the partial output removed) on unreadable
/// inputs, abort-mode parse failures, or an exceeded error budget.
bool compact_logs(const CompactRequest& request, CompactStats* stats,
                  std::string* error);

/// Re-expands `container_path` and byte-compares every reconstructed
/// record — field by field, stream order — against a fresh tolerant
/// parse of the TSV pair named in the container's meta frame, and the
/// container ledger's quarantined-row counts against the fresh parse's.
/// On success `report` (when non-null) gets a one-line summary; on any
/// divergence returns false with `error` naming the first mismatch.
bool verify_container(const std::string& container_path, std::string* report,
                      std::string* error,
                      std::size_t chunk_bytes = std::size_t{1} << 20);

}  // namespace mtlscope::colfmt
