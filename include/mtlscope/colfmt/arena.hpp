// Interned string/cert storage (DESIGN §14). A `Str` is a 16-byte view
// into a process-lifetime arena: interning stores each distinct byte
// sequence once (NUL-terminated, so c_str() works) and every later
// intern of the same bytes returns the same pointer, which makes
// equality a pointer compare in the common case and lets records hold
// millions of repeated issuers/SNIs/fuids without per-record copies.
//
// Two global arenas exist: `StringArena::global()` for log-field
// strings and `CertArena::global()` for raw DER blobs (bigger chunks,
// separate accounting). `Str` is arena-agnostic — equality and ordering
// always fall back to byte comparison, so values from different arenas
// interoperate; the split only affects pooling and stats.
//
// Determinism note: interned *pointers* depend on thread interleaving,
// so nothing ordered may key on identity. `Str` therefore orders and
// hashes by bytes only, and serialization writes the bytes (never an
// id), which is what keeps PR 6 state files and PR 7 checkpoints
// byte-identical across thread counts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace mtlscope::colfmt {

class StringArena;
class CertArena;

/// An interned, immutable string: pointer + length into arena storage.
/// Constructing from any string-ish value interns it into the global
/// StringArena; default construction is the empty string.
class Str {
 public:
  constexpr Str() = default;
  Str(std::string_view s);
  Str(const std::string& s) : Str(std::string_view(s)) {}
  Str(const char* s) : Str(std::string_view(s)) {}

  std::string_view view() const { return {data_, size_}; }
  operator std::string_view() const { return view(); }
  std::string str() const { return std::string(data_, size_); }
  /// Valid: the arena NUL-terminates every interned string.
  const char* c_str() const { return data_ == nullptr ? "" : data_; }
  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  friend bool operator==(const Str& a, const Str& b) {
    return a.size_ == b.size_ &&
           (a.data_ == b.data_ ||
            std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const Str& a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator==(const Str& a, const std::string& b) {
    return a.view() == std::string_view(b);
  }
  friend bool operator==(const Str& a, const char* b) {
    return a.view() == std::string_view(b);
  }
  friend bool operator<(const Str& a, const Str& b) {
    return a.view() < b.view();
  }
  template <typename OStream>
  friend OStream& operator<<(OStream& os, const Str& s) {
    os << s.view();
    return os;
  }

 private:
  friend class StringArena;
  Str(const char* data, std::uint32_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;
  std::uint32_t size_ = 0;
};

/// Small-buffer vector of Str handles for record list fields (chain
/// fuids, SAN lists). Real chains and SAN lists almost never exceed
/// four entries, so the inline buffer makes record materialization and
/// destruction allocation-free on the hot parse/decode paths; longer
/// lists spill to the heap transparently. Equality is element-wise
/// (Str compares by bytes, never by arena identity).
class StrVec {
 public:
  static constexpr std::size_t kInline = 4;
  using value_type = Str;

  StrVec() = default;
  StrVec(std::initializer_list<Str> init) {
    reserve(init.size());
    for (const Str& s : init) data()[size_++] = s;
  }
  StrVec(const StrVec& other) { *this = other; }
  StrVec(StrVec&& other) noexcept { *this = std::move(other); }
  StrVec& operator=(const StrVec& other) {
    if (this == &other) return *this;
    size_ = 0;
    reserve(other.size_);
    std::copy(other.begin(), other.end(), data());
    size_ = other.size_;
    return *this;
  }
  StrVec& operator=(StrVec&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = other.heap_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    if (heap_ == nullptr) {
      std::copy(other.inline_, other.inline_ + size_, inline_);
    }
    other.heap_ = nullptr;
    other.size_ = 0;
    other.capacity_ = kInline;
    return *this;
  }
  StrVec& operator=(std::initializer_list<Str> init) {
    size_ = 0;
    reserve(init.size());
    for (const Str& s : init) data()[size_++] = s;
    return *this;
  }
  ~StrVec() { delete[] heap_; }

  Str* begin() { return data(); }
  Str* end() { return data() + size_; }
  const Str* begin() const { return data(); }
  const Str* end() const { return data() + size_; }
  Str& operator[](std::size_t i) { return data()[i]; }
  const Str& operator[](std::size_t i) const { return data()[i]; }
  Str& front() { return data()[0]; }
  const Str& front() const { return data()[0]; }
  Str& back() { return data()[size_ - 1]; }
  const Str& back() const { return data()[size_ - 1]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  void clear() { size_ = 0; }
  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }
  /// Shrinking keeps storage; growing default-initializes new slots.
  void resize(std::size_t n) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = Str();
    size_ = static_cast<std::uint32_t>(n);
  }
  void push_back(const Str& s) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = s;
  }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(Str(std::forward<Args>(args)...));
  }

  friend bool operator==(const StrVec& a, const StrVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const StrVec& a, const std::vector<Str>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<Str>& a, const StrVec& b) {
    return b == a;
  }

 private:
  Str* data() { return heap_ != nullptr ? heap_ : inline_; }
  const Str* data() const { return heap_ != nullptr ? heap_ : inline_; }
  void grow(std::size_t n) {
    const std::size_t cap = n < 2 * capacity_ ? 2 * capacity_ : n;
    Str* fresh = new Str[cap];
    std::copy(data(), data() + size_, fresh);
    delete[] heap_;
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(cap);
  }

  Str inline_[kInline];
  Str* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = kInline;
};

/// Transparent byte-order comparator: lets `std::map<Str, V, StrLess>`
/// look up by string_view/std::string without interning the probe key,
/// while iterating in the same byte order as a map<std::string, V>.
struct StrLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a < b;
  }
};

/// Transparent hash/equality for unordered containers keyed by Str.
struct StrHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct StrEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// Sharded interning arena: N independently locked shards, each a
/// hash set over views into bump-allocated chunks. Storage is stable
/// for the arena's lifetime (strings larger than a chunk get a
/// dedicated allocation, so embedded NULs and multi-megabyte DNs are
/// fine); nothing is ever freed.
class StringArena {
 public:
  struct Stats {
    std::uint64_t strings = 0;      // distinct interned values
    std::uint64_t bytes = 0;        // payload bytes (excluding NULs)
    std::uint64_t chunk_bytes = 0;  // reserved storage
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
  };

  explicit StringArena(std::size_t chunk_bytes = 256 * 1024)
      : chunk_bytes_(chunk_bytes) {}
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// The process-wide arena every implicit `Str` conversion uses.
  static StringArena& global();

  Str intern(std::string_view s);
  Stats stats() const;

 private:
  struct ViewHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<std::string_view, ViewHash, std::equal_to<>> set;
    std::vector<std::unique_ptr<char[]>> chunks;
    char* cursor = nullptr;  // bump pointer into chunks.back()
    std::size_t remaining = 0;
    Stats stats;
  };

  static constexpr std::size_t kShardCount = 16;

  const std::size_t chunk_bytes_;
  Shard shards_[kShardCount];
};

/// Interning pool for raw DER certificate bytes: same machinery, bigger
/// chunks, separate accounting so cert dedup is visible on its own.
class CertArena {
 public:
  static CertArena& global();

  Str intern(std::string_view der) { return arena_.intern(der); }
  Str intern(const std::uint8_t* data, std::size_t size) {
    return arena_.intern(
        std::string_view(reinterpret_cast<const char*>(data), size));
  }
  StringArena::Stats stats() const { return arena_.stats(); }

 private:
  StringArena arena_{1024 * 1024};
};

}  // namespace mtlscope::colfmt

template <>
struct std::hash<mtlscope::colfmt::Str> {
  std::size_t operator()(const mtlscope::colfmt::Str& s) const {
    return std::hash<std::string_view>{}(s.view());
  }
};
