// Compact columnar log container (DESIGN §14). One `.mtlc` file holds
// both halves of a Zeek capture — every ssl.log row and every x509.log
// row, in exact stream order — re-encoded as length-prefixed per-block
// columns with block-local dictionaries for the repetitive string
// columns (addresses, versions, SNIs, chain fuids, issuers, subjects,
// key algorithms, SANs) and raw un-hex-escaped DER blobs.
//
// Layout (§12-style framing; all integers little-endian):
//
//   header  : magic "MTLSCOMP" | u32 version | u32 endian sentinel |
//             u32 flags | u32 reserved                      (24 bytes)
//   frames  : { u32 kind, u32 reserved, u64 payload_len, payload }
//             kind 1 meta      — original TSV paths, row/byte totals
//             kind 2 ssl block — columnar ssl rows (see container.cpp)
//             kind 3 x509 block — columnar x509 rows
//             kind 4 ledger    — serialized core::ErrorLedger of the
//                                tolerant conversion parse
//             kind 5 footer    — frame index (kind, offset, length,
//                                rows per frame) + 32-byte SHA-256 over
//                                every byte before the footer frame
//             kind 6 ssl delta block — kind 2 with the ts column
//                                delta-encoded as zigzag varints and
//                                byte-length prefixes on the variable-
//                                width columns (minor version 1; see
//                                container.cpp for the exact layout)
//
// Minor versioning: the header `flags` word carries the writer's minor
// format level. Frame kinds are additive — a version-0 reader never sees
// kind 6 because version-0 files contain none, and this reader accepts
// both kinds, so version-0 files keep decoding unchanged.
//
// The footer's per-block row counts and byte offsets give a reader
// exact chunk parallelism: each block decodes independently (its
// dictionary is block-local), so K workers decode K blocks with no
// shared state beyond the interning arenas. A block is flushed when it
// reaches `block_rows` rows or when its dictionary would exceed
// `dict_bytes` — dictionary overflow spills into a secondary block
// rather than growing without bound.
//
// A container written by a streaming producer (mtlscope watch ingest)
// is a valid prefix at every frame boundary: ContainerTail-style
// readers may consume complete frames before the footer exists. The
// footer + digest only certify a *finished* file.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/state_io.hpp"
#include "mtlscope/crypto/sha256.hpp"
#include "mtlscope/ingest/source.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::colfmt {

class SslBlockScan;
struct SslScanColumns;

inline constexpr char kContainerMagic[8] = {'M', 'T', 'L', 'S',
                                            'C', 'O', 'M', 'P'};
inline constexpr std::uint32_t kContainerVersion = 1;
/// Written into the header `flags` word. Bumped to 1 with the delta ssl
/// block (kind 6); readers ignore it and dispatch on frame kinds.
inline constexpr std::uint32_t kContainerMinorVersion = 1;
/// Stored little-endian; a big-endian writer would emit 0x04030201.
inline constexpr std::uint32_t kContainerEndian = 0x01020304;
inline constexpr std::size_t kContainerHeaderBytes = 24;
inline constexpr std::size_t kFrameHeaderBytes = 16;

enum class FrameKind : std::uint32_t {
  kMeta = 1,
  kSslBlock = 2,
  kX509Block = 3,
  kLedger = 4,
  kFooter = 5,
  /// Minor-version-1 ssl block: delta/varint ts + length-prefixed
  /// variable-width columns (skippable without walking them).
  kSslBlockDelta = 6,
};

/// Provenance of the container: the TSV pair it was converted from.
/// run/map/watch report these paths, so a compact run's RunInfo is
/// byte-identical to the TSV run it mirrors.
struct ContainerMeta {
  std::string ssl_path;
  std::string x509_path;
  std::uint64_t ssl_rows = 0;
  std::uint64_t x509_rows = 0;
  /// Original TSV byte sizes (the parse_bytes figure of the TSV run).
  std::uint64_t ssl_bytes = 0;
  std::uint64_t x509_bytes = 0;
};

/// One frame as scanned from the file (and as indexed by the footer).
struct FrameRef {
  FrameKind kind = FrameKind::kMeta;
  std::uint64_t offset = 0;       ///< file offset of the frame header
  std::uint64_t payload_len = 0;  ///< payload bytes (header excluded)
  std::uint64_t rows = 0;         ///< record rows (block frames only)
};

struct WriterOptions {
  /// Rows per block before a flush. Small enough that a block decodes
  /// in one cache-friendly pass, big enough to amortize the dictionary.
  std::uint32_t block_rows = 65536;
  /// Block-local dictionary byte cap; adding a row whose strings would
  /// push past it flushes the block first (overflow spill).
  std::size_t dict_bytes = std::size_t{8} << 20;
};

/// Streams records into a container file. Usage:
///   ContainerWriter w(path, options);
///   for (...) w.add_x509(rec);   // stream order, duplicates preserved
///   for (...) w.add_ssl(rec);
///   w.set_meta(meta); w.set_ledger(ledger);
///   if (!w.finish(&error)) ...
/// Frames are written incrementally (bounded memory); finish() appends
/// meta, ledger, and the footer with the file digest.
class ContainerWriter {
 public:
  ContainerWriter(const std::string& path, WriterOptions options = {});
  ~ContainerWriter();
  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void add_ssl(const zeek::SslRecord& record);
  void add_x509(const zeek::X509Record& record);
  void set_meta(ContainerMeta meta) { meta_ = std::move(meta); }
  void set_ledger(const core::ErrorLedger& ledger);

  std::uint64_t ssl_rows() const { return ssl_rows_; }
  std::uint64_t x509_rows() const { return x509_rows_; }
  std::uint64_t blocks_written() const { return blocks_written_; }

  /// Flushes open blocks, writes meta/ledger/footer, closes the file.
  /// Returns false (with `error` filled when non-null) on any failure.
  bool finish(std::string* error = nullptr);

 private:
  struct Block;  // pending rows + block-local dictionary
  void flush_block(Block& block, FrameKind kind);
  void write_frame(FrameKind kind, std::string_view payload,
                   std::uint64_t rows);

  WriterOptions options_;
  std::string path_;
  std::unique_ptr<Block> ssl_block_;
  std::unique_ptr<Block> x509_block_;
  ContainerMeta meta_;
  std::string ledger_payload_;
  std::vector<FrameRef> frames_;
  std::uint64_t ssl_rows_ = 0;
  std::uint64_t x509_rows_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t offset_ = 0;
  int fd_ = -1;
  bool ok_ = false;
  bool finished_ = false;
  std::string error_;
  std::unique_ptr<crypto::Sha256> digest_;
};

/// Random-access reader over a finished container. open() maps the file
/// (mmap when available, buffered fallback otherwise), validates the
/// header, scans the frames, verifies the footer digest, and
/// cross-checks the footer index against the scan. Blocks then decode
/// independently — decode_ssl_block / decode_x509_block are const and
/// thread-safe, which is what the executor's parallel block decode
/// relies on.
class ContainerReader {
 public:
  static std::optional<ContainerReader> open(const std::string& path,
                                             std::string* error = nullptr);

  const std::string& path() const { return path_; }
  const ContainerMeta& meta() const { return meta_; }
  const std::vector<FrameRef>& ssl_blocks() const { return ssl_blocks_; }
  const std::vector<FrameRef>& x509_blocks() const { return x509_blocks_; }

  bool has_ledger() const { return ledger_frame_.has_value(); }
  /// Deserializes the conversion-time ledger (already finalized by the
  /// converter). An empty ledger when the container has no ledger frame.
  core::ErrorLedger ledger() const;

  /// Decodes one block into records (views intern into the global
  /// arenas). Throws core::StateError on a malformed payload — which,
  /// after the digest verified, indicates a writer/reader version skew,
  /// never silent corruption.
  std::vector<zeek::SslRecord> decode_ssl_block(const FrameRef& block) const;
  std::vector<zeek::X509Record> decode_x509_block(const FrameRef& block) const;

  /// Opens a zero-materialization scan over one ssl block (scan.hpp):
  /// per-column cursors straight over the mapped payload, no record
  /// vector. Same validation and thread-safety as decode_ssl_block.
  SslBlockScan scan_ssl_block(const FrameRef& block,
                              const SslScanColumns& columns) const;

 private:
  ContainerReader() = default;
  std::string_view payload(const FrameRef& frame) const;

  std::string path_;
  std::unique_ptr<ingest::Source> source_;
  /// Owning backing for buffered sources; mmap views bypass it. Heap
  /// storage keeps `data_` valid across moves.
  std::unique_ptr<std::string> scratch_ = std::make_unique<std::string>();
  std::string_view data_;
  ContainerMeta meta_;
  std::vector<FrameRef> ssl_blocks_;
  std::vector<FrameRef> x509_blocks_;
  std::optional<FrameRef> ledger_frame_;
};

/// Payload-level block decoders, shared by ContainerReader and the
/// streaming ContainerTail (which consumes frames before any footer
/// exists). `payload` is the frame body sans the 16-byte frame header.
/// Throw core::StateError on malformed bytes.
std::vector<zeek::SslRecord> decode_ssl_block_payload(
    std::string_view payload, FrameKind kind = FrameKind::kSslBlock);
std::vector<zeek::X509Record> decode_x509_block_payload(
    std::string_view payload);

/// True when `path` exists and starts with the container magic — the
/// `--format=auto` detection probe.
bool is_container_file(const std::string& path);

/// Reads just the meta frame — a frame-header walk with no digest
/// verification or block decoding — for callers that only need the
/// provenance labels (report config blocks). nullopt when `path` is not
/// a container or carries no meta frame.
std::optional<ContainerMeta> read_container_meta(const std::string& path);

/// Scans `data` (a full container or a growing prefix) for complete
/// frames starting at `from` (0 = just past the file header; the header
/// is validated only when from == 0). Returns the frames whose header
/// AND payload fit entirely inside `data`, with `next` set to the first
/// byte not consumed — the ContainerTail resume point. Returns nullopt
/// with `error` filled on a malformed header or frame. No digest check:
/// streaming prefixes have no footer yet.
std::optional<std::vector<FrameRef>> scan_frames(std::string_view data,
                                                 std::uint64_t from,
                                                 std::uint64_t* next,
                                                 std::string* error);

}  // namespace mtlscope::colfmt
