// Internal wire-format helpers for the compact container: little-endian
// integer codecs, the inlined block cursor, and the column-carving
// utilities shared by the block decoders (container.cpp) and the
// zero-materialization block scan (scan.cpp). The layouts themselves are
// documented in container.cpp; this header only factors the mechanics so
// both consumers read the same bytes the same way.
#pragma once

#include <cstdint>
#include <cstring>
#include <bit>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/colfmt/arena.hpp"
#include "mtlscope/core/state_io.hpp"

namespace mtlscope::colfmt::wire {

inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

/// Appends a zigzag-encoded LEB128 varint (the delta-ts column codec).
inline void put_zigzag(std::string& out, std::int64_t value) {
  std::uint64_t zz = (static_cast<std::uint64_t>(value) << 1) ^
                     static_cast<std::uint64_t>(value >> 63);
  while (zz >= 0x80) {
    out.push_back(static_cast<char>(zz | 0x80));
    zz >>= 7;
  }
  out.push_back(static_cast<char>(zz));
}

/// Inline little-endian cursor for the hot block decoders. StateReader's
/// out-of-line per-value calls cost more than the loads themselves at
/// millions of rows per second; this is the same wire layout with every
/// read inlined, throwing the same core::StateError on underflow.
struct Cursor {
  const char* p = nullptr;
  const char* end = nullptr;

  constexpr Cursor() = default;
  explicit Cursor(std::string_view data)
      : p(data.data()), end(data.data() + data.size()) {}

  const char* need(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      throw core::StateError("truncated block payload");
    }
    const char* q = p;
    p += n;
    return q;
  }
  std::uint8_t u8() { return static_cast<std::uint8_t>(*need(1)); }
  std::uint32_t u32() { return get_u32(need(4)); }
  std::uint64_t u64() { return get_u64(need(8)); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw core::StateError("overlong varint in block payload");
  }
  std::int64_t zigzag() {
    const std::uint64_t v = varint();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  std::string_view view() {
    const std::uint64_t len = u64();
    const char* q = need(static_cast<std::size_t>(len));
    return std::string_view(q, static_cast<std::size_t>(len));
  }
  void expect_done(const char* section) const {
    if (p != end) {
      throw core::StateError(std::string("trailing bytes in '") + section +
                             "': " + std::to_string(end - p) + " unread");
    }
  }
};

/// Sub-cursor over the next `bytes` of `c` (bounds-checked here, so the
/// row loop's fixed-width reads can never underflow their column).
inline Cursor carve(Cursor& c, std::size_t bytes) {
  const char* start = c.need(bytes);
  return Cursor(std::string_view(start, bytes));
}

/// Sub-cursor over the next `rows` length-prefixed strings.
inline Cursor carve_strs(Cursor& c, std::uint32_t rows) {
  Cursor column = c;
  for (std::uint32_t i = 0; i < rows; ++i) c.view();
  column.end = c.p;
  return column;
}

/// Total entries across a count column (cursor taken by value).
inline std::uint64_t count_sum(Cursor counts, std::uint32_t rows) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < rows; ++i) total += counts.u32();
  return total;
}

inline std::vector<Str> read_dict(Cursor& c) {
  const std::uint32_t count = c.u32();
  std::vector<Str> dict;
  dict.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    dict.push_back(Str(c.view()));
  }
  return dict;
}

inline const Str& dict_at(const std::vector<Str>& dict, std::uint32_t id) {
  if (id >= dict.size()) {
    throw core::StateError("dictionary id out of range");
  }
  return dict[id];
}

}  // namespace mtlscope::colfmt::wire
