// Zero-materialization columnar block scan (DESIGN §15). Where
// ContainerReader::decode_ssl_block materializes a std::vector of
// records per block, SslBlockScan walks the block's packed columns in
// place and hands the consumer one reused record at a time:
//
//   - the block dictionary is decoded once up front, so a consumer can
//     classify each distinct string once and fold the rows as plain
//     dictionary-id lookups;
//   - no per-block record vector is allocated or written — the consumer
//     fills a single stack SslRecord per row (StrVec reuse keeps even
//     chain columns allocation-free after warm-up);
//   - the consumer's column manifest prunes columns it never reads:
//     unneeded fixed-width columns are carved past for free, and the
//     kind-6 byte-length prefixes let the variable-width uid column be
//     skipped without walking its row lengths.
//
// The constructor performs the same full-payload validation as the
// materializing decoder (every column carved and bounds-checked, the
// payload consumed exactly), so a scan accepts precisely the payloads
// decode_ssl_block_payload accepts.
#pragma once

#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/colfmt/wire.hpp"

namespace mtlscope::colfmt {

/// Column manifest: which ssl-row fields the consumer will read. Fields
/// not requested are left untouched in the output record — a consumer
/// reusing one record must clear pruned fields once before the scan.
struct SslScanColumns {
  bool ts = true;
  bool uid = true;  ///< the only per-row variable-width column
  bool endpoints = true;  ///< orig_h/orig_p/resp_h/resp_p
  bool version = true;
  bool server_name = true;
  bool established = true;
  bool chains = true;  ///< both certificate-chain fuid columns

  static SslScanColumns all() { return {}; }

  /// What the analysis pipeline reads: everything except uid, which no
  /// enrichment rule or analyzer consults.
  static SslScanColumns pipeline() {
    SslScanColumns columns;
    columns.uid = false;
    return columns;
  }
};

/// Sequential scan over one ssl block payload (kind 2 or kind 6).
/// Throws core::StateError from the constructor on malformed bytes.
/// Not thread-safe; scan different blocks from different threads.
class SslBlockScan {
 public:
  SslBlockScan(std::string_view payload, FrameKind kind,
               const SslScanColumns& columns = SslScanColumns::all());

  std::uint32_t rows() const { return rows_; }
  bool done() const { return index_ == rows_; }

  /// The block-local dictionary: every distinct string (addresses,
  /// versions, SNIs, chain fuids) this block's rows reference.
  const std::vector<Str>& dict() const { return dict_; }

  /// Fills the requested columns of `rec` for the next row and returns
  /// its row index. Must not be called past rows() (checked).
  std::uint32_t next(zeek::SslRecord& rec);

 private:
  SslScanColumns columns_;
  bool delta_ts_ = false;
  std::uint32_t rows_ = 0;
  std::uint32_t index_ = 0;
  std::int64_t prev_ts_ = 0;
  std::uint8_t established_bits_ = 0;
  std::vector<Str> dict_;
  wire::Cursor ts_;
  wire::Cursor uid_;
  wire::Cursor orig_h_;
  wire::Cursor orig_p_;
  wire::Cursor resp_h_;
  wire::Cursor resp_p_;
  wire::Cursor version_;
  wire::Cursor server_name_;
  wire::Cursor established_;
  wire::Cursor chain1_n_;
  wire::Cursor chain1_ids_;
  wire::Cursor chain2_n_;
  wire::Cursor chain2_ids_;
};

}  // namespace mtlscope::colfmt
