// Random-string analysis for the "Unidentified" information type
// (Table 9): non-random vs random, issuer-recognizable, and the paper's
// string-length buckets (8 / 32 / 36, where 36 = UUID format).
#pragma once

#include <string_view>

namespace mtlscope::textclass {

enum class StringShape : std::uint8_t {
  kNonRandom,
  kRandomLen8,
  kRandomLen32,
  kRandomLen36,   // UUID-shaped
  kRandomOther,
};

/// UUID format: 8-4-4-4-12 hex with hyphens.
bool is_uuid(std::string_view s);

/// Pure-hex string of the given minimum length.
bool is_hex_string(std::string_view s);

/// Heuristic: does this look like machine-generated randomness (hash,
/// UUID, token) rather than human-chosen text? Uses character-class mix,
/// vowel ratio, digit interleaving, and bigram improbability.
bool looks_random(std::string_view s);

/// Buckets `s` for Table 9.
StringShape classify_shape(std::string_view s);

const char* shape_name(StringShape shape);

}  // namespace mtlscope::textclass
