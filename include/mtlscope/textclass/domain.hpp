// Domain extraction equivalent to Python tldextract over an embedded
// Public Suffix List subset (ICANN section). Used for the paper's TLD/SLD
// categorization of SNI and SAN values (§4.2) and the "Domain" information
// type in Table 8.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace mtlscope::textclass {

struct DomainParts {
  std::string subdomain;  // "www.mail" in www.mail.example.co.uk
  std::string domain;     // "example"
  std::string suffix;     // "co.uk"

  /// "example.co.uk" — what the paper calls the SLD.
  std::string registrable() const;
};

class DomainExtractor {
 public:
  /// The shared extractor over the embedded PSL subset.
  static const DomainExtractor& instance();

  /// Splits a hostname. Returns nullopt when the name has no known public
  /// suffix or is not a syntactically plausible hostname (tldextract
  /// yields an empty suffix in that case; we signal it explicitly).
  std::optional<DomainParts> extract(std::string_view host) const;

  /// True when `host` is a syntactically valid DNS name ending in a known
  /// public suffix with a registrable label — the paper's criterion for
  /// the "Domain" info type. Accepts one leading wildcard label ("*.x.com").
  bool is_domain_name(std::string_view host) const;

  bool known_suffix(std::string_view suffix) const;

 private:
  DomainExtractor();
};

/// Registrable domain ("SLD" in the paper), or "" when not a domain.
std::string sld_of(std::string_view host);

/// Public suffix ("TLD" in the paper's outbound grouping), or "".
std::string tld_of(std::string_view host);

}  // namespace mtlscope::textclass
