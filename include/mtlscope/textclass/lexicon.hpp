// Shared word lists: given names, family names, company names, product
// names. The NER-lite recognizers consult them (standing in for spaCy's
// trained model + the Kaggle company datasets the paper used), and the
// trace generator draws from them so the synthetic CN/SAN population is
// classifiable the same way the authors' data was.
#pragma once

#include <span>
#include <string_view>

namespace mtlscope::textclass::lexicon {

std::span<const std::string_view> given_names();
std::span<const std::string_view> family_names();
/// Company names as they appear in issuer/CN strings ("Splunk Inc.",
/// "Honeywell International Inc", …).
std::span<const std::string_view> company_names();
/// Product/platform strings observed in CNs ("WebRTC", "twilio",
/// "hangouts", "Android Keystore", "Hybrid Runbook Worker", …).
std::span<const std::string_view> product_names();
/// Corporate legal-suffix tokens ("inc", "ltd", "llc", …).
std::span<const std::string_view> legal_suffixes();

}  // namespace mtlscope::textclass::lexicon
