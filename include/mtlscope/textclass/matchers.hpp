// Format matchers for the regex-detectable information types of §6.1.1.
#pragma once

#include <string_view>

namespace mtlscope::textclass {

/// Dotted-quad IPv4 or RFC-4291 IPv6 literal.
bool is_ip_literal(std::string_view s);

/// MAC address in colon/hyphen-separated ("12:34:56:AB:CD:EF") or bare
/// 12-hex-digit form.
bool is_mac_address(std::string_view s);

/// SIP address: "sip:" or "sips:" scheme prefix.
bool is_sip_address(std::string_view s);

/// Email: local@domain with a plausible domain part.
bool is_email_address(std::string_view s);

/// 'localhost' / '*.localdomain' style values.
bool is_localhost(std::string_view s);

/// The campus user-ID format (the paper's "User account" type): 2-3
/// lower-case letters, 1-2 digits, then 1-3 more lower-case letters —
/// e.g. "hd7gr", "ys3kz", "abc12xyz". Issuer context is checked by the
/// classifier, not here.
bool is_campus_user_id(std::string_view s);

}  // namespace mtlscope::textclass
