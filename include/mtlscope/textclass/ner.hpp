// NER-lite: personal-name and organization/product recognition.
//
// Stands in for the paper's spaCy en_core_web_trf pipeline plus
// company-name cosine-similarity matching (§6.1.1). Deterministic:
// gazetteers (lexicon.hpp) + shape heuristics + character-trigram cosine
// similarity against the company list.
#pragma once

#include <string_view>

namespace mtlscope::textclass {

/// Personal-name recognition over CN-style strings. Accepts
/// "First Last", "First M. Last", "Last, First", and "first.last"
/// when both parts are gazetteer names.
bool is_personal_name(std::string_view s);

/// Organization/product recognition: gazetteer hit, legal-suffix token
/// ("... Inc", "... Pty Ltd"), or trigram cosine similarity >= 0.9
/// against a known company name (the paper's threshold).
bool is_org_or_product(std::string_view s);

/// Cosine similarity between character-trigram frequency vectors of the
/// two strings (case-folded). Exposed for tests and the Table-9 analysis.
double trigram_cosine(std::string_view a, std::string_view b);

/// Highest trigram similarity between `s` and any lexicon company name.
double best_company_similarity(std::string_view s);

}  // namespace mtlscope::textclass
