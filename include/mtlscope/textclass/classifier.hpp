// The combined CN/SAN information-type classifier of §6.1.1.
#pragma once

#include <cstdint>
#include <string_view>

namespace mtlscope::textclass {

/// The paper's ten information types (Table 8 rows).
enum class InfoType : std::uint8_t {
  kDomain,
  kIp,
  kMac,
  kSip,
  kEmail,
  kUserAccount,
  kPersonalName,
  kOrgProduct,
  kLocalhost,
  kUnidentified,
};

constexpr std::size_t kInfoTypeCount = 10;

const char* info_type_name(InfoType type);

/// Issuer context, because two types are issuer-conditional: user
/// accounts must come from a campus-managed CA (§6.1.1), and Table 9
/// attributes random strings to recognizable issuers.
struct ClassifyContext {
  /// Issuer organization (or CN when the organization is absent).
  std::string_view issuer;
  /// True when the issuer is one of the university's CAs.
  bool campus_issuer = false;
  /// Disables the NER-lite stage (personal names, org/product) — used by
  /// the classifier ablation to quantify what the model-assisted stage
  /// adds over pure format matching.
  bool enable_ner = true;
};

/// Classifies one CN or SAN value. Matching order mirrors the paper:
/// format-specific regex types first (localhost, IP, MAC, SIP, email,
/// domain, user account), then NER (personal name, org/product), then
/// unidentified.
InfoType classify_value(std::string_view value, const ClassifyContext& ctx);

}  // namespace mtlscope::textclass
