// IPv4/IPv6 address and CIDR-subnet value types.
//
// The paper uses IP addresses for: direction inference (university subnets
// vs external), client-count estimation, and the Table-6 analysis grouping
// certificate appearances by /24 subnet.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mtlscope::net {

/// An IPv4 or IPv6 address. Value type, totally ordered (v4 sorts before
/// v6 of equal prefix via the family discriminant).
class IpAddress {
 public:
  enum class Family : std::uint8_t { kV4, kV6 };

  IpAddress() = default;

  static IpAddress v4(std::uint32_t host_order);
  static IpAddress v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d);
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes);

  /// Parses dotted-quad IPv4 or RFC-4291 IPv6 (with `::` compression).
  static std::optional<IpAddress> parse(std::string_view s);

  Family family() const { return family_; }
  bool is_v4() const { return family_ == Family::kV4; }

  /// IPv4 value in host order. Precondition: is_v4().
  std::uint32_t v4_value() const;
  const std::array<std::uint8_t, 16>& v6_bytes() const { return bytes_; }

  std::string to_string() const;

  friend bool operator==(const IpAddress&, const IpAddress&) = default;
  friend std::strong_ordering operator<=>(const IpAddress&,
                                          const IpAddress&) = default;

 private:
  Family family_ = Family::kV4;
  // v4 stored in the first four bytes, network order.
  std::array<std::uint8_t, 16> bytes_{};
};

/// A CIDR block, e.g. 128.143.0.0/16.
class Subnet {
 public:
  Subnet() = default;
  Subnet(IpAddress base, int prefix_len);

  /// Parses "a.b.c.d/len" (or v6 equivalent).
  static std::optional<Subnet> parse(std::string_view s);

  bool contains(const IpAddress& addr) const;
  const IpAddress& base() const { return base_; }
  int prefix_len() const { return prefix_len_; }
  std::string to_string() const;

  friend bool operator==(const Subnet&, const Subnet&) = default;
  friend std::strong_ordering operator<=>(const Subnet&,
                                          const Subnet&) = default;

 private:
  IpAddress base_;  // stored with host bits zeroed
  int prefix_len_ = 0;
};

/// The /24 (or /120 for v6) block containing `addr` — the unit of Table 6.
Subnet slash24_of(const IpAddress& addr);

}  // namespace mtlscope::net
