// Port → service naming, mirroring the paper's use of the IANA registry
// plus the corporate services it identified by hand (Table 2 footnotes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mtlscope::net {

struct ServiceInfo {
  std::string_view name;      // short label, e.g. "HTTPS"
  std::string_view provider;  // "" for IANA-registered protocols
};

/// Looks up the service for a TCP port the way the paper does: IANA
/// registry first, then the manually-identified corporate services
/// (FileWave 20017, Globus 50000-51000, Outset Medical 9093, Splunk 9997,
/// DvTel 33854, miscellaneous 3128).
std::optional<ServiceInfo> lookup_service(std::uint16_t port);

/// Display label in the paper's style: "HTTPS", "Corp. - FileWave",
/// "Univ. - Unknown" (for unknown ports on university servers), or
/// "Unknown".
std::string service_label(std::uint16_t port, bool university_server);

}  // namespace mtlscope::net
