// Simulated Certificate Transparency log index.
//
// The paper (§3.2.1) detects TLS interception by comparing the issuer of
// the observed server leaf against the issuer CT has on record for the
// same domain. Real CT logs cannot be embedded, so the trace generator
// registers each legitimately-issued server certificate here, and the
// interception filter queries it exactly the way the authors queried
// crt.sh.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "mtlscope/x509/name.hpp"

namespace mtlscope::ctlog {

class CtDatabase {
 public:
  /// Records that `issuer` legitimately issued a certificate for `domain`.
  void log_certificate(std::string_view domain,
                       const x509::DistinguishedName& issuer);

  bool has_domain(std::string_view domain) const;

  /// True when CT knows the domain and `issuer` is among its recorded
  /// issuers.
  bool issuer_matches(std::string_view domain,
                      const x509::DistinguishedName& issuer) const;

  /// Issuer DN strings recorded for a domain, transparently probeable
  /// (string_view or interned Str) without materializing a key.
  using IssuerSet = std::set<std::string, std::less<>>;

  /// Recorded issuer DN strings for a domain; nullptr if unknown.
  const IssuerSet* issuers_for(std::string_view domain) const;

  std::size_t domain_count() const { return by_domain_.size(); }

 private:
  std::map<std::string, IssuerSet, std::less<>> by_domain_;
};

}  // namespace mtlscope::ctlog
