// The synthetic campus model: a data-driven description of the traffic and
// certificate populations whose parameters come from the paper's published
// statistics. The generator (generator.hpp) turns this model into Zeek-style
// connection/certificate streams; the analysis pipeline then re-derives the
// paper's tables from those streams.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mtlscope/util/time.hpp"

namespace mtlscope::gen {

enum class Direction : std::uint8_t { kInbound, kOutbound };

/// Inbound server association categories (§4.2, Table 3).
enum class ServerAssociation : std::uint8_t {
  kUniversityHealth,
  kUniversityServer,
  kUniversityVpn,
  kLocalOrganization,
  kThirdPartyService,
  kGlobus,
  kUnknown,
  kNone,  // outbound clusters
};

/// How the issuer of a cohort's certificates is minted.
enum class IssuerKind : std::uint8_t {
  kPublicCa,        // one of the PublicPki CAs (issuer_ref = label)
  kPrivateOrg,      // private CA with organization name issuer_ref
  kCampus,          // one of the university's CAs (Private - Education)
  kMissingIssuer,   // issuer DN carries no organization (empty or CN-only)
  kDummy,           // issuer_ref = dummy organization string
  kSelfSigned,      // subject == issuer, self-signed
  /// A private hosting sub-CA chained under a public intermediate: the
  /// leaf's direct issuer is NOT in any trust store, but its chain is —
  /// exercising the paper's chain-level public classification (§3.2.1).
  kHostingSubCa,
};

/// CN / SAN-DNS content kinds — the generative counterparts of the
/// paper's Table-8 information types plus its named special cases.
enum class CnContent : std::uint8_t {
  kEmpty,
  kServiceDomain,    // the cluster's SLD itself
  kHostUnderDomain,  // "<token>.<SLD>"
  kEmailServiceDomain,  // "smtp<N>.<SLD>" etc. (Table 8 client/public note)
  kWebRtc,           // "WebRTC" or "WebRTC-<hex>"
  kTwilio,
  kHangouts,
  kOrgName,          // the issuing organization's name
  kCompanyName,      // random company from the lexicon
  kProductName,      // random product from the lexicon
  kPersonalName,     // "<Given> <Family>" from the lexicon
  kUserAccount,      // campus user-id shape
  kSipAddress,
  kEmailAddress,
  kIpAddress,
  kMacAddress,
  kLocalhost,
  kRandomHex8,
  kRandomHex32,
  kUuid,
  kRandomOther,      // random alnum of misc length
  kNonRandomToken,   // "__transfer__", "Dtls", "hmpp", …
  kFixed,            // CertSpec::fixed_cn
};

/// Weighted distribution over CN contents.
using CnDistribution = std::vector<std::pair<CnContent, double>>;

struct ValiditySpec {
  /// Mean validity period in days; each cert draws in [0.5x, 1.5x].
  double typical_days = 398;
  /// When set, every certificate gets exactly these timestamps (used for
  /// the incorrect-date cohorts: notBefore year 2019 / notAfter 1849…).
  bool fixed_dates = false;
  util::UnixSeconds not_before = 0;
  util::UnixSeconds not_after = 0;
  /// When > 0, certificates are already expired: not_after falls this
  /// many days before the study start (±25%), for the Figure-5 cohorts.
  double expired_days_before_study = 0;
};

struct SerialSpec {
  /// Empty → unique serial per certificate. Otherwise the fixed hex value
  /// every certificate in the cohort shares ("00", "01", "024680", "03E8").
  std::string fixed_hex;
};

/// One homogeneous certificate population.
struct CertSpec {
  std::size_t count = 0;
  IssuerKind issuer_kind = IssuerKind::kPrivateOrg;
  /// Public-CA label, private organization name, or dummy org, depending
  /// on issuer_kind.
  std::string issuer_ref;
  /// Overrides the issuing CA's CN for private orgs (Globus Online issues
  /// under the CN "FXP DCAU Cert").
  std::string issuer_cn;
  CnDistribution cn;
  std::string fixed_cn;  // for CnContent::kFixed
  /// Probability that a certificate carries a SAN-DNS entry; its content
  /// distribution follows san_cn when non-empty, else mirrors `cn`.
  double san_dns_probability = 0.0;
  CnDistribution san_cn;
  /// Probabilities for the other SAN types (§6.1.2: mostly unused).
  double san_email_probability = 0.0;
  double san_ip_probability = 0.0;
  double san_uri_probability = 0.0;
  ValiditySpec validity;
  SerialSpec serial;
  int version = 3;
  int key_bits = 2048;
};

/// Monthly traffic shaping over the 23-month study window.
enum class MonthlyProfile : std::uint8_t {
  kFlat,
  kGrowing,         // linear x1 → x1.8 (overall mTLS adoption, Fig 1)
  kHealthSurge,     // doubles from 2023-10 onward (university health)
  kVanishesOct23,   // drops to zero from 2023-10 (Rapid7 topology change)
};

enum class SharingMode : std::uint8_t {
  kNone,
  /// Both endpoints of each connection present the *same* certificate
  /// (Table 5). The server_certs population is used for both ends.
  kSameCertBothEnds,
  /// Certificates alternate between server and client roles across
  /// *different* connections (Table 6 / §5.2.2).
  kCrossConnection,
};

/// One traffic cluster: a service context plus its certificate
/// populations and connection volume. Clusters map 1:1 onto the rows of
/// the paper's tables (Table 3 server associations, Table 2 services,
/// Table 4/5 special issuers, …).
struct TrafficCluster {
  std::string name;
  Direction direction = Direction::kInbound;
  ServerAssociation assoc = ServerAssociation::kNone;
  /// Registrable domain of the service ("apple.com"); empty → no SNI and
  /// no CT entry. The generator appends host labels per connection.
  std::string sld;
  /// Overrides the SNI literally when set (Globus's "FXP DCAU Cert").
  std::string sni_override;
  bool sni_absent = false;
  std::vector<std::pair<std::uint16_t, double>> ports = {{443, 1.0}};
  bool mutual = true;
  CertSpec server_certs;
  CertSpec client_certs;   // ignored when !mutual or sharing==kSameCert…
  SharingMode sharing = SharingMode::kNone;
  std::size_t connections = 0;  // scaled connection volume
  std::size_t client_ips = 1;   // distinct client addresses
  /// Number of /24 subnets client addresses are spread over (Table 6);
  /// 0 → derived from client_ips.
  std::size_t client_subnets = 0;
  /// Number of distinct server addresses / /24 subnets (Table 6's
  /// server-side spread for cross-connection-shared certificates).
  std::size_t server_ips = 1;
  std::size_t server_subnets = 1;
  /// When true, connections carry a client chain but no server chain —
  /// the paper's "client certificates present without any server
  /// certificate", attributed to university tunneling (§3.2.2).
  bool tunnel_client_only = false;
  MonthlyProfile profile = MonthlyProfile::kFlat;
  double tls13_fraction = 0.0;
  /// Observation window: 0 → the whole study. Otherwise connections are
  /// confined to the first `activity_days` days (duration-of-activity
  /// control for Tables 5/10-12 and Fig 3/5).
  double activity_days = 0.0;
  /// Server certificates re-issued every N days (Globus's 14-day cycle);
  /// 0 → no re-issuance.
  double reissue_days = 0.0;
  /// When true the server actually validates client certificates and
  /// rejects expired ones (the handshake fails). The paper's striking
  /// finding is that most servers do NOT; this models the exceptions.
  bool server_validates_clients = false;
};

/// Interception model (§3.2.1): a set of proxy CAs re-signing traffic to
/// popular public domains.
struct InterceptionSpec {
  std::size_t proxy_issuers = 8;
  std::size_t domains = 40;
  std::size_t connections = 0;
  std::size_t certificates = 0;
};

struct CampusModel {
  std::uint64_t seed = 20240504;
  util::UnixSeconds study_start = 0;  // filled by paper_model()
  util::UnixSeconds study_end = 0;
  std::vector<TrafficCluster> clusters;
  InterceptionSpec interception;
  /// Pure-connection volume with no visible certificates: the TLS 1.3
  /// population and the plain HTTPS background that forms Fig 1's
  /// denominator.
  std::size_t background_connections = 0;
  double background_mutualess_tls13_fraction = 0.4086;
};

/// Builds the paper-calibrated model.
///
/// `cert_scale` divides the paper's unique-certificate counts;
/// `conn_scale` divides its connection counts. Defaults keep a full run
/// in the low hundreds of thousands of connections — large enough for
/// every shape in the paper to be measurable, small enough for CI.
CampusModel paper_model(double cert_scale = 100.0,
                        double conn_scale = 50'000.0);

const char* direction_name(Direction d);
const char* association_name(ServerAssociation a);

}  // namespace mtlscope::gen
