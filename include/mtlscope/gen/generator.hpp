// Turns a CampusModel into a stream of TlsConnections (with real DER
// certificates attached) plus the side artifacts the pipeline needs: the
// CT database and the campus-CA name list.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mtlscope/crypto/rng.hpp"
#include "mtlscope/ctlog/ct_database.hpp"
#include "mtlscope/gen/model.hpp"
#include "mtlscope/tls/connection.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::gen {

class TraceGenerator {
 public:
  using Sink = std::function<void(const tls::TlsConnection&)>;

  explicit TraceGenerator(CampusModel model);
  ~TraceGenerator();

  TraceGenerator(const TraceGenerator&) = delete;
  TraceGenerator& operator=(const TraceGenerator&) = delete;

  /// Generates the whole trace, invoking `sink` once per connection.
  /// Deterministic for a fixed model (including seed). May be called once.
  void generate(const Sink& sink);

  /// Convenience: generates into an in-memory Zeek dataset.
  zeek::Dataset generate_dataset();

  /// The CT database populated during generation (legitimate public
  /// issuances only) — input to the interception filter.
  const ctlog::CtDatabase& ct_database() const { return ct_; }

  /// Issuer-organization names of the university's CAs — input to the
  /// pipeline's user-account classification and issuer categorization.
  static std::vector<std::string> campus_issuer_names();

  /// The organization names the model uses for dummy issuers.
  static std::vector<std::string> dummy_issuer_names();

  struct Stats {
    std::size_t connections = 0;
    std::size_t mutual_connections = 0;
    std::size_t certificates_minted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  ctlog::CtDatabase ct_;
  Stats stats_;
};

}  // namespace mtlscope::gen
