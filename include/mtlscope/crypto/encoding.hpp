// Hex and Base64 codecs used for fingerprints, serial numbers, and the
// Zeek-log representation of binary fields.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mtlscope::crypto {

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(std::span<const std::uint8_t> data);

/// Upper-case hex encoding ("DEADBEEF") — X.509 serial numbers are
/// conventionally rendered upper-case.
std::string to_hex_upper(std::span<const std::uint8_t> data);

/// Decodes hex (either case). Returns nullopt on odd length or a non-hex
/// character.
std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex);

/// Standard Base64 with padding (RFC 4648 §4).
std::string to_base64(std::span<const std::uint8_t> data);

/// Decodes Base64; tolerates missing padding. Returns nullopt on any
/// character outside the alphabet.
std::optional<std::vector<std::uint8_t>> from_base64(std::string_view b64);

}  // namespace mtlscope::crypto
