// SHA-256 (FIPS 180-4). Self-contained implementation used for certificate
// fingerprints and as the primitive behind the tsig toy signature scheme.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mtlscope::crypto {

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(data1);
///   h.update(data2);
///   auto digest = h.finish();   // 32 bytes
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input. May be called any number of times before finish().
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Completes the hash. The hasher must not be reused afterwards
  /// (construct a fresh one instead).
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104) — used by the tsig scheme.
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

}  // namespace mtlscope::crypto
