// Deterministic PRNG for the synthetic trace generator.
//
// Determinism matters: every bench/test seeds the generator explicitly, so
// repro_* output is reproducible run to run. We use SplitMix64 for seeding
// and Xoshiro256** for the stream (Blackman & Vigna).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace mtlscope::crypto {

/// SplitMix64 step; also usable standalone for hashing small integers.
std::uint64_t splitmix64(std::uint64_t& state);

/// Xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// Picks an index according to non-negative weights (need not sum to 1).
  /// Returns weights.size()-1 if rounding exhausts the mass.
  std::size_t weighted(const std::vector<double>& weights);

  /// Random lower-case alphanumeric string of length n.
  std::string alnum(std::size_t n);

  /// Random lower-case hex string of length n.
  std::string hex(std::size_t n);

  /// Random RFC-4122-shaped UUID string (8-4-4-4-12 hex).
  std::string uuid();

  /// Fork a child RNG whose stream is independent of (but derived from)
  /// this one — used to give each simulated month/host its own stream.
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

}  // namespace mtlscope::crypto
