// tsig — the toy deterministic signature scheme used by the simulated PKI.
//
// The paper's measurement pipeline never verifies cryptographic signatures:
// its trust decisions are issuer / trust-store lookups (§3.2.1). To still
// exercise a complete sign → embed → parse → verify code path without an
// RSA/ECDSA bignum stack, certificates in this reproduction are signed with
// tsig: the "public key" carried in SubjectPublicKeyInfo doubles as the MAC
// key and a signature is HMAC-SHA256(key, tbs). This provides *integrity
// checking* for our simulated chains, not real authentication; DESIGN.md
// records the substitution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mtlscope/crypto/sha256.hpp"

namespace mtlscope::crypto {

struct TsigKey {
  std::vector<std::uint8_t> key;  // also the encoded public key bytes

  /// Derives a key deterministically from a seed label (e.g. a CA name),
  /// so a CA regenerated in another process signs identically.
  static TsigKey derive(std::string_view label, std::size_t key_bits = 2048);

  /// Size of the key in bits (the generator uses 1024-bit keys for the
  /// paper's weak-key findings, 2048+ elsewhere).
  std::size_t bits() const { return key.size() * 8; }
};

/// Signs `tbs` with `key`. Deterministic.
std::vector<std::uint8_t> tsig_sign(const TsigKey& key,
                                    std::span<const std::uint8_t> tbs);

/// Verifies a tsig signature against the signer's public key bytes.
bool tsig_verify(std::span<const std::uint8_t> public_key,
                 std::span<const std::uint8_t> tbs,
                 std::span<const std::uint8_t> signature);

}  // namespace mtlscope::crypto
