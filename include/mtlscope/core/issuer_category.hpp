// Issuer categorization (§4.2 "Methodology"): Public, or one of the
// fuzzy-matched private categories.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mtlscope/trust/store.hpp"
#include "mtlscope/x509/name.hpp"

namespace mtlscope::core {

enum class IssuerCategory : std::uint8_t {
  kPublic,
  kPrivateCorporation,
  kPrivateEducation,
  kPrivateGovernment,
  kPrivateWebHosting,
  kPrivateDummy,
  kPrivateOthers,
  kPrivateMissingIssuer,
};

constexpr std::size_t kIssuerCategoryCount = 8;

const char* issuer_category_name(IssuerCategory c);

class IssuerCategorizer {
 public:
  /// `dummy_orgs`: software/protocol default organization strings
  /// ("Internet Widgits Pty Ltd", …).
  explicit IssuerCategorizer(std::vector<std::string> dummy_orgs);

  /// Categorizes an issuer DN. `is_public` is the trust-store decision
  /// (Public beats all private categories).
  IssuerCategory categorize(const x509::DistinguishedName& issuer,
                            bool is_public) const;

 private:
  std::vector<std::string> dummy_orgs_;
};

}  // namespace mtlscope::core
