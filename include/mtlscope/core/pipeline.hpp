// The measurement pipeline: consumes Zeek-schema records (or raw
// TlsConnections), performs the paper's §3.2 enrichment — interception
// filtering, mutual-TLS identification, server/client role labeling,
// public/private classification, direction inference, issuer
// categorization, server association — and exposes per-connection
// enriched views plus a per-certificate fact registry for the
// population-level analyses.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mtlscope/ctlog/ct_database.hpp"
#include "mtlscope/core/issuer_category.hpp"
#include "mtlscope/gen/model.hpp"
#include "mtlscope/net/ip.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/tls/connection.hpp"
#include "mtlscope/trust/store.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::core {

using gen::Direction;
using gen::ServerAssociation;

/// Decoded, classified facts about one unique certificate, plus usage
/// aggregates accumulated as connections stream through.
struct CertFacts {
  // Parsed fields.
  std::string fuid;
  int version = 3;
  int key_bits = 0;
  std::string serial_hex;
  std::string subject_cn;
  std::string issuer_org;
  std::string issuer_cn;
  std::string issuer_dn;
  x509::Validity validity;
  std::vector<std::string> san_dns;
  int san_email_count = 0;
  int san_uri_count = 0;
  int san_ip_count = 0;

  // Classification (§3.2, §6.1).
  trust::IssuerClass issuer_class = trust::IssuerClass::kPrivate;
  IssuerCategory issuer_category = IssuerCategory::kPrivateOthers;
  bool campus_issuer = false;
  textclass::InfoType cn_type = textclass::InfoType::kUnidentified;
  std::vector<textclass::InfoType> san_dns_types;
  bool flagged_interception = false;

  // Usage aggregates.
  bool used_as_server = false;
  bool used_as_client = false;
  bool used_in_mutual = false;
  bool seen_inbound = false;
  bool seen_outbound = false;
  /// Used as client in an outbound connection that carried an SNI — the
  /// population §4.2.2's missing-issuer percentage is computed over.
  bool seen_outbound_with_sni = false;
  bool client_use_while_expired = false;
  std::uint64_t connection_count = 0;
  util::UnixSeconds first_seen = std::numeric_limits<std::int64_t>::max();
  util::UnixSeconds last_seen = std::numeric_limits<std::int64_t>::min();
  /// /24 networks of the endpoint that presented this certificate, split
  /// by role (Table 6).
  std::set<std::uint32_t> server_subnets;
  std::set<std::uint32_t> client_subnets;
  /// Representative context: first SLD / server association observed.
  std::string context_sld;
  ServerAssociation context_assoc = ServerAssociation::kNone;

  bool has_cn() const { return !subject_cn.empty(); }
  bool has_san_dns() const { return !san_dns.empty(); }
  /// Duration of activity in days (§5 definition).
  double activity_days() const {
    if (connection_count == 0) return 0;
    return static_cast<double>(last_seen - first_seen) / 86'400.0;
  }
};

/// One enriched connection, handed to registered observers.
struct EnrichedConnection {
  const zeek::SslRecord* ssl = nullptr;
  util::UnixSeconds ts = 0;
  Direction direction = Direction::kInbound;
  bool established = false;
  bool mutual = false;
  const CertFacts* server_leaf = nullptr;  // null when absent (TLS 1.3 …)
  const CertFacts* client_leaf = nullptr;
  std::string sni;          // raw SNI (may be empty)
  std::string resolved_host;  // SNI, or CN/SAN fallback (§4.2)
  std::string sld;          // registrable domain of resolved_host, or ""
  std::string tld;          // public suffix, or ""
  ServerAssociation assoc = ServerAssociation::kNone;
};

struct PipelineConfig {
  std::vector<net::Subnet> university_subnets;
  std::vector<std::string> campus_issuer_orgs;
  std::vector<std::string> dummy_issuer_orgs;
  /// Host-suffix → association rules, checked in order against the
  /// resolved host, then against the SLD.
  std::vector<std::pair<std::string, ServerAssociation>> association_rules;
  const ctlog::CtDatabase* ct = nullptr;  // optional
  /// How many distinct CT-mismatching domains confirm an interception
  /// issuer (the stand-in for the paper's manual investigation). 1 =
  /// trust every mismatch; higher = more conservative.
  std::size_t interception_domain_threshold = 3;
  /// Reference "now" for expiry checks on certificates whose use we
  /// observe (each connection uses its own timestamp; this is only the
  /// fallback for population-level summaries).
  util::UnixSeconds study_start = 0;
  util::UnixSeconds study_end = 0;

  /// The configuration matching the synthetic campus in gen::paper_model.
  static PipelineConfig campus_defaults();
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  using Observer = std::function<void(const EnrichedConnection&)>;
  void add_observer(Observer observer);

  /// Registers a certificate row (idempotent per fuid). The DER is
  /// re-parsed when present; otherwise the logged fields are used.
  void add_certificate(const zeek::X509Record& record);

  /// Processes one connection: enrichment, interception filtering, usage
  /// accounting, observer dispatch. Connections whose server leaf is an
  /// interception certificate are excluded (counted, not dispatched).
  void add_connection(const zeek::SslRecord& record);

  /// Convenience: converts a simulated connection to Zeek records and
  /// feeds both logs.
  void feed(const tls::TlsConnection& conn);

  /// Marks every certificate issued by a confirmed interception issuer.
  /// Call once after the stream ends, before certificate-level analyses.
  void finalize();

  /// The certificate registry, keyed by fuid.
  const std::map<std::string, CertFacts>& certificates() const {
    return certs_;
  }

  // Interception-filter results (§3.2.1).
  const std::set<std::string>& interception_issuers() const {
    return interception_issuers_;
  }
  std::size_t interception_excluded_connections() const {
    return excluded_connections_;
  }
  std::size_t interception_flagged_certificates() const;

  struct Totals {
    std::uint64_t connections = 0;
    std::uint64_t established = 0;
    std::uint64_t rejected_handshakes = 0;  // not established → excluded
    std::uint64_t mutual = 0;
    std::uint64_t inbound = 0;
    std::uint64_t outbound = 0;
    std::uint64_t tls13 = 0;
  };
  const Totals& totals() const { return totals_; }
  const PipelineConfig& config() const { return config_; }

 private:
  CertFacts make_facts(const zeek::X509Record& record) const;
  IssuerCategory categorize_cached(const x509::DistinguishedName& issuer,
                                   const std::string& issuer_dn,
                                   bool is_public) const;
  Direction infer_direction(const zeek::SslRecord& record) const;
  ServerAssociation associate(const std::string& host,
                              const std::string& sld) const;
  bool is_university_address(const net::IpAddress& addr) const;

  PipelineConfig config_;
  trust::TrustEvaluator trust_;
  IssuerCategorizer categorizer_;
  /// Issuer-DN → category memo: categorization includes gazetteer cosine
  /// matching (§4.2 fuzzy matching), which is expensive, while distinct
  /// issuers number in the hundreds against millions of certificates.
  mutable std::map<std::string, IssuerCategory> category_cache_;
  std::vector<Observer> observers_;
  std::map<std::string, CertFacts> certs_;
  std::set<std::string> interception_issuers_;
  /// Candidate interception issuers: CT-mismatching issuer → distinct
  /// SLDs observed. Confirmed once the issuer re-signs enough different
  /// domains (the stand-in for the paper's manual investigation).
  std::map<std::string, std::set<std::string>> interception_candidates_;
  std::size_t excluded_connections_ = 0;
  Totals totals_;
};

}  // namespace mtlscope::core
