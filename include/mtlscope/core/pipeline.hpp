// The measurement pipeline: consumes Zeek-schema records (or raw
// TlsConnections), performs the paper's §3.2 enrichment — interception
// filtering, mutual-TLS identification, server/client role labeling,
// public/private classification, direction inference, issuer
// categorization, server association — and exposes per-connection
// enriched views plus a per-certificate fact registry for the
// population-level analyses.
//
// Two modes of operation:
//  * streaming (legacy): one Pipeline owns its Enricher and builds every
//    state — certificate registry, interception candidates — as records
//    arrive. This is the single-threaded path.
//  * prepared (sharded): the PipelineExecutor builds the certificate
//    registry and the confirmed-interception set in pre-passes, then runs
//    one Pipeline per shard against that shared read-only state; shard
//    pipelines are combined with merge(). See core/executor.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "mtlscope/ctlog/ct_database.hpp"
#include "mtlscope/core/issuer_category.hpp"
#include "mtlscope/gen/model.hpp"
#include "mtlscope/net/ip.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/tls/connection.hpp"
#include "mtlscope/trust/store.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::core {

using gen::Direction;
using gen::ServerAssociation;

class Enricher;
class StateWriter;
class StateReader;

/// Decoded, classified facts about one unique certificate, plus usage
/// aggregates accumulated as connections stream through. String fields
/// are interned handles (DESIGN §14): a campus population shares a few
/// hundred distinct issuers across millions of certificates, so facts
/// carry pointers into the arena instead of per-certificate copies.
/// Serialization writes the bytes, never arena identities, so state
/// files and checkpoints are unchanged by the interning.
struct CertFacts {
  // Parsed fields.
  colfmt::Str fuid;
  int version = 3;
  int key_bits = 0;
  colfmt::Str serial_hex;
  colfmt::Str subject_cn;
  colfmt::Str issuer_org;
  colfmt::Str issuer_cn;
  colfmt::Str issuer_dn;
  x509::Validity validity;
  std::vector<colfmt::Str> san_dns;
  int san_email_count = 0;
  int san_uri_count = 0;
  int san_ip_count = 0;

  // Classification (§3.2, §6.1).
  trust::IssuerClass issuer_class = trust::IssuerClass::kPrivate;
  IssuerCategory issuer_category = IssuerCategory::kPrivateOthers;
  bool campus_issuer = false;
  textclass::InfoType cn_type = textclass::InfoType::kUnidentified;
  std::vector<textclass::InfoType> san_dns_types;
  bool flagged_interception = false;

  // Usage aggregates.
  bool used_as_server = false;
  bool used_as_client = false;
  bool used_in_mutual = false;
  bool seen_inbound = false;
  bool seen_outbound = false;
  /// Used as client in an outbound connection that carried an SNI — the
  /// population §4.2.2's missing-issuer percentage is computed over.
  bool seen_outbound_with_sni = false;
  bool client_use_while_expired = false;
  std::uint64_t connection_count = 0;
  util::UnixSeconds first_seen = std::numeric_limits<std::int64_t>::max();
  util::UnixSeconds last_seen = std::numeric_limits<std::int64_t>::min();
  /// /24 networks of the endpoint that presented this certificate, split
  /// by role (Table 6).
  std::set<std::uint32_t> server_subnets;
  std::set<std::uint32_t> client_subnets;
  /// Representative context: first SLD / server association observed.
  colfmt::Str context_sld;
  ServerAssociation context_assoc = ServerAssociation::kNone;

  bool has_cn() const { return !subject_cn.empty(); }
  bool has_san_dns() const { return !san_dns.empty(); }
  /// Duration of activity in days (§5 definition).
  double activity_days() const {
    if (connection_count == 0) return 0;
    return static_cast<double>(last_seen - first_seen) / 86'400.0;
  }

  /// Folds another shard's usage aggregates for the same certificate into
  /// this one. Merging shards in stream (shard) order reproduces the
  /// serial aggregates exactly: counters add, booleans OR, first/last
  /// take min/max, subnet sets union, and the representative context
  /// fields keep the first non-empty value in merge order.
  void merge(const CertFacts& other);

  /// Canonical shard-state encoding of every field above
  /// (core/shard_state.hpp).
  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);
};

/// Memoized facts about one distinct resolved host: registrable domain,
/// public suffix, and the direction-independent association lookup.
/// Pure function of the host bytes and the pipeline configuration.
struct HostFacts {
  colfmt::Str sld;  // registrable domain, or ""
  colfmt::Str tld;  // public suffix, or ""
  /// associate(host, sld); the enriched connection applies this only to
  /// inbound traffic.
  ServerAssociation assoc = ServerAssociation::kUnknown;
};

/// Memoized facts about one distinct endpoint address string. Pure
/// function of the address bytes and the configured subnets.
struct AddrFacts {
  bool is_v4 = false;       // parsed as IPv4 (subnet is meaningful)
  bool university = false;  // inside a configured university subnet
  std::uint32_t subnet = 0;      // /24 key (Table 6), v4 only
  std::uint32_t client_key = 0;  // analyzer client id (v4 value / v6 hash)
};

/// Per-shard enrichment memo (DESIGN §15). Keys are interned `Str` data
/// pointers — the arena stores each distinct byte sequence exactly once,
/// so pointer identity is value identity and lookups skip hashing the
/// bytes. NOT thread-safe: each shard pipeline owns one, so the hot path
/// takes no locks; values are pure functions of the key bytes, so shard
/// caches agree wherever they overlap and results stay byte-identical
/// across thread counts.
struct EnrichCache {
  std::unordered_map<const char*, HostFacts> hosts;
  std::unordered_map<const char*, AddrFacts> addrs;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Unique keys folded in from merged-away shard caches.
  std::uint64_t retired_unique = 0;
  std::uint64_t unique() const {
    return retired_unique + hosts.size() + addrs.size();
  }
};

/// One enriched connection, handed to registered observers. The string
/// fields are interned handles — copied by pointer, classified once per
/// distinct value via EnrichCache.
struct EnrichedConnection {
  const zeek::SslRecord* ssl = nullptr;
  util::UnixSeconds ts = 0;
  Direction direction = Direction::kInbound;
  bool established = false;
  bool mutual = false;
  const CertFacts* server_leaf = nullptr;  // null when absent (TLS 1.3 …)
  const CertFacts* client_leaf = nullptr;
  colfmt::Str sni;            // raw SNI (may be empty)
  colfmt::Str resolved_host;  // SNI, or CN/SAN fallback (§4.2)
  colfmt::Str sld;            // registrable domain of resolved_host, or ""
  colfmt::Str tld;            // public suffix, or ""
  ServerAssociation assoc = ServerAssociation::kNone;
  /// Memoized client identity key (AddrFacts::client_key of orig_h); 0
  /// when unset — consumers fall back to parsing the address.
  std::uint32_t client_key = 0;
};

struct PipelineConfig {
  std::vector<net::Subnet> university_subnets;
  std::vector<std::string> campus_issuer_orgs;
  std::vector<std::string> dummy_issuer_orgs;
  /// Host-suffix → association rules, checked in order against the
  /// resolved host, then against the SLD.
  std::vector<std::pair<std::string, ServerAssociation>> association_rules;
  const ctlog::CtDatabase* ct = nullptr;  // optional
  /// How many distinct CT-mismatching domains confirm an interception
  /// issuer (the stand-in for the paper's manual investigation). 1 =
  /// trust every mismatch; higher = more conservative.
  std::size_t interception_domain_threshold = 3;
  /// Reference "now" for expiry checks on certificates whose use we
  /// observe (each connection uses its own timestamp; this is only the
  /// fallback for population-level summaries).
  util::UnixSeconds study_start = 0;
  util::UnixSeconds study_end = 0;

  /// The configuration matching the synthetic campus in gen::paper_model.
  static PipelineConfig campus_defaults();
};

class Pipeline {
 public:
  /// Hot-path registry: fuid-keyed hash map with transparent lookup, so
  /// chain fuids probe without materializing a key. Analyzers that need
  /// ordered iteration sort at result time (see certificates_sorted()).
  using CertMap = std::unordered_map<colfmt::Str, CertFacts, colfmt::StrHash,
                                     colfmt::StrEq>;
  /// Byte-ordered set of interned strings (issuer DNs, SLDs): iterates
  /// in the same order as a std::set<std::string>, so serialization and
  /// result determinism are unchanged by the interning.
  using StrSet = std::set<colfmt::Str, colfmt::StrLess>;

  /// Streaming mode: the pipeline owns its enrichment core and discovers
  /// interception issuers as the stream progresses.
  explicit Pipeline(PipelineConfig config);

  /// Shared read-only state for one shard of a partitioned run, built by
  /// the PipelineExecutor's pre-passes.
  struct Prepared {
    std::shared_ptr<const Enricher> enricher;
    /// Fully built certificate registry (chain-upgrades applied). Shards
    /// copy an entry on first use and accumulate usage locally.
    std::shared_ptr<const CertMap> base_certificates;
    /// Interception issuers confirmed over the whole stream; exclusion in
    /// prepared mode is a frozen-set membership test.
    std::shared_ptr<const StrSet> interception_issuers;
  };
  /// Prepared (shard) mode: enrichment state is shared and immutable;
  /// this pipeline only accumulates shard-local usage and analyzer input.
  explicit Pipeline(Prepared prepared);

  using Observer = std::function<void(const EnrichedConnection&)>;
  void add_observer(Observer observer);

  /// Registers a certificate row (idempotent per fuid). The DER is
  /// re-parsed when present; otherwise the logged fields are used.
  void add_certificate(const zeek::X509Record& record);

  /// Processes one connection: enrichment, interception filtering, usage
  /// accounting, observer dispatch. Connections whose server leaf is an
  /// interception certificate are excluded (counted, not dispatched).
  void add_connection(const zeek::SslRecord& record);

  /// Convenience: converts a simulated connection to Zeek records and
  /// feeds both logs.
  void feed(const tls::TlsConnection& conn);

  /// Marks every certificate issued by a confirmed interception issuer,
  /// and reconciles Totals: streaming mode confirms issuers mid-stream,
  /// so connections seen before confirmation were counted; finalize()
  /// moves them to the excluded tally, making the accounting independent
  /// of stream order. Call once after the stream ends, before
  /// certificate-level analyses.
  void finalize();

  /// Folds a later shard into this pipeline: certificate usage aggregates,
  /// totals, interception state. Merge shards in stream order; observers
  /// are not merged (shard observers are the executor's concern).
  void merge(Pipeline&& other);

  /// The certificate registry, keyed by fuid (unordered).
  const CertMap& certificates() const { return certs_; }

  /// The registry in fuid order — deterministic iteration for the
  /// certificate-population analyzers (ties in their sorts and max-
  /// tracking resolve identically on every run and every shard count).
  std::vector<const CertFacts*> certificates_sorted() const;

  // Interception-filter results (§3.2.1).
  const StrSet& interception_issuers() const {
    return interception_issuers_;
  }
  std::size_t interception_excluded_connections() const {
    return excluded_connections_;
  }
  std::size_t interception_flagged_certificates() const;

  struct Totals {
    std::uint64_t connections = 0;
    std::uint64_t established = 0;
    std::uint64_t rejected_handshakes = 0;  // not established → excluded
    std::uint64_t mutual = 0;
    std::uint64_t inbound = 0;
    std::uint64_t outbound = 0;
    std::uint64_t tls13 = 0;
  };
  const Totals& totals() const { return totals_; }
  const PipelineConfig& config() const;
  const Enricher& enricher() const { return *enricher_; }

  /// The per-shard enrichment memo (hit/miss/unique counters for the perf
  /// envelope; merge() folds the counters of merged-away shards in here).
  const EnrichCache& enrich_cache() const { return cache_; }

  /// Executor hooks (also used by the merge tests): install the
  /// whole-stream interception state on the merged result.
  void set_interception_issuers(StrSet issuers) {
    interception_issuers_ = std::move(issuers);
  }
  /// Copies base-registry entries this pipeline never touched, so the
  /// merged result exposes the full certificate population (zero-usage
  /// certificates included, as the streaming pipeline would).
  void backfill_certificates(const CertMap& base);

  /// Canonical shard-state encoding (core/shard_state.hpp): registry,
  /// totals, interception state, and reconciliation ledger — everything
  /// merge() and the certificate analyses consume. Unordered maps emit
  /// sorted by key, so re-serialization is byte-identical regardless of
  /// hash-table iteration order. Observers and the prepared-mode shared
  /// pointers are deliberately excluded; a deserialized pipeline is a
  /// streaming-mode object.
  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  const CertFacts* find_base(const colfmt::Str& fuid) const;
  CertFacts* local_cert(const colfmt::Str& fuid);

  std::shared_ptr<const Enricher> enricher_;
  // Prepared-mode shared state (null in streaming mode).
  std::shared_ptr<const CertMap> base_certs_;
  std::shared_ptr<const StrSet> frozen_issuers_;
  bool prepared_ = false;

  std::vector<Observer> observers_;
  CertMap certs_;
  StrSet interception_issuers_;
  /// Candidate interception issuers: CT-mismatching issuer → distinct
  /// SLDs observed. Confirmed once the issuer re-signs enough different
  /// domains (the stand-in for the paper's manual investigation).
  std::map<colfmt::Str, StrSet, colfmt::StrLess> interception_candidates_;
  /// Streaming-mode reconciliation ledger: Totals contributions of counted
  /// connections, per server-leaf issuer DN, so finalize() can un-count
  /// connections of issuers confirmed after they streamed past.
  std::unordered_map<colfmt::Str, Totals, colfmt::StrHash, colfmt::StrEq>
      pending_by_issuer_;
  std::size_t excluded_connections_ = 0;
  Totals totals_;
  /// Shard-local enrichment memo: add_connection resolves hosts and
  /// endpoint addresses through it, so per-row work scales with unique
  /// values instead of rows (DESIGN §15).
  EnrichCache cache_;
};

}  // namespace mtlscope::core
