// The stateless-per-record enrichment core, extracted from the pipeline
// so that shard-local pipelines can share one immutable instance: direction
// inference, SLD/TLD resolution, server association, certificate fact
// construction, and issuer categorization behind a thread-safe memo.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "mtlscope/core/pipeline.hpp"

namespace mtlscope::core {

/// Every method is safe to call concurrently: the mutable state is the
/// issuer-category memo and the certificate-facts memo, both guarded by
/// shared mutexes (and whose entries are pure functions of the key, so
/// racing shards compute identical values).
class Enricher {
 public:
  explicit Enricher(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }
  const trust::TrustEvaluator& trust() const { return trust_; }

  /// Builds the decoded + classified half of a CertFacts (usage aggregates
  /// stay zero). Prefers re-parsing the DER over the logged fields.
  ///
  /// DER-backed rows are memoized per distinct certificate (DESIGN §15):
  /// the DER is an interned arena handle, so the cache keys on its stable
  /// data pointer and each unique certificate is parsed + classified once
  /// per run, with only the per-row fuid patched onto cache hits. Rows
  /// whose DER fails to parse fall back to the logged fields and are
  /// never cached (the fallback depends on more than the key bytes).
  CertFacts make_facts(const zeek::X509Record& record) const;

  /// Issuer-DN → category memo: categorization includes gazetteer cosine
  /// matching (§4.2 fuzzy matching), which is expensive, while distinct
  /// issuers number in the hundreds against millions of certificates.
  IssuerCategory categorize_cached(const x509::DistinguishedName& issuer,
                                   std::string_view issuer_dn,
                                   bool is_public) const;

  Direction infer_direction(const zeek::SslRecord& record) const;
  ServerAssociation associate(const std::string& host,
                              const std::string& sld) const;
  bool is_university_address(const net::IpAddress& addr) const;

  /// Memoized host classification: SLD/TLD extraction + association rule
  /// scan, computed once per distinct host string in `cache`.
  const HostFacts& host_facts(colfmt::Str host, EnrichCache& cache) const;

  /// Memoized endpoint-address classification: parse, university-subnet
  /// membership, /24 key, and client identity key.
  const AddrFacts& addr_facts(colfmt::Str addr, EnrichCache& cache) const;

  /// Fills the record-derived fields of an EnrichedConnection: direction,
  /// SNI, resolved host (§4.2 fallback through the leaves' SAN/CN), SLD,
  /// TLD, association, and the mutual flag. Usage accounting and observer
  /// dispatch remain the pipeline's job.
  EnrichedConnection enrich(const zeek::SslRecord& record,
                            const CertFacts* server_leaf,
                            const CertFacts* client_leaf) const;

  /// Memoized variant: identical result, but host and address work is
  /// resolved through the shard-local cache.
  EnrichedConnection enrich(const zeek::SslRecord& record,
                            const CertFacts* server_leaf,
                            const CertFacts* client_leaf,
                            EnrichCache& cache) const;

  struct FactsCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t unique = 0;  // distinct DER blobs cached
  };
  FactsCacheStats facts_cache_stats() const;

 private:
  /// The uncached body of make_facts. Sets *parsed_from_der when the
  /// result came entirely from the DER bytes (i.e. is cacheable).
  CertFacts compute_facts(const zeek::X509Record& record,
                          bool* parsed_from_der) const;

  PipelineConfig config_;
  trust::TrustEvaluator trust_;
  IssuerCategorizer categorizer_;
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::string, IssuerCategory> category_cache_;

  /// Sharded certificate-facts memo, keyed on the interned DER pointer
  /// (CertArena handles are pointer-stable and deduplicated, so pointer
  /// identity is byte identity). Sharding keeps phase-A workers from
  /// serializing on one mutex.
  static constexpr std::size_t kFactsShards = 8;
  struct FactsShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<const char*, CertFacts> map;
  };
  mutable std::array<FactsShard, kFactsShards> facts_cache_;
  mutable std::atomic<std::uint64_t> facts_hits_{0};
  mutable std::atomic<std::uint64_t> facts_misses_{0};
};

}  // namespace mtlscope::core
