// The stateless-per-record enrichment core, extracted from the pipeline
// so that shard-local pipelines can share one immutable instance: direction
// inference, SLD/TLD resolution, server association, certificate fact
// construction, and issuer categorization behind a thread-safe memo.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "mtlscope/core/pipeline.hpp"

namespace mtlscope::core {

/// Every method is safe to call concurrently: the only mutable state is
/// the issuer-category memo, which is guarded by a shared mutex (and whose
/// entries are pure functions of the key, so racing shards compute
/// identical values).
class Enricher {
 public:
  explicit Enricher(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }
  const trust::TrustEvaluator& trust() const { return trust_; }

  /// Builds the decoded + classified half of a CertFacts (usage aggregates
  /// stay zero). Prefers re-parsing the DER over the logged fields.
  CertFacts make_facts(const zeek::X509Record& record) const;

  /// Issuer-DN → category memo: categorization includes gazetteer cosine
  /// matching (§4.2 fuzzy matching), which is expensive, while distinct
  /// issuers number in the hundreds against millions of certificates.
  IssuerCategory categorize_cached(const x509::DistinguishedName& issuer,
                                   std::string_view issuer_dn,
                                   bool is_public) const;

  Direction infer_direction(const zeek::SslRecord& record) const;
  ServerAssociation associate(const std::string& host,
                              const std::string& sld) const;
  bool is_university_address(const net::IpAddress& addr) const;

  /// Fills the record-derived fields of an EnrichedConnection: direction,
  /// SNI, resolved host (§4.2 fallback through the leaves' SAN/CN), SLD,
  /// TLD, association, and the mutual flag. Usage accounting and observer
  /// dispatch remain the pipeline's job.
  EnrichedConnection enrich(const zeek::SslRecord& record,
                            const CertFacts* server_leaf,
                            const CertFacts* client_leaf) const;

 private:
  PipelineConfig config_;
  trust::TrustEvaluator trust_;
  IssuerCategorizer categorizer_;
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::string, IssuerCategory> category_cache_;
};

}  // namespace mtlscope::core
