// StateWriter / StateReader: the primitive encoding layer under the
// versioned shard-state files (DESIGN §12). Fixed-width little-endian
// integers, IEEE-754 doubles via bit_cast, and length-prefixed strings —
// no varints, no padding, no host-endian leakage — so the same analyzer
// state serializes to the same bytes on every machine and a re-serialized
// deserialization is byte-identical to its source.
//
// StateReader is bounds-checked everywhere: any read past the end of the
// buffer throws StateError. Section payloads are only handed to
// deserialize() after the file-level SHA-256 trailer verified, so a
// throwing reader indicates a framing bug, never silent corruption.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mtlscope::core {

/// Structured failure while decoding a state buffer. Every malformed
/// input — truncation, bad magic, unknown version, digest mismatch —
/// surfaces as this exception (or as the error string of
/// parse_shard_state), never as UB.
class StateError : public std::runtime_error {
 public:
  explicit StateError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian fields to a growing byte buffer.
class StateWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// u64 byte length followed by the raw bytes.
  void str(std::string_view v);
  void raw(const void* data, std::size_t size);

  const std::string& buffer() const { return buffer_; }
  std::string take() && { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian reader over one in-memory buffer.
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::string_view bytes(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws unless the whole buffer was consumed — a section that leaves
  /// trailing bytes was encoded by a different layout than it claims.
  void expect_done(const char* section) const;

 private:
  const std::uint8_t* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace mtlscope::core
