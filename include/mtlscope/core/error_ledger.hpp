// ErrorLedger: the structured quarantine record of a best-effort run
// (DESIGN §11). When the pipeline runs with --on-error=skip, every
// malformed record is quarantined here instead of aborting the run:
// which input it came from, the byte offset and physical line of the raw
// row, the structured parse reason, and a digest of the raw bytes (so a
// hostile row is identifiable without ever copying its bytes into a
// report).
//
// Determinism invariants (fault_test asserts them):
//   * Entries are recorded only by each input's authoritative pass
//     (phase A for x509, phase B for ssl) on the stream-order fold
//     thread, so the ledger never sees a row twice and never depends on
//     worker scheduling.
//   * Every stored field is a pure function of the input bytes — no
//     wall times, no host paths — and finalize() sorts by
//     (input, byte_offset) and dedupes, so the finalized ledger is
//     byte-identical across thread counts and chunk sizes.
//   * Counts are exact; only the stored sample list is capped
//     (kMaxStoredPerRole smallest offsets per input, flagged via
//     samples_truncated()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/ingest/error.hpp"

namespace mtlscope::core {

class StateWriter;
class StateReader;

/// Which logical input a quarantined record came from. Reports use the
/// role name, never the file path, so output stays host-independent.
enum class InputRole : unsigned { kSsl = 0, kX509 = 1 };
inline constexpr std::size_t kInputRoles = 2;
const char* input_role_name(InputRole role);  // "ssl" / "x509"

/// Where in the five-phase run a problem was accounted. Quarantine
/// entries only ever carry kRegistry (x509) or kUpgrades (ssl) — the
/// authoritative passes; the later read-only phases (C/D) parse the same
/// bytes tolerantly without re-recording.
enum class LedgerPhase : unsigned {
  kRegistry = 0,      // phase A: x509 registry build
  kUpgrades = 1,      // phase B: ssl chain-upgrade pass
  kInterception = 2,  // phase C: CT pre-pass (re-parse, counts only)
  kShardRun = 3,      // phase D: shard run (re-parse, counts only)
  kIo = 4,            // I/O events: truncation while streaming, retries
};
inline constexpr std::size_t kLedgerPhases = 5;
const char* ledger_phase_name(LedgerPhase phase);

/// One quarantined record. Pure function of the input bytes.
struct QuarantinedRecord {
  InputRole input = InputRole::kSsl;
  std::size_t byte_offset = 0;  // absolute offset of the raw row
  std::size_t line = 0;         // absolute physical line, header included
  std::size_t raw_length = 0;   // raw row bytes (sans CR/LF)
  std::string reason;           // structured parser vocabulary
  std::string digest;           // sha256 hex prefix of the raw row
};

class ErrorLedger {
 public:
  /// Stored samples per input role; counts stay exact past the cap.
  static constexpr std::size_t kMaxStoredPerRole = 64;
  /// Stored I/O notes; the event count stays exact past the cap.
  static constexpr std::size_t kMaxIoNotes = 8;

  /// Records one quarantined record under its authoritative phase.
  void quarantine(LedgerPhase phase, QuarantinedRecord record);
  /// Counts rows that parsed cleanly (the error-rate denominator).
  void count_rows_ok(InputRole role, std::uint64_t n);
  /// Counts tolerated rows seen by a non-authoritative re-parse (C/D):
  /// per-phase accounting only, no new ledger entries.
  void count_phase(LedgerPhase phase, std::uint64_t n);
  /// Records an I/O degradation event (e.g. truncation-while-streaming).
  void note_io(InputRole role, std::string event);

  /// Folds another ledger in (counts add, samples re-capped at
  /// finalize()). Deterministic for any merge order once finalized.
  void merge(ErrorLedger&& other);
  /// Sorts samples by (input, byte_offset), dedupes exact duplicates,
  /// and re-applies the per-role cap keeping the smallest offsets.
  void finalize();
  void clear();

  std::uint64_t quarantined(InputRole role) const {
    return quarantined_[static_cast<unsigned>(role)];
  }
  std::uint64_t quarantined_total() const {
    return quarantined_[0] + quarantined_[1];
  }
  std::uint64_t rows_ok(InputRole role) const {
    return rows_ok_[static_cast<unsigned>(role)];
  }
  std::uint64_t rows_ok_total() const { return rows_ok_[0] + rows_ok_[1]; }
  std::uint64_t phase_count(LedgerPhase phase) const {
    return phase_counts_[static_cast<unsigned>(phase)];
  }
  std::uint64_t io_events() const { return io_events_; }
  /// Exact quarantine counts per structured reason for one input role
  /// (the per-reason breakdown of the data-quality block). Unlike the
  /// sample list these never cap, and std::map keeps them sorted.
  const std::map<std::string, std::uint64_t>& reasons(InputRole role) const {
    return reason_counts_[static_cast<unsigned>(role)];
  }
  const std::vector<QuarantinedRecord>& entries() const { return entries_; }
  const std::vector<std::string>& io_notes() const { return io_notes_; }
  bool samples_truncated() const { return samples_truncated_; }
  /// True when nothing was quarantined and no I/O event was seen.
  bool pristine() const { return quarantined_total() == 0 && io_events_ == 0; }

  /// Returns the deterministic abort message when `policy`'s budget is
  /// exceeded by the current counts, nullopt while within budget.
  std::optional<std::string> budget_violation(
      const ingest::ErrorPolicy& policy) const;

  /// Canonical shard-state encoding (core/shard_state.hpp).
  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  std::vector<QuarantinedRecord> entries_;
  std::vector<std::string> io_notes_;
  std::uint64_t quarantined_[kInputRoles] = {};
  std::map<std::string, std::uint64_t> reason_counts_[kInputRoles];
  std::uint64_t rows_ok_[kInputRoles] = {};
  std::uint64_t phase_counts_[kLedgerPhases] = {};
  std::uint64_t io_events_ = 0;
  bool samples_truncated_ = false;
};

}  // namespace mtlscope::core
