// ResultDoc: the structured intermediate representation every experiment
// produces. A doc is an ordered sequence of blocks — typed tables, free
// text lines, and pass/fail shape checks — plus scalar metadata (the
// experiment id, its paper anchor, the model/input configuration, and
// record counts from the run). Emitters render one doc to
//   * text  — byte-identical to the historical repro_* stdout,
//   * JSON  — canonical (construction key order, fixed float formatting),
//   * CSV/TSV — one file/stream per table.
// Runners build docs; they never printf. See experiments/registry.hpp for
// the layer that maps experiment names to runners.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

#include "mtlscope/core/report.hpp"

namespace mtlscope::core {

/// printf-into-std::string; the porting tool for the repro binaries'
/// byte-exact free-text lines.
std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// A typed table cell. The kind fixes both the JSON type and the exact
/// text rendering (the format_count / format_percent / format_double
/// conventions every repro table always used).
class Cell {
 public:
  enum class Kind {
    kText,          // opaque string
    kCount,         // uint64, rendered "1,234,567"
    kDouble,        // double, rendered "12.34" (fixed decimals)
    kPercent,       // numerator/denominator, rendered "12.34%" or "-"
    kPercentValue,  // precomputed percentage, rendered "12.34%"
  };

  static Cell text(std::string s);
  static Cell count(std::uint64_t n);
  static Cell number(double v, int decimals = 2);
  static Cell percent(double numerator, double denominator,
                      int decimals = 2);
  static Cell percent_value(double pct, int decimals = 2);

  Kind kind() const { return kind_; }
  /// Exactly what the text table prints for this cell.
  std::string rendered() const;
  /// False for kText and for kPercent with a zero denominator ("-").
  bool has_value() const;
  /// Numeric value: the count, the double, or the computed percentage.
  double value() const;
  std::uint64_t count_value() const { return count_; }
  int decimals() const { return decimals_; }
  const std::string& text_value() const { return text_; }

 private:
  Kind kind_ = Kind::kText;
  std::string text_;
  std::uint64_t count_ = 0;
  double value_ = 0;
  double denominator_ = 0;
  int decimals_ = 2;
};

/// Column metadata: a machine-readable name is the CSV/JSON header; the
/// declared type documents what the cells in this column hold.
enum class ColumnType { kString, kCount, kPercent, kDouble };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
};

const char* column_type_name(ColumnType type);

/// A named table with typed columns. Rows must not be wider than the
/// header (throws std::invalid_argument); narrower rows are padded with
/// empty text cells, mirroring TextTable.
class ResultTable {
 public:
  ResultTable() = default;
  ResultTable(std::string id, std::vector<Column> columns);

  void add_row(std::vector<Cell> cells);

  const std::string& id() const { return id_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Column-aligned fixed-width rendering; byte-identical to TextTable
  /// over the same rendered cells.
  std::string render_text() const;

 private:
  std::string id_;
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// A structured pass/fail line ("  <label>: OK"). `text` carries the
/// exact rendered line (labels historically align their own padding);
/// `status` is 1 = OK, 0 = MISS, -1 = informational (no verdict).
struct Check {
  std::string text;
  std::string label;
  int status = -1;
};

struct ResultBlock {
  enum class Kind { kTable, kLine, kCheck };
  Kind kind = Kind::kLine;
  ResultTable table;  // kTable
  std::string line;   // kLine (one stdout line, no trailing newline)
  Check check;        // kCheck
};

/// One quarantined-record sample surfaced in the data-quality block.
/// Inputs are named by role ("ssl"/"x509"), never by path, and every
/// field is a pure function of the input bytes — the block is part of
/// the canonical JSON surface and must stay byte-stable across thread
/// counts, chunk sizes, and --stable-output.
struct QuarantineSample {
  std::string input;  // "ssl" / "x509"
  std::uint64_t byte_offset = 0;
  std::uint64_t line = 0;  // absolute physical line, header included
  std::string reason;
  std::string digest;  // sha256 hex prefix of the raw row
};

/// One row of the per-reason quarantine breakdown: exact count of rows
/// quarantined for one (input role, structured reason) pair. Counts are
/// never capped, and rows arrive sorted by (input, reason).
struct QuarantineReason {
  std::string input;  // "ssl" / "x509"
  std::string reason;
  std::uint64_t count = 0;
};

/// Quarantine totals of a best-effort run (DESIGN §11). `present` is
/// true only when something was actually quarantined or degraded, so
/// clean-input runs render identically in every error-policy mode.
struct DataQualityInfo {
  bool present = false;
  std::string policy;  // "skip" / "abort"
  std::uint64_t rows_ok = 0;
  std::uint64_t ssl_quarantined = 0;
  std::uint64_t x509_quarantined = 0;
  std::uint64_t io_events = 0;
  std::vector<QuarantineReason> reasons;  // exact per-reason breakdown
  std::vector<QuarantineSample> samples;  // capped; smallest offsets kept
  bool samples_truncated = false;

  std::uint64_t quarantined_total() const {
    return ssl_quarantined + x509_quarantined;
  }
};

/// Scalar run metadata: where the records came from and what the run
/// cost. Deterministic fields feed the JSON envelope; volatile fields
/// (threads, wall clock) appear only in non-stable text output.
struct RunInfo {
  /// False for self-driving experiments with no standard footer.
  bool present = false;
  bool file_mode = false;
  std::string ssl_log, x509_log;
  double cert_scale = 1;
  double conn_scale = 1;
  std::uint64_t seed = 0;
  bool stable_output = false;
  std::size_t threads_requested = 0;
  std::size_t threads = 0;  // resolved shard count
  bool gen_stats = false;   // generator totals valid (synthetic mode)
  std::size_t gen_connections = 0;
  std::size_t gen_mutual = 0;
  std::size_t gen_certificates = 0;
  std::size_t records = 0;
  double wall_seconds = 0;
  /// Pass-sharing group id from the experiment registry: experiments
  /// with the same id rode one pipeline pass. Volatile metadata (perf
  /// envelope only, never canonical JSON or golden text).
  std::string perf_group;
  /// Bytes of log input parsed (ssl + x509 file sizes). 0 in synthetic
  /// mode, where records come from the generator, not a parser.
  std::uint64_t parse_bytes = 0;
  /// Shard-state provenance of a reduced run (mtlscope reduce): the
  /// state format version and a digest over the merged state files.
  /// 0 / empty outside reduce mode. Volatile-envelope metadata (perf
  /// object and non-stable text footer only, never canonical JSON) —
  /// reduce output must stay byte-identical to the single-host run.
  std::uint32_t state_format_version = 0;
  std::string state_digest;
  /// Quarantine totals from a best-effort run. Canonical (unlike the
  /// perf envelope): rendered in JSON and in the text footer — even
  /// under --stable-output, since its fields are pure functions of the
  /// input bytes.
  DataQualityInfo data_quality;
  /// Enrichment-cache effectiveness and scan choice (DESIGN §15).
  /// Volatile (perf envelope only, suppressed by --stable-output): the
  /// counters depend on thread count and shard boundaries even though
  /// the results never do. `scan` is empty when no executor run backed
  /// this doc (reduce mode, self-driving experiments).
  std::string scan;  // "columnar" or "rows"
  std::uint64_t facts_cache_hits = 0;
  std::uint64_t facts_cache_misses = 0;
  std::uint64_t facts_cache_unique = 0;
  std::uint64_t enrich_cache_hits = 0;
  std::uint64_t enrich_cache_misses = 0;
  std::uint64_t enrich_cache_unique = 0;
  /// Write-path durability counters (DESIGN §16): transient retries,
  /// fsync calls, atomic publications, checkpoint generations, and
  /// degraded-mode episodes, snapshotted from the process-global
  /// WriteRetryCounters when the doc is filled. Volatile (perf envelope
  /// only, suppressed by --stable-output): the counts depend on signal
  /// timing and disk behaviour, never on the analyzed records.
  bool durability_present = false;
  std::uint64_t write_retries = 0;   // eintr + short writes + backoffs
  std::uint64_t write_failures = 0;  // hard failures (all classes)
  std::uint64_t fsyncs = 0;
  std::uint64_t dir_fsyncs = 0;
  std::uint64_t atomic_publishes = 0;
  std::uint64_t ckpt_gens_written = 0;
  std::uint64_t ckpt_gens_restored = 0;
  std::uint64_t degraded_episodes = 0;

  double records_per_second() const {
    return wall_seconds <= 0
               ? 0
               : static_cast<double>(records) / wall_seconds;
  }
  double parse_bytes_per_second() const {
    return wall_seconds <= 0
               ? 0
               : static_cast<double>(parse_bytes) / wall_seconds;
  }
};

class ResultDoc {
 public:
  std::string experiment;  // registry name, e.g. "table1"
  std::string anchor;      // paper anchor, e.g. "Table 1"
  std::string title;       // banner headline
  RunInfo run;

  /// Appends an empty table block and returns a reference for add_row.
  ResultTable& add_table(std::string id, std::vector<Column> columns);
  /// One raw stdout line (default: blank line).
  void add_line(std::string line = "");
  /// Structured check with an exact rendered line.
  void add_check(std::string text, std::string label, int status);
  /// Convenience for the dominant "  <label>: OK|MISS" shape.
  void add_check(std::string label, bool ok);

  const std::vector<ResultBlock>& blocks() const { return blocks_; }
  /// All tables, in block order.
  std::vector<const ResultTable*> tables() const;

 private:
  std::vector<ResultBlock> blocks_;
};

/// Full text rendering: banner, body blocks, footer. Byte-identical to
/// the pre-IR repro_* binaries for the same configuration.
std::string render_text(const ResultDoc& doc);
/// Body blocks only (no banner/footer).
std::string render_body_text(const ResultDoc& doc);
/// Canonical JSON: stable key order, fixed float formatting, no
/// volatile fields — byte-stable across thread counts and input modes.
std::string render_json(const ResultDoc& doc, int indent = 0);
/// Envelope variant: same canonical document, optionally extended with a
/// non-canonical "perf" object (threads, wall clock, throughput,
/// pass-sharing group) before "blocks". With include_perf == false this
/// is byte-identical to render_json(doc, indent); with it true the
/// output is volatile and must never feed golden files or byte-equality
/// assertions.
std::string render_json_with_perf(const ResultDoc& doc, int indent,
                                  bool include_perf);
/// One table as CSV (sep ',', RFC-style quoting) or TSV (sep '\t').
std::string render_csv(const ResultTable& table, char sep = ',');
/// The multi-document JSON envelope (`{"experiments": [...]}`) shared
/// by `mtlscope run --format=json`, `mtlscope reduce`, and the watch
/// daemon's published window/cumulative files — one rendering, so a
/// watch cumulative document byte-compares against a batch run's
/// stdout. include_perf as in render_json_with_perf.
std::string render_json_envelope(const std::vector<ResultDoc>& docs,
                                 bool include_perf);

/// JSON string escaping (exposed for the emitters and tests).
std::string json_escape(const std::string& s);

}  // namespace mtlscope::core
