// Privacy remediation (paper §7 "Enhancing privacy of client
// certificates"): client certificates should carry only what
// authentication needs. This module audits a certificate for the
// §6 information types that expose the holder, and can re-issue it with
// sensitive fields replaced by stable pseudonyms — HMAC-based, so the
// relying party can still correlate a device across renewals without the
// network learning who it is.
#pragma once

#include <string>
#include <vector>

#include "mtlscope/crypto/tsig.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::core {

struct PrivacyFinding {
  enum class Field : std::uint8_t { kSubjectCn, kSanDns, kSanEmail };
  Field field = Field::kSubjectCn;
  std::string value;
  textclass::InfoType type = textclass::InfoType::kUnidentified;
};

/// Information types that identify a person or device owner on the wire.
bool is_sensitive_info(textclass::InfoType type);

/// Audits the CN/SAN contents of one certificate.
std::vector<PrivacyFinding> audit_certificate(
    const x509::Certificate& cert,
    const textclass::ClassifyContext& context = {});

/// Re-issues `cert` under `issuer` with every sensitive CN/SAN value
/// replaced by a pseudonym derived from HMAC(pseudonym_key, value):
/// deterministic (the same subject maps to the same pseudonym, so
/// authorization lists keep working) yet unlinkable to the identity
/// without the key. Non-sensitive values, validity, serial and key
/// material are preserved.
x509::Certificate redact_certificate(
    const x509::Certificate& cert,
    const trust::CertificateAuthority& issuer,
    const crypto::TsigKey& pseudonym_key,
    const textclass::ClassifyContext& context = {});

/// The pseudonym used by redact_certificate ("anon-" + 16 hex chars).
std::string pseudonym_for(const crypto::TsigKey& pseudonym_key,
                          std::string_view value);

}  // namespace mtlscope::core
