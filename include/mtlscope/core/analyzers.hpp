// One analyzer per paper table/figure. Connection-level analyzers expose
// the uniform Analyzer interface — observe(const EnrichedConnection&) to
// accumulate, merge(Analyzer&&) to fold a later shard's state in, and a
// typed result — and are registered on the Pipeline (or attached per shard
// through the PipelineExecutor); certificate-population analyzers read
// Pipeline::certificates_sorted() after the stream ends. Each returns a
// structured result; repro_* binaries render them next to the paper's
// numbers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/textclass/randomness.hpp"

namespace mtlscope::core {

class StateWriter;
class StateReader;

/// The uniform connection-analyzer shape: per-record accumulation plus
/// shard-order merging. Every analyzer state below is built from counters,
/// sets, and min/max watermarks, so merging shards in stream order
/// reproduces the serial state exactly.
template <typename A>
concept ConnectionAnalyzer = requires(A a, A b, const EnrichedConnection& c) {
  a.observe(c);
  a.merge(std::move(b));
};

/// K independent instances of one analyzer, one per shard, merged in shard
/// order once the stream ends. Deliberately not thread-safe per instance:
/// each shard owns exactly one slot.
template <typename A>
class Sharded {
 public:
  explicit Sharded(std::size_t shards) : shards_(shards ? shards : 1) {}

  std::size_t size() const { return shards_.size(); }
  A& shard(std::size_t i) { return shards_[i]; }

  /// Folds all shards into the first, in shard order, and returns it.
  A merged() && {
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      shards_[0].merge(std::move(shards_[i]));
    }
    shards_.resize(1);
    return std::move(shards_[0]);
  }

 private:
  std::vector<A> shards_;
};

// ---------------------------------------------------------------------------
// Table 1 — unique certificates by role / CA class / mutual usage.

struct CertInventoryResult {
  struct Row {
    std::uint64_t total = 0;
    std::uint64_t mutual = 0;
    double mutual_pct() const {
      return total == 0 ? 0 : 100.0 * static_cast<double>(mutual) /
                                  static_cast<double>(total);
    }
  };
  Row total, server, server_public, server_private;
  Row client, client_public, client_private;
};

CertInventoryResult analyze_cert_inventory(const Pipeline& pipeline);

// ---------------------------------------------------------------------------
// Figure 1 — monthly share of TLS connections using mutual TLS.

class PrevalenceAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(PrevalenceAnalyzer&& other);

  struct MonthPoint {
    int month_index = 0;
    std::uint64_t total = 0;
    std::uint64_t mutual = 0;
    std::uint64_t mutual_inbound = 0;
    std::uint64_t mutual_outbound = 0;
    double mutual_pct() const {
      return total == 0 ? 0 : 100.0 * static_cast<double>(mutual) /
                                  static_cast<double>(total);
    }
  };
  /// Months in chronological order.
  std::vector<MonthPoint> series() const;

  /// Canonical shard-state encoding (core/shard_state.hpp): every
  /// analyzer serializes its complete private state, so deserialize ∘
  /// serialize is the identity and re-serialization is byte-identical.
  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  std::map<int, MonthPoint> months_;
};

// ---------------------------------------------------------------------------
// Table 2 — prominent services (ports) by direction and mutual usage.

class ServicePortAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(ServicePortAnalyzer&& other);

  struct PortShare {
    std::string port_label;  // "443" or "50000-51000"
    std::string service;
    std::uint64_t connections = 0;
    double share = 0;  // as a percentage
  };
  /// Top-N ports for one (direction, mutual) quadrant.
  std::vector<PortShare> top(Direction direction, bool mutual,
                             std::size_t n = 5) const;

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  // quadrant index: direction*2 + mutual
  std::array<std::map<std::string, std::uint64_t>, 4> counts_;
  std::array<std::uint64_t, 4> totals_{};
};

// ---------------------------------------------------------------------------
// Table 3 — inbound mutual TLS by server association.

class InboundAssociationAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(InboundAssociationAnalyzer&& other);

  struct Row {
    ServerAssociation assoc;
    std::uint64_t connections = 0;
    std::uint64_t clients = 0;
    /// Client-issuer categories ranked by share of clients.
    std::vector<std::pair<IssuerCategory, double>> issuer_shares;
  };
  std::vector<Row> rows() const;
  std::uint64_t total_connections() const { return total_conns_; }
  std::uint64_t total_clients() const;

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  struct Acc {
    std::uint64_t connections = 0;
    std::set<std::uint32_t> clients;
    std::map<IssuerCategory, std::set<std::uint32_t>> clients_by_category;
  };
  std::map<ServerAssociation, Acc> acc_;
  std::uint64_t total_conns_ = 0;
};

// ---------------------------------------------------------------------------
// Figure 2 — outbound flows: server TLD × server issuer class × client
// issuer category.

class OutboundFlowAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(OutboundFlowAnalyzer&& other);

  struct Flow {
    std::string tld;
    trust::IssuerClass server_class;
    IssuerCategory client_category;
    std::uint64_t connections = 0;
  };
  std::vector<Flow> top_flows(std::size_t n = 12) const;

  /// SLD shares among outbound mutual connections with SNI (§4.2.2:
  /// amazonaws.com 28.51%, rapid7.com 27.44%, gpcloudservice.com 13.33%).
  std::vector<std::pair<std::string, double>> top_slds(std::size_t n) const;

  /// §4.2.2: share of public-server connections whose client certificate
  /// lacks a valid issuer (paper: 45.71%).
  double public_server_missing_client_issuer_pct() const;

  /// Takeaway: share of outbound client certificates lacking a valid
  /// issuer (paper: 37.84%). Certificate-level.
  static double missing_issuer_client_cert_pct(const Pipeline& pipeline);

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  std::map<std::string, std::uint64_t> sld_counts_;
  std::map<std::tuple<std::string, int, int>, std::uint64_t> flows_;
  std::uint64_t with_sni_ = 0;
  std::uint64_t public_server_conns_ = 0;
  std::uint64_t public_server_missing_client_ = 0;
};

// ---------------------------------------------------------------------------
// Table 4 / Table 10 — dummy issuers; §5.1.1 weak-parameter findings.

class DummyIssuerAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(DummyIssuerAnalyzer&& other);

  struct Row {
    Direction direction;
    bool client_side = true;  // which endpoint held the dummy cert
    std::string dummy_org;
    std::set<std::string> server_groups;  // SLDs (in.) or TLDs (out.)
    std::set<std::uint32_t> clients;
    std::uint64_t connections = 0;
  };
  std::vector<Row> rows() const;

  struct BothEndsRow {
    std::string sld;  // empty → missing SNI
    std::string client_org;
    std::string server_org;
    std::set<std::uint32_t> clients;
    util::UnixSeconds first = 0, last = 0;
    double duration_days() const {
      return static_cast<double>(last - first) / 86'400.0;
    }
  };
  std::vector<BothEndsRow> both_ends_rows() const;

  /// §5.1.1: dummy-issuer client certs with X.509 version 1 and with
  /// 1024-bit keys, with their unique connection-tuple counts.
  struct WeakParams {
    Pipeline::StrSet v1_certs;
    std::uint64_t v1_tuples = 0;
    Pipeline::StrSet weak_key_certs;
    std::uint64_t weak_key_tuples = 0;
  };
  const WeakParams& weak_params() const { return weak_; }

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  struct Key {
    Direction direction;
    bool client_side;
    std::string dummy_org;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  std::map<Key, Row> rows_;
  std::map<std::string, BothEndsRow> both_;
  WeakParams weak_;
  std::set<std::string> v1_tuple_set_;
  std::set<std::string> weak_tuple_set_;
};

// ---------------------------------------------------------------------------
// §5.1.2 — dummy serial-number collisions.

class SerialCollisionAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(SerialCollisionAnalyzer&& other);

  struct Group {
    std::string issuer_org;  // or issuer CN when org missing
    std::string serial;
    Direction direction;
    Pipeline::StrSet server_certs;
    Pipeline::StrSet client_certs;
    std::set<std::uint32_t> clients;
    std::uint64_t connections = 0;
    std::uint64_t both_endpoint_connections = 0;  // collisions on both sides
  };
  /// Groups with more than one distinct certificate for one serial.
  std::vector<Group> collision_groups() const;

  /// Clients involved in any collision, per direction.
  std::uint64_t involved_clients(Direction d) const;

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  static bool candidate(const CertFacts& facts);
  std::map<std::tuple<std::string, std::string, int>, Group> groups_;
  std::array<std::set<std::uint32_t>, 2> involved_clients_;
};

// ---------------------------------------------------------------------------
// Table 5 / Table 6 — certificate sharing.

class SharedCertAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(SharedCertAnalyzer&& other);

  struct SameConnRow {
    std::string sld;  // empty → missing SNI
    std::string issuer;
    bool public_issuer = false;
    std::set<std::uint32_t> clients;
    util::UnixSeconds first = 0, last = 0;
    std::uint64_t connections = 0;
    double duration_days() const {
      return static_cast<double>(last - first) / 86'400.0;
    }
  };
  std::vector<SameConnRow> same_connection_rows() const;
  std::uint64_t same_connection_conns(Direction d) const;

  struct SubnetQuantiles {
    // 50th / 75th / 99th / 100th percentiles of per-cert /24 counts.
    std::array<std::size_t, 4> server{};
    std::array<std::size_t, 4> client{};
    std::size_t cross_shared_certs = 0;
  };
  /// Table 6 over certificates used in both roles across *different*
  /// connections (same-connection-shared certs excluded).
  SubnetQuantiles subnet_quantiles(const Pipeline& pipeline) const;

  const Pipeline::StrSet& same_conn_fuids() const {
    return same_conn_fuids_;
  }

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  std::map<std::string, SameConnRow> same_conn_;  // key: sld|issuer
  std::array<std::uint64_t, 2> same_conn_conns_{};
  Pipeline::StrSet same_conn_fuids_;
};

// ---------------------------------------------------------------------------
// Figure 3 / Tables 11-12 — certificates with incorrect dates.

class IncorrectDateAnalyzer {
 public:
  void observe(const EnrichedConnection& conn);
  void merge(IncorrectDateAnalyzer&& other);

  struct Row {
    std::string sld;  // empty → missing SNI
    bool client_side = true;
    std::string issuer;
    util::UnixSeconds not_before = 0, not_after = 0;
    std::set<std::uint32_t> clients;
    util::UnixSeconds first = 0, last = 0;
    Pipeline::StrSet certs;
    double duration_days() const {
      return static_cast<double>(last - first) / 86'400.0;
    }
  };
  std::vector<Row> rows() const;

  /// Rows where both endpoints of the same connection had incorrect
  /// dates (Table 12: idrive.com, SDS).
  std::vector<Row> both_ends_rows() const;

  void serialize(StateWriter& w) const;
  void deserialize(StateReader& r);

 private:
  std::map<std::string, Row> rows_;
  std::map<std::string, Row> both_;
};

// ---------------------------------------------------------------------------
// Figure 4 — validity periods of client certificates.

struct ValidityResult {
  struct Bucket {
    std::string label;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> histogram;  // log-ish day buckets
  std::uint64_t long_valid_total = 0;  // 10,000–40,000 days (paper: 7,911)
  std::uint64_t long_valid_public = 0;     // paper: 50
  std::uint64_t long_valid_missing = 0;    // paper share: 45.73%
  std::uint64_t long_valid_corporate = 0;  // 37.58%
  std::uint64_t long_valid_dummy = 0;      // 7.61%
  std::map<std::string, std::uint64_t> long_valid_tlds;  // com/net/(missing)
  std::int64_t max_validity_days = 0;      // paper: 83,432
  std::string max_validity_sld;            // paper: tmdxdev.com
};

ValidityResult analyze_validity(const Pipeline& pipeline);

// ---------------------------------------------------------------------------
// Figure 5 — expired client certificates in successful connections.

struct ExpiredCertResult {
  struct CertPoint {
    double days_expired_at_first_use = 0;
    double activity_days = 0;
    bool public_issuer = false;
  };
  std::vector<CertPoint> inbound;
  std::vector<CertPoint> outbound;
  /// Inbound server-association shares of expired-cert connections
  /// (paper: VPN 45.83%, Local Org 32.79%, Third Party 15.38%).
  std::map<ServerAssociation, std::uint64_t> inbound_assoc_conns;
  /// Outbound cluster: certs expired ≥ `kClusterDays` issued by
  /// Apple/Microsoft (paper: 339 of them, 42.27% of the >1000-day set).
  std::uint64_t outbound_over_1000d = 0;
  std::uint64_t outbound_over_1000d_apple_ms = 0;
};

ExpiredCertResult analyze_expired(const Pipeline& pipeline);

// ---------------------------------------------------------------------------
// Tables 7 / 13a / 14a — CN and SAN utilization. Tables 8 / 13b / 14b —
// information types.

enum class CertScope : std::uint8_t {
  kMutual,     // certificates used in mutual TLS (Tables 7-9)
  kShared,     // used as both server and client (Table 13)
  kNonMutual,  // server certificates outside mutual TLS (Table 14)
};

struct UtilizationResult {
  struct Row {
    std::uint64_t total = 0;
    std::uint64_t cn = 0;
    std::uint64_t san_dns = 0;
  };
  Row all, pub, priv;                   // scope-level (Tables 13a/14a)
  Row server, server_pub, server_priv;  // Table 7 top half
  Row client, client_pub, client_priv;  // Table 7 bottom half
};

UtilizationResult analyze_utilization(const Pipeline& pipeline,
                                      CertScope scope);

struct InfoTypeResult {
  // [role: 0 server / 1 client][class: 0 public / 1 private]
  struct Cell {
    std::array<std::uint64_t, textclass::kInfoTypeCount> cn{};
    std::array<std::uint64_t, textclass::kInfoTypeCount> san{};
    std::uint64_t cn_total = 0;
    std::uint64_t san_total = 0;  // certs with ≥1 SAN DNS
  };
  std::array<std::array<Cell, 2>, 2> cells;
};

/// For CertScope::kMutual, certificates shared by both roles are excluded
/// (§6.3's note) — they are reported separately under kShared, where both
/// roles collapse into the server slot of the result.
InfoTypeResult analyze_info_types(const Pipeline& pipeline, CertScope scope);

// ---------------------------------------------------------------------------
// Table 9 — unidentified strings: random vs non-random.

struct UnidentifiedResult {
  struct Column {
    std::uint64_t total = 0;
    std::uint64_t non_random = 0;
    std::uint64_t by_issuer = 0;  // random but recognizable via issuer
    std::uint64_t len8 = 0;
    std::uint64_t len32 = 0;
    std::uint64_t len36 = 0;
    std::uint64_t other_random = 0;
  };
  Column server_private_cn;
  Column client_public_cn;
  Column client_private_cn;
  Column client_private_san;
};

UnidentifiedResult analyze_unidentified(const Pipeline& pipeline);

// ---------------------------------------------------------------------------
// Extension (not a paper table): client-certificate trackability, after
// Wachs et al. (TMA'17) and Foppe et al. (PETS'18), which the paper cites
// as the tracking risk of client certificates. A client certificate is a
// persistent plaintext identifier in TLS <= 1.2; its reuse across time and
// networks makes the holder linkable.

struct TrackingResult {
  std::uint64_t client_certs = 0;
  /// Certificates observed in more than one connection.
  std::uint64_t reused = 0;
  /// Certificates seen from >= 2 client /24 networks — linkable across
  /// network attachments.
  std::uint64_t cross_network = 0;
  /// Certificates active for at least a week / month / half a year.
  std::uint64_t week_plus = 0;
  std::uint64_t month_plus = 0;
  std::uint64_t half_year_plus = 0;
  /// The worst case: a long-lived identifier that also carries PII.
  std::uint64_t long_lived_with_pii = 0;

  struct Top {
    std::string fuid;
    std::string issuer;
    double activity_days = 0;
    std::size_t subnets = 0;
    std::uint64_t connections = 0;
  };
  std::vector<Top> most_trackable;  // ranked by activity × subnet spread
};

TrackingResult analyze_tracking(const Pipeline& pipeline);

// ---------------------------------------------------------------------------
// Extension (not a paper table): renewal hygiene. §7 names revocation and
// renewal as the operational burden of client certificates; this analyzer
// reconstructs renewal chains (same issuer + same subject, successive
// validity windows) and measures cadence and coverage.

struct RenewalResult {
  /// Groups where one subject CN recurs under one issuer WITHOUT a
  /// sequential validity pattern — generic CNs ("WebRTC", company names)
  /// reused by unrelated certificates, not renewals.
  std::uint64_t cn_reuse_groups = 0;
  /// Chains with at least two certificates.
  std::uint64_t chains = 0;
  std::uint64_t certificates_in_chains = 0;
  std::size_t longest_chain = 0;
  /// Renewal transitions, by how the validity windows meet.
  std::uint64_t seamless = 0;  // next starts within a day of previous end
  std::uint64_t overlap = 0;   // next starts well before previous expires
  std::uint64_t gap = 0;       // coverage hole between consecutive certs

  struct IssuerRow {
    std::string issuer;
    std::uint64_t chains = 0;
    double median_cadence_days = 0;  // between consecutive not_befores
  };
  std::vector<IssuerRow> top_issuers;
};

RenewalResult analyze_renewals(const Pipeline& pipeline);

// ---------------------------------------------------------------------------

const char* cert_scope_name(CertScope scope);

}  // namespace mtlscope::core
