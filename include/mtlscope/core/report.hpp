// Fixed-width text tables for the repro_* harness output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mtlscope::core {

/// Accumulates rows, then renders a column-aligned table with a header
/// rule — the format every repro binary prints its paper-vs-measured
/// rows in.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Pads short rows with empty cells; throws std::invalid_argument when
  /// the row has more cells than there are headers.
  void add_row(std::vector<std::string> cells);
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.34" with the given decimals.
std::string format_double(double v, int decimals = 2);
/// "12.34%" (or "-" when the denominator is zero).
std::string format_percent(double numerator, double denominator,
                           int decimals = 2);
/// "1,234,567"
std::string format_count(std::uint64_t n);

}  // namespace mtlscope::core
