// PipelineExecutor: partition-then-merge execution of the measurement
// pipeline (the shape Internet-scale TLS measurement studies use to reach
// billions of records). A trace — an in-memory Zeek dataset or an
// ssl.log/x509.log text pair — is split into K contiguous shards; one
// shard-local Pipeline runs per worker thread (std::thread, no external
// dependencies); shard states merge deterministically in shard order, so
// the result is bit-identical to the serial run for any K.
//
// Execution phases:
//   A  certificate registry: CertFacts for every x509 row, built in
//      parallel over row ranges against the shared Enricher (thread-safe
//      issuer-category memo).
//   B  chain upgrades: whole-stream pass marking leaves public when any
//      connection carries a public intermediate for them (§3.2.1) —
//      monotonic, so a single pre-pass equals the streaming fixpoint.
//   C  interception pre-pass (when CT is configured): shard-local
//      candidate maps (issuer → distinct CT-mismatching SLDs) merged by
//      set union; issuers at or above the confirmation threshold form the
//      frozen confirmed set. Exclusion therefore applies to *all* of a
//      confirmed issuer's connections regardless of stream position —
//      the order-independent semantics finalize() reconciles the
//      streaming pipeline toward.
//   D  shard run: K prepared-mode Pipelines over contiguous ssl slices,
//      per-shard observers attached.
//   E  merge: shard registries, totals, and analyzer states fold into one
//      Pipeline in shard order; finalize() flags interception certs.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope::core {

class PipelineExecutor {
 public:
  using Observer = Pipeline::Observer;
  /// Builds one observer per shard (analyzer states stay thread-local).
  using ObserverFactory = std::function<Observer(std::size_t shard)>;

  /// `threads` = 0 → hardware concurrency. Shard count equals the thread
  /// count; threads == 1 runs everything inline on the caller's thread.
  explicit PipelineExecutor(PipelineConfig config, std::size_t threads = 0);

  /// 0 → std::thread::hardware_concurrency() (≥ 1).
  static std::size_t resolve_threads(std::size_t requested);
  std::size_t shard_count() const { return threads_; }

  /// Per-shard observers: the factory runs once per shard; each returned
  /// observer only ever fires on its own shard's thread.
  void add_observer_factory(ObserverFactory factory);

  /// Shared observer: one callable fired from every shard, serialized by a
  /// mutex. Connections arrive shard-interleaved, so only commutative
  /// accumulators (counters, sets, min/max) observe deterministically.
  void add_shared_observer(Observer observer);

  /// Attaches one analyzer instance per shard; merge with
  /// std::move(sharded).merged() after run(). `sharded` must outlive the
  /// run and have size() == shard_count().
  template <typename A>
    requires ConnectionAnalyzer<A>
  void attach(Sharded<A>& sharded) {
    add_observer_factory([&sharded](std::size_t shard) {
      return [analyzer = &sharded.shard(shard)](
                 const EnrichedConnection& conn) { analyzer->observe(conn); };
    });
  }

  /// Runs the five phases over an in-memory dataset and returns the merged,
  /// finalized pipeline.
  Pipeline run(const zeek::Dataset& dataset);
  Pipeline run(const std::vector<zeek::SslRecord>& ssl,
               const std::map<std::string, zeek::X509Record>& x509);

  /// File-driven entry: splits both logs at record boundaries
  /// (zeek::split_log_text), parses the chunks in parallel, then runs.
  /// Returns nullopt (with `error` filled) on a parse failure.
  std::optional<Pipeline> run_logs(const std::string& ssl_text,
                                   const std::string& x509_text,
                                   zeek::LogParseError* error = nullptr);

  const PipelineConfig& config() const;

 private:
  PipelineConfig config_;
  std::size_t threads_;
  std::vector<ObserverFactory> factories_;
  std::vector<Observer> shared_observers_;
  std::mutex shared_mutex_;
};

}  // namespace mtlscope::core
