// PipelineExecutor: partition-then-merge execution of the measurement
// pipeline (the shape Internet-scale TLS measurement studies use to reach
// billions of records). A trace — an in-memory Zeek dataset or an
// ssl.log/x509.log text pair — is split into K contiguous shards; one
// shard-local Pipeline runs per worker thread (std::thread, no external
// dependencies); shard states merge deterministically in shard order, so
// the result is bit-identical to the serial run for any K.
//
// Execution phases:
//   A  certificate registry: CertFacts for every x509 row, built in
//      parallel over row ranges against the shared Enricher (thread-safe
//      issuer-category memo).
//   B  chain upgrades: whole-stream pass marking leaves public when any
//      connection carries a public intermediate for them (§3.2.1) —
//      monotonic, so a single pre-pass equals the streaming fixpoint.
//   C  interception pre-pass (when CT is configured): shard-local
//      candidate maps (issuer → distinct CT-mismatching SLDs) merged by
//      set union; issuers at or above the confirmation threshold form the
//      frozen confirmed set. Exclusion therefore applies to *all* of a
//      confirmed issuer's connections regardless of stream position —
//      the order-independent semantics finalize() reconciles the
//      streaming pipeline toward.
//   D  shard run: K prepared-mode Pipelines over contiguous ssl slices,
//      per-shard observers attached.
//   E  merge: shard registries, totals, and analyzer states fold into one
//      Pipeline in shard order; finalize() flags interception certs.
//
// Two input paths drive the same phases:
//   * in-memory (run / run_logs): records or log text already resident;
//   * streaming (run_log_files / run_sources): logs stay on disk. Each
//     pre-pass is queue-fed — one reader thread cuts the mmap'd file into
//     record-aligned chunks, K workers parse them, and a bounded reorder
//     window re-sequences results so order-sensitive phases (A's
//     first-fuid-wins, B's serial upgrades) see records in exact stream
//     order. Phase D streams static record-aligned byte ranges, one per
//     shard. Peak resident memory is O(chunk_bytes × (queue_depth + K))
//     plus the certificate registry — never O(file size) — and the output
//     is byte-identical to the in-memory path.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/core/shard_state.hpp"
#include "mtlscope/ingest/chunker.hpp"
#include "mtlscope/ingest/error.hpp"
#include "mtlscope/ingest/source.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope::colfmt {
class ContainerReader;
}

namespace mtlscope::core {

/// Input-scan strategy for container runs (DESIGN §15):
///  * kRows     — decode every block into record vectors, then run the
///                in-memory phases (the historical path);
///  * kColumnar — zero-materialization: phase B/D walk the packed block
///                columns in place through colfmt::SslBlockScan, feeding
///                one reused record per row and pruning columns the
///                pipeline never reads (uid);
///  * kAuto     — columnar when eligible, rows otherwise.
/// The columnar path requires no CT database (phase C re-streams full
/// records); a forced kColumnar run with CT configured falls back to
/// rows. Results are byte-identical across modes by construction: both
/// feed the same records through the same phases in the same stream
/// order, partitioned contiguously.
enum class ScanMode { kAuto, kRows, kColumnar };

class PipelineExecutor {
 public:
  using Observer = Pipeline::Observer;
  /// Builds one observer per shard (analyzer states stay thread-local).
  using ObserverFactory = std::function<Observer(std::size_t shard)>;

  /// `threads` = 0 → hardware concurrency. Shard count equals the thread
  /// count; threads == 1 runs everything inline on the caller's thread.
  explicit PipelineExecutor(PipelineConfig config, std::size_t threads = 0);

  /// 0 → std::thread::hardware_concurrency() (≥ 1).
  static std::size_t resolve_threads(std::size_t requested);
  std::size_t shard_count() const { return threads_; }

  /// Per-shard observers: the factory runs once per shard; each returned
  /// observer only ever fires on its own shard's thread.
  void add_observer_factory(ObserverFactory factory);

  /// Shared observer: one callable fired from every shard, serialized by a
  /// mutex. Connections arrive shard-interleaved, so only commutative
  /// accumulators (counters, sets, min/max) observe deterministically.
  void add_shared_observer(Observer observer);

  /// Attaches one analyzer instance per shard; merge with
  /// std::move(sharded).merged() after run(). `sharded` must outlive the
  /// run and have size() == shard_count().
  template <typename A>
    requires ConnectionAnalyzer<A>
  void attach(Sharded<A>& sharded) {
    add_observer_factory([&sharded](std::size_t shard) {
      return [analyzer = &sharded.shard(shard)](
                 const EnrichedConnection& conn) { analyzer->observe(conn); };
    });
  }

  /// Runs the five phases over an in-memory dataset and returns the merged,
  /// finalized pipeline.
  Pipeline run(const zeek::Dataset& dataset);
  Pipeline run(const std::vector<zeek::SslRecord>& ssl,
               const zeek::Dataset::X509Map& x509);

  /// In-memory log-text entry: wraps both strings in MemorySources and
  /// runs the streaming engine over them (zero extra copies of the text).
  /// Returns nullopt (with `error` filled) on a parse failure. With
  /// `options.errors` in skip mode, malformed rows are quarantined into
  /// `ledger` (when non-null) instead of failing the run.
  std::optional<Pipeline> run_logs(const std::string& ssl_text,
                                   const std::string& x509_text,
                                   zeek::LogParseError* error = nullptr,
                                   const ingest::IngestOptions& options = {},
                                   ErrorLedger* ledger = nullptr);

  /// Streaming entry: mmaps (or buffered-reads) both log files and runs
  /// the phases without ever materializing a file in memory. "-" reads
  /// stdin (spooled to disk). Output is byte-identical to run_logs() on
  /// the same bytes for every thread count and chunk size.
  std::optional<Pipeline> run_log_files(
      const std::string& ssl_path, const std::string& x509_path,
      ingest::IngestError* error = nullptr,
      const ingest::IngestOptions& options = {},
      ErrorLedger* ledger = nullptr);

  /// Same engine over already-opened byte sources (tests, custom inputs).
  /// `ledger` (optional) receives quarantined records, per-phase counts,
  /// and I/O degradation events; it is finalized before returning.
  std::optional<Pipeline> run_sources(const ingest::Source& ssl,
                                      const ingest::Source& x509,
                                      ingest::IngestError* error = nullptr,
                                      const ingest::IngestOptions& options = {},
                                      ErrorLedger* ledger = nullptr);

  /// Compact-container entry (DESIGN §14): decodes the container's
  /// blocks in parallel (each block carries its own dictionary, so K
  /// workers decode K blocks independently), rebuilds the exact record
  /// streams, and runs the in-memory phases over them — byte-identical
  /// to a TSV run over the logs the container was converted from, for
  /// any thread count. The conversion-time ledger stored in the
  /// container is restored: abort mode fails on the first quarantined
  /// row (as the TSV run would); skip mode re-checks the error budget
  /// and hands the ledger to `ledger`.
  std::optional<Pipeline> run_container(
      const colfmt::ContainerReader& reader,
      ingest::IngestError* error = nullptr,
      const ingest::IngestOptions& options = {}, ErrorLedger* ledger = nullptr);

  const PipelineConfig& config() const;

  void set_scan_mode(ScanMode mode) { scan_mode_ = mode; }
  ScanMode scan_mode() const { return scan_mode_; }

  /// Cache effectiveness and scan choice of the most recent completed
  /// run — the JSON perf envelope's `enrich` block. `facts_*` count the
  /// Enricher's DER-keyed certificate memo; `enrich_*` sum the per-shard
  /// host/address memos (EnrichCache) after the shard merge.
  struct RunStats {
    const char* scan = "rows";  ///< which scan drove phase D
    std::uint64_t facts_hits = 0;
    std::uint64_t facts_misses = 0;
    std::uint64_t facts_unique = 0;
    std::uint64_t enrich_hits = 0;
    std::uint64_t enrich_misses = 0;
    std::uint64_t enrich_unique = 0;
  };
  const RunStats& last_run_stats() const { return stats_; }

  /// Fold-to-state entries (mtlscope map / DESIGN §12): run the phases
  /// with every standard analyzer attached and return the complete
  /// serializable shard state — merged finalized pipeline, the eight
  /// analyzer states, and the ledger. The caller fills `meta`. The
  /// executor must not have caller-attached observers for these entries
  /// (their state would be silently dropped).
  ShardState fold(const zeek::Dataset& dataset);
  ShardState fold(const std::vector<zeek::SslRecord>& ssl,
                  const zeek::Dataset::X509Map& x509);
  std::optional<ShardState> fold_log_files(
      const std::string& ssl_path, const std::string& x509_path,
      ingest::IngestError* error = nullptr,
      const ingest::IngestOptions& options = {});
  std::optional<ShardState> fold_container(
      const colfmt::ContainerReader& reader,
      ingest::IngestError* error = nullptr,
      const ingest::IngestOptions& options = {});

 private:
  /// K prepared-mode pipelines with per-shard and shared observers wired.
  std::vector<Pipeline> make_shards(const Pipeline::Prepared& prepared);

  /// The zero-materialization container path (DESIGN §15): phase A
  /// decodes x509 blocks in parallel; phases B and D scan the ssl blocks
  /// column-direct, never materializing the record vectors.
  std::optional<Pipeline> run_container_columnar(
      const colfmt::ContainerReader& reader, ingest::IngestError* error);

  void note_run_stats(const Enricher& enricher, const Pipeline& merged,
                      const char* scan);

  PipelineConfig config_;
  std::size_t threads_;
  std::vector<ObserverFactory> factories_;
  std::vector<Observer> shared_observers_;
  std::mutex shared_mutex_;
  ScanMode scan_mode_ = ScanMode::kAuto;
  RunStats stats_;
};

}  // namespace mtlscope::core
