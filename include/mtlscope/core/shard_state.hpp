// Versioned shard-state files (DESIGN §12): the complete partial state of
// one map task — the merged Pipeline (certificate registry, totals,
// interception state), all eight standard connection analyzers, and the
// ErrorLedger — in a self-describing binary container:
//
//   magic "MTLSSTAT" | u32 format version | u32 endian sentinel |
//   u32 section count | sections { u32 id, u64 length, payload } |
//   32-byte SHA-256 over everything before the trailer
//
// Unknown versions, unknown section ids, truncation, and digest
// mismatches are all hard errors (structured, never UB). Serialization
// is canonical: ordered containers emit in iteration order and unordered
// ones sort by key first, so state → bytes → state → bytes is
// byte-identical, for any thread count that produced the state.
//
// `mtlscope map` writes these files via PipelineExecutor::fold*();
// `mtlscope reduce` merges them through the same merge() paths a
// single-host multi-shard run uses, which is why the reduced ResultDoc
// is byte-identical to the single-host run over the concatenated inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/pipeline.hpp"

namespace mtlscope::core {

/// Bump on any layout change; readers hard-reject other versions.
inline constexpr std::uint32_t kStateFormatVersion = 1;

/// The eight standard connection analyzers, one instance each — the
/// serializable complement of the Pipeline's certificate registry.
/// Declaration order is the section order in the state file and the
/// merge order in reduce.
struct AnalyzerSet {
  PrevalenceAnalyzer prevalence;
  ServicePortAnalyzer service_ports;
  InboundAssociationAnalyzer inbound_assoc;
  OutboundFlowAnalyzer outbound_flows;
  DummyIssuerAnalyzer dummy_issuers;
  SerialCollisionAnalyzer serial_collisions;
  SharedCertAnalyzer shared_certs;
  IncorrectDateAnalyzer incorrect_dates;

  void merge(AnalyzerSet&& other);
};

/// Provenance of one shard: what input slice produced it and under which
/// configuration. reduce refuses to merge states whose configurations
/// disagree (seed / scales / mode) — see compatible_meta().
struct ShardStateMeta {
  bool file_mode = false;
  std::uint64_t seed = 0;
  double cert_scale = 1;
  double conn_scale = 1;
  std::string ssl_log;  // producing slice paths (file mode only)
  std::string x509_log;
  /// Bytes of log input parsed for this slice (0 in synthetic mode).
  std::uint64_t parse_bytes = 0;
};

/// Deterministic one-line rendering of the configuration half of a meta
/// (paths excluded — slices legitimately differ in paths).
std::string describe_meta(const ShardStateMeta& meta);

/// True when two shards may be merged: same mode, seed, and scales.
bool compatible_meta(const ShardStateMeta& a, const ShardStateMeta& b);

/// Complete partial state of one map task.
struct ShardState {
  ShardStateMeta meta;
  /// Merged, *finalized* pipeline of the slice (streaming-mode object
  /// after a load; merge() and the certificate analyses work the same).
  std::optional<Pipeline> pipeline;
  AnalyzerSet analyzers;
  ErrorLedger ledger;

  /// Folds a later slice in, in stream order: pipeline merge + analyzer
  /// merges + ledger merge; parse_bytes add, slice paths concatenate.
  /// Callers re-finalize() the pipeline and the ledger once all slices
  /// are in.
  void merge(ShardState&& other);
};

/// What a state file claims about itself (returned by parse/save/load).
struct StateFileInfo {
  std::uint32_t format_version = 0;
  /// Full SHA-256 hex of the file content before the trailer — the
  /// value the trailer stores and the source of RunInfo::state_digest.
  std::string digest_hex;
  std::uint64_t bytes = 0;
};

/// Serializes the complete container (framing + digest trailer).
std::string serialize_shard_state(const ShardState& state);

/// Parses a complete container. On failure returns nullopt with `error`
/// (when non-null) set to a deterministic message; never throws for
/// malformed input, never UB. `info` (when non-null) is filled on
/// success.
std::optional<ShardState> parse_shard_state(std::string_view data,
                                            StateFileInfo* info = nullptr,
                                            std::string* error = nullptr);

/// File wrappers around serialize/parse.
bool save_shard_state(const std::string& path, const ShardState& state,
                      StateFileInfo* info = nullptr,
                      std::string* error = nullptr);
std::optional<ShardState> load_shard_state(const std::string& path,
                                           StateFileInfo* info = nullptr,
                                           std::string* error = nullptr);

}  // namespace mtlscope::core
