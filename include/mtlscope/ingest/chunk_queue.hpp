// Backpressured plumbing between the reader thread and the parse
// workers.
//
// ChunkQueue<T>: a bounded MPMC queue. push() blocks while the queue is
// full — that is the backpressure that keeps a fast reader from racing
// ahead of slow parsers, bounding resident memory of a streaming pass to
// O(chunk_bytes × queue_depth) regardless of file size. close() wakes
// all consumers; pop() returns nullopt once the queue is closed and
// drained.
//
// OrderedCollector<T>: re-sequences results produced out of order by
// parallel workers. put(seq, value) blocks while `seq` is more than
// `window` ahead of the next sequence to emit (bounding the reorder
// buffer); take() hands results back in exact sequence order — the
// mechanism behind the executor's order-sensitive streaming passes
// (registry first-wins, chain-upgrade application).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

namespace mtlscope::ingest {

template <typename T>
class ChunkQueue {
 public:
  explicit ChunkQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false
  /// if the queue was closed — the item is dropped, producers should
  /// stop.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wakes every blocked producer and consumer. Items already queued are
  /// still delivered; further push() calls are refused.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  /// Instantaneous occupancy (tests observe backpressure through this).
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

template <typename T>
class OrderedCollector {
 public:
  explicit OrderedCollector(std::size_t window)
      : window_(window == 0 ? 1 : window) {}

  /// Hands in the result for `seq`. Blocks while seq >= next + window so
  /// the reorder buffer stays bounded. Returns false if closed.
  bool put(std::size_t seq, T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    may_put_.wait(lock,
                  [this, seq] { return seq < next_ + window_ || closed_; });
    if (closed_) return false;
    pending_.emplace(seq, std::move(value));
    lock.unlock();
    may_take_.notify_all();
    return true;
  }

  /// Producers are done; `total` results exist in all. take() drains the
  /// remainder then reports end-of-stream.
  void finish(std::size_t total) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      total_ = total;
      finished_ = true;
    }
    may_take_.notify_all();
  }

  /// Blocks for the next in-order result; nullopt when all `total`
  /// results have been taken (or the collector was closed early).
  std::optional<T> take() {
    std::unique_lock<std::mutex> lock(mutex_);
    may_take_.wait(lock, [this] {
      return closed_ || pending_.count(next_) != 0 ||
             (finished_ && next_ >= total_);
    });
    const auto it = pending_.find(next_);
    if (it == pending_.end()) return std::nullopt;  // closed or complete
    T value = std::move(it->second);
    pending_.erase(it);
    ++next_;
    lock.unlock();
    may_put_.notify_all();
    return value;
  }

  /// Aborts the collection (error paths): wakes everyone, refuses new
  /// results.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    may_put_.notify_all();
    may_take_.notify_all();
  }

 private:
  const std::size_t window_;
  std::mutex mutex_;
  std::condition_variable may_put_;
  std::condition_variable may_take_;
  std::map<std::size_t, T> pending_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
  bool finished_ = false;
  bool closed_ = false;
};

}  // namespace mtlscope::ingest
