// Record-aligned chunking of Zeek ASCII logs over a byte Source.
//
// A Zeek log is a leading block of '#'-metadata lines (the header)
// followed by TSV data rows, one per line. The chunker walks a byte
// range of the body and yields chunks that always start and end on
// record (line) boundaries, so each chunk — prefixed with the replicated
// header — parses as a standalone log. This absorbs the semantics of
// zeek::split_log_text() without materializing per-chunk strings: for
// mmap/memory sources the chunk data is a zero-copy view; the buffered
// fallback reads into a reused per-chunker scratch buffer.
//
// Robustness guarantees (mirrored by ingest_test):
//   * CRLF line endings chunk identically to LF (boundaries sit on '\n').
//   * A final record with no trailing newline is emitted, never dropped.
//   * '#close' footers (or any '#' line) mid-file land inside chunk
//     bodies, where the parser skips them.
//   * Header-only and empty inputs yield one empty-body chunk, so header
//     validation always runs downstream.
#pragma once

#include <cstddef>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/ingest/source.hpp"

namespace mtlscope::ingest {

/// Tuning knobs for the streaming pipeline. Results are byte-identical
/// for every setting; these trade memory for parallelism only. The one
/// exception is `errors`, which selects abort-vs-skip semantics — but
/// within a mode the output is still byte-identical for every tuning.
struct IngestOptions {
  std::size_t chunk_bytes = std::size_t{1} << 20;  // 1 MiB
  /// Bounded queue depth between the reader thread and the parse
  /// workers. 0 → 2 × worker count. Total resident memory of a pass is
  /// O(chunk_bytes × (queue_depth + workers)).
  std::size_t queue_depth = 0;
  /// Skip mmap and exercise the pread fallback.
  bool force_buffered = false;
  /// Abort-vs-skip semantics for malformed records (DESIGN §11).
  ErrorPolicy errors;
};

/// The split of a log into its replicated header and the data-row body.
struct LogLayout {
  std::string header;          // leading '#' lines, newline-terminated
  std::size_t body_begin = 0;  // byte offset of the first data row
};

/// Scans the leading '#'-metadata block. Never fails: a file without a
/// header yields an empty header and body_begin 0 (the parser then
/// reports the missing #fields downstream, as the serial path does).
LogLayout detect_log_layout(const Source& source);

/// One record-aligned piece of the body. `view()` stays valid until the
/// next RecordChunker::next() call with the same Chunk (buffered mode
/// reuses the scratch), or until Source::release() covers the range.
struct Chunk {
  std::size_t seq = 0;     // 0-based position in the stream
  std::size_t offset = 0;  // absolute byte offset of the first record
  std::string_view data;   // record-aligned bytes (may point into scratch)
  std::string scratch;     // owning storage for buffered sources

  std::string_view view() const { return data; }

  /// Call after moving a Chunk (e.g. through a ChunkQueue): a buffered
  /// chunk's view points into its own scratch, whose storage may relocate
  /// on move (SSO). Zero-copy chunks keep scratch empty and are unaffected.
  void rebind() {
    if (!scratch.empty()) data = scratch;
  }
};

/// Walks [begin, end) of a source in ~chunk_bytes steps, always cutting
/// after a newline. A record longer than chunk_bytes extends its chunk.
class RecordChunker {
 public:
  RecordChunker(const Source& source, std::size_t chunk_bytes,
                std::size_t begin, std::size_t end);

  /// Fills `chunk` with the next piece; returns false at end of range.
  /// An empty range yields exactly one empty chunk (header-only logs
  /// must still be validated by the parser).
  bool next(Chunk& chunk);

  const Source& source() const { return source_; }

 private:
  const Source& source_;
  std::size_t chunk_bytes_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t seq_ = 0;
  bool emitted_any_ = false;
  std::string probe_;  // scratch for boundary scans on buffered sources
};

/// Cuts [begin, end) into `k` contiguous, record-aligned, byte-balanced
/// ranges (some possibly empty). Concatenating the ranges in order
/// reproduces [begin, end) exactly — the contiguity the executor's
/// deterministic shard-order merge relies on.
std::vector<std::pair<std::size_t, std::size_t>> shard_record_ranges(
    const Source& source, std::size_t begin, std::size_t end, std::size_t k);

/// Finds the first position at or after `from` that starts a record:
/// `from` itself if it sits just after a '\n' (or at `begin`), else one
/// past the next '\n'. Returns `end` when no newline remains.
std::size_t align_to_record(const Source& source, std::size_t from,
                            std::size_t end);

/// An istream presenting header + body without concatenating them — the
/// zero-copy bridge from a Chunk to the zeek::parse_*_log() API.
class ChunkStream : private std::streambuf, public std::istream {
 public:
  // Both bases export these typedefs; we mean the streambuf's.
  using int_type = std::streambuf::int_type;
  using traits_type = std::streambuf::traits_type;

  ChunkStream(std::string_view header, std::string_view body);

 private:
  int_type underflow() override;
  std::string_view segments_[2];
  std::size_t current_ = 0;
};

}  // namespace mtlscope::ingest
