// Centralized EINTR / short-read retry for every blocking read the
// ingest layer performs (the pread fetch path and the stdin/FIFO spool
// loop both drive read_fully). Policy:
//
//   * EINTR          — retry immediately, unbounded (the canonical libc
//                      discipline; a signal storm only slows the read).
//   * short read     — continue at the new offset (regular files only
//                      short-read at EOF, but pipes and network
//                      filesystems short-read routinely).
//   * EAGAIN/EIO-ish — transient device errors retry with bounded
//                      exponential backoff (kMaxTransientRetries sleeps,
//                      ~100 µs doubling to ~12.8 ms), then give up and
//                      return the short result.
//
// Every retry event bumps a global atomic counter so tests (and the
// fault-injection harness) can assert the path actually ran.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace mtlscope::ingest {

struct RetryCounters {
  std::atomic<std::uint64_t> eintr_retries{0};
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> backoff_sleeps{0};
};

/// Process-wide counters; cheap relaxed increments from any thread.
RetryCounters& retry_counters();
/// Zeroes the counters (tests only — not synchronized with readers).
void reset_retry_counters();

/// Transient-error retries before read_fully gives up on a failing fd.
inline constexpr int kMaxTransientRetries = 8;

/// Sleeps ~100 µs << attempt, capped at kMaxTransientRetries - 1.
void backoff_sleep(int attempt);

struct ReadOutcome {
  std::size_t bytes = 0;  // total bytes delivered into buf
  bool error = false;     // a non-transient errno stopped the read early
  int err = 0;            // that errno (0 when !error)
};

/// Drives `op(dst, len, offset)` — a pread/read-shaped callable returning
/// ssize_t with errno set on -1 — until `len` bytes arrive, EOF (op
/// returns 0), or a hard error. `offset` advances with the bytes read;
/// stream-oriented ops simply ignore it.
template <typename Op>
ReadOutcome read_fully(const Op& op, char* buf, std::size_t len,
                       std::size_t offset) {
  RetryCounters& counters = retry_counters();
  ReadOutcome out;
  int transient = 0;
  while (out.bytes < len) {
    const ssize_t n = op(buf + out.bytes, len - out.bytes, offset + out.bytes);
    if (n > 0) {
      out.bytes += static_cast<std::size_t>(n);
      if (out.bytes < len) {
        counters.short_reads.fetch_add(1, std::memory_order_relaxed);
      }
      transient = 0;
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) {
      counters.eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
        transient < kMaxTransientRetries) {
      counters.backoff_sleeps.fetch_add(1, std::memory_order_relaxed);
      backoff_sleep(transient++);
      continue;
    }
    out.error = true;
    out.err = errno;
    break;
  }
  return out;
}

}  // namespace mtlscope::ingest
