// Byte sources for streaming log ingestion.
//
// A Source is a random-access, known-size view of one input:
//   * MemorySource  — wraps a caller-owned buffer (the in-memory run_logs
//     path routes through this, so RAM-backed and file-backed inputs share
//     one code path).
//   * MappedFile    — mmap(2)-backed, zero-copy: fetch() returns views
//     straight into the mapping, and release() drops consumed pages
//     (madvise MADV_DONTNEED) so resident memory stays O(chunk), not
//     O(file), during a sequential pass.
//   * BufferedFile  — plain pread(2) fallback for filesystems where mmap
//     fails; fetch() copies into the caller's scratch buffer.
//
// Non-seekable inputs (stdin via "-", FIFOs) are spooled to an unlinked
// temporary file first: the measurement pipeline makes multiple passes
// over ssl.log, which a pipe cannot replay. The spool costs disk, never
// RAM.
//
// Thread-safety: concurrent fetch()/release() on one Source are safe
// (mmap reads are const; pread does not move the file offset). Each
// thread must bring its own scratch buffer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "mtlscope/ingest/error.hpp"

namespace mtlscope::ingest {

class Source {
 public:
  virtual ~Source() = default;

  virtual std::size_t size() const = 0;
  const std::string& name() const { return name_; }

  /// Returns the bytes [offset, offset+len) — clamped to size(). The view
  /// is either zero-copy (memory/mmap) or points into `scratch`; it stays
  /// valid until the next fetch() with the same scratch or a release()
  /// covering the range.
  virtual std::string_view fetch(std::size_t offset, std::size_t len,
                                 std::string& scratch) const = 0;

  /// Hint that [offset, offset+len) has been consumed and will not be
  /// read again soon. MappedFile drops the resident pages; others no-op.
  virtual void release(std::size_t offset, std::size_t len) const;

  /// True once a fetch() observed the file shrink below size() (rotation
  /// or truncation while streaming). Reads past the new end return short
  /// views instead of faulting, so complete records are salvaged; the
  /// executor surfaces the event through the error policy.
  bool truncation_detected() const {
    return truncated_size_.load(std::memory_order_relaxed) != SIZE_MAX;
  }
  /// The size the file had shrunk to when truncation was detected
  /// (SIZE_MAX when no truncation was seen).
  std::size_t truncated_size() const {
    return truncated_size_.load(std::memory_order_relaxed);
  }

 protected:
  explicit Source(std::string name) : name_(std::move(name)) {}

  /// Records the smallest observed post-truncation size (thread-safe,
  /// called from concurrent fetches).
  void note_truncation(std::size_t live_size) const {
    std::size_t seen = truncated_size_.load(std::memory_order_relaxed);
    while (live_size < seen && !truncated_size_.compare_exchange_weak(
                                   seen, live_size, std::memory_order_relaxed)) {
    }
  }

 private:
  std::string name_;
  mutable std::atomic<std::size_t> truncated_size_{SIZE_MAX};
};

/// Zero-copy source over caller-owned bytes. The buffer must outlive the
/// source.
class MemorySource final : public Source {
 public:
  explicit MemorySource(std::string_view data,
                        std::string name = "<memory>")
      : Source(std::move(name)), data_(data) {}

  std::size_t size() const override { return data_.size(); }
  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override;

 private:
  std::string_view data_;
};

struct SourceOptions {
  /// Skip mmap and use the pread fallback (tests exercise parity).
  bool force_buffered = false;
};

/// Opens `path` as the best available source: mmap for regular files,
/// pread fallback when mmap is unavailable, and a disk spool for "-"
/// (stdin) or FIFOs. Returns nullptr with `error` filled on failure.
std::unique_ptr<Source> open_source(const std::string& path,
                                    IngestError* error,
                                    const SourceOptions& options = {});

}  // namespace mtlscope::ingest
