// Structured error for the streaming ingest layer: every failure names
// the input file, the byte offset the problem was detected at, and a
// human-readable reason — so a parse error in chunk 7 of a 40 GB log is
// actionable without re-running serially.
#pragma once

#include <cstddef>
#include <string>

namespace mtlscope::ingest {

struct IngestError {
  std::string file;             // path (or "<memory>" for in-RAM sources)
  std::size_t byte_offset = 0;  // where in the file the problem starts
  std::string reason;

  std::string to_string() const {
    return file + " @ byte " + std::to_string(byte_offset) + ": " + reason;
  }
};

}  // namespace mtlscope::ingest
