// Structured error for the streaming ingest layer: every failure names
// the input file, the byte offset the problem was detected at, and a
// human-readable reason — so a parse error in chunk 7 of a 40 GB log is
// actionable without re-running serially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mtlscope::ingest {

struct IngestError {
  std::string file;             // path (or "<memory>" for in-RAM sources)
  std::size_t byte_offset = 0;  // where in the file the problem starts
  std::string reason;

  std::string to_string() const {
    return file + " @ byte " + std::to_string(byte_offset) + ": " + reason;
  }
};

/// What the pipeline does when it meets a malformed record (DESIGN §11).
///
///   * kAbort (default): fail the run on the first malformed record with
///     the historical smallest-offset-wins IngestError.
///   * kSkip: quarantine the record into the core::ErrorLedger and keep
///     going — unless the budget below is exceeded, in which case the run
///     aborts with an "error budget exceeded" IngestError.
///
/// The budget fields only apply in kSkip mode. Both default to "no
/// limit", so plain --on-error=skip never aborts on dirty rows; the
/// data-quality block reports what was dropped.
struct ErrorPolicy {
  enum class Action { kAbort, kSkip };

  Action on_error = Action::kAbort;
  /// Abort once MORE than this many records are quarantined.
  std::uint64_t max_errors = UINT64_MAX;
  /// Abort once quarantined / (quarantined + parsed) exceeds this
  /// fraction. 1.0 = never (the rate cannot exceed 1).
  double max_error_rate = 1.0;

  bool skip() const { return on_error == Action::kSkip; }
};

}  // namespace mtlscope::ingest
