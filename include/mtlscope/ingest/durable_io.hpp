// Crash-consistent write path (DESIGN §16) — the write-side mirror of
// retry.hpp. Every writer in the tree (container frames, shard-state
// files, watch checkpoints, the daemon's published JSON, the stdin
// spool, the CLI's --out files) funnels through these helpers, so one
// translation unit owns the whole durability policy:
//
//   * EINTR          — retry immediately, unbounded (same discipline as
//                      read_fully; a signal storm only slows the write).
//   * short write    — continue at the new offset (pipes and full-ish
//                      filesystems short-write routinely).
//   * EAGAIN         — bounded exponential backoff (kMaxTransientRetries
//                      sleeps, ~100 µs doubling), then a hard error.
//   * hard errors    — classified: ENOSPC/EDQUOT → kNoSpace (the
//                      degraded-mode trigger), EIO → kIo, rest → kOther.
//
// Atomic publication (`atomic_publish_file`) is the only sanctioned way
// to replace a file: write to a dot-prefixed temp sibling, fsync the
// file, rename over the destination, fsync the parent directory. A
// reader therefore never observes a half-written artifact, and a power
// loss after success cannot roll the rename back. Each stage passes a
// labeled crash-point (`<site>.after_write` / `.after_fsync` /
// `.after_rename`) so the chaos harness can kill the process at every
// boundary and prove resume-equals-uninterrupted — and, conversely,
// prove that no publication site bypasses this path (a site whose
// labels never fire under MTLSCOPE_CRASH_AT is a site that skipped it).
//
// FaultVfs is the seeded write-side fault injector. It is a pure
// function of its configuration and the call ordinals — no clocks, no
// randomness — so every schedule replays exactly. Configuration comes
// from the environment (child processes under the chaos harness):
//
//   MTLSCOPE_FAIL_WRITE=K[:enospc|eio][:M]   fail hooked writes K..K+M-1
//                                            (1-based ordinals) with the
//                                            given errno (default enospc,
//                                            M default 1) — an ENOSPC
//                                            storm is one variable
//   MTLSCOPE_TEAR_RENAME=K[:SUBSTR]          on the K-th hooked rename
//                                            whose destination contains
//                                            SUBSTR (all renames when
//                                            omitted): rename, truncate
//                                            the destination to half its
//                                            bytes, _exit(171) — a torn
//                                            rename on a non-atomic
//                                            filesystem under power loss
//   MTLSCOPE_CRASH_AT=LABEL:N                _exit(170) on the N-th hit
//                                            of crash_point(LABEL)
//
// or from the in-process plan API (unit tests): fault_write_at(ordinal,
// fault) schedules an errno failure, an EINTR, or a short write for one
// specific hooked-write ordinal.
//
// Every retry, fsync, publication, checkpoint generation, and degraded
// episode bumps a global WriteRetryCounters so the perf envelope (and
// the SIGUSR1 status line) can report durability work; like the enrich
// block, the counters are volatile and suppressed by --stable-output.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "mtlscope/ingest/retry.hpp"

namespace mtlscope::ingest {

// ---------------------------------------------------------------------------
// Errno classification

enum class WriteClass {
  kOk = 0,
  kNoSpace,  ///< ENOSPC / EDQUOT — degraded mode, not a crash loop
  kIo,       ///< EIO — media error; retrying may or may not help
  kOther,    ///< everything else (EBADF, EROFS, ...)
};

WriteClass classify_errno(int err);
const char* write_class_name(WriteClass cls);

// ---------------------------------------------------------------------------
// Global durability counters

struct WriteRetryCounters {
  std::atomic<std::uint64_t> eintr_retries{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> backoff_sleeps{0};
  std::atomic<std::uint64_t> write_failures{0};   ///< hard errors, any class
  std::atomic<std::uint64_t> enospc_failures{0};  ///< kNoSpace subset
  std::atomic<std::uint64_t> fsyncs{0};
  std::atomic<std::uint64_t> dir_fsyncs{0};
  std::atomic<std::uint64_t> atomic_publishes{0};  ///< successful publishes
  std::atomic<std::uint64_t> checkpoint_gens_written{0};
  std::atomic<std::uint64_t> checkpoint_gens_restored{0};
  std::atomic<std::uint64_t> degraded_episodes{0};
};

/// Process-wide counters; cheap relaxed increments from any thread.
WriteRetryCounters& write_retry_counters();
/// Zeroes the counters (tests only — not synchronized with readers).
void reset_write_retry_counters();

// ---------------------------------------------------------------------------
// write_fully — the template mirror of read_fully

struct WriteOutcome {
  std::size_t bytes = 0;  // total bytes accepted from buf
  bool error = false;     // a non-transient errno stopped the write early
  int err = 0;            // that errno (0 when !error)
};

/// Drives `op(src, len, offset)` — a pwrite/write-shaped callable
/// returning ssize_t with errno set on -1 — until `len` bytes are
/// accepted or a hard error. `offset` advances with the bytes written;
/// stream-oriented ops simply ignore it. A zero return (possible on
/// some devices) is treated as a transient with bounded backoff.
template <typename Op>
WriteOutcome write_fully(const Op& op, const char* buf, std::size_t len,
                         std::size_t offset) {
  WriteRetryCounters& counters = write_retry_counters();
  WriteOutcome out;
  int transient = 0;
  while (out.bytes < len) {
    const ssize_t n = op(buf + out.bytes, len - out.bytes, offset + out.bytes);
    if (n > 0) {
      out.bytes += static_cast<std::size_t>(n);
      if (out.bytes < len) {
        counters.short_writes.fetch_add(1, std::memory_order_relaxed);
      }
      transient = 0;
      continue;
    }
    if (n == 0) {
      if (transient < kMaxTransientRetries) {
        counters.backoff_sleeps.fetch_add(1, std::memory_order_relaxed);
        backoff_sleep(transient++);
        continue;
      }
      out.error = true;
      out.err = EIO;  // a device that accepts nothing is effectively dead
      break;
    }
    if (errno == EINTR) {
      counters.eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
        transient < kMaxTransientRetries) {
      counters.backoff_sleeps.fetch_add(1, std::memory_order_relaxed);
      backoff_sleep(transient++);
      continue;
    }
    out.error = true;
    out.err = errno;
    break;
  }
  if (out.error) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    if (classify_errno(out.err) == WriteClass::kNoSpace) {
      counters.enospc_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structured results for the fd-level helpers

struct WriteResult {
  bool ok = true;
  WriteClass cls = WriteClass::kOk;
  int err = 0;          ///< errno of the failure (0 on success)
  std::string message;  ///< human-readable, includes the classification
  explicit operator bool() const { return ok; }
};

/// Builds a failed WriteResult: classification from `err`, message
/// "<what>: <class> (<strerror>)".
WriteResult write_error(const std::string& what, int err);

/// write_fully over the FaultVfs write hook for a plain fd.
WriteResult write_fully_fd(int fd, std::string_view data,
                           const std::string& label);

/// fsync with EINTR retry; EINVAL (fd with no sync semantics, e.g. a
/// pipe in tests) is treated as success. Counts into `fsyncs`.
WriteResult fsync_retry(int fd, const std::string& label);

/// Opens the parent directory of `path` and fsyncs it, making a
/// completed rename durable against power loss. Counts into `dir_fsyncs`.
WriteResult fsync_parent_dir(const std::string& path);

/// The temp sibling `atomic_publish_file` writes before renaming:
/// ".<name>.tmp" next to `dst` — dot-prefixed so directory globs and
/// tailing readers never pick it up.
std::string publish_tmp_path(const std::string& dst);

/// Renames an already-written-and-fsynced `tmp` over `dst` and fsyncs
/// the parent directory. Crash-points: `<site>.after_fsync` before the
/// rename, `<site>.after_rename` after it. For writers that stream into
/// their temp file themselves (the container converter); everyone else
/// wants atomic_publish_file.
WriteResult durable_rename(const std::string& tmp, const std::string& dst,
                           const std::string& site);

/// The full crash-consistent publication pipeline: write `contents` to
/// publish_tmp_path(dst) via write_fully, fsync the file, rename over
/// `dst`, fsync the parent directory. Crash-points `<site>.after_write`,
/// `<site>.after_fsync`, `<site>.after_rename`. On failure the temp file
/// is removed and `dst` still holds its previous bytes.
WriteResult atomic_publish_file(const std::string& dst,
                                std::string_view contents,
                                const std::string& site);

// ---------------------------------------------------------------------------
// FaultVfs — seeded, deterministic write-side fault injection

struct WriteFault {
  enum class Kind {
    kErrno,  ///< fail the write with `err`
    kEintr,  ///< fail the write with EINTR (retried, counted)
    kShort,  ///< accept only half the requested bytes (at least 1)
  };
  Kind kind = Kind::kErrno;
  int err = ENOSPC;
};

/// Process-global injection hook. Inactive (the default) it is a single
/// relaxed atomic load in front of the real syscall. Activated either
/// by the MTLSCOPE_* environment variables (parsed once, at first use —
/// the chaos harness configures child processes this way) or by the
/// in-process plan API (unit tests). All ordinals are 1-based and count
/// only hooked calls, so a schedule is a pure function of the plan.
class FaultVfs {
 public:
  static FaultVfs& instance();

  bool active() const { return active_.load(std::memory_order_relaxed); }

  // --- in-process plan API (tests) ---
  /// Schedules `fault` for the ordinal-th hooked write.
  void fault_write_at(std::uint64_t ordinal, WriteFault fault);
  /// Schedules an errno failure for writes ordinal..ordinal+count-1.
  void fail_write_range(std::uint64_t ordinal, std::uint64_t count, int err);
  /// Clears every plan entry and resets the call ordinals.
  void clear();

  // --- hooks ---
  ssize_t write(int fd, const void* buf, std::size_t n);
  /// rename(2) with tear injection; false + *err on failure.
  bool rename(const std::string& from, const std::string& to, int* err);
  /// Labeled crash boundary; _exit(170) when the configured label
  /// reaches its hit count. Free function crash_point() forwards here.
  void hit_crash_point(const std::string& label);

  std::uint64_t writes_seen() const {
    return write_ordinal_.load(std::memory_order_relaxed);
  }
  std::uint64_t renames_seen() const {
    return rename_ordinal_.load(std::memory_order_relaxed);
  }

 private:
  FaultVfs();
  ssize_t faulted_write(int fd, const void* buf, std::size_t n,
                        std::uint64_t ordinal);
  bool torn_rename(const std::string& from, const std::string& to, int* err);

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> write_ordinal_{0};
  std::atomic<std::uint64_t> rename_ordinal_{0};
  struct Plan;
  Plan* plan_;  // leaked singleton member; FaultVfs lives forever
};

/// Crash boundary marker. A no-op (one relaxed load) unless a
/// MTLSCOPE_CRASH_AT schedule is armed.
inline void crash_point(const std::string& label) {
  FaultVfs& vfs = FaultVfs::instance();
  if (vfs.active()) vfs.hit_crash_point(label);
}

/// Exit codes the injector uses so harnesses can tell a scheduled kill
/// from a genuine failure.
inline constexpr int kCrashPointExitCode = 170;
inline constexpr int kTornRenameExitCode = 171;

}  // namespace mtlscope::ingest
