// Fault injection for the ingest layer (DESIGN §11): a Source decorator
// that degrades any inner source deterministically — seeded byte
// corruption, a simulated mid-stream truncation, transient read failures
// (absorbed by the shared bounded-backoff retry discipline), and
// per-fetch latency — plus a row-level log corrupter used by the
// degradation test suite and the corrupted-fixture CTest.
//
// Determinism contract: corruption is a pure function of (seed, absolute
// byte offset), so the corrupted byte stream is identical no matter how
// fetches are sized or ordered. That is what lets the degradation tests
// assert byte-identical skip-mode output across thread counts and chunk
// sizes over a faulty source.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "mtlscope/ingest/source.hpp"

namespace mtlscope::ingest {

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-byte probability of corruption (XOR with a seeded byte). 0 = off.
  double corrupt_byte_rate = 0;
  /// Bytes at the start of the stream never corrupted (keep the Zeek
  /// header intact so corruption tests exercise rows, not schemas).
  std::size_t protect_prefix = 0;
  /// Simulated truncation: size() still reports the full length, but
  /// reads clamp here and the source flags truncation_detected() — the
  /// same observable state a real mid-stream shrink produces. SIZE_MAX
  /// disables.
  std::size_t truncate_at = SIZE_MAX;
  /// Total transient fetch failures to inject; each one costs the caller
  /// one bounded-backoff retry (retry_counters().backoff_sleeps) before
  /// the fetch succeeds.
  std::size_t fail_fetches = 0;
  /// Extra latency per fetch, microseconds (delayed-read injection).
  unsigned delay_us = 0;
};

/// Wraps any Source and applies a FaultPlan to every fetch. Thread-safe
/// like its inner source (per-caller scratch; atomic failure budget).
class FaultInjectingSource final : public Source {
 public:
  FaultInjectingSource(const Source& inner, FaultPlan plan);

  std::size_t size() const override;
  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override;
  void release(std::size_t offset, std::size_t len) const override;

  /// Transient failures injected so far (each absorbed by one retry).
  std::uint64_t failures_injected() const {
    return failures_injected_.load(std::memory_order_relaxed);
  }

 private:
  const Source& inner_;
  FaultPlan plan_;
  mutable std::atomic<std::size_t> failures_left_;
  mutable std::atomic<std::uint64_t> failures_injected_{0};
};

/// True when the byte at `offset` is corrupted under (seed, rate) — the
/// pure per-byte function FaultInjectingSource applies. Exposed so tests
/// can predict exactly which bytes a plan flips.
bool fault_corrupts_byte(std::uint64_t seed, double rate, std::size_t offset);

/// Deterministically corrupts ~`rate` of the data rows of a Zeek log
/// text (header and '#' lines untouched). Every corrupted row is
/// guaranteed to fail the record parsers with "field count mismatch":
/// the kinds rotate between dropping the last field, gluing an extra
/// field on, and replacing the row with tab-free binary garbage. Row
/// framing ('\n' positions) is preserved, so chunking is unaffected.
/// Returns the corrupted text; `*corrupted` (optional) receives the
/// exact number of rows touched.
std::string corrupt_log_rows(std::string_view text, std::uint64_t seed,
                             double rate, std::size_t* corrupted = nullptr);

}  // namespace mtlscope::ingest
