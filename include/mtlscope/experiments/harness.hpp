// Harness: owns the generator and a PipelineExecutor with a consistent
// configuration (campus defaults + the generator's CT database, or no CT
// in file mode). One Harness is one pipeline pass; the experiment
// registry attaches any number of experiments' analyzers to a shared
// pass before run(). Formerly bench_common's CampusRun.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/core/shard_state.hpp"
#include "mtlscope/experiments/options.hpp"
#include "mtlscope/gen/generator.hpp"

namespace mtlscope::experiments {

class Harness {
 public:
  /// File-mode aware: when options.file_mode(), run() streams (or, with
  /// --in-memory, slurps) the given logs instead of generating a trace.
  Harness(gen::CampusModel model, const RunOptions& options);

  /// Reduce mode (mtlscope reduce): wraps already-merged, finalized
  /// shard state instead of executing a pipeline pass. pipeline() and
  /// ledger() serve the merged state immediately; experiments read
  /// analyzer results from analyzers() instead of attaching Sharded
  /// instances. run() must not be called.
  Harness(const RunOptions& options, core::ShardState state);

  /// The merged, finalized pipeline. Valid only after run().
  core::Pipeline& pipeline();
  const core::PipelineExecutor& executor() const { return executor_; }
  const gen::TraceGenerator& generator() const { return generator_; }

  std::size_t shard_count() const { return executor_.shard_count(); }

  /// Shared observer, fired from every shard under a mutex — use for
  /// ad-hoc commutative accumulators (counters, sets).
  void add_observer(core::Pipeline::Observer observer);

  /// One analyzer instance per shard; merge with std::move(s).merged()
  /// after run().
  template <typename A>
  void attach(core::Sharded<A>& sharded) {
    executor_.attach(sharded);
  }

  /// Generates the trace (or opens the log files), then runs the
  /// executor. The wall-clock figures cover the pipeline execution only
  /// (not generation). File-mode failures print the structured
  /// IngestError and exit(1).
  void run();

  double wall_seconds() const { return wall_seconds_; }
  std::size_t records_processed() const { return records_; }
  /// Bytes of Zeek log input parsed (ssl + x509). 0 in synthetic mode.
  std::uint64_t parse_bytes() const { return parse_bytes_; }
  /// Quarantine ledger from the run. Pristine in synthetic mode and for
  /// clean inputs; populated (finalized, deterministic) after a file-mode
  /// run that skipped records or degraded I/O. See DESIGN §11.
  const core::ErrorLedger& ledger() const { return ledger_; }
  double records_per_second() const {
    return wall_seconds_ <= 0 ? 0
                              : static_cast<double>(records_) / wall_seconds_;
  }
  const RunOptions& options() const { return options_; }

  /// True for a reduce-mode harness built from shard state.
  bool reduced() const { return reduced_; }
  /// The merged analyzer states (reduce mode only). Experiments copy the
  /// analyzer they need, so several experiments can share one reduce.
  const core::AnalyzerSet& analyzers() const;

 private:
  void run_files();

  gen::TraceGenerator generator_;
  RunOptions options_;
  core::PipelineExecutor executor_;
  std::optional<core::Pipeline> pipeline_;
  double wall_seconds_ = 0;
  std::size_t records_ = 0;
  std::uint64_t parse_bytes_ = 0;
  core::ErrorLedger ledger_;
  bool reduced_ = false;
  core::AnalyzerSet analyzers_;
};

/// Restricts a model to clusters whose name starts with any of the given
/// prefixes, and drops the background / interception volume. Used by
/// experiments that analyze one traffic slice (e.g. Table 3 is
/// inbound-only) so they can afford low connection scales.
void keep_only_clusters(gen::CampusModel& model,
                        std::initializer_list<const char*> prefixes);

}  // namespace mtlscope::experiments
