// Shared run options for every experiment entry point: the mtlscope CLI,
// the repro_* shims, and the golden-diff harness all parse the same flag
// set. Scales are optional overrides — each experiment carries its own
// calibrated defaults in the registry, and resolve() applies them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mtlscope/ingest/chunker.hpp"

namespace mtlscope::experiments {

struct RunOptions {
  /// Input container format for file mode (--format=auto|zeek|compact).
  /// kAuto probes --ssl-log= for the compact-container magic; kZeek
  /// forces the TSV parse; kCompact requires a container. A compact
  /// input carries both halves of the log pair, so --x509-log= is not
  /// required (and is ignored) for it.
  enum class InputFormat { kAuto, kZeek, kCompact };

  /// Container-scan strategy (--scan=auto|rows|columnar), mirroring
  /// core::ScanMode. Only affects compact-container inputs: columnar
  /// runs the zero-materialization block scan, rows the materializing
  /// decode, auto picks columnar when eligible. Results are
  /// byte-identical across the three.
  enum class ScanMode { kAuto, kRows, kColumnar };

  /// Concrete scales the harness runs at; filled by resolved().
  double cert_scale = 1;
  double conn_scale = 1;
  /// Explicit --cert-scale= / --conn-scale= overrides; when unset, each
  /// experiment's registry defaults apply.
  std::optional<double> cert_scale_override;
  std::optional<double> conn_scale_override;
  std::uint64_t seed = 20240504;
  /// Worker threads / shards for the PipelineExecutor. 0 → hardware
  /// concurrency; 1 → serial (single shard, run inline).
  std::size_t threads = 0;

  /// File mode (--ssl-log= and --x509-log= both set): analyze on-disk
  /// Zeek logs through the streaming ingest layer instead of generating
  /// a synthetic trace. No CT database is attached in file mode.
  std::string ssl_log;
  std::string x509_log;
  InputFormat format = InputFormat::kAuto;
  ScanMode scan = ScanMode::kAuto;
  /// Streaming chunk size in MiB; fractions work (--chunk-mb=0.0625 is
  /// 64 KiB). Results are byte-identical for every value.
  double chunk_mb = 1.0;
  /// File mode only: slurp both files into RAM and run the in-memory
  /// path (run_logs) instead of streaming — the RSS fixture's baseline.
  bool in_memory = false;
  /// File mode only: skip mmap, exercise the pread fallback.
  bool force_buffered = false;
  /// Suppress volatile output (thread count, timing footer) so runs with
  /// different thread counts / chunk sizes / input modes diff cleanly.
  /// The data-quality footer of a best-effort run still prints — its
  /// fields are pure functions of the input bytes.
  bool stable_output = false;
  /// Malformed-record policy (--on-error=abort|skip) and the error
  /// budget that bounds skip mode (--max-errors=, --max-error-rate=).
  /// See DESIGN §11.
  ingest::ErrorPolicy errors;

  bool file_mode() const { return !ssl_log.empty(); }
  /// True when --ssl-log= names a compact container (forced by
  /// --format=compact, or detected by magic under --format=auto).
  bool compact_input() const;
  std::size_t chunk_bytes() const;
  ingest::IngestOptions ingest_options() const;

  /// Copy with cert_scale/conn_scale set to the overrides when present,
  /// otherwise to the given experiment defaults.
  RunOptions resolved(double default_cert_scale,
                      double default_conn_scale) const;

  /// Parses the shared flag set (--cert-scale= / --conn-scale= / --seed=
  /// / --threads= / --ssl-log= / --x509-log= / --scan= / --chunk-mb= /
  /// --in-memory / --force-buffered / --stable-output / --on-error= /
  /// --max-errors= / --max-error-rate=); unknown arguments are ignored
  /// so callers can
  /// layer their own flags. Exits(2) when only one of the file-mode
  /// paths is given or --on-error= is neither abort nor skip.
  static RunOptions parse(int argc, char** argv);
  /// True when `arg` was consumed as one of the shared flags.
  bool parse_flag(const char* arg);
};

}  // namespace mtlscope::experiments
