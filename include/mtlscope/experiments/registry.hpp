// ExperimentRegistry: the single map from experiment name ("table1" …
// "table14", "fig1" … "fig5", "serials", "interception", "dataset_stats",
// "tracking", "renewal", the ablations) to a runner that attaches its
// analyzers to a shared pipeline pass and reports a core::ResultDoc.
// run_experiments() groups requested experiments by model key + resolved
// configuration so one generated trace serves every compatible
// experiment; the mtlscope CLI, the repro_* shims, and the golden-diff
// harness are all thin clients of this layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mtlscope/core/result_doc.hpp"
#include "mtlscope/experiments/harness.hpp"
#include "mtlscope/experiments/options.hpp"

namespace mtlscope::experiments {

struct ExperimentInfo {
  const char* name;    // registry key, e.g. "table1"
  const char* anchor;  // paper anchor, e.g. "Table 1"
  const char* title;   // banner headline
  double cert_scale;   // default 1:N certificate scale
  double conn_scale;   // default 1:N connection scale
};

/// One experiment: declares its identity and default configuration,
/// optionally narrows the campus model, attaches analyzers before the
/// shared pass runs, and converts analyzer state into a ResultDoc
/// afterwards. Instances are single-use — the registry creates a fresh
/// one per run, so attach() may capture member state.
class Experiment {
 public:
  virtual ~Experiment() = default;

  virtual const ExperimentInfo& info() const = 0;

  /// Pass-sharing key. Experiments with equal keys, scales, and seed run
  /// against one generated trace. "" means the pristine paper model —
  /// the shareable common case; experiments that mutate the model keep
  /// the default (their own name), which isolates them.
  virtual std::string model_key() const { return info().name; }
  /// Model narrowing (cluster slices, background sizing). Only called
  /// for experiments whose model_key() isolates them.
  virtual void prepare_model(gen::CampusModel& model) const {
    (void)model;
  }
  /// Attach Sharded analyzers / shared observers before run().
  virtual void attach(Harness& run) { (void)run; }
  /// Convert results into doc blocks after run().
  virtual void report(Harness& run, core::ResultDoc& doc) = 0;

  /// Self-driving experiments own their pipeline passes entirely (e.g.
  /// the interception-threshold ablation sweeps configurations); they
  /// implement run_self() instead of attach()/report().
  virtual bool self_driving() const { return false; }
  virtual void run_self(const RunOptions& options, core::ResultDoc& doc) {
    (void)options;
    (void)doc;
  }

  /// True when report() can run from deserialized shard state (a
  /// reduce-mode Harness): everything it reads is the merged pipeline,
  /// the eight standard analyzers, or the ledger. Experiments with
  /// ad-hoc shared observers or self-driving passes override to false.
  virtual bool distributable() const { return !self_driving(); }
};

class ExperimentRegistry {
 public:
  struct Entry {
    ExperimentInfo info;
    std::unique_ptr<Experiment> (*make)();
  };

  static const ExperimentRegistry& instance();

  const std::vector<Entry>& entries() const { return entries_; }
  const Entry* find(const std::string& name) const;
  std::vector<std::string> names() const;

  void add(ExperimentInfo info, std::unique_ptr<Experiment> (*make)());

 private:
  ExperimentRegistry();
  std::vector<Entry> entries_;
};

/// Runs the named experiments, sharing one pipeline pass between
/// experiments whose model key and resolved configuration agree (in
/// file mode every non-self-driving experiment shares the single log
/// pass). Returns docs in request order. Throws std::invalid_argument
/// for unknown names.
std::vector<core::ResultDoc> run_experiments(
    const std::vector<std::string>& names, const RunOptions& base);

core::ResultDoc run_experiment(const std::string& name,
                               const RunOptions& base);

/// Provenance of a reduce: surfaced as RunInfo::state_format_version /
/// state_digest in the volatile perf envelope.
struct ReduceInfo {
  std::uint32_t state_format_version = 0;
  /// SHA-256 hex prefix over the input state files' payload digests, in
  /// merge order.
  std::string state_digest;
};

/// Runs the named experiments against already-merged shard state (the
/// `mtlscope reduce` backend). The state must be finalized (pipeline and
/// ledger). Every experiment must be distributable(); throws
/// std::invalid_argument otherwise, and for unknown names. The emitted
/// docs are canonical-byte-identical to run_experiments() over the
/// concatenated inputs of the map tasks.
std::vector<core::ResultDoc> run_reduced(const std::vector<std::string>& names,
                                         core::ShardState state,
                                         const ReduceInfo& reduce_info,
                                         const RunOptions& base);

/// main() body for the repro_* shims: parse the shared flags, run the
/// named experiment at its default scales, print the text rendering.
int repro_main(const std::string& name, int argc, char** argv);

}  // namespace mtlscope::experiments
