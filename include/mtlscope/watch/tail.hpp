// TailSource: follow one growing Zeek log file (DESIGN §13). The batch
// ingest layer reads complete files; a border gateway writes them
// continuously and logrotate moves them out from under the reader. The
// tail survives all three lifecycle events without losing or double
// reading a record:
//
//   * append          — new bytes past the last-read offset are consumed
//                       as complete lines; a partial trailing line is
//                       carried until its newline arrives on a later poll;
//   * copytruncate    — the file shrinks in place (same inode): the tail
//                       restarts at offset 0 and re-reads the fresh header;
//   * rename rotation — the path points at a new inode: the tail keeps
//                       draining the *old* fd (a late writer may still be
//                       flushing to it), and only switches to the new
//                       inode once a poll sees no growth on the old one,
//                       flushing a final unterminated line as a record.
//
// Every batch carries absolute provenance — the byte offset and the
// physical body-line count of its first byte within the current file
// incarnation — so quarantine entries stay absolute in the file even
// after a checkpoint restore reopens mid-file (the ledger invariant the
// batch pipeline already guarantees; see error_ledger.hpp).
//
// Rotation and truncation are *normal* events for a tailed log, not
// degradation: they are counted in TailEvents for the status line but
// never recorded in the ErrorLedger, so a clean rotated stream reports
// byte-identically to a clean batch run over the same rows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mtlscope::watch {

/// Lifecycle counters for the status line (not ledger events).
struct TailEvents {
  std::uint64_t polls = 0;
  std::uint64_t truncations = 0;  ///< copytruncate restarts observed
  std::uint64_t rotations = 0;    ///< rename rotations completed
  std::uint64_t bytes_read = 0;
};

/// One run of complete lines from a poll, with absolute provenance
/// within the current file incarnation. `body` ends at the last newline
/// read (or is the flushed final partial line at end of incarnation).
struct TailBatch {
  std::string body;
  /// Absolute byte offset of body[0] in the file.
  std::size_t base_offset = 0;
  /// Complete body lines consumed before this batch (header excluded) —
  /// add to a RowIssue::line to make it absolute in the file.
  std::size_t body_lines_before = 0;
  /// Leading '#'-comment lines of this incarnation (the RowIssue line
  /// base the tolerant parsers expect).
  std::size_t header_lines = 0;
  /// True for the first batch after open / truncate / rotation: the
  /// consumer recompiles its column plan from header_text().
  bool incarnation_start = false;
};

/// Checkpointable tail position (the WatchMeta per-file entry).
struct TailPosition {
  std::uint64_t inode = 0;
  std::uint64_t offset = 0;      ///< absolute bytes consumed
  std::uint64_t body_lines = 0;  ///< complete body lines consumed
  std::string header_text;       ///< accumulated '#' header lines
  std::uint64_t header_lines = 0;
  bool header_done = false;
  std::string carry;  ///< unterminated trailing partial line
};

class TailSource {
 public:
  explicit TailSource(std::string path);
  ~TailSource();

  TailSource(const TailSource&) = delete;
  TailSource& operator=(const TailSource&) = delete;

  /// Polls once: detects truncation/rotation, reads any new bytes, and
  /// returns the complete-line batches (often one, sometimes two around
  /// a rotation, empty when nothing happened).
  std::vector<TailBatch> poll();

  /// Flushes the carried partial line as a final record (drain /
  /// shutdown path; a Zeek writer that died mid-line still counts).
  std::optional<TailBatch> flush_carry();

  /// True when the last poll consumed bytes (drives idle detection).
  bool made_progress() const { return progress_; }

  const std::string& path() const { return path_; }
  const std::string& header_text() const { return pos_.header_text; }
  bool header_done() const { return pos_.header_done; }
  /// Monotonic id of the current file incarnation; bumps on open,
  /// truncation, and rotation, telling consumers to recompile plans.
  std::uint64_t incarnation() const { return incarnation_; }
  const TailEvents& events() const { return events_; }
  TailPosition position() const { return pos_; }

  /// Restores a checkpointed position. If the path now holds a
  /// different inode (rotated while we were down) or shrank below the
  /// stored offset (truncated while down), the tail restarts from 0 on
  /// the current file — the standard resume-after-rotation posture.
  /// Returns false only when the stored position could not apply (the
  /// restart case); reading continues either way.
  bool restore(const TailPosition& position);

 private:
  bool open_file();
  void reset_incarnation();
  void consume(std::string_view bytes, std::vector<TailBatch>& out);
  TailBatch make_batch();

  std::string path_;
  int fd_ = -1;
  TailPosition pos_;
  std::uint64_t incarnation_ = 0;
  bool pending_incarnation_start_ = false;
  bool progress_ = false;
  TailEvents events_;
};

}  // namespace mtlscope::watch
