// Typed tails: TailSource batches parsed into SslRecord / X509Record
// rows with the PR 4 compiled-plan tolerant parsers. The plan compiles
// once per file incarnation (append-only files never recompile; a
// truncate or rotation recompiles from the new incarnation's header).
//
// RowIssues come back rewritten to ABSOLUTE file coordinates — the
// tolerant parser reports lines relative to its batch, and the tail
// knows how many body lines preceded the batch — which is what keeps
// ErrorLedger entries identical whether the file was read in one batch
// pass, tailed poll-by-poll, or resumed mid-file from a checkpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "mtlscope/watch/tail.hpp"
#include "mtlscope/zeek/parse_plan.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::watch {

/// Parsed result of one poll over a typed tail.
template <typename Record>
struct TailRows {
  std::vector<Record> records;
  /// line / byte_offset are absolute in the current file incarnation.
  std::vector<zeek::RowIssue> issues;
  std::uint64_t rows_ok = 0;
};

namespace detail {

struct SslTraits {
  using Record = zeek::SslRecord;
  using Plan = zeek::SslPlan;
  static Plan compile(const zeek::ColumnPlan& columns) {
    return Plan::compile(columns);
  }
  static zeek::TolerantStats parse(std::string_view body, const Plan& plan,
                                   std::vector<Record>& out,
                                   std::vector<zeek::RowIssue>* issues,
                                   std::size_t header_lines,
                                   std::size_t base_offset) {
    return zeek::parse_ssl_records_tolerant(body, plan, out, issues,
                                            header_lines, base_offset);
  }
};

struct X509Traits {
  using Record = zeek::X509Record;
  using Plan = zeek::X509Plan;
  static Plan compile(const zeek::ColumnPlan& columns) {
    return Plan::compile(columns);
  }
  static zeek::TolerantStats parse(std::string_view body, const Plan& plan,
                                   std::vector<Record>& out,
                                   std::vector<zeek::RowIssue>* issues,
                                   std::size_t header_lines,
                                   std::size_t base_offset) {
    return zeek::parse_x509_records_tolerant(body, plan, out, issues,
                                             header_lines, base_offset);
  }
};

}  // namespace detail

template <typename Traits>
class RecordTail {
 public:
  using Record = typename Traits::Record;

  explicit RecordTail(std::string path) : tail_(std::move(path)) {}

  /// One poll: follow the file, parse every complete new row.
  TailRows<Record> poll() { return parse_batches(tail_.poll()); }

  /// Shutdown/idle drain: also flushes a trailing unterminated line as
  /// a final record (the batch parsers accept a final row sans newline).
  TailRows<Record> drain() {
    auto batches = tail_.poll();
    if (auto carry = tail_.flush_carry()) batches.push_back(std::move(*carry));
    return parse_batches(std::move(batches));
  }

  TailSource& source() { return tail_; }
  const TailSource& source() const { return tail_; }

 private:
  TailRows<Record> parse_batches(std::vector<TailBatch> batches) {
    TailRows<Record> out;
    for (const TailBatch& batch : batches) {
      if (batch.incarnation_start) {
        // Batches within one poll are oldest-first and a new
        // incarnation's first batch is flagged, so an old incarnation's
        // final flush still parses with the old plan while the start
        // batch compiles from the new header (header_text() already
        // holds it — body batches only exist once the header is done).
        plan_ = Traits::compile(
            zeek::ColumnPlan::from_header(tail_.header_text()));
      }
      std::vector<zeek::RowIssue> issues;
      const auto stats =
          Traits::parse(batch.body, plan_, out.records, &issues,
                        batch.header_lines, batch.base_offset);
      out.rows_ok += stats.rows_ok;
      for (auto& issue : issues) {
        issue.line += batch.body_lines_before;
        out.issues.push_back(std::move(issue));
      }
    }
    return out;
  }

  TailSource tail_;
  typename Traits::Plan plan_{};
};

using SslTail = RecordTail<detail::SslTraits>;
using X509Tail = RecordTail<detail::X509Traits>;

}  // namespace mtlscope::watch
