// Watch checkpoints (DESIGN §13): everything `mtlscope watch` needs to
// resume after SIGTERM or a crash exactly where it left off — the two
// tail positions (inode + absolute byte offset + header + carried
// partial line), the open-window watermarks and buffered rows, the
// first-seen x509 registry feed, the watch ErrorLedger, and the
// cumulative analyzer state as an embedded PR 6 shard-state blob.
//
// The container mirrors the shard-state framing (its own magic and
// version — the embedded blob keeps kStateFormatVersion untouched):
//
//   magic "MTLSWTCH" | u32 watch version | u32 endian sentinel |
//   u32 section count | sections { u32 id, u64 length, payload } |
//   32-byte SHA-256 over everything before the trailer
//
// Unknown versions, unknown/duplicate/missing sections, truncation, and
// digest mismatches are structured errors; a daemon that cannot parse
// its checkpoint starts fresh rather than guessing. A configuration
// fingerprint (window size, roll-up factor, experiment list, seed)
// rides along so a resume under different flags is refused instead of
// silently mixing window geometries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/state_io.hpp"
#include "mtlscope/ingest/durable_io.hpp"
#include "mtlscope/watch/tail.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::watch {

/// Bump on any layout change; readers hard-reject other versions.
/// v2: x509 rows store raw DER bytes instead of base64 text (DESIGN §14).
inline constexpr std::uint32_t kWatchFormatVersion = 2;

struct WatchCheckpoint {
  // --- configuration fingerprint (resume refuses a mismatch) ---
  std::int64_t window_seconds = 3600;
  std::uint32_t rollup_windows = 24;
  std::vector<std::string> experiments;
  std::uint64_t seed = 0;

  // --- scheduler state ---
  bool have_watermark = false;
  std::int64_t watermark_bucket = 0;  ///< bucket of the open window
  std::int64_t watermark_ts = 0;      ///< max record ts seen
  std::vector<zeek::SslRecord> current_rows;  ///< open window buffer
  std::vector<zeek::SslRecord> pending_rows;  ///< held for missing certs
  std::vector<zeek::SslRecord> late_rows;     ///< behind the watermark
  std::int64_t rollup_bucket = 0;
  /// Serialized shard state of the open roll-up window ("" when none).
  std::string rollup_blob;
  /// Serialized finalized cumulative shard state ("" before any close).
  std::string cumulative_blob;
  core::ErrorLedger ledger;
  /// First-seen x509 rows in arrival order (replays phase A first-wins).
  std::vector<zeek::X509Record> x509_seen;
  std::uint64_t ssl_records_seen = 0;
  std::uint64_t windows_emitted = 0;
  std::uint64_t rollups_emitted = 0;

  // --- tail positions ---
  TailPosition ssl_tail;
  TailPosition x509_tail;
};

/// Record encoders, shared with tests and perf_watch.
void serialize_ssl_record(core::StateWriter& w, const zeek::SslRecord& r);
zeek::SslRecord parse_ssl_record(core::StateReader& r);
void serialize_x509_record(core::StateWriter& w, const zeek::X509Record& r);
zeek::X509Record parse_x509_record(core::StateReader& r);

std::string serialize_watch_checkpoint(const WatchCheckpoint& ckpt);

/// Never throws for malformed input; returns nullopt with `error` (when
/// non-null) set to a deterministic message.
std::optional<WatchCheckpoint> parse_watch_checkpoint(
    std::string_view data, std::string* error = nullptr);

/// Atomic durable file wrappers (DESIGN §16): write-to-temp + fsync +
/// rename + parent-directory fsync, so a crash mid-write never leaves a
/// half checkpoint where the next start would find it, and a completed
/// save survives power loss. The result carries the ENOSPC/EIO
/// classification the daemon's degraded mode dispatches on.
ingest::WriteResult save_watch_checkpoint(const std::string& path,
                                          const WatchCheckpoint& ckpt);
std::optional<WatchCheckpoint> load_watch_checkpoint(
    const std::string& path, std::string* error = nullptr);

/// Checkpoint generations (DESIGN §16): the daemon keeps the last
/// `keep` checkpoints as `watch.ckpt.<gen>` instead of rewriting one
/// file. save() writes the next generation atomically and prunes the
/// oldest; load() walks newest→oldest and restores the first file whose
/// SHA-256 trailer verifies, so a torn newest checkpoint degrades to
/// generation N-1 rather than a cold re-read. A legacy un-suffixed
/// `watch.ckpt` (pre-generation daemons) reads as generation 0.
class CheckpointStore {
 public:
  static constexpr const char* kBaseName = "watch.ckpt";

  explicit CheckpointStore(std::string dir, std::uint32_t keep = 3);

  const std::string& dir() const { return dir_; }
  std::uint32_t keep() const { return keep_; }
  /// Generation the next save() will write (last on disk + 1).
  std::uint64_t next_generation() const { return next_generation_; }
  bool has_any() const;

  /// Serializes and atomically publishes generation next_generation(),
  /// then prunes generations beyond `keep`. On failure nothing is
  /// pruned and the generation number is not consumed (the retry
  /// rewrites the same generation).
  ingest::WriteResult save(const WatchCheckpoint& ckpt);

  /// Newest→oldest walk; the first checkpoint that parses (digest OK)
  /// wins. `generation` receives its number, `skipped` the count of
  /// newer unreadable generations stepped over. nullopt with `error`
  /// describing the newest failure when every generation is bad.
  std::optional<WatchCheckpoint> load(std::string* error = nullptr,
                                      std::uint64_t* generation = nullptr,
                                      std::uint32_t* skipped = nullptr);

  /// All generations on disk, ascending: (generation, absolute path).
  /// The legacy un-suffixed file appears as generation 0.
  static std::vector<std::pair<std::uint64_t, std::string>> list(
      const std::string& dir);

 private:
  std::string path_for(std::uint64_t generation) const;
  void prune();

  std::string dir_;
  std::uint32_t keep_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace mtlscope::watch
