// ContainerTail: follow one growing compact container (DESIGN §14). A
// streaming producer (a converter pipe, a forwarder) appends whole
// frames; the container format guarantees a valid prefix at every frame
// boundary, so the tail consumes complete frames as they land and
// carries a partial frame's bytes until the rest arrives. Unlike the
// line tail there is no parse tolerance: the frames were validated at
// conversion time, so a malformed frame marks the incarnation bad (a
// version skew or torn writer, reported once) instead of quarantining
// rows.
//
// Lifecycle mirrors TailSource: append consumes new frames; truncation
// (same inode, smaller size) restarts at byte 0 expecting a fresh
// container header; rename rotation switches to the new inode once the
// old fd stops growing. The checkpointable position reuses TailPosition
// — inode + consumed offset + partial-frame carry + header_done — so
// the watch checkpoint format is unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/watch/tail.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::watch {

class ContainerTail {
 public:
  /// Decoded rows of one poll, in frame order.
  struct PollRows {
    std::vector<zeek::SslRecord> ssl;
    std::vector<zeek::X509Record> x509;
    /// True once the footer frame arrived: the writer finished the
    /// container, no more frames follow in this incarnation.
    bool finished = false;
    /// Set once per bad incarnation: header/frame validation or block
    /// decode failure. The tail stops consuming until the next
    /// truncation or rotation starts a fresh incarnation.
    std::string error;
  };

  explicit ContainerTail(std::string path);
  ~ContainerTail();

  ContainerTail(const ContainerTail&) = delete;
  ContainerTail& operator=(const ContainerTail&) = delete;

  /// Polls once: detects truncation/rotation, reads new bytes, decodes
  /// every complete frame.
  PollRows poll();

  /// True when the last poll consumed bytes (drives idle detection).
  bool made_progress() const { return progress_; }

  const std::string& path() const { return path_; }
  /// The meta frame's provenance, once it has streamed in (the writer
  /// emits it at finish, so it precedes the footer).
  const std::optional<colfmt::ContainerMeta>& meta() const { return meta_; }
  const TailEvents& events() const { return events_; }

  /// Checkpointable position. Reuses TailPosition: `offset` counts
  /// consumed bytes (header + whole frames), `carry` holds a partial
  /// frame, `header_done` records that the container header validated.
  /// header_text / line counts stay empty — frames have no lines.
  TailPosition position() const { return pos_; }

  /// Restores a checkpointed position; same contract as
  /// TailSource::restore (false = rotated/truncated while down,
  /// restarted from scratch on the current file).
  bool restore(const TailPosition& position);

 private:
  bool open_file();
  void reset_incarnation();
  void consume(std::string_view bytes, PollRows& out);

  std::string path_;
  int fd_ = -1;
  TailPosition pos_;
  bool bad_ = false;       ///< incarnation failed validation
  bool reported_ = false;  ///< error already surfaced for this incarnation
  bool progress_ = false;
  std::optional<colfmt::ContainerMeta> meta_;
  TailEvents events_;
};

}  // namespace mtlscope::watch
