// WindowScheduler (DESIGN §13): turns a tailed record stream into
// windowed and cumulative ResultDocs with batch-identical bytes.
//
// Closing is *watermark*-based and driven purely by record timestamps:
// the watermark is the max ssl `ts` seen, a window closes the moment a
// record lands in a later bucket, and every decision is made per record
// — never per poll batch — so the emitted documents are a pure function
// of the record stream, byte-identical for any poll cadence, chunk
// arrival pattern, or `--threads`.
//
// Identity with the batch pipeline rests on the PR 6 merge algebra
// (pinned by the mapreduce_byte_identity CTest): each closed window is
// folded through PipelineExecutor::fold() exactly like an `mtlscope
// map` slice — paired with the x509 rows its chains reference, which is
// all phases A/B/D can touch for those records — and cumulative state
// is the merge of those finalized window states, re-finalized at
// emission. A final *completion fold* at drain adds the never-referenced
// certificates, matching the batch registry built from the full x509
// log. Records that arrive behind the watermark are buffered as "late"
// and folded into cumulative state at drain (an in-order stream, the
// normal gateway case, never produces any).
//
// An ssl record whose chain references a certificate the x509 tail has
// not yet delivered is *held* (strictly in stream order) until the row
// arrives — Zeek writes the x509 row at the same event as the ssl row,
// so a gap is a poll-interleaving artifact, and holding makes the fold
// input deterministic instead of racing the writer. force_release()
// breaks a genuinely missing certificate out of the queue (liveness);
// drain() always releases.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/shard_state.hpp"
#include "mtlscope/experiments/options.hpp"
#include "mtlscope/watch/checkpoint.hpp"
#include "mtlscope/zeek/parse_plan.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope::watch {

struct WatchConfig {
  /// Primary window width in seconds (--window=hour|day|week|N).
  std::int64_t window_seconds = 3600;
  /// Roll-up width in primary windows (24 hourly windows = one day).
  std::uint32_t rollup_windows = 24;
  /// Experiment names each emission reports (batch `run` order).
  std::vector<std::string> experiments;
  /// Shared pipeline options. ssl_log/x509_log here are the *report
  /// label* paths (what RunInfo prints — see `mtlscope reduce`'s
  /// --ssl-log= override); the tailed paths live in the daemon.
  experiments::RunOptions run;
};

/// One published document set. `envelope` is the canonical JSON bytes
/// (`mtlscope run --format=json --stable-output` shape), which is what
/// makes `cumulative.json` byte-comparable against a batch run.
struct Emission {
  enum class Kind { kWindow, kRollup, kCumulative };
  Kind kind;
  /// Window start timestamp (seconds); 0 for cumulative.
  std::int64_t start_ts = 0;
  std::string envelope;
};
using EmitFn = std::function<void(const Emission&)>;

class WindowScheduler {
 public:
  WindowScheduler(WatchConfig config, EmitFn emit);

  /// Feeds x509 rows in arrival order (first fuid wins, like phase A in
  /// stream order) and releases any held ssl records they unblock.
  void add_x509(std::vector<zeek::X509Record> rows);

  /// Feeds ssl rows in stream order: watermark advance, window close,
  /// hold-for-certificate, late buffering.
  void add_ssl(std::vector<zeek::SslRecord> rows);

  /// Accounts tail-parse results in the watch ErrorLedger (absolute
  /// coordinates; the cumulative document's data-quality block).
  void note_issues(core::InputRole role, core::LedgerPhase phase,
                   const std::vector<zeek::RowIssue>& issues,
                   std::uint64_t rows_ok);

  /// Releases every held record even if its certificates never arrived
  /// (missing-certificate liveness escape; enrichment degrades exactly
  /// like a batch run whose x509 log lacks the fuid).
  void force_release();
  std::size_t held() const { return pending_.size(); }

  /// End of stream (idle exit / final drain): closes the open window
  /// and roll-up, folds late and held records, adds never-referenced
  /// certificates, and emits the final cumulative document.
  void drain();

  /// Publishes the current cumulative document (drain() does this; the
  /// daemon also calls it on roll-up boundaries).
  void emit_cumulative();

  struct Status {
    std::uint64_t ssl_records = 0;
    std::uint64_t x509_records = 0;
    std::uint64_t held = 0;
    std::uint64_t late = 0;
    std::uint64_t open_windows = 0;  // 0 or 1 primary + 0 or 1 roll-up
    std::uint64_t windows_emitted = 0;
    std::uint64_t rollups_emitted = 0;
    std::uint64_t quarantined = 0;
    std::int64_t watermark_ts = 0;
  };
  Status status() const;

  /// Fills the scheduler half of a checkpoint (tails are the daemon's).
  void save(WatchCheckpoint& out) const;
  /// Restores from a checkpoint; refuses a configuration-fingerprint
  /// mismatch (window geometry / experiment list / seed) with a
  /// deterministic message.
  bool restore(const WatchCheckpoint& ckpt, std::string* error = nullptr);

 private:
  void process(zeek::SslRecord record);
  void release_ready(bool force);
  bool certs_ready(const zeek::SslRecord& record) const;
  void close_window();
  void close_rollup();
  /// Folds rows paired with the x509 rows their chains reference.
  core::ShardState fold_rows(const std::vector<zeek::SslRecord>& rows);
  core::ShardState fold_map(const std::vector<zeek::SslRecord>& rows,
                            zeek::Dataset::X509Map x509);
  void fill_meta(core::ShardState& state) const;
  void emit_state(Emission::Kind kind, std::int64_t start_ts,
                  core::ShardState state);
  std::string render(core::ShardState state);

  WatchConfig config_;
  EmitFn emit_;

  // x509 arrival state: first-seen rows in order plus a fuid index.
  std::vector<zeek::X509Record> x509_seen_;
  std::unordered_map<colfmt::Str, std::size_t, colfmt::StrHash, colfmt::StrEq>
      x509_index_;

  // Stream-order hold queue (front blocks everything behind it).
  std::vector<zeek::SslRecord> pending_;
  std::size_t pending_front_ = 0;

  // Open primary window and watermark.
  bool have_watermark_ = false;
  std::int64_t watermark_bucket_ = 0;
  std::int64_t watermark_ts_ = 0;
  std::vector<zeek::SslRecord> current_rows_;

  // Open roll-up window.
  std::int64_t rollup_bucket_ = 0;
  std::optional<core::ShardState> rollup_state_;

  // Cumulative state: merge of finalized window folds (re-finalized on
  // a copy at each emission — merge-after-finalize is the PR 6 reduce
  // pattern).
  std::optional<core::ShardState> cumulative_;

  std::vector<zeek::SslRecord> late_;
  core::ErrorLedger ledger_;
  std::uint64_t ssl_records_seen_ = 0;
  std::uint64_t windows_emitted_ = 0;
  std::uint64_t rollups_emitted_ = 0;
};

/// Parses --window= values: "hour", "day", "week", or a positive
/// integer second count. Returns 0 on bad input.
std::int64_t parse_window_spec(const std::string& spec);

}  // namespace mtlscope::watch
