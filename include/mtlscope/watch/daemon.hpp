// The `mtlscope watch` daemon shell (DESIGN §13): owns the two typed
// tails, drives the WindowScheduler, publishes emissions into --out-dir
// via write-to-temp + atomic rename, checkpoints on a cadence and on
// SIGINT/SIGTERM, prints a status line on SIGUSR1, and (optionally)
// exits cleanly once the logs stop growing (--exit-idle-ms, the
// batch-equivalence and test harness mode).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mtlscope/experiments/options.hpp"

namespace mtlscope::watch {

struct WatchOptions {
  /// Shared pipeline flags; ssl_log/x509_log are the *tailed* paths.
  experiments::RunOptions run;
  /// Experiments each emission reports (must all be distributable).
  std::vector<std::string> experiments;
  /// Window/roll-up published file directory (required).
  std::string out_dir;
  /// Checkpoint directory; empty disables checkpoint/restore.
  std::string checkpoint_dir;
  std::int64_t window_seconds = 3600;
  std::uint32_t rollup_windows = 24;
  /// Poll interval; inotify (Linux) wakes the loop early on change.
  int poll_ms = 200;
  /// Seconds between checkpoints; 0 checkpoints after every poll that
  /// made progress.
  double checkpoint_every_s = 30;
  /// Checkpoint generations retained on disk (`watch.ckpt.<gen>`,
  /// DESIGN §16); resume walks newest→oldest and restores the first
  /// generation whose digest verifies. Clamped to at least 1.
  std::uint32_t checkpoint_keep = 3;
  /// Exit 0 after this long with no log growth and nothing held
  /// (drain + final publication + final checkpoint). 0 = run until
  /// signalled.
  int exit_idle_ms = 0;
  /// Report-label overrides (RunInfo paths), mirroring `mtlscope
  /// reduce --ssl-log=`: a watch over rotated segments labels its
  /// documents with the logical log the segments came from.
  std::string report_ssl_log;
  std::string report_x509_log;
  /// Polls with zero x509 growth before a held record is force-released
  /// (missing-certificate liveness).
  int missing_cert_grace_polls = 50;
};

/// Durable emission publisher with deterministic degraded mode
/// (DESIGN §16). Every document goes through write-to-temp + fsync +
/// rename + parent-dir fsync; when the disk fills (ENOSPC/EDQUOT) the
/// last-good published files are retained untouched and the failed
/// document is queued (latest content per name wins). The daemon calls
/// retry_pending() once per poll loop — the poll cadence is the retry
/// backoff — and an OK→failing transition counts one degraded episode
/// in the global durability counters.
class DurablePublisher {
 public:
  explicit DurablePublisher(std::string dir);

  /// Atomically publishes `dir/name`; on failure queues the content for
  /// retry_pending() and returns false.
  bool publish(const std::string& name, const std::string& content);

  /// Retries every queued publication in name order; stops at the first
  /// failure (still degraded). Returns true once the queue is empty.
  bool retry_pending();

  std::size_t pending() const { return pending_.size(); }
  bool degraded() const { return degraded_; }
  /// Episodes observed by this publisher (the global counter aggregates
  /// across publishers and the checkpoint path).
  std::uint64_t degraded_episodes() const { return episodes_; }

 private:
  void note_failure(const std::string& name, const std::string& message);

  std::string dir_;
  std::map<std::string, std::string> pending_;
  bool degraded_ = false;
  std::uint64_t episodes_ = 0;
};

/// Runs the daemon loop until SIGINT/SIGTERM (checkpoint + exit 0) or
/// idle exit (drain + publish + checkpoint + exit 0). Returns a
/// process exit code.
int run_watch(const WatchOptions& options);

}  // namespace mtlscope::watch
