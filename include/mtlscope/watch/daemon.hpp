// The `mtlscope watch` daemon shell (DESIGN §13): owns the two typed
// tails, drives the WindowScheduler, publishes emissions into --out-dir
// via write-to-temp + atomic rename, checkpoints on a cadence and on
// SIGINT/SIGTERM, prints a status line on SIGUSR1, and (optionally)
// exits cleanly once the logs stop growing (--exit-idle-ms, the
// batch-equivalence and test harness mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mtlscope/experiments/options.hpp"

namespace mtlscope::watch {

struct WatchOptions {
  /// Shared pipeline flags; ssl_log/x509_log are the *tailed* paths.
  experiments::RunOptions run;
  /// Experiments each emission reports (must all be distributable).
  std::vector<std::string> experiments;
  /// Window/roll-up published file directory (required).
  std::string out_dir;
  /// Checkpoint directory; empty disables checkpoint/restore.
  std::string checkpoint_dir;
  std::int64_t window_seconds = 3600;
  std::uint32_t rollup_windows = 24;
  /// Poll interval; inotify (Linux) wakes the loop early on change.
  int poll_ms = 200;
  /// Seconds between checkpoints; 0 checkpoints after every poll that
  /// made progress.
  double checkpoint_every_s = 30;
  /// Exit 0 after this long with no log growth and nothing held
  /// (drain + final publication + final checkpoint). 0 = run until
  /// signalled.
  int exit_idle_ms = 0;
  /// Report-label overrides (RunInfo paths), mirroring `mtlscope
  /// reduce --ssl-log=`: a watch over rotated segments labels its
  /// documents with the logical log the segments came from.
  std::string report_ssl_log;
  std::string report_x509_log;
  /// Polls with zero x509 growth before a held record is force-released
  /// (missing-certificate liveness).
  int missing_cert_grace_polls = 50;
};

/// Runs the daemon loop until SIGINT/SIGTERM (checkpoint + exit 0) or
/// idle exit (drain + publish + checkpoint + exit 0). Returns a
/// process exit code.
int run_watch(const WatchOptions& options);

}  // namespace mtlscope::watch
