// DER → Certificate parser.
#pragma once

#include <span>
#include <string>
#include <variant>

#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::x509 {

struct ParseError {
  std::string message;
};

using ParseResult = std::variant<Certificate, ParseError>;

/// Parses a DER-encoded Certificate. Never throws: malformed input is
/// reported as ParseError, since certificates cross a trust boundary.
ParseResult parse_certificate(std::span<const std::uint8_t> der);

/// Convenience for call sites that treat failure as absence.
inline const Certificate* get_certificate(const ParseResult& r) {
  return std::get_if<Certificate>(&r);
}

}  // namespace mtlscope::x509
