// Parsed X.509 certificate model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/asn1/oid.hpp"
#include "mtlscope/crypto/sha256.hpp"
#include "mtlscope/net/ip.hpp"
#include "mtlscope/util/time.hpp"
#include "mtlscope/x509/name.hpp"

namespace mtlscope::x509 {

/// SubjectAltName GeneralName, restricted to the choices the paper
/// analyzes (§6.1.2): dNSName, rfc822Name, iPAddress, URI. Anything else
/// parses as kOther with raw bytes rendered as text.
struct SanEntry {
  enum class Type : std::uint8_t {
    kDns,
    kEmail,
    kIp,
    kUri,
    kOther,
  };
  Type type = Type::kDns;
  std::string value;

  friend bool operator==(const SanEntry&, const SanEntry&) = default;
};

struct Validity {
  util::UnixSeconds not_before = 0;
  util::UnixSeconds not_after = 0;

  /// The paper's §5.3.1 misconfiguration check: notBefore must precede
  /// notAfter. (One observed certificate has equal timestamps; we treat
  /// equality as incorrect too, matching the paper's Table 11 footnote.)
  bool dates_incorrect() const { return not_before >= not_after; }

  /// Validity period in whole days (may be negative for incorrect dates).
  std::int64_t period_days() const {
    return (not_after - not_before) / util::kSecondsPerDay;
  }

  bool contains(util::UnixSeconds t) const {
    return not_before <= t && t <= not_after;
  }

  friend bool operator==(const Validity&, const Validity&) = default;
};

struct BasicConstraints {
  bool is_ca = false;
  std::optional<int> path_len;

  friend bool operator==(const BasicConstraints&,
                         const BasicConstraints&) = default;
};

/// Key-usage bits (RFC 5280 §4.2.1.3), as a bitmask.
namespace key_usage {
inline constexpr std::uint16_t kDigitalSignature = 1 << 0;
inline constexpr std::uint16_t kKeyEncipherment = 1 << 2;
inline constexpr std::uint16_t kKeyCertSign = 1 << 5;
inline constexpr std::uint16_t kCrlSign = 1 << 6;
}  // namespace key_usage

/// A parsed leaf or CA certificate. Owns its DER encoding; all accessors
/// are views into decoded fields.
struct Certificate {
  int version = 3;  // 1 or 3 (the generator emits v1 for the paper's
                    // OpenSSL-dummy findings, v3 otherwise)
  std::vector<std::uint8_t> serial;  // INTEGER content octets
  asn1::Oid signature_algorithm;
  DistinguishedName issuer;
  DistinguishedName subject;
  Validity validity;
  asn1::Oid spki_algorithm;
  std::vector<std::uint8_t> public_key;

  std::optional<BasicConstraints> basic_constraints;
  std::optional<std::uint16_t> key_usage_bits;
  std::vector<asn1::Oid> ext_key_usage;
  std::vector<SanEntry> san;

  std::vector<std::uint8_t> signature;
  std::vector<std::uint8_t> tbs_der;  // for signature verification
  std::vector<std::uint8_t> der;      // complete Certificate encoding

  /// Upper-case hex serial, no leading zeros beyond DER minimal form —
  /// e.g. "00", "01", "024680", "03E8" as the paper prints them.
  std::string serial_hex() const;

  /// SHA-256 over the full DER — the identity used for "unique
  /// certificates" and for detecting server/client certificate sharing.
  crypto::Sha256::Digest fingerprint() const;
  std::string fingerprint_hex() const;

  /// Key size in bits (the paper flags 1024-bit keys per NIST SP 800-57).
  std::size_t key_bits() const { return public_key.size() * 8; }

  bool is_self_issued() const { return issuer == subject; }

  bool expired_at(util::UnixSeconds t) const { return t > validity.not_after; }

  /// All SAN values of dNSName type (the paper's "SAN DNS").
  std::vector<std::string> san_dns() const;

  bool allows_server_auth() const;
  bool allows_client_auth() const;
};

}  // namespace mtlscope::x509
