// X.501 DistinguishedName (RDNSequence) model.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/asn1/oid.hpp"

namespace mtlscope::x509 {

/// A single AttributeTypeAndValue. We model each RDN as holding exactly one
/// attribute (multi-valued RDNs are vanishingly rare and the paper's
/// analysis never depends on them).
struct NameAttribute {
  asn1::Oid type;
  std::string value;

  friend bool operator==(const NameAttribute&, const NameAttribute&) = default;
  friend auto operator<=>(const NameAttribute&, const NameAttribute&) = default;
};

/// Ordered sequence of attributes, root-most first, as in the encoding.
class DistinguishedName {
 public:
  DistinguishedName() = default;
  explicit DistinguishedName(std::vector<NameAttribute> attrs)
      : attrs_(std::move(attrs)) {}

  /// Fluent construction used by the builder and the trace generator.
  DistinguishedName& add(const asn1::Oid& type, std::string value);
  DistinguishedName& add_cn(std::string value);
  DistinguishedName& add_org(std::string value);
  DistinguishedName& add_org_unit(std::string value);
  DistinguishedName& add_country(std::string value);

  const std::vector<NameAttribute>& attributes() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }

  /// First value of the given attribute type, if present.
  std::optional<std::string_view> find(const asn1::Oid& type) const;
  std::optional<std::string_view> common_name() const;
  std::optional<std::string_view> organization() const;

  /// RFC 2253-style rendering ("CN=foo,O=bar,C=US"); unknown attribute
  /// types render as dotted OIDs. This matches Zeek's subject strings
  /// closely enough for the log layer.
  std::string to_string() const;

  /// Parses the to_string() format back. Commas inside values may be
  /// escaped with a backslash. Returns nullopt on malformed input.
  static std::optional<DistinguishedName> from_string(std::string_view s);

  friend bool operator==(const DistinguishedName&,
                         const DistinguishedName&) = default;
  friend auto operator<=>(const DistinguishedName&,
                          const DistinguishedName&) = default;

 private:
  std::vector<NameAttribute> attrs_;
};

}  // namespace mtlscope::x509
