// Certificate builder: assembles and signs DER certificates for the
// simulated PKI (CAs, leaves, and deliberately misconfigured certificates).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mtlscope/crypto/tsig.hpp"
#include "mtlscope/x509/certificate.hpp"

namespace mtlscope::x509 {

class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& version(int v);  // 1 or 3
  CertificateBuilder& serial(std::vector<std::uint8_t> bytes);
  /// Serial from hex ("00", "024680", "03E8"); precondition: valid hex.
  CertificateBuilder& serial_hex(std::string_view hex);
  /// Random-looking unique serial derived from a label.
  CertificateBuilder& serial_from_label(std::string_view label);
  CertificateBuilder& subject(DistinguishedName dn);
  CertificateBuilder& validity(util::UnixSeconds not_before,
                               util::UnixSeconds not_after);
  CertificateBuilder& public_key(std::vector<std::uint8_t> key);
  /// Labels the SPKI algorithm; defaults to tsig. The generator sets the
  /// RSA OID when mimicking the paper's 1024-bit-RSA findings.
  CertificateBuilder& spki_algorithm(asn1::Oid oid);

  CertificateBuilder& add_san_dns(std::string value);
  CertificateBuilder& add_san_email(std::string value);
  CertificateBuilder& add_san_uri(std::string value);
  CertificateBuilder& add_san_ip(const net::IpAddress& addr);
  CertificateBuilder& ca(bool is_ca, std::optional<int> path_len = {});
  CertificateBuilder& key_usage(std::uint16_t bits);
  CertificateBuilder& add_eku(asn1::Oid oid);

  /// Signs with the issuer's key and returns the complete parsed
  /// certificate (including its DER encoding). `issuer_dn` becomes the
  /// issuer field; pass the subject DN and the same key for self-signed.
  Certificate sign(const DistinguishedName& issuer_dn,
                   const crypto::TsigKey& issuer_key) const;

  Certificate self_sign(const crypto::TsigKey& key) const;

 private:
  std::vector<std::uint8_t> encode_tbs(
      const DistinguishedName& issuer_dn) const;

  int version_ = 3;
  std::vector<std::uint8_t> serial_{0x01};
  DistinguishedName subject_;
  Validity validity_;
  asn1::Oid spki_algorithm_;
  std::vector<std::uint8_t> public_key_;
  std::vector<SanEntry> san_;
  std::optional<BasicConstraints> basic_constraints_;
  std::optional<std::uint16_t> key_usage_;
  std::vector<asn1::Oid> eku_;
};

}  // namespace mtlscope::x509
