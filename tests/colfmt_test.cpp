// Compact container + interning arena suite (DESIGN §14). The
// load-bearing assertions:
//
//   * the interning arena returns one stable pointer per distinct byte
//     sequence even under concurrent interning from many threads (the
//     shard-merge case: analyzer shards built on worker threads hold
//     Strs that must compare equal after the merge);
//   * a container round-trips every record field exactly — including
//     embedded NULs, multi-kilobyte DNs past the 64 KiB mark, and raw
//     (un-escaped) DER bytes;
//   * dictionary overflow spills into a secondary block instead of
//     growing without bound, and the row cap splits blocks, both
//     without losing row order;
//   * scan_frames accepts every frame-boundary prefix of a growing
//     container (the streaming-producer contract) and the finished
//     reader rejects flipped bytes via the footer digest;
//   * compact_logs + verify_container re-expand and field-compare the
//     container against a tolerant TSV parse, including quarantined-row
//     counts, and fail on post-conversion divergence;
//   * ContainerTail consumes frames as they stream in, carries partial
//     frames across polls, and a checkpointed position restores into a
//     fresh tail without replaying or dropping rows.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mtlscope/colfmt/arena.hpp"
#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/colfmt/convert.hpp"
#include "mtlscope/core/state_io.hpp"
#include "mtlscope/watch/checkpoint.hpp"
#include "mtlscope/watch/container_tail.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;

class ColfmtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mtlscope_colfmt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
};

zeek::SslRecord make_ssl(int i) {
  zeek::SslRecord rec;
  rec.ts = 1000 + i;
  rec.uid = "C" + std::to_string(i);
  rec.orig_h = "10.0.0." + std::to_string(i % 4);
  rec.orig_p = static_cast<std::uint16_t>(40000 + i);
  rec.resp_h = "192.168.1." + std::to_string(i % 3);
  rec.resp_p = 443;
  rec.version = i % 2 == 0 ? "TLSv12" : "TLSv13";
  rec.server_name = "host" + std::to_string(i % 5) + ".example";
  rec.established = i % 3 != 0;
  if (i % 2 == 0) {
    rec.cert_chain_fuids = {colfmt::Str("F" + std::to_string(i)),
                            colfmt::Str("Froot")};
  }
  if (i % 7 == 0) {
    rec.client_cert_chain_fuids = {colfmt::Str("Fclient")};
  }
  return rec;
}

zeek::X509Record make_x509(int i) {
  zeek::X509Record rec;
  rec.fuid = colfmt::Str("F" + std::to_string(i));
  rec.version = 3;
  rec.serial = colfmt::Str("0A1B" + std::to_string(i));
  rec.subject = colfmt::Str("CN=host" + std::to_string(i % 5) + ".example");
  rec.issuer = "CN=Example CA,O=Example";
  rec.not_valid_before = 1600000000 + i;
  rec.not_valid_after = 1700000000 + i;
  rec.key_alg = "rsaEncryption";
  rec.key_length = 2048;
  rec.san_dns = {colfmt::Str("host" + std::to_string(i % 5) + ".example")};
  const std::string der{'\x30', '\x82', '\x01', '\x00',
                        static_cast<char>(i), '\x00', '\xff'};
  rec.cert_der = colfmt::CertArena::global().intern(der);
  return rec;
}

void expect_ssl_equal(const zeek::SslRecord& a, const zeek::SslRecord& b,
                      int i) {
  EXPECT_EQ(a.ts, b.ts) << "row " << i;
  EXPECT_EQ(a.uid, b.uid) << "row " << i;
  EXPECT_EQ(a.orig_h, b.orig_h) << "row " << i;
  EXPECT_EQ(a.orig_p, b.orig_p) << "row " << i;
  EXPECT_EQ(a.resp_h, b.resp_h) << "row " << i;
  EXPECT_EQ(a.resp_p, b.resp_p) << "row " << i;
  EXPECT_EQ(a.version, b.version) << "row " << i;
  EXPECT_EQ(a.server_name, b.server_name) << "row " << i;
  EXPECT_EQ(a.established, b.established) << "row " << i;
  EXPECT_EQ(a.cert_chain_fuids, b.cert_chain_fuids) << "row " << i;
  EXPECT_EQ(a.client_cert_chain_fuids, b.client_cert_chain_fuids)
      << "row " << i;
}

void expect_x509_equal(const zeek::X509Record& a, const zeek::X509Record& b,
                       int i) {
  EXPECT_EQ(a.fuid, b.fuid) << "row " << i;
  EXPECT_EQ(a.version, b.version) << "row " << i;
  EXPECT_EQ(a.serial, b.serial) << "row " << i;
  EXPECT_EQ(a.subject, b.subject) << "row " << i;
  EXPECT_EQ(a.issuer, b.issuer) << "row " << i;
  EXPECT_EQ(a.not_valid_before, b.not_valid_before) << "row " << i;
  EXPECT_EQ(a.not_valid_after, b.not_valid_after) << "row " << i;
  EXPECT_EQ(a.key_alg, b.key_alg) << "row " << i;
  EXPECT_EQ(a.key_length, b.key_length) << "row " << i;
  EXPECT_EQ(a.san_dns, b.san_dns) << "row " << i;
  EXPECT_EQ(a.san_email, b.san_email) << "row " << i;
  EXPECT_EQ(a.san_uri, b.san_uri) << "row " << i;
  EXPECT_EQ(a.san_ip, b.san_ip) << "row " << i;
  EXPECT_EQ(a.cert_der.view(), b.cert_der.view()) << "row " << i;
}

// ---------------------------------------------------------------------------
// Interning arena

TEST_F(ColfmtTest, ArenaInternsOnePointerPerValueAcrossThreads) {
  // Worker threads interning the same values — the shard-merge shape:
  // analyzer shards built on different threads hold Strs for the same
  // issuers, and the merged result must see one storage per value.
  colfmt::StringArena arena(4096);
  constexpr int kThreads = 8;
  constexpr int kValues = 200;
  std::vector<std::vector<colfmt::Str>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto& mine = per_thread[t];
        mine.reserve(kValues);
        for (int v = 0; v < kValues; ++v) {
          mine.push_back(arena.intern("issuer-" + std::to_string(v)));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int v = 0; v < kValues; ++v) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(per_thread[0][v], per_thread[t][v]);
      // Same storage, not just equal bytes: interning deduplicated.
      EXPECT_EQ(per_thread[0][v].data(), per_thread[t][v].data())
          << "value " << v << " thread " << t;
    }
  }
  EXPECT_EQ(arena.stats().strings, static_cast<std::uint64_t>(kValues));
}

TEST_F(ColfmtTest, ArenaKeepsEmbeddedNulsAndHugeValues) {
  colfmt::StringArena arena(1024);
  const std::string nul_dn("CN=a\0b,O=c\0", 11);
  // Past the 64 KiB mark and past the chunk size: dedicated allocation.
  const std::string huge_dn = "CN=" + std::string(70 * 1024, 'x');
  const colfmt::Str a = arena.intern(nul_dn);
  const colfmt::Str b = arena.intern(huge_dn);
  EXPECT_EQ(a.view(), std::string_view(nul_dn));
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(b.view(), std::string_view(huge_dn));
  // Re-interning returns the same storage.
  EXPECT_EQ(arena.intern(nul_dn).data(), a.data());
  EXPECT_EQ(arena.intern(huge_dn).data(), b.data());
}

// ---------------------------------------------------------------------------
// Container round-trip

TEST_F(ColfmtTest, ContainerRoundTripPreservesEveryField) {
  const std::string out = path("round.mtlc");
  std::vector<zeek::SslRecord> ssl;
  std::vector<zeek::X509Record> x509;
  for (int i = 0; i < 50; ++i) ssl.push_back(make_ssl(i));
  for (int i = 0; i < 20; ++i) x509.push_back(make_x509(i));
  // Hostile shapes: an embedded NUL and a >64 KiB DN in dictionary
  // columns, raw DER with NULs and high bytes in the blob column.
  x509[3].subject = colfmt::Str(std::string("CN=a\0b", 6));
  x509[4].issuer = colfmt::Str("CN=" + std::string(70 * 1024, 'y'));
  x509[5].cert_der = colfmt::CertArena::global().intern(
      std::string("\x00\xff\x30\x00\x01", 5));

  colfmt::ContainerWriter writer(out);
  ASSERT_TRUE(writer.ok()) << writer.error();
  for (const auto& rec : x509) writer.add_x509(rec);
  for (const auto& rec : ssl) writer.add_ssl(rec);
  colfmt::ContainerMeta meta;
  meta.ssl_path = "ssl.log";
  meta.x509_path = "x509.log";
  meta.ssl_rows = ssl.size();
  meta.x509_rows = x509.size();
  meta.ssl_bytes = 12345;
  meta.x509_bytes = 678;
  writer.set_meta(meta);
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;

  auto reader = colfmt::ContainerReader::open(out, &error);
  ASSERT_TRUE(reader) << error;
  EXPECT_EQ(reader->meta().ssl_path, "ssl.log");
  EXPECT_EQ(reader->meta().x509_path, "x509.log");
  EXPECT_EQ(reader->meta().ssl_rows, ssl.size());
  EXPECT_EQ(reader->meta().x509_rows, x509.size());
  EXPECT_EQ(reader->meta().ssl_bytes, 12345u);

  std::vector<zeek::SslRecord> got_ssl;
  for (const auto& block : reader->ssl_blocks()) {
    auto rows = reader->decode_ssl_block(block);
    got_ssl.insert(got_ssl.end(), rows.begin(), rows.end());
  }
  std::vector<zeek::X509Record> got_x509;
  for (const auto& block : reader->x509_blocks()) {
    auto rows = reader->decode_x509_block(block);
    got_x509.insert(got_x509.end(), rows.begin(), rows.end());
  }
  ASSERT_EQ(got_ssl.size(), ssl.size());
  ASSERT_EQ(got_x509.size(), x509.size());
  for (std::size_t i = 0; i < ssl.size(); ++i) {
    expect_ssl_equal(ssl[i], got_ssl[i], static_cast<int>(i));
  }
  for (std::size_t i = 0; i < x509.size(); ++i) {
    expect_x509_equal(x509[i], got_x509[i], static_cast<int>(i));
  }
}

TEST_F(ColfmtTest, DictionaryOverflowSpillsToSecondaryBlock) {
  const std::string out = path("spill.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 1 << 20;  // row cap out of the way
  options.dict_bytes = 2048;     // tiny dictionary forces the spill
  colfmt::ContainerWriter writer(out, options);
  ASSERT_TRUE(writer.ok()) << writer.error();
  std::vector<zeek::SslRecord> ssl;
  for (int i = 0; i < 200; ++i) {
    zeek::SslRecord rec = make_ssl(i);
    // Distinct long SNI per row: the dictionary grows past the cap.
    rec.server_name =
        colfmt::Str("sni-" + std::string(64, 'a' + (i % 26)) +
                    std::to_string(i));
    ssl.push_back(rec);
    writer.add_ssl(rec);
  }
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
  EXPECT_GT(writer.blocks_written(), 1u);

  auto reader = colfmt::ContainerReader::open(out, &error);
  ASSERT_TRUE(reader) << error;
  EXPECT_GT(reader->ssl_blocks().size(), 1u);
  std::uint64_t footer_rows = 0;
  std::vector<zeek::SslRecord> got;
  for (const auto& block : reader->ssl_blocks()) {
    footer_rows += block.rows;
    auto rows = reader->decode_ssl_block(block);
    got.insert(got.end(), rows.begin(), rows.end());
  }
  EXPECT_EQ(footer_rows, ssl.size());
  ASSERT_EQ(got.size(), ssl.size());
  for (std::size_t i = 0; i < ssl.size(); ++i) {
    expect_ssl_equal(ssl[i], got[i], static_cast<int>(i));
  }
}

TEST_F(ColfmtTest, RowCapSplitsBlocksInOrder) {
  const std::string out = path("rows.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 4;
  colfmt::ContainerWriter writer(out, options);
  for (int i = 0; i < 10; ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;

  auto reader = colfmt::ContainerReader::open(out, &error);
  ASSERT_TRUE(reader) << error;
  ASSERT_EQ(reader->ssl_blocks().size(), 3u);
  EXPECT_EQ(reader->ssl_blocks()[0].rows, 4u);
  EXPECT_EQ(reader->ssl_blocks()[1].rows, 4u);
  EXPECT_EQ(reader->ssl_blocks()[2].rows, 2u);
  int i = 0;
  for (const auto& block : reader->ssl_blocks()) {
    for (const auto& rec : reader->decode_ssl_block(block)) {
      expect_ssl_equal(make_ssl(i), rec, i);
      ++i;
    }
  }
  EXPECT_EQ(i, 10);
}

// ---------------------------------------------------------------------------
// Framing

TEST_F(ColfmtTest, ScanFramesAcceptsEveryFrameBoundaryPrefix) {
  const std::string out = path("prefix.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 4;
  colfmt::ContainerWriter writer(out, options);
  for (int i = 0; i < 10; ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
  const std::string data = slurp(out);

  std::uint64_t next = 0;
  auto all = colfmt::scan_frames(data, 0, &next, &error);
  ASSERT_TRUE(all) << error;
  EXPECT_EQ(next, data.size());
  ASSERT_GE(all->size(), 3u);
  EXPECT_EQ(all->back().kind, colfmt::FrameKind::kFooter);

  // Every frame boundary is a valid prefix; a byte short of a boundary
  // holds the incomplete frame back without erroring.
  std::uint64_t boundary = colfmt::kContainerHeaderBytes;
  for (std::size_t f = 0; f < all->size(); ++f) {
    boundary += colfmt::kFrameHeaderBytes + (*all)[f].payload_len;
    std::uint64_t got_next = 0;
    auto frames = colfmt::scan_frames(data.substr(0, boundary), 0,
                                      &got_next, &error);
    ASSERT_TRUE(frames) << error;
    EXPECT_EQ(frames->size(), f + 1);
    EXPECT_EQ(got_next, boundary);

    auto short_frames = colfmt::scan_frames(data.substr(0, boundary - 1),
                                            0, &got_next, &error);
    ASSERT_TRUE(short_frames) << error;
    EXPECT_EQ(short_frames->size(), f);
  }
}

TEST_F(ColfmtTest, ReaderRejectsFlippedByte) {
  const std::string out = path("corrupt.mtlc");
  colfmt::ContainerWriter writer(out);
  for (int i = 0; i < 10; ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;

  std::string data = slurp(out);
  data[data.size() / 2] ^= 0x40;  // inside a block payload
  write_file("corrupt.mtlc", data);
  auto reader = colfmt::ContainerReader::open(out, &error);
  EXPECT_FALSE(reader);
  EXPECT_NE(error.find("digest"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Conversion + verification

constexpr const char* kSslHeader =
    "#separator \\x09\n"
    "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"
    "\tversion\tserver_name\testablished\tcert_chain_fuids"
    "\tclient_cert_chain_fuids\n";

constexpr const char* kX509Header =
    "#separator \\x09\n"
    "#fields\tfuid\tcertificate.version\tcertificate.serial"
    "\tcertificate.subject\tcertificate.issuer"
    "\tcertificate.not_valid_before\tcertificate.not_valid_after"
    "\tcertificate.key_alg\tcertificate.key_length\tsan.dns"
    "\tsan.email\tsan.uri\tsan.ip\n";

std::string ssl_row(int i) {
  return std::to_string(100 + i) +
         ".000000\tC" + std::to_string(i) +
         "\t10.0.0.1\t1000\t10.0.0.2\t443\tTLSv12\thost.example\tT\tF" +
         std::to_string(i % 3) + "\t(empty)\n";
}

std::string x509_row(int i) {
  return "F" + std::to_string(i) +
         "\t3\t0A" + std::to_string(i) +
         "\tCN=host.example\tCN=Example CA\t1600000000.000000"
         "\t1700000000.000000\trsaEncryption\t2048\thost.example"
         "\t-\t-\t-\n";
}

TEST_F(ColfmtTest, CompactLogsVerifiesAgainstTheTsvPair) {
  std::string ssl_text(kSslHeader);
  for (int i = 0; i < 40; ++i) ssl_text += ssl_row(i);
  std::string x509_text(kX509Header);
  for (int i = 0; i < 3; ++i) x509_text += x509_row(i);
  const std::string ssl_path = write_file("ssl.log", ssl_text);
  const std::string x509_path = write_file("x509.log", x509_text);

  colfmt::CompactRequest request;
  request.ssl_path = ssl_path;
  request.x509_path = x509_path;
  request.out_path = path("logs.mtlc");
  colfmt::CompactStats stats;
  std::string error;
  ASSERT_TRUE(colfmt::compact_logs(request, &stats, &error)) << error;
  EXPECT_EQ(stats.ssl_rows, 40u);
  EXPECT_EQ(stats.x509_rows, 3u);
  EXPECT_EQ(stats.quarantined, 0u);

  std::string report;
  EXPECT_TRUE(colfmt::verify_container(request.out_path, &report, &error))
      << error;
  EXPECT_NE(report.find("40 ssl rows"), std::string::npos) << report;

  // Post-conversion divergence: the TSV grew a row the container lacks.
  std::ofstream(ssl_path, std::ios::binary | std::ios::app) << ssl_row(99);
  EXPECT_FALSE(colfmt::verify_container(request.out_path, &report, &error));
  EXPECT_NE(error.find("row"), std::string::npos) << error;
}

TEST_F(ColfmtTest, CompactLogsCarriesQuarantineCounts) {
  std::string ssl_text(kSslHeader);
  ssl_text += ssl_row(0);
  ssl_text += "not\ta\tvalid\trow\n";
  ssl_text += ssl_row(1);
  const std::string ssl_path = write_file("ssl.log", ssl_text);
  const std::string x509_path = write_file("x509.log", kX509Header);

  colfmt::CompactRequest request;
  request.ssl_path = ssl_path;
  request.x509_path = x509_path;
  request.out_path = path("dirty.mtlc");
  request.errors.on_error = ingest::ErrorPolicy::Action::kSkip;
  colfmt::CompactStats stats;
  std::string error;
  ASSERT_TRUE(colfmt::compact_logs(request, &stats, &error)) << error;
  EXPECT_EQ(stats.ssl_rows, 2u);
  EXPECT_EQ(stats.quarantined, 1u);

  // The container's ledger frame records the quarantined row with its
  // original TSV coordinates; verify re-parses and cross-checks it.
  auto reader = colfmt::ContainerReader::open(request.out_path, &error);
  ASSERT_TRUE(reader) << error;
  ASSERT_TRUE(reader->has_ledger());
  const core::ErrorLedger ledger = reader->ledger();
  EXPECT_EQ(ledger.quarantined(core::InputRole::kSsl), 1u);
  EXPECT_EQ(ledger.rows_ok(core::InputRole::kSsl), 2u);
  ASSERT_EQ(ledger.entries().size(), 1u);
  // 2 header lines + 1 good row before it: physical line 4.
  EXPECT_EQ(ledger.entries()[0].line, 4u);

  std::string report;
  EXPECT_TRUE(colfmt::verify_container(request.out_path, &report, &error))
      << error;
  EXPECT_NE(report.find("1 quarantined"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Streaming tail

TEST_F(ColfmtTest, ContainerTailStreamsFramesAcrossPolls) {
  // A finished container fed to the tail in small appends: frames
  // complete across poll boundaries (partial frames carry), the meta
  // frame surfaces provenance, the footer flags completion.
  const std::string full = path("full.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 8;
  colfmt::ContainerWriter writer(full, options);
  for (int i = 0; i < 20; ++i) writer.add_x509(make_x509(i));
  for (int i = 0; i < 30; ++i) writer.add_ssl(make_ssl(i));
  colfmt::ContainerMeta meta;
  meta.ssl_path = "orig_ssl.log";
  meta.x509_path = "orig_x509.log";
  writer.set_meta(meta);
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
  const std::string data = slurp(full);

  const std::string grow = path("grow.mtlc");
  write_file("grow.mtlc", "");
  watch::ContainerTail tail(grow);
  std::vector<zeek::SslRecord> got_ssl;
  std::vector<zeek::X509Record> got_x509;
  bool finished = false;
  constexpr std::size_t kStep = 777;  // never frame-aligned
  for (std::size_t off = 0; off < data.size(); off += kStep) {
    std::ofstream(grow, std::ios::binary | std::ios::app)
        << data.substr(off, kStep);
    auto rows = tail.poll();
    EXPECT_TRUE(rows.error.empty()) << rows.error;
    got_ssl.insert(got_ssl.end(),
                   std::make_move_iterator(rows.ssl.begin()),
                   std::make_move_iterator(rows.ssl.end()));
    got_x509.insert(got_x509.end(),
                    std::make_move_iterator(rows.x509.begin()),
                    std::make_move_iterator(rows.x509.end()));
    finished = finished || rows.finished;
  }
  EXPECT_TRUE(finished);
  ASSERT_TRUE(tail.meta().has_value());
  EXPECT_EQ(tail.meta()->ssl_path, "orig_ssl.log");
  ASSERT_EQ(got_ssl.size(), 30u);
  ASSERT_EQ(got_x509.size(), 20u);
  for (int i = 0; i < 30; ++i) expect_ssl_equal(make_ssl(i), got_ssl[i], i);
  for (int i = 0; i < 20; ++i) {
    expect_x509_equal(make_x509(i), got_x509[i], i);
  }
}

TEST_F(ColfmtTest, ContainerTailCheckpointRestoresWithoutReplay) {
  const std::string full = path("full.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 8;
  colfmt::ContainerWriter writer(full, options);
  for (int i = 0; i < 32; ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
  const std::string data = slurp(full);

  // First incarnation consumes roughly half the bytes (mid-frame).
  const std::string grow = path("grow.mtlc");
  write_file("grow.mtlc", data.substr(0, data.size() / 2));
  std::size_t first_rows = 0;
  watch::TailPosition position;
  {
    watch::ContainerTail tail(grow);
    auto rows = tail.poll();
    EXPECT_TRUE(rows.error.empty()) << rows.error;
    first_rows = rows.ssl.size();
    position = tail.position();
    EXPECT_TRUE(position.header_done);
    EXPECT_FALSE(position.carry.empty());  // a partial frame is carried
  }

  // A fresh tail restores the position — the daemon-restart path — and
  // the remaining appends deliver every other row exactly once.
  watch::ContainerTail resumed(grow);
  ASSERT_TRUE(resumed.restore(position));
  std::ofstream(grow, std::ios::binary | std::ios::app)
      << data.substr(data.size() / 2);
  auto rows = resumed.poll();
  EXPECT_TRUE(rows.error.empty()) << rows.error;
  EXPECT_TRUE(rows.finished);
  ASSERT_EQ(first_rows + rows.ssl.size(), 32u);
  for (std::size_t i = 0; i < rows.ssl.size(); ++i) {
    expect_ssl_equal(make_ssl(static_cast<int>(first_rows + i)), rows.ssl[i],
                     static_cast<int>(first_rows + i));
  }

  // Truncated-while-down: restore refuses and restarts from scratch.
  write_file("grow.mtlc", data.substr(0, 10));
  watch::ContainerTail restarted(grow);
  EXPECT_FALSE(restarted.restore(position));
}

TEST_F(ColfmtTest, ContainerTailReportsBadMagicOnce) {
  const std::string grow = path("bogus.mtlc");
  write_file("bogus.mtlc", std::string(64, 'Z'));
  watch::ContainerTail tail(grow);
  auto rows = tail.poll();
  EXPECT_NE(rows.error.find("magic"), std::string::npos) << rows.error;
  // More garbage: buffered, not re-reported.
  std::ofstream(grow, std::ios::binary | std::ios::app)
      << std::string(64, 'Q');
  rows = tail.poll();
  EXPECT_TRUE(rows.error.empty());
  EXPECT_TRUE(rows.ssl.empty());
}

// ---------------------------------------------------------------------------
// Arena-backed checkpoint state

TEST_F(ColfmtTest, CheckpointRoundTripsArenaBackedRecords) {
  // Records whose Strs came out of a container decode (arena-backed,
  // NUL-embedded) survive the watch checkpoint record codecs exactly.
  zeek::X509Record rec = make_x509(7);
  rec.subject = colfmt::Str(std::string("CN=a\0b", 6));
  rec.cert_der =
      colfmt::CertArena::global().intern(std::string("\x00\x01\xfe", 3));
  core::StateWriter w;
  watch::serialize_x509_record(w, rec);
  const std::string blob = w.buffer();
  core::StateReader r(blob);
  const zeek::X509Record back = watch::parse_x509_record(r);
  expect_x509_equal(rec, back, 7);

  zeek::SslRecord ssl = make_ssl(3);
  ssl.server_name = colfmt::Str(std::string("ho\0st", 5));
  core::StateWriter w2;
  watch::serialize_ssl_record(w2, ssl);
  const std::string blob2 = w2.buffer();
  core::StateReader r2(blob2);
  expect_ssl_equal(ssl, watch::parse_ssl_record(r2), 3);
}

}  // namespace
}  // namespace mtlscope
