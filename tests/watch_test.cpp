// Watch subsystem suite (DESIGN §13). The load-bearing assertions:
//
//   * TailSource follows an appended file with absolute byte/line
//     provenance, completes a partial trailing line on a later poll,
//     and survives both rotation shapes — copytruncate (same inode,
//     shrink-in-place) and rename rotation with a late writer still
//     flushing the old fd — delivering every row exactly once;
//   * RowIssue coordinates from a tailed parse are absolute in the
//     file, identical whether the file was read in one pass, tailed in
//     pieces, or resumed mid-file from a checkpointed position (the
//     satellite ledger regression);
//   * WindowScheduler emissions are a pure function of the record
//     stream — the same rows fed in any batch splitting yield
//     byte-identical window, roll-up, and cumulative documents — and
//     the cumulative document equals a batch `run` over the same logs;
//   * a checkpoint round-trips exactly, rejects corruption and version
//     skew, refuses a configuration-fingerprint mismatch, and a
//     restored scheduler finishes byte-identically to one that was
//     never interrupted;
//   * the generation store (DESIGN §16) prunes to --checkpoint-keep,
//     restores the newest verifiable generation (a torn newest file
//     degrades to N-1, not a cold re-read), and still reads the legacy
//     un-suffixed layout; checkpoint saves and emission publishes under
//     injected ENOSPC return classified errors, retain the last-good
//     bytes, and count exactly one degraded episode per outage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mtlscope/core/result_doc.hpp"
#include "mtlscope/experiments/registry.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/ingest/durable_io.hpp"
#include "mtlscope/watch/checkpoint.hpp"
#include "mtlscope/watch/daemon.hpp"
#include "mtlscope/watch/record_tail.hpp"
#include "mtlscope/watch/scheduler.hpp"
#include "mtlscope/watch/tail.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSslHeader =
    "#separator \\x09\n"
    "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"
    "\tversion\tserver_name\testablished\tcert_chain_fuids"
    "\tclient_cert_chain_fuids\n";

std::string ssl_row(double ts, const std::string& uid,
                    const std::string& chain = "(empty)") {
  return core::strf("%.6f\t%s\t10.0.0.1\t1000\t10.0.0.2\t443\tTLSv12\thost"
                    "\tT\t%s\t(empty)\n",
                    ts, uid.c_str(), chain.c_str());
}

/// Scratch directory keyed by PID + test name so the default and
/// sanitizer ctest trees never share files.
class WatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mtlscope_watch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path.string();
  }

  void append_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << text;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// TailSource lifecycle

TEST_F(WatchTest, AppendGrowthKeepsAbsoluteProvenance) {
  const std::string path = write_file(
      "ssl.log", std::string(kSslHeader) + ssl_row(100, "C1") +
                     ssl_row(200, "C2"));
  watch::TailSource tail(path);

  auto batches = tail.poll();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].incarnation_start);
  EXPECT_EQ(batches[0].base_offset, std::string(kSslHeader).size());
  EXPECT_EQ(batches[0].body_lines_before, 0u);
  EXPECT_EQ(batches[0].header_lines, 2u);
  EXPECT_EQ(batches[0].body, ssl_row(100, "C1") + ssl_row(200, "C2"));
  EXPECT_TRUE(tail.made_progress());

  // Nothing new: no batches, no progress.
  EXPECT_TRUE(tail.poll().empty());
  EXPECT_FALSE(tail.made_progress());

  const std::size_t before =
      std::string(kSslHeader).size() + 2 * ssl_row(100, "C1").size();
  append_file(path, ssl_row(300, "C3"));
  batches = tail.poll();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_FALSE(batches[0].incarnation_start);
  EXPECT_EQ(batches[0].base_offset, before);
  EXPECT_EQ(batches[0].body_lines_before, 2u);
  EXPECT_EQ(batches[0].body, ssl_row(300, "C3"));
  EXPECT_EQ(tail.events().bytes_read, before + ssl_row(300, "C3").size());
}

TEST_F(WatchTest, PartialLineCompletesOnLaterPoll) {
  const std::string row = ssl_row(100, "C1");
  const std::string path = write_file("ssl.log", kSslHeader);
  watch::SslTail tail(path);
  EXPECT_EQ(tail.poll().records.size(), 0u);

  // First half of a row, no newline: carried, not parsed.
  append_file(path, row.substr(0, 20));
  auto rows = tail.poll();
  EXPECT_EQ(rows.records.size(), 0u);
  EXPECT_EQ(rows.issues.size(), 0u);

  // The rest arrives: exactly one record, no quarantine.
  append_file(path, row.substr(20));
  rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C1");
  EXPECT_EQ(rows.issues.size(), 0u);
}

TEST_F(WatchTest, DrainFlushesUnterminatedFinalRow) {
  const std::string row = ssl_row(100, "C1");
  const std::string path =
      write_file("ssl.log",
                 std::string(kSslHeader) + row.substr(0, row.size() - 1));
  watch::SslTail tail(path);
  EXPECT_EQ(tail.poll().records.size(), 0u);  // no newline yet
  auto rows = tail.drain();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C1");
}

TEST_F(WatchTest, CopytruncateRestartsAtZero) {
  const std::string path = write_file(
      "ssl.log", std::string(kSslHeader) + ssl_row(100, "C1") +
                     ssl_row(110, "C2") + ssl_row(120, "C3"));
  watch::SslTail tail(path);
  auto rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 3u);

  // logrotate copytruncate: same inode, size drops below the consumed
  // offset, fresh header.
  write_file("ssl.log", std::string(kSslHeader) + ssl_row(200, "C4"));
  rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C4");
  EXPECT_EQ(tail.source().events().truncations, 1u);
  EXPECT_EQ(tail.source().events().rotations, 0u);
  // Provenance restarted with the new incarnation.
  EXPECT_EQ(tail.source().position().body_lines, 1u);

  // Growth after the truncation follows normally.
  append_file(path, ssl_row(210, "C5"));
  rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C5");
  EXPECT_EQ(tail.source().position().body_lines, 2u);
}

TEST_F(WatchTest, RenameRotationDrainsLateWriterFirst) {
  const std::string path = write_file(
      "ssl.log", std::string(kSslHeader) + ssl_row(100, "C1"));
  watch::SslTail tail(path);
  ASSERT_EQ(tail.poll().records.size(), 1u);

  // Rotate: the old inode moves away and a late writer appends one more
  // row to it — including a final line with no newline.
  fs::rename(path, path + ".1");
  append_file(path + ".1", ssl_row(150, "C2"));
  const std::string partial = ssl_row(160, "C3");
  append_file(path + ".1", partial.substr(0, partial.size() - 1));
  write_file("ssl.log", std::string(kSslHeader) + ssl_row(200, "C4"));

  // Poll 1: old fd still had growth — drained first, no switch yet.
  auto rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C2");
  EXPECT_EQ(tail.source().events().rotations, 0u);

  // Poll 2: old fd quiet — flush its unterminated tail as a record,
  // switch to the new inode, read its content. Every row exactly once.
  rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 2u);
  EXPECT_EQ(rows.records[0].uid, "C3");
  EXPECT_EQ(rows.records[1].uid, "C4");
  EXPECT_EQ(tail.source().events().rotations, 1u);

  // The new incarnation keeps flowing.
  append_file(path, ssl_row(300, "C5"));
  rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C5");
}

TEST_F(WatchTest, RotationRecompilesPlanFromNewHeader) {
  // The rotated-in file permutes its columns; rows parse correctly only
  // if the plan recompiled from the new incarnation's header.
  const std::string path = write_file(
      "ssl.log", std::string(kSslHeader) + ssl_row(100, "C1"));
  watch::SslTail tail(path);
  ASSERT_EQ(tail.poll().records.size(), 1u);

  fs::rename(path, path + ".1");
  write_file("ssl.log",
             "#separator \\x09\n"
             "#fields\tuid\tts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n"
             "C9\t500.000000\t10.0.0.1\t1000\t10.0.0.2\t443\n");
  // The old fd is already quiet, so one poll both switches inodes and
  // consumes the new incarnation.
  auto rows = tail.poll();
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].uid, "C9");
  EXPECT_DOUBLE_EQ(rows.records[0].ts, 500.0);
}

// ---------------------------------------------------------------------------
// Absolute issue coordinates across a checkpoint resume (satellite fix)

TEST_F(WatchTest, IssueCoordinatesAbsoluteAcrossResume) {
  // Two malformed rows, one before and one after the resume point.
  const std::string content = std::string(kSslHeader) + ssl_row(100, "C1") +
                              "not\ta\tvalid\trow\n" + ssl_row(200, "C2") +
                              ssl_row(300, "C3") + "also\tbad\n" +
                              ssl_row(400, "C4");
  const std::string path = write_file("full.log", content);

  // Reference: one uninterrupted tailed read.
  watch::SslTail full(path);
  const auto all = full.drain();
  ASSERT_EQ(all.issues.size(), 2u);

  // Resumed read: tail the first half, checkpoint the position, re-open
  // a fresh tail from it over the grown file.
  const std::size_t split = content.size() / 2;
  const std::string grown = write_file("grown.log", content.substr(0, split));
  watch::SslTail first(grown);
  auto part = first.poll();
  const watch::TailPosition position = first.source().position();

  append_file(grown, content.substr(split));
  watch::SslTail resumed(grown);
  ASSERT_TRUE(resumed.source().restore(position));
  const auto rest = resumed.drain();

  std::vector<zeek::RowIssue> combined = part.issues;
  combined.insert(combined.end(), rest.issues.begin(), rest.issues.end());
  ASSERT_EQ(combined.size(), all.issues.size());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    EXPECT_EQ(combined[i].line, all.issues[i].line) << "issue " << i;
    EXPECT_EQ(combined[i].byte_offset, all.issues[i].byte_offset)
        << "issue " << i;
    EXPECT_EQ(combined[i].digest, all.issues[i].digest) << "issue " << i;
  }
  // And the records match too (every row exactly once).
  std::size_t total = part.records.size() + rest.records.size();
  EXPECT_EQ(total, all.records.size());
}

TEST_F(WatchTest, RestoreRefusesRotatedOrShrunkFile) {
  const std::string path = write_file(
      "ssl.log", std::string(kSslHeader) + ssl_row(100, "C1"));
  watch::TailSource tail(path);
  tail.poll();
  watch::TailPosition position = tail.position();

  // Different inode at the path: restart from 0, not the stored offset.
  fs::rename(path, path + ".old");
  write_file("ssl.log", std::string(kSslHeader) + ssl_row(200, "C2"));
  watch::TailSource rotated(path);
  EXPECT_FALSE(rotated.restore(position));
  auto batches = rotated.poll();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].body, ssl_row(200, "C2"));

  // Same inode but shorter than the stored offset: also restart.
  position.offset += 1 << 20;
  watch::TailSource shrunk(path);
  EXPECT_FALSE(shrunk.restore(position));
}

// ---------------------------------------------------------------------------
// WindowScheduler determinism and batch identity

struct Captured {
  std::vector<watch::Emission> emissions;
  watch::EmitFn fn() {
    return [this](const watch::Emission& e) { emissions.push_back(e); };
  }
};

/// Synthetic logs rendered to files: the generator's ssl stream is
/// time-ordered, so windows close progressively. The records are read
/// back through the typed tails, so the scheduler sees exactly what a
/// watch over these files would see.
struct LogPair {
  std::string ssl_path, x509_path;
  std::vector<zeek::SslRecord> ssl;
  std::vector<zeek::X509Record> x509;
};

class WatchSchedulerTest : public WatchTest {
 public:
  std::string ssl_path(const std::string& text) {
    return write_file("ssl.log", text);
  }
  std::string x509_path(const std::string& text) {
    return write_file("x509.log", text);
  }

  watch::WatchConfig scheduler_config(const std::string& ssl,
                                      const std::string& x509,
                                      std::int64_t window_seconds) {
    watch::WatchConfig config;
    config.window_seconds = window_seconds;
    config.rollup_windows = 4;
    config.experiments = {"table1", "fig1"};
    config.run.ssl_log = ssl;
    config.run.x509_log = x509;
    config.run.stable_output = true;
    config.run.threads = 1;
    return config;
  }

  LogPair generated_logs(double cert_scale, double conn_scale) {
    gen::TraceGenerator generator(gen::paper_model(cert_scale, conn_scale));
    const auto dataset = generator.generate_dataset();
    LogPair out;
    out.ssl_path = ssl_path(zeek::ssl_log_to_string(dataset.ssl()));
    out.x509_path = x509_path(zeek::x509_log_to_string(dataset));
    // Polls cap at kMaxReadPerPoll, so loop until the backlog is gone
    // before the final drain (exactly the daemon's catch-up behaviour).
    watch::SslTail ssl_tail(out.ssl_path);
    do {
      auto rows = ssl_tail.poll();
      out.ssl.insert(out.ssl.end(), rows.records.begin(), rows.records.end());
    } while (ssl_tail.source().made_progress());
    watch::X509Tail x509_tail(out.x509_path);
    do {
      auto rows = x509_tail.poll();
      out.x509.insert(out.x509.end(), rows.records.begin(),
                      rows.records.end());
    } while (x509_tail.source().made_progress());
    return out;
  }
};

/// Feeds the rows in `ssl_batch` / `x509_batch` sized slices, x509
/// slightly ahead (the daemon polls x509 first). No drain.
void feed_no_drain(watch::WindowScheduler& scheduler, const LogPair& logs,
                   std::size_t ssl_batch, std::size_t x509_batch,
                   std::size_t* fed_ssl = nullptr,
                   std::size_t* fed_x509 = nullptr) {
  std::size_t si = 0, xi = 0;
  while (si < logs.ssl.size() || xi < logs.x509.size()) {
    if (xi < logs.x509.size()) {
      const std::size_t n = std::min(x509_batch, logs.x509.size() - xi);
      scheduler.add_x509({logs.x509.begin() + xi, logs.x509.begin() + xi + n});
      xi += n;
    }
    if (si < logs.ssl.size()) {
      const std::size_t n = std::min(ssl_batch, logs.ssl.size() - si);
      scheduler.add_ssl({logs.ssl.begin() + si, logs.ssl.begin() + si + n});
      si += n;
    }
  }
  if (fed_ssl != nullptr) *fed_ssl = si;
  if (fed_x509 != nullptr) *fed_x509 = xi;
}

void feed(watch::WindowScheduler& scheduler, const LogPair& logs,
          std::size_t ssl_batch, std::size_t x509_batch) {
  feed_no_drain(scheduler, logs, ssl_batch, x509_batch);
  scheduler.drain();
}

TEST_F(WatchSchedulerTest, EmissionsIndependentOfBatchSplitting) {
  const LogPair logs = generated_logs(8'000, 800'000);
  ASSERT_GT(logs.ssl.size(), 100u);
  const auto config =
      scheduler_config(logs.ssl_path, logs.x509_path, 7 * 24 * 3600);

  Captured a, b, c;
  {
    watch::WindowScheduler s(config, a.fn());
    feed(s, logs, logs.ssl.size(), logs.x509.size());  // one big batch
  }
  {
    watch::WindowScheduler s(config, b.fn());
    feed(s, logs, 7, 3);  // dribble
  }
  {
    watch::WindowScheduler s(config, c.fn());
    feed(s, logs, 1, 1);  // record-at-a-time
  }

  ASSERT_EQ(a.emissions.size(), b.emissions.size());
  ASSERT_EQ(a.emissions.size(), c.emissions.size());
  ASSERT_GT(a.emissions.size(), 2u);  // at least one window + cumulative
  for (std::size_t i = 0; i < a.emissions.size(); ++i) {
    EXPECT_EQ(a.emissions[i].kind, b.emissions[i].kind) << i;
    EXPECT_EQ(a.emissions[i].start_ts, b.emissions[i].start_ts) << i;
    EXPECT_EQ(a.emissions[i].envelope, b.emissions[i].envelope) << i;
    EXPECT_EQ(a.emissions[i].envelope, c.emissions[i].envelope) << i;
  }
}

TEST_F(WatchSchedulerTest, CumulativeMatchesBatchRun) {
  const LogPair logs = generated_logs(4'000, 400'000);
  const auto config =
      scheduler_config(logs.ssl_path, logs.x509_path, 7 * 24 * 3600);

  Captured captured;
  watch::WindowScheduler scheduler(config, captured.fn());
  feed(scheduler, logs, 11, 5);

  ASSERT_FALSE(captured.emissions.empty());
  const auto& last = captured.emissions.back();
  ASSERT_EQ(last.kind, watch::Emission::Kind::kCumulative);

  const auto docs =
      experiments::run_experiments(config.experiments, config.run);
  const std::string batch = core::render_json_envelope(docs, false);
  EXPECT_EQ(last.envelope, batch);
}

TEST_F(WatchSchedulerTest, HeldRecordsReleaseWhenCertificatesArrive) {
  const std::string ssl = ssl_path(std::string(kSslHeader));
  const std::string x509 = x509_path("");
  auto config = scheduler_config(ssl, x509, 3600);

  Captured captured;
  watch::WindowScheduler scheduler(config, captured.fn());

  // A record citing a cert that has not arrived is held...
  zeek::SslRecord record;
  record.ts = 100;
  record.uid = "C1";
  record.cert_chain_fuids = {"Fmissing"};
  scheduler.add_ssl({record});
  EXPECT_EQ(scheduler.held(), 1u);

  // ...and a later record queues strictly behind it, even without deps.
  zeek::SslRecord record2;
  record2.ts = 101;
  record2.uid = "C2";
  scheduler.add_ssl({record2});
  EXPECT_EQ(scheduler.held(), 2u);

  // The certificate arrives: both release in stream order.
  zeek::X509Record cert;
  cert.fuid = "Fmissing";
  scheduler.add_x509({cert});
  EXPECT_EQ(scheduler.held(), 0u);
  EXPECT_EQ(scheduler.status().ssl_records, 2u);
}

// ---------------------------------------------------------------------------
// Checkpoint format

TEST_F(WatchSchedulerTest, CheckpointRoundTripsExactly) {
  const LogPair logs = generated_logs(8'000, 800'000);
  const auto config =
      scheduler_config(logs.ssl_path, logs.x509_path, 7 * 24 * 3600);

  Captured captured;
  watch::WindowScheduler scheduler(config, captured.fn());
  // Feed half the stream so there is a live watermark, open windows,
  // and (likely) cumulative state.
  LogPair half = logs;
  half.ssl.resize(logs.ssl.size() / 2);
  std::size_t si = 0;
  scheduler.add_x509(std::vector<zeek::X509Record>(logs.x509));
  while (si < half.ssl.size()) {
    const std::size_t n = std::min<std::size_t>(13, half.ssl.size() - si);
    scheduler.add_ssl({half.ssl.begin() + si, half.ssl.begin() + si + n});
    si += n;
  }

  watch::WatchCheckpoint ckpt;
  scheduler.save(ckpt);
  ckpt.ssl_tail.inode = 42;
  ckpt.ssl_tail.offset = 1234;
  ckpt.ssl_tail.carry = "partial\tline";
  const std::string bytes = watch::serialize_watch_checkpoint(ckpt);

  std::string error;
  auto parsed = watch::parse_watch_checkpoint(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Exact round trip: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(watch::serialize_watch_checkpoint(*parsed), bytes);
  EXPECT_EQ(parsed->ssl_tail.inode, 42u);
  EXPECT_EQ(parsed->ssl_tail.carry, "partial\tline");
  EXPECT_EQ(parsed->ssl_records_seen, half.ssl.size());

  // Every corrupted byte is caught (digest trailer).
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x20;
  EXPECT_FALSE(watch::parse_watch_checkpoint(corrupt, &error).has_value());
  EXPECT_FALSE(error.empty());

  // Truncation is a structured error, not a crash.
  EXPECT_FALSE(watch::parse_watch_checkpoint(
                   std::string_view(bytes).substr(0, bytes.size() / 3), &error)
                   .has_value());

  // Version skew hard-rejects (bytes 8..11 hold the format version).
  std::string skewed = bytes;
  skewed[8] = static_cast<char>(watch::kWatchFormatVersion + 1);
  EXPECT_FALSE(watch::parse_watch_checkpoint(skewed, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(WatchSchedulerTest, RestoreRefusesConfigMismatch) {
  const std::string ssl = ssl_path(std::string(kSslHeader));
  const std::string x509 = x509_path("");
  const auto config = scheduler_config(ssl, x509, 3600);

  Captured captured;
  watch::WindowScheduler scheduler(config, captured.fn());
  watch::WatchCheckpoint ckpt;
  scheduler.save(ckpt);

  // Same config restores fine.
  watch::WindowScheduler same(config, captured.fn());
  std::string error;
  EXPECT_TRUE(same.restore(ckpt, &error)) << error;

  // Different window geometry / experiments / seed are refused.
  auto other = scheduler_config(ssl, x509, 7200);
  watch::WindowScheduler wrong_window(other, captured.fn());
  EXPECT_FALSE(wrong_window.restore(ckpt, &error));
  EXPECT_FALSE(error.empty());

  auto fewer = config;
  fewer.experiments = {"table1"};
  watch::WindowScheduler wrong_experiments(fewer, captured.fn());
  EXPECT_FALSE(wrong_experiments.restore(ckpt, &error));

  auto reseeded = config;
  reseeded.run.seed = 7;
  watch::WindowScheduler wrong_seed(reseeded, captured.fn());
  EXPECT_FALSE(wrong_seed.restore(ckpt, &error));
}

TEST_F(WatchSchedulerTest, RestoredSchedulerFinishesIdentically) {
  const LogPair logs = generated_logs(8'000, 800'000);
  const auto config =
      scheduler_config(logs.ssl_path, logs.x509_path, 7 * 24 * 3600);

  // Reference: uninterrupted run.
  Captured reference;
  {
    watch::WindowScheduler s(config, reference.fn());
    feed(s, logs, 9, 4);
  }

  // Interrupted run: feed 60%, checkpoint, throw the scheduler away,
  // restore into a fresh one, feed the rest.
  Captured resumed;
  watch::WatchCheckpoint ckpt;
  std::size_t fed_ssl = 0, fed_x509 = 0;
  {
    watch::WindowScheduler s(config, resumed.fn());
    LogPair part = logs;
    part.ssl.resize(logs.ssl.size() * 6 / 10);
    part.x509.resize(logs.x509.size() * 6 / 10);
    feed_no_drain(s, part, 9, 4, &fed_ssl, &fed_x509);
    s.save(ckpt);
  }
  {
    watch::WindowScheduler s(config, resumed.fn());
    std::string error;
    ASSERT_TRUE(s.restore(ckpt, &error)) << error;
    LogPair rest;
    rest.ssl.assign(logs.ssl.begin() + fed_ssl, logs.ssl.end());
    rest.x509.assign(logs.x509.begin() + fed_x509, logs.x509.end());
    feed(s, rest, 9, 4);
  }

  // The resumed run must re-emit nothing extra and end byte-identical:
  // compare the emission streams.
  ASSERT_EQ(reference.emissions.size(), resumed.emissions.size());
  for (std::size_t i = 0; i < reference.emissions.size(); ++i) {
    EXPECT_EQ(reference.emissions[i].envelope, resumed.emissions[i].envelope)
        << "emission " << i;
  }
}

// ---------------------------------------------------------------------------
// Durable checkpoint store + degraded publication (DESIGN §16)

watch::WatchCheckpoint tagged_checkpoint(std::uint64_t tag) {
  watch::WatchCheckpoint ckpt;
  ckpt.seed = tag;  // distinguishes generations after a restore
  ckpt.ssl_records_seen = tag;
  return ckpt;
}

TEST_F(WatchTest, CheckpointStoreWritesGenerationsAndPrunes) {
  watch::CheckpointStore store(dir_.string(), 3);
  EXPECT_FALSE(store.has_any());
  EXPECT_EQ(store.next_generation(), 1u);
  for (std::uint64_t g = 1; g <= 5; ++g) {
    const auto saved = store.save(tagged_checkpoint(g));
    ASSERT_TRUE(saved.ok) << saved.message;
  }
  // Only the newest 3 generations survive the prune.
  const auto gens = watch::CheckpointStore::list(dir_.string());
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens.front().first, 3u);
  EXPECT_EQ(gens.back().first, 5u);
  EXPECT_EQ(store.next_generation(), 6u);

  std::uint64_t generation = 0;
  std::uint32_t skipped = 0;
  std::string error;
  auto loaded = store.load(&error, &generation, &skipped);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(generation, 5u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(loaded->seed, 5u);
}

TEST_F(WatchTest, CheckpointStoreTornNewestRestoresPrevious) {
  watch::CheckpointStore store(dir_.string(), 3);
  for (std::uint64_t g = 1; g <= 3; ++g) {
    ASSERT_TRUE(store.save(tagged_checkpoint(g)).ok);
  }
  // Tear generation 3 the way a torn rename would: keep a prefix only.
  const std::string newest = (dir_ / "watch.ckpt.3").string();
  const std::string bytes = [&] {
    std::ifstream in(newest, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }();
  ASSERT_GT(bytes.size(), 2u);
  std::ofstream(newest, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  std::uint64_t generation = 0;
  std::uint32_t skipped = 0;
  std::string error;
  watch::CheckpointStore reopened(dir_.string(), 3);
  auto loaded = reopened.load(&error, &generation, &skipped);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(generation, 2u);  // degraded to N-1, not a cold re-read
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(loaded->seed, 2u);
  // The torn file still occupied its generation number: the next save
  // moves past it rather than silently rewriting a bad slot readers may
  // have seen.
  EXPECT_EQ(reopened.next_generation(), 4u);
}

TEST_F(WatchTest, CheckpointStoreReadsLegacyUnsuffixedFile) {
  const auto saved = watch::save_watch_checkpoint(
      (dir_ / "watch.ckpt").string(), tagged_checkpoint(9));
  ASSERT_TRUE(saved.ok) << saved.message;
  watch::CheckpointStore store(dir_.string(), 3);
  EXPECT_TRUE(store.has_any());
  EXPECT_EQ(store.next_generation(), 1u);  // legacy file is generation 0
  std::uint64_t generation = 99;
  auto loaded = store.load(nullptr, &generation, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(generation, 0u);
  EXPECT_EQ(loaded->seed, 9u);
}

TEST_F(WatchTest, CheckpointStoreAllGenerationsBadReportsNewestError) {
  watch::CheckpointStore store(dir_.string(), 2);
  ASSERT_TRUE(store.save(tagged_checkpoint(1)).ok);
  std::ofstream((dir_ / "watch.ckpt.1").string(),
                std::ios::binary | std::ios::trunc)
      << "garbage";
  std::string error;
  std::uint32_t skipped = 0;
  EXPECT_FALSE(store.load(&error, nullptr, &skipped).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(skipped, 1u);
}

TEST_F(WatchTest, SaveWatchCheckpointClassifiesEnospc) {
  ingest::FaultVfs::instance().clear();
  ingest::reset_write_retry_counters();
  ingest::FaultVfs::instance().fail_write_range(1, 1000, ENOSPC);
  const auto saved = watch::save_watch_checkpoint(
      (dir_ / "watch.ckpt").string(), tagged_checkpoint(1));
  ingest::FaultVfs::instance().clear();
  EXPECT_FALSE(saved.ok);
  EXPECT_EQ(saved.cls, ingest::WriteClass::kNoSpace);
  EXPECT_EQ(saved.err, ENOSPC);
  EXPECT_NE(saved.message.find("no-space"), std::string::npos)
      << saved.message;
  EXPECT_FALSE(fs::exists(dir_ / "watch.ckpt"));
  EXPECT_GE(
      ingest::write_retry_counters().enospc_failures.load(), 1u);
}

TEST_F(WatchTest, DurablePublisherDegradedModeCountsEpisodesAndRecovers) {
  ingest::FaultVfs::instance().clear();
  ingest::reset_write_retry_counters();
  watch::DurablePublisher publisher(dir_.string());
  ASSERT_TRUE(publisher.publish("cumulative.json", "v1"));
  EXPECT_FALSE(publisher.degraded());

  // Disk fills: the publish fails, the last-good file survives, exactly
  // one episode is counted no matter how many publishes fail.
  ingest::FaultVfs::instance().fail_write_range(1, 1'000'000, ENOSPC);
  EXPECT_FALSE(publisher.publish("cumulative.json", "v2"));
  EXPECT_FALSE(publisher.publish("window-000000000000.json", "w1"));
  EXPECT_FALSE(publisher.retry_pending());
  EXPECT_TRUE(publisher.degraded());
  EXPECT_EQ(publisher.pending(), 2u);
  EXPECT_EQ(publisher.degraded_episodes(), 1u);
  EXPECT_EQ(ingest::write_retry_counters().degraded_episodes.load(), 1u);
  {
    std::ifstream in(dir_ / "cumulative.json", std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, "v1");  // last-good output retained
  }

  // A newer version supersedes the queued one (latest wins), then the
  // disk clears and retry_pending flushes everything.
  EXPECT_FALSE(publisher.publish("cumulative.json", "v3"));
  EXPECT_EQ(publisher.pending(), 2u);
  ingest::FaultVfs::instance().clear();
  EXPECT_TRUE(publisher.retry_pending());
  EXPECT_FALSE(publisher.degraded());
  EXPECT_EQ(publisher.pending(), 0u);
  EXPECT_EQ(publisher.degraded_episodes(), 1u);
  {
    std::ifstream in(dir_ / "cumulative.json", std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, "v3");
  }
}

// ---------------------------------------------------------------------------
// parse_window_spec

TEST(WatchSpecTest, ParseWindowSpec) {
  EXPECT_EQ(watch::parse_window_spec("hour"), 3600);
  EXPECT_EQ(watch::parse_window_spec("day"), 24 * 3600);
  EXPECT_EQ(watch::parse_window_spec("week"), 7 * 24 * 3600);
  EXPECT_EQ(watch::parse_window_spec("900"), 900);
  EXPECT_EQ(watch::parse_window_spec("0"), 0);
  EXPECT_EQ(watch::parse_window_spec("-5"), 0);
  EXPECT_EQ(watch::parse_window_spec("fortnight"), 0);
  EXPECT_EQ(watch::parse_window_spec(""), 0);
}

}  // namespace
}  // namespace mtlscope
