#include <gtest/gtest.h>

#include "mtlscope/net/ip.hpp"
#include "mtlscope/net/services.hpp"

namespace mtlscope::net {
namespace {

TEST(IpAddress, ParseV4) {
  const auto a = IpAddress::parse("128.143.2.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->to_string(), "128.143.2.7");
  EXPECT_EQ(a->v4_value(), 0x808f0207u);
}

TEST(IpAddress, ParseV4Rejects) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.256").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.").has_value());
  EXPECT_FALSE(IpAddress::parse(".1.2.3.4").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4 ").has_value());
}

TEST(IpAddress, ParseV6) {
  const auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->is_v4());
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IpAddress, ParseV6Full) {
  const auto a = IpAddress::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2001:db8::ff00:42:8329");
}

TEST(IpAddress, ParseV6Loopback) {
  const auto a = IpAddress::parse("::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "::1");
}

TEST(IpAddress, ParseV6AllZeros) {
  const auto a = IpAddress::parse("::");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "::");
}

TEST(IpAddress, ParseV6Rejects) {
  EXPECT_FALSE(IpAddress::parse(":::").has_value());
  EXPECT_FALSE(IpAddress::parse("2001:db8::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("2001:db8:1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("2001:xyz::1").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7").has_value());  // 7 groups, no gap
}

TEST(IpAddress, V6RoundTripSweep) {
  const char* cases[] = {"::", "::1", "1::", "fe80::1", "2001:db8::ff00:42:8329",
                         "1:2:3:4:5:6:7:8", "::ffff:1:2"};
  for (const char* s : cases) {
    const auto a = IpAddress::parse(s);
    ASSERT_TRUE(a.has_value()) << s;
    const auto b = IpAddress::parse(a->to_string());
    ASSERT_TRUE(b.has_value()) << s;
    EXPECT_EQ(*a, *b) << s;
  }
}

TEST(IpAddress, Ordering) {
  const auto a = *IpAddress::parse("10.0.0.1");
  const auto b = *IpAddress::parse("10.0.0.2");
  EXPECT_LT(a, b);
  EXPECT_EQ(a, *IpAddress::parse("10.0.0.1"));
}

TEST(Subnet, ContainsV4) {
  const auto net = Subnet::parse("128.143.0.0/16");
  ASSERT_TRUE(net.has_value());
  EXPECT_TRUE(net->contains(*IpAddress::parse("128.143.255.1")));
  EXPECT_FALSE(net->contains(*IpAddress::parse("128.144.0.1")));
  EXPECT_FALSE(net->contains(*IpAddress::parse("2001:db8::1")));
}

TEST(Subnet, CanonicalizesHostBits) {
  const Subnet net(*IpAddress::parse("10.1.2.3"), 24);
  EXPECT_EQ(net.to_string(), "10.1.2.0/24");
}

TEST(Subnet, ZeroPrefixContainsEverything) {
  const auto net = Subnet::parse("0.0.0.0/0");
  ASSERT_TRUE(net.has_value());
  EXPECT_TRUE(net->contains(*IpAddress::parse("255.255.255.255")));
}

TEST(Subnet, V6Contains) {
  const auto net = Subnet::parse("2001:db8::/32");
  ASSERT_TRUE(net.has_value());
  EXPECT_TRUE(net->contains(*IpAddress::parse("2001:db8:ffff::1")));
  EXPECT_FALSE(net->contains(*IpAddress::parse("2001:db9::1")));
}

TEST(Subnet, ParseRejects) {
  EXPECT_FALSE(Subnet::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Subnet::parse("10.0.0.0/a").has_value());
  EXPECT_FALSE(Subnet::parse("2001:db8::/129").has_value());
}

TEST(Subnet, Slash24Grouping) {
  const auto a = slash24_of(*IpAddress::parse("192.168.5.17"));
  const auto b = slash24_of(*IpAddress::parse("192.168.5.200"));
  const auto c = slash24_of(*IpAddress::parse("192.168.6.17"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "192.168.5.0/24");
}

TEST(Services, IanaLookups) {
  EXPECT_EQ(lookup_service(443)->name, "HTTPS");
  EXPECT_EQ(lookup_service(25)->name, "SMTP");
  EXPECT_EQ(lookup_service(636)->name, "LDAPS");
  EXPECT_EQ(lookup_service(8883)->name, "MQTT over TLS");
  EXPECT_EQ(lookup_service(993)->name, "IMAPS");
  EXPECT_FALSE(lookup_service(52730).has_value());
}

TEST(Services, CorporateServices) {
  EXPECT_EQ(lookup_service(20017)->name, "FileWave");
  EXPECT_EQ(lookup_service(20017)->provider, "Corp.");
  EXPECT_EQ(lookup_service(9997)->name, "Splunk");
  EXPECT_EQ(lookup_service(9093)->name, "Outset Medical");
  EXPECT_EQ(lookup_service(33854)->name, "DvTel");
}

TEST(Services, GlobusPortRange) {
  EXPECT_EQ(lookup_service(50000)->name, "Globus");
  EXPECT_EQ(lookup_service(50500)->name, "Globus");
  EXPECT_EQ(lookup_service(51000)->name, "Globus");
  EXPECT_FALSE(lookup_service(51001).has_value());
  EXPECT_FALSE(lookup_service(49999).has_value());
}

TEST(Services, Labels) {
  EXPECT_EQ(service_label(443, false), "HTTPS");
  EXPECT_EQ(service_label(20017, true), "Corp. - FileWave");
  EXPECT_EQ(service_label(52730, true), "Univ. - Unknown");
  EXPECT_EQ(service_label(52730, false), "Unknown");
}

}  // namespace
}  // namespace mtlscope::net
