#include <gtest/gtest.h>

#include "mtlscope/asn1/der.hpp"
#include "mtlscope/asn1/oid.hpp"

namespace mtlscope::asn1 {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (const int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- Oid ---------------------------------------------------------------------

TEST(Oid, ParseAndToString) {
  const auto oid = Oid::parse("2.5.4.3");
  ASSERT_TRUE(oid.has_value());
  EXPECT_EQ(oid->to_string(), "2.5.4.3");
  EXPECT_EQ(*oid, oids::common_name());
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::parse("").has_value());
  EXPECT_FALSE(Oid::parse("1").has_value());       // needs two arcs
  EXPECT_FALSE(Oid::parse("1.").has_value());
  EXPECT_FALSE(Oid::parse(".1.2").has_value());
  EXPECT_FALSE(Oid::parse("1..2").has_value());
  EXPECT_FALSE(Oid::parse("1.2x").has_value());
  EXPECT_FALSE(Oid::parse("3.1").has_value());     // first arc <= 2
  EXPECT_FALSE(Oid::parse("1.40").has_value());    // second arc <= 39
}

TEST(Oid, Ordering) {
  EXPECT_LT(Oid({2, 5, 4, 3}), Oid({2, 5, 4, 10}));
  EXPECT_LT(Oid({1, 2}), Oid({2, 5}));
}

// --- Writer/Reader round-trips -------------------------------------------------

TEST(Der, IntegerKnownEncodings) {
  DerWriter w;
  w.integer(0);
  EXPECT_EQ(w.bytes(), bytes({0x02, 0x01, 0x00}));

  DerWriter w2;
  w2.integer(127);
  EXPECT_EQ(w2.bytes(), bytes({0x02, 0x01, 0x7f}));

  DerWriter w3;
  w3.integer(128);
  EXPECT_EQ(w3.bytes(), bytes({0x02, 0x02, 0x00, 0x80}));

  DerWriter w4;
  w4.integer(-1);
  EXPECT_EQ(w4.bytes(), bytes({0x02, 0x01, 0xff}));

  DerWriter w5;
  w5.integer(-129);
  EXPECT_EQ(w5.bytes(), bytes({0x02, 0x02, 0xff, 0x7f}));
}

class DerIntegerRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DerIntegerRoundTrip, RoundTrips) {
  DerWriter w;
  w.integer(GetParam());
  DerReader r(w.bytes());
  EXPECT_EQ(r.read().as_integer(), GetParam());
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, DerIntegerRoundTrip,
    ::testing::Values(0, 1, -1, 127, 128, 255, 256, -128, -129, 65535,
                      -65536, 0x7fffffffLL, -0x80000000LL,
                      0x7fffffffffffffffLL,
                      -0x7fffffffffffffffLL - 1));

TEST(Der, IntegerUnsignedAddsSignOctet) {
  DerWriter w;
  const auto magnitude = bytes({0x80});
  w.integer_unsigned(magnitude);
  EXPECT_EQ(w.bytes(), bytes({0x02, 0x02, 0x00, 0x80}));
}

TEST(Der, IntegerUnsignedStripsLeadingZeros) {
  DerWriter w;
  const auto magnitude = bytes({0x00, 0x00, 0x01});
  w.integer_unsigned(magnitude);
  EXPECT_EQ(w.bytes(), bytes({0x02, 0x01, 0x01}));
}

TEST(Der, IntegerUnsignedZero) {
  DerWriter w;
  w.integer_unsigned({});
  EXPECT_EQ(w.bytes(), bytes({0x02, 0x01, 0x00}));
}

TEST(Der, BooleanRoundTrip) {
  DerWriter w;
  w.boolean(true);
  w.boolean(false);
  DerReader r(w.bytes());
  EXPECT_TRUE(r.read().as_boolean());
  EXPECT_FALSE(r.read().as_boolean());
}

TEST(Der, OidKnownEncoding) {
  DerWriter w;
  w.oid(oids::common_name());  // 2.5.4.3
  EXPECT_EQ(w.bytes(), bytes({0x06, 0x03, 0x55, 0x04, 0x03}));
}

class DerOidRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DerOidRoundTrip, RoundTrips) {
  const auto oid = Oid::parse(GetParam());
  ASSERT_TRUE(oid.has_value());
  DerWriter w;
  w.oid(*oid);
  DerReader r(w.bytes());
  EXPECT_EQ(r.read().as_oid(), *oid);
}

INSTANTIATE_TEST_SUITE_P(Values, DerOidRoundTrip,
                         ::testing::Values("2.5.4.3", "1.2.840.113549.1.1.11",
                                           "1.3.6.1.4.1.57264.1.1", "0.9",
                                           "2.999.4294967295",
                                           "1.0.8571.2"));

TEST(Der, StringsRoundTrip) {
  DerWriter w;
  w.utf8_string("héllo");
  w.printable_string("Example CA");
  w.ia5_string("smtp.example.com");
  DerReader r(w.bytes());
  EXPECT_EQ(r.read().text(), "héllo");
  EXPECT_EQ(r.read().text(), "Example CA");
  EXPECT_EQ(r.read().text(), "smtp.example.com");
}

TEST(Der, OctetAndBitString) {
  const auto payload = bytes({0xde, 0xad, 0xbe, 0xef});
  DerWriter w;
  w.octet_string(payload);
  w.bit_string(payload);
  DerReader r(w.bytes());
  const auto octets = r.read();
  EXPECT_TRUE(octets.tag.is_universal(tags::kOctetString));
  EXPECT_EQ(std::vector<std::uint8_t>(octets.content.begin(),
                                      octets.content.end()),
            payload);
  const auto bits = r.read().as_bit_string();
  EXPECT_EQ(std::vector<std::uint8_t>(bits.begin(), bits.end()), payload);
}

TEST(Der, NestedSequences) {
  DerWriter w;
  w.sequence([](DerWriter& outer) {
    outer.integer(1);
    outer.sequence([](DerWriter& inner) { inner.integer(2); });
  });
  DerReader r(w.bytes());
  const auto seq = r.read(Tag::sequence(), "outer");
  DerReader inner(seq);
  EXPECT_EQ(inner.read().as_integer(), 1);
  const auto nested = inner.read(Tag::sequence(), "inner");
  DerReader nested_r(nested);
  EXPECT_EQ(nested_r.read().as_integer(), 2);
}

TEST(Der, LongLengthEncoding) {
  // > 127 bytes of content forces the long length form.
  std::vector<std::uint8_t> payload(300, 0x41);
  DerWriter w;
  w.octet_string(payload);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 0x82);  // two length octets
  EXPECT_EQ(w.bytes()[2], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x2c);
  DerReader r(w.bytes());
  EXPECT_EQ(r.read().content.size(), 300u);
}

TEST(Der, HighTagNumber) {
  DerWriter w;
  w.tlv(Tag::context(1234, false), bytes({0x01}));
  DerReader r(w.bytes());
  const auto v = r.read();
  EXPECT_TRUE(v.tag.is_context(1234));
  EXPECT_EQ(v.content.size(), 1u);
}

TEST(Der, ContextPrimitive) {
  DerWriter w;
  w.context_primitive(2, std::string_view("example.com"));
  DerReader r(w.bytes());
  const auto v = r.read();
  EXPECT_TRUE(v.tag.is_context(2));
  EXPECT_FALSE(v.tag.constructed);
  EXPECT_EQ(v.text(), "example.com");
}

// --- Time encodings ----------------------------------------------------------

TEST(DerTime, UtcTimeWindow) {
  DerWriter w;
  w.time(util::to_unix({2024, 3, 31, 12, 30, 45}));
  DerReader r(w.bytes());
  const auto v = r.read();
  EXPECT_TRUE(v.tag.is_universal(tags::kUtcTime));
  EXPECT_EQ(v.text(), "240331123045Z");
  EXPECT_EQ(v.as_time(), util::to_unix({2024, 3, 31, 12, 30, 45}));
}

TEST(DerTime, UtcTimeFiftyBoundary) {
  // YY >= 50 means 19YY.
  DerWriter w;
  w.time(util::to_unix({1950, 1, 1, 0, 0, 0}));
  DerReader r(w.bytes());
  EXPECT_EQ(r.read().as_time(), util::to_unix({1950, 1, 1, 0, 0, 0}));
}

TEST(DerTime, GeneralizedTimeForExoticYears) {
  for (const int year : {1849, 1831, 1970 - 200, 2157, 2285}) {
    DerWriter w;
    const auto ts = util::to_unix({year, 6, 15, 1, 2, 3});
    w.time(ts);
    DerReader r(w.bytes());
    const auto v = r.read();
    EXPECT_TRUE(v.tag.is_universal(tags::kGeneralizedTime)) << year;
    EXPECT_EQ(v.as_time(), ts) << year;
  }
}

TEST(DerTime, Epoch1970IsUtcTime) {
  DerWriter w;
  w.time(0);
  DerReader r(w.bytes());
  const auto v = r.read();
  EXPECT_TRUE(v.tag.is_universal(tags::kUtcTime));
  EXPECT_EQ(v.as_time(), 0);
}

// --- Reader robustness --------------------------------------------------------

TEST(DerReader, RejectsTruncatedValue) {
  const auto data = bytes({0x02, 0x05, 0x01});
  DerReader r(data);
  EXPECT_THROW(r.read(), DerError);
}

TEST(DerReader, RejectsIndefiniteLength) {
  const auto data = bytes({0x30, 0x80, 0x00, 0x00});
  DerReader r(data);
  EXPECT_THROW(r.read(), DerError);
}

TEST(DerReader, RejectsNonMinimalLength) {
  // Length 3 encoded with the long form.
  const auto data = bytes({0x04, 0x81, 0x03, 0x01, 0x02, 0x03});
  DerReader r(data);
  EXPECT_THROW(r.read(), DerError);
}

TEST(DerReader, RejectsEmptyInput) {
  DerReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.empty());
  EXPECT_THROW(r.read(), DerError);
  EXPECT_FALSE(r.peek_tag().has_value());
}

TEST(DerReader, RejectsNonMinimalOidArc) {
  // 0x80 leading byte in an arc is forbidden.
  const auto data = bytes({0x06, 0x03, 0x55, 0x80, 0x03});
  DerReader r(data);
  EXPECT_THROW(r.read().as_oid(), DerError);
}

TEST(DerReader, PeekDoesNotConsume) {
  DerWriter w;
  w.integer(7);
  DerReader r(w.bytes());
  ASSERT_TRUE(r.peek_tag().has_value());
  EXPECT_TRUE(r.peek_tag()->is_universal(tags::kInteger));
  EXPECT_EQ(r.read().as_integer(), 7);
}

TEST(DerReader, FullSpanCoversWholeTlv) {
  DerWriter w;
  w.integer(7);
  w.integer(8);
  DerReader r(w.bytes());
  const auto first = r.read();
  EXPECT_EQ(first.full.size(), 3u);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(DerValue, TypeMismatchesThrow) {
  DerWriter w;
  w.integer(1);
  DerReader r(w.bytes());
  const auto v = r.read();
  EXPECT_THROW(v.as_boolean(), DerError);
  EXPECT_THROW(v.as_oid(), DerError);
  EXPECT_THROW(v.as_bit_string(), DerError);
  EXPECT_THROW(v.as_time(), DerError);
}

}  // namespace
}  // namespace mtlscope::asn1
