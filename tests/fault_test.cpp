// Degradation suite for the best-effort pipeline (DESIGN §11): seeded
// fault injection over the ingest layer and the quarantine/budget
// machinery built on top of it. The load-bearing assertions:
//
//   * skip-mode results and the finalized ErrorLedger are identical for
//     every thread count and chunk size over the same (dirty) bytes;
//   * clean input leaves the ledger pristine, so skip mode and the
//     default abort mode produce the same pipeline;
//   * abort mode still fails with the deterministic smallest-offset
//     error regardless of parallelism;
//   * the error budget (--max-errors= / --max-error-rate=) converts a
//     too-dirty skip run into a structured abort;
//   * truncation-while-streaming salvages complete records and logs an
//     I/O event; injected transient read failures are absorbed by the
//     shared bounded-backoff retry discipline;
//   * a hostile DER body degrades to the logged-fields fallback — no
//     exception ever crosses the executor's threads.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/ingest/fault.hpp"
#include "mtlscope/ingest/retry.hpp"
#include "mtlscope/ingest/source.hpp"
#include "mtlscope/x509/parser.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;

ingest::IngestOptions skip_options(std::size_t chunk_bytes = 1 << 20) {
  ingest::IngestOptions options;
  options.chunk_bytes = chunk_bytes;
  options.errors.on_error = ingest::ErrorPolicy::Action::kSkip;
  return options;
}

/// Scratch directory keyed by PID + test name so the default and
/// sanitizer ctest trees never share files.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mtlscope_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path.string();
  }

  fs::path dir_;
};

std::string small_ssl_log() {
  return "#separator \\x09\n"
         "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"
         "\tversion\tserver_name\testablished\tcert_chain_fuids"
         "\tclient_cert_chain_fuids\n"
         "100.000000\tC1\t10.0.0.1\t1000\t10.0.0.2\t443\tTLSv12\thost.a"
         "\tT\t(empty)\t(empty)\n"
         "200.000000\tC2\t10.0.0.3\t1001\t10.0.0.4\t443\tTLSv13\thost.b"
         "\tT\t(empty)\t(empty)\n"
         "300.000000\tC3\t10.0.0.5\t1002\t10.0.0.6\t8443\t-\t-"
         "\tF\t(empty)\t(empty)\n";
}

std::string x509_log_header() {
  return "#separator \\x09\n"
         "#fields\tfuid\tcertificate.version\tcertificate.serial"
         "\tcertificate.subject\tcertificate.issuer"
         "\tcertificate.not_valid_before\tcertificate.not_valid_after"
         "\tcertificate.key_alg\tcertificate.key_length\tsan.dns"
         "\tsan.email\tsan.uri\tsan.ip\tcert_der\n";
}

/// Generated trace rendered to log text — the realistic corpus the
/// corruption property tests run over.
struct Corpus {
  std::string ssl;
  std::string x509;
};

Corpus generated_corpus() {
  gen::TraceGenerator generator(gen::paper_model(2'000, 1'000'000));
  const auto dataset = generator.generate_dataset();
  return {zeek::ssl_log_to_string(dataset.ssl()),
          zeek::x509_log_to_string(dataset)};
}

void expect_same_ledger(const core::ErrorLedger& a,
                        const core::ErrorLedger& b) {
  EXPECT_EQ(a.quarantined(core::InputRole::kSsl),
            b.quarantined(core::InputRole::kSsl));
  EXPECT_EQ(a.quarantined(core::InputRole::kX509),
            b.quarantined(core::InputRole::kX509));
  EXPECT_EQ(a.rows_ok_total(), b.rows_ok_total());
  EXPECT_EQ(a.io_events(), b.io_events());
  EXPECT_EQ(a.samples_truncated(), b.samples_truncated());
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.input, eb.input) << "entry " << i;
    EXPECT_EQ(ea.byte_offset, eb.byte_offset) << "entry " << i;
    EXPECT_EQ(ea.line, eb.line) << "entry " << i;
    EXPECT_EQ(ea.raw_length, eb.raw_length) << "entry " << i;
    EXPECT_EQ(ea.reason, eb.reason) << "entry " << i;
    EXPECT_EQ(ea.digest, eb.digest) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// The fault primitives themselves

TEST(FaultPrimitives, ByteCorruptionIsPureAndRateBounded) {
  for (const std::size_t offset : {0u, 1u, 63u, 4096u, 1u << 20}) {
    EXPECT_FALSE(ingest::fault_corrupts_byte(7, 0.0, offset));
    EXPECT_TRUE(ingest::fault_corrupts_byte(7, 1.0, offset));
    EXPECT_EQ(ingest::fault_corrupts_byte(7, 0.25, offset),
              ingest::fault_corrupts_byte(7, 0.25, offset));
  }
  // Different seeds disagree somewhere.
  std::size_t disagreements = 0;
  for (std::size_t offset = 0; offset < 4096; ++offset) {
    if (ingest::fault_corrupts_byte(1, 0.5, offset) !=
        ingest::fault_corrupts_byte(2, 0.5, offset)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0u);
}

TEST(FaultPrimitives, ByteCorruptionIsFetchSizeInvariant) {
  const std::string text = small_ssl_log();
  const ingest::MemorySource inner(text);
  ingest::FaultPlan plan;
  plan.seed = 42;
  plan.corrupt_byte_rate = 0.05;
  const ingest::FaultInjectingSource faulty(inner, plan);

  std::string scratch;
  const std::string whole(faulty.fetch(0, text.size(), scratch));
  ASSERT_EQ(whole.size(), text.size());
  // Reassembling from tiny fetches yields the same corrupted bytes…
  std::string pieced;
  for (std::size_t offset = 0; offset < text.size(); offset += 7) {
    std::string s;
    pieced += faulty.fetch(offset, 7, s);
  }
  EXPECT_EQ(pieced, whole);
  // …and exactly the predicted positions differ from the original.
  for (std::size_t i = 0; i < text.size(); ++i) {
    EXPECT_EQ(whole[i] != text[i],
              ingest::fault_corrupts_byte(plan.seed, plan.corrupt_byte_rate, i))
        << "byte " << i;
  }
}

TEST(FaultPrimitives, RowCorrupterPreservesFramingAndCounts) {
  const std::string text = generated_corpus().ssl;
  std::size_t corrupted = 0;
  const std::string dirty = ingest::corrupt_log_rows(text, 9, 0.01, &corrupted);
  EXPECT_GT(corrupted, 0u);
  ASSERT_EQ(dirty.size(), text.size());
  std::size_t differing_rows = 0;
  std::size_t row_start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool eol = i == text.size() || text[i] == '\n';
    if (!eol) continue;
    if (i < text.size()) {
      EXPECT_EQ(dirty[i], '\n') << "newline moved at byte " << i;
    }
    if (dirty.compare(row_start, i - row_start, text, row_start,
                      i - row_start) != 0) {
      ++differing_rows;
      EXPECT_NE(text[row_start], '#') << "header row corrupted";
    }
    row_start = i + 1;
  }
  EXPECT_EQ(differing_rows, corrupted);
  // Same seed → same bytes; different seed → different choice of rows.
  EXPECT_EQ(dirty, ingest::corrupt_log_rows(text, 9, 0.01));
  EXPECT_NE(dirty, ingest::corrupt_log_rows(text, 10, 0.01));
}

// ---------------------------------------------------------------------------
// Skip-mode determinism (the satellite property test)

TEST_F(FaultTest, SkipModeQuarantinesExactlyAndDeterministically) {
  const Corpus clean = generated_corpus();
  std::size_t ssl_corrupted = 0, x509_corrupted = 0;
  const std::string dirty_ssl =
      ingest::corrupt_log_rows(clean.ssl, 11, 0.01, &ssl_corrupted);
  const std::string dirty_x509 =
      ingest::corrupt_log_rows(clean.x509, 12, 0.005, &x509_corrupted);
  ASSERT_GT(ssl_corrupted, 0u);
  ASSERT_GT(x509_corrupted, 0u);

  const auto config = core::PipelineConfig::campus_defaults();
  core::PipelineExecutor clean_executor(config, 1);
  const auto reference = clean_executor.run_logs(clean.ssl, clean.x509);
  ASSERT_TRUE(reference.has_value());

  std::optional<core::ErrorLedger> first_ledger;
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    core::PipelineExecutor executor(config, threads);
    core::ErrorLedger ledger;
    zeek::LogParseError error;
    const auto run = executor.run_logs(dirty_ssl, dirty_x509, &error,
                                       skip_options(), &ledger);
    ASSERT_TRUE(run.has_value()) << "threads=" << threads << ": "
                                 << error.message;
    // Exact counts: every seeded-dirty row quarantined, nothing else.
    EXPECT_EQ(ledger.quarantined(core::InputRole::kSsl), ssl_corrupted);
    EXPECT_EQ(ledger.quarantined(core::InputRole::kX509), x509_corrupted);
    EXPECT_EQ(run->totals().connections,
              reference->totals().connections - ssl_corrupted);
    for (const auto& entry : ledger.entries()) {
      EXPECT_EQ(entry.reason, "field count mismatch");
      EXPECT_EQ(entry.digest.size(), 16u);
      EXPECT_GT(entry.line, 2u) << "header rows must never be quarantined";
    }
    if (!first_ledger) {
      first_ledger.emplace(std::move(ledger));
    } else {
      expect_same_ledger(*first_ledger, ledger);
    }
  }
}

TEST_F(FaultTest, StreamingSkipModeMatchesInMemoryForAllConfigurations) {
  const Corpus clean = generated_corpus();
  std::size_t ssl_corrupted = 0;
  const std::string dirty_ssl =
      ingest::corrupt_log_rows(clean.ssl, 21, 0.01, &ssl_corrupted);
  ASSERT_GT(ssl_corrupted, 0u);
  const std::string ssl_path = write_file("ssl.log", dirty_ssl);
  const std::string x509_path = write_file("x509.log", clean.x509);
  const auto config = core::PipelineConfig::campus_defaults();

  core::PipelineExecutor reference_executor(config, 1);
  core::ErrorLedger reference_ledger;
  const auto reference = reference_executor.run_logs(
      dirty_ssl, clean.x509, nullptr, skip_options(), &reference_ledger);
  ASSERT_TRUE(reference.has_value());

  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t chunk_bytes :
         {std::size_t{4} << 10, std::size_t{1} << 20}) {
      core::PipelineExecutor executor(config, threads);
      core::ErrorLedger ledger;
      ingest::IngestError error;
      const auto run = executor.run_log_files(
          ssl_path, x509_path, &error, skip_options(chunk_bytes), &ledger);
      ASSERT_TRUE(run.has_value())
          << "threads=" << threads << " chunk=" << chunk_bytes << ": "
          << error.to_string();
      EXPECT_EQ(run->totals().connections, reference->totals().connections);
      EXPECT_EQ(run->totals().mutual, reference->totals().mutual);
      expect_same_ledger(reference_ledger, ledger);
    }
  }
}

TEST_F(FaultTest, CleanInputSkipModeLeavesLedgerPristine) {
  const Corpus clean = generated_corpus();
  const auto config = core::PipelineConfig::campus_defaults();

  core::PipelineExecutor abort_executor(config, 2);
  const auto abort_run = abort_executor.run_logs(clean.ssl, clean.x509);
  ASSERT_TRUE(abort_run.has_value());

  core::PipelineExecutor skip_executor(config, 2);
  core::ErrorLedger ledger;
  const auto skip_run = skip_executor.run_logs(clean.ssl, clean.x509, nullptr,
                                               skip_options(), &ledger);
  ASSERT_TRUE(skip_run.has_value());
  EXPECT_TRUE(ledger.pristine());
  EXPECT_GT(ledger.rows_ok_total(), 0u);
  EXPECT_EQ(skip_run->totals().connections, abort_run->totals().connections);
  EXPECT_EQ(skip_run->totals().mutual, abort_run->totals().mutual);
  EXPECT_EQ(skip_run->certificates_sorted().size(),
            abort_run->certificates_sorted().size());
}

// ---------------------------------------------------------------------------
// Abort mode and the error budget

TEST_F(FaultTest, AbortModeFailsWithSmallestOffsetForAnyParallelism) {
  const Corpus clean = generated_corpus();
  const std::string dirty_ssl = ingest::corrupt_log_rows(clean.ssl, 31, 0.01);
  const std::string ssl_path = write_file("ssl.log", dirty_ssl);
  const std::string x509_path = write_file("x509.log", clean.x509);
  const auto config = core::PipelineConfig::campus_defaults();

  std::optional<ingest::IngestError> first_error;
  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t chunk_bytes :
         {std::size_t{4} << 10, std::size_t{1} << 20}) {
      core::PipelineExecutor executor(config, threads);
      ingest::IngestOptions options;
      options.chunk_bytes = chunk_bytes;
      ingest::IngestError error;
      const auto run =
          executor.run_log_files(ssl_path, x509_path, &error, options);
      ASSERT_FALSE(run.has_value())
          << "threads=" << threads << " chunk=" << chunk_bytes;
      ASSERT_FALSE(error.reason.empty());
      if (!first_error) {
        first_error = error;
      } else {
        EXPECT_EQ(error.file, first_error->file);
        EXPECT_EQ(error.byte_offset, first_error->byte_offset);
        EXPECT_EQ(error.reason, first_error->reason);
      }
    }
  }
}

TEST_F(FaultTest, ErrorBudgetCountConvertsSkipIntoStructuredAbort) {
  const Corpus clean = generated_corpus();
  std::size_t corrupted = 0;
  const std::string dirty_ssl =
      ingest::corrupt_log_rows(clean.ssl, 41, 0.02, &corrupted);
  ASSERT_GT(corrupted, 3u);
  const auto config = core::PipelineConfig::campus_defaults();

  core::PipelineExecutor executor(config, 2);
  auto options = skip_options();
  options.errors.max_errors = 2;
  core::ErrorLedger ledger;
  zeek::LogParseError error;
  const auto run =
      executor.run_logs(dirty_ssl, clean.x509, &error, options, &ledger);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.message.find("error budget exceeded"), std::string::npos)
      << error.message;
  EXPECT_NE(error.message.find("--max-errors=2"), std::string::npos)
      << error.message;

  // A budget at least as large as the dirt count lets the run complete.
  options.errors.max_errors = corrupted;
  core::PipelineExecutor roomy(config, 2);
  core::ErrorLedger roomy_ledger;
  EXPECT_TRUE(
      roomy.run_logs(dirty_ssl, clean.x509, nullptr, options, &roomy_ledger)
          .has_value());
  EXPECT_EQ(roomy_ledger.quarantined(core::InputRole::kSsl), corrupted);
}

TEST_F(FaultTest, ErrorBudgetRateConvertsSkipIntoStructuredAbort) {
  const Corpus clean = generated_corpus();
  const std::string dirty_ssl = ingest::corrupt_log_rows(clean.ssl, 51, 0.05);
  const auto config = core::PipelineConfig::campus_defaults();

  core::PipelineExecutor executor(config, 2);
  auto options = skip_options();
  options.errors.max_error_rate = 0.0001;
  zeek::LogParseError error;
  const auto run = executor.run_logs(dirty_ssl, clean.x509, &error, options);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.message.find("error rate"), std::string::npos)
      << error.message;
  EXPECT_NE(error.message.find("--max-error-rate="), std::string::npos)
      << error.message;
}

// ---------------------------------------------------------------------------
// I/O degradation: truncation salvage + transient-failure retries

TEST_F(FaultTest, TruncationSalvagesCompleteRecordsAndLogsIoEvent) {
  const std::string ssl_text = small_ssl_log();
  const std::string x509_text = x509_log_header();
  // Cut mid-way through row C2: C1 must survive, the partial C2 row is
  // quarantined, C3 is behind the truncation point and never seen.
  const std::size_t c2 = ssl_text.find("200.000000");
  ASSERT_NE(c2, std::string::npos);
  ingest::FaultPlan plan;
  plan.truncate_at = c2 + 20;

  const ingest::MemorySource ssl_inner(ssl_text);
  const ingest::FaultInjectingSource ssl_faulty(ssl_inner, plan);
  const ingest::MemorySource x509_source(x509_text);

  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 2);
  core::ErrorLedger ledger;
  ingest::IngestError error;
  const auto run = executor.run_sources(ssl_faulty, x509_source, &error,
                                        skip_options(), &ledger);
  ASSERT_TRUE(run.has_value()) << error.to_string();
  EXPECT_EQ(run->totals().connections, 1u);
  EXPECT_EQ(ledger.quarantined(core::InputRole::kSsl), 1u);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].reason, "field count mismatch");
  EXPECT_GE(ledger.io_events(), 1u);
  ASSERT_FALSE(ledger.io_notes().empty());
  EXPECT_NE(ledger.io_notes()[0].find("truncated"), std::string::npos);
  EXPECT_TRUE(ssl_faulty.truncation_detected());
}

TEST_F(FaultTest, TransientReadFailuresAreAbsorbedByBoundedRetries) {
  const std::string ssl_text = small_ssl_log();
  const std::string x509_text = x509_log_header();
  ingest::FaultPlan plan;
  plan.fail_fetches = 3;

  const ingest::MemorySource ssl_inner(ssl_text);
  const ingest::FaultInjectingSource ssl_faulty(ssl_inner, plan);
  const ingest::MemorySource x509_source(x509_text);

  ingest::reset_retry_counters();
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 2);
  ingest::IngestError error;
  const auto run = executor.run_sources(ssl_faulty, x509_source, &error);
  ASSERT_TRUE(run.has_value()) << error.to_string();
  // C1 and C2 are established connections; C3 is a rejected handshake.
  EXPECT_EQ(run->totals().connections, 2u);
  EXPECT_EQ(run->totals().rejected_handshakes, 1u);
  EXPECT_EQ(ssl_faulty.failures_injected(), 3u);
  EXPECT_GE(ingest::retry_counters().backoff_sleeps.load(), 3u);
}

// ---------------------------------------------------------------------------
// Hostile certificate bodies (the DerError containment satellite)

TEST_F(FaultTest, HostileDerDegradesToLoggedFieldsWithoutThrowing) {
  // Malformed DER: SEQUENCE claiming a 4 GB body, then garbage.
  const std::vector<std::uint8_t> hostile_der = {
      0x30, 0x84, 0xff, 0xff, 0xff, 0xff, 0x02, 0x01, 0x00, 0x30};
  const auto result = x509::parse_certificate(hostile_der);
  EXPECT_EQ(x509::get_certificate(result), nullptr)
      << "hostile DER must yield a structured parse error";

  // The same bytes inside an otherwise well-formed x509 row must ride
  // through the full pipeline (default abort mode!) via the
  // logged-fields fallback — the row is valid TSV, only the DER is bad.
  const std::string x509_text =
      x509_log_header() + "Fh\t3\t0102\tCN=hostile.example"
      "\tCN=Private Issuer,O=HostileOrg\t100.000000\t400.000000\trsa\t2048"
      "\t(empty)\t(empty)\t(empty)\t(empty)\t" +
      crypto::to_base64(hostile_der) + "\n";
  const std::string ssl_text =
      small_ssl_log().substr(0, small_ssl_log().find("100.000000")) +
      "100.000000\tC1\t10.0.0.1\t1000\t10.0.0.2\t443\tTLSv12\thost.a"
      "\tT\tFh\t(empty)\n";

  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 2);
  zeek::LogParseError error;
  const auto run = executor.run_logs(ssl_text, x509_text, &error);
  ASSERT_TRUE(run.has_value()) << error.message;
  const auto certs = run->certificates_sorted();
  ASSERT_EQ(certs.size(), 1u);
  EXPECT_EQ(certs[0]->fuid, "Fh");
  // Logged fields won: the issuer came from the row, not the DER.
  EXPECT_EQ(certs[0]->issuer_org, "HostileOrg");
}

}  // namespace
}  // namespace mtlscope
