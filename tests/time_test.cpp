#include <gtest/gtest.h>

#include "mtlscope/util/time.hpp"

namespace mtlscope::util {
namespace {

TEST(CivilTime, EpochIsZero) {
  EXPECT_EQ(to_unix({1970, 1, 1, 0, 0, 0}), 0);
  EXPECT_EQ(from_unix(0), (CivilTime{1970, 1, 1, 0, 0, 0}));
}

TEST(CivilTime, KnownTimestamps) {
  EXPECT_EQ(to_unix({2000, 1, 1, 0, 0, 0}), 946684800);
  EXPECT_EQ(to_unix({2022, 5, 1, 0, 0, 0}), 1651363200);
  EXPECT_EQ(to_unix({2024, 3, 31, 23, 59, 59}), 1711929599);
}

TEST(CivilTime, NegativeTimestamps) {
  EXPECT_EQ(to_unix({1969, 12, 31, 23, 59, 59}), -1);
  EXPECT_EQ(from_unix(-1), (CivilTime{1969, 12, 31, 23, 59, 59}));
}

// The paper's dataset contains certificates dated 1849, 1831, 2157.
TEST(CivilTime, FarPastAndFuture) {
  const CivilTime y1849{1849, 10, 24, 12, 0, 0};
  EXPECT_EQ(from_unix(to_unix(y1849)), y1849);
  const CivilTime y2157{2157, 6, 1, 0, 0, 0};
  EXPECT_EQ(from_unix(to_unix(y2157)), y2157);
  const CivilTime y1831{1831, 11, 22, 0, 0, 0};
  EXPECT_EQ(from_unix(to_unix(y1831)), y1831);
  EXPECT_LT(to_unix(y1831), to_unix(y1849));
  EXPECT_LT(to_unix(y1849), 0);
}

TEST(CivilTime, RoundTripSweep) {
  // Every 41 days + offset over ±300 years around the epoch.
  for (std::int64_t ts = -9'467'280'000; ts < 9'467'280'000;
       ts += 41 * kSecondsPerDay + 12'345) {
    EXPECT_EQ(to_unix(from_unix(ts)), ts);
  }
}

TEST(CivilTime, LeapYears) {
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_TRUE(is_leap_year(2024));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2023));
  EXPECT_EQ(days_in_month(2024, 2), 29);
  EXPECT_EQ(days_in_month(2023, 2), 28);
  EXPECT_EQ(days_in_month(2023, 12), 31);
}

TEST(CivilTime, Feb29RoundTrip) {
  const CivilTime leap{2024, 2, 29, 23, 59, 59};
  EXPECT_EQ(from_unix(to_unix(leap)), leap);
}

TEST(Format, Iso8601) {
  EXPECT_EQ(format_iso8601(0), "1970-01-01T00:00:00Z");
  EXPECT_EQ(format_iso8601(1711929599), "2024-03-31T23:59:59Z");
  EXPECT_EQ(format_date(1651363200), "2022-05-01");
}

TEST(Parse, Iso8601DateOnly) {
  EXPECT_EQ(parse_iso8601("2022-05-01"), 1651363200);
  EXPECT_EQ(parse_iso8601("1970-01-01"), 0);
}

TEST(Parse, Iso8601Full) {
  EXPECT_EQ(parse_iso8601("2024-03-31T23:59:59Z"), 1711929599);
  EXPECT_EQ(parse_iso8601("2024-03-31T23:59:59"), 1711929599);
}

TEST(Parse, RejectsMalformed) {
  EXPECT_FALSE(parse_iso8601("").has_value());
  EXPECT_FALSE(parse_iso8601("2024-13-01").has_value());
  EXPECT_FALSE(parse_iso8601("2024-02-30").has_value());
  EXPECT_FALSE(parse_iso8601("2023-02-29").has_value());
  EXPECT_FALSE(parse_iso8601("2024/01/01").has_value());
  EXPECT_FALSE(parse_iso8601("2024-01-01T25:00:00Z").has_value());
  EXPECT_FALSE(parse_iso8601("2024-01-01X00:00:00Z").has_value());
}

TEST(Parse, FormatParseRoundTrip) {
  for (std::int64_t ts = -5'000'000'000; ts < 5'000'000'000;
       ts += 997 * 9973) {
    EXPECT_EQ(parse_iso8601(format_iso8601(ts)), ts);
  }
}

TEST(MonthIndex, BucketsAndLabels) {
  const auto may_2022 = to_unix({2022, 5, 15, 10, 0, 0});
  const auto mar_2024 = to_unix({2024, 3, 1, 0, 0, 0});
  EXPECT_EQ(month_index(may_2022), 2022 * 12 + 4);
  EXPECT_EQ(month_index(mar_2024) - month_index(may_2022), 22);
  EXPECT_EQ(month_label(month_index(may_2022)), "2022-05");
  EXPECT_EQ(month_label(month_index(mar_2024)), "2024-03");
}

}  // namespace
}  // namespace mtlscope::util
