#include <gtest/gtest.h>

#include "mtlscope/core/issuer_category.hpp"

namespace mtlscope::core {
namespace {

IssuerCategorizer make_categorizer() {
  return IssuerCategorizer({"Internet Widgits Pty Ltd", "Default Company Ltd",
                            "Unspecified", "Acme Co"});
}

x509::DistinguishedName dn_with_org(std::string org) {
  x509::DistinguishedName dn;
  dn.add_org(std::move(org)).add_cn("some ca");
  return dn;
}

TEST(IssuerCategorizer, PublicBeatsEverything) {
  const auto categorizer = make_categorizer();
  // Even a university-named org is Public when the trust stores say so.
  EXPECT_EQ(categorizer.categorize(dn_with_org("Sample University"), true),
            IssuerCategory::kPublic);
}

TEST(IssuerCategorizer, MissingIssuer) {
  const auto categorizer = make_categorizer();
  x509::DistinguishedName cn_only;
  cn_only.add_cn("ca-a81f34");
  EXPECT_EQ(categorizer.categorize(cn_only, false),
            IssuerCategory::kPrivateMissingIssuer);
  EXPECT_EQ(categorizer.categorize({}, false),
            IssuerCategory::kPrivateMissingIssuer);
}

struct CategoryCase {
  const char* org;
  IssuerCategory expected;
};

class CategorizerCases : public ::testing::TestWithParam<CategoryCase> {};

TEST_P(CategorizerCases, Categorizes) {
  const auto categorizer = make_categorizer();
  EXPECT_EQ(categorizer.categorize(dn_with_org(GetParam().org), false),
            GetParam().expected)
      << GetParam().org;
}

INSTANTIATE_TEST_SUITE_P(
    Values, CategorizerCases,
    ::testing::Values(
        CategoryCase{"Internet Widgits Pty Ltd",
                     IssuerCategory::kPrivateDummy},
        CategoryCase{"Unspecified", IssuerCategory::kPrivateDummy},
        CategoryCase{"Acme Co", IssuerCategory::kPrivateDummy},
        CategoryCase{"Blue Ridge University",
                     IssuerCategory::kPrivateEducation},
        CategoryCase{"Ridgetown Community College",
                     IssuerCategory::kPrivateEducation},
        CategoryCase{"Lakeside High School", IssuerCategory::kPrivateEducation},
        CategoryCase{"U.S. Government Publishing Office",
                     IssuerCategory::kPrivateGovernment},
        CategoryCase{"Ministry of Transport",
                     IssuerCategory::kPrivateGovernment},
        CategoryCase{"SpeedyHosting Solutions",
                     IssuerCategory::kPrivateWebHosting},
        CategoryCase{"cPanel Certification Services",
                     IssuerCategory::kPrivateWebHosting},
        CategoryCase{"Honeywell International Inc",
                     IssuerCategory::kPrivateCorporation},
        CategoryCase{"Splunk Inc", IssuerCategory::kPrivateCorporation},
        CategoryCase{"GuardiCore", IssuerCategory::kPrivateCorporation},
        CategoryCase{"Rapid7 LLC", IssuerCategory::kPrivateCorporation},
        CategoryCase{"Quasar Nebular Dynamics",
                     IssuerCategory::kPrivateOthers},
        CategoryCase{"Meridian Apparatus", IssuerCategory::kPrivateOthers}));

TEST(IssuerCategorizer, CaseInsensitiveDummyMatch) {
  const auto categorizer = make_categorizer();
  EXPECT_EQ(categorizer.categorize(dn_with_org("internet widgits pty ltd"),
                                   false),
            IssuerCategory::kPrivateDummy);
  EXPECT_EQ(categorizer.categorize(dn_with_org("INTERNET WIDGITS PTY LTD"),
                                   false),
            IssuerCategory::kPrivateDummy);
}

TEST(IssuerCategorizer, NamesAreStable) {
  // The display names appear in repro output; guard their spelling.
  EXPECT_STREQ(issuer_category_name(IssuerCategory::kPublic), "Public");
  EXPECT_STREQ(issuer_category_name(IssuerCategory::kPrivateEducation),
               "Private - Education");
  EXPECT_STREQ(issuer_category_name(IssuerCategory::kPrivateMissingIssuer),
               "Private - MissingIssuer");
  EXPECT_STREQ(issuer_category_name(IssuerCategory::kPrivateDummy),
               "Private - Dummy");
}

}  // namespace
}  // namespace mtlscope::core
