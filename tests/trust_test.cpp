#include <gtest/gtest.h>

#include "mtlscope/ctlog/ct_database.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"
#include "mtlscope/trust/store.hpp"
#include "mtlscope/util/time.hpp"

namespace mtlscope::trust {
namespace {

using util::to_unix;

const util::UnixSeconds kNow = to_unix({2023, 6, 1, 0, 0, 0});

x509::Certificate issue_leaf(const CertificateAuthority& ca,
                             const std::string& cn) {
  x509::DistinguishedName dn;
  dn.add_cn(cn);
  return ca.issue(x509::CertificateBuilder()
                      .serial_from_label("leaf:" + cn)
                      .subject(dn)
                      .validity(to_unix({2023, 1, 1, 0, 0, 0}),
                                to_unix({2024, 1, 1, 0, 0, 0}))
                      .public_key(crypto::TsigKey::derive(cn).key));
}

TEST(PublicPki, BuildsAllCas) {
  const auto& pki = public_pki();
  EXPECT_GE(pki.cas().size(), 12u);
  EXPECT_NE(pki.find("lets-encrypt"), nullptr);
  EXPECT_NE(pki.find("digicert"), nullptr);
  EXPECT_NE(pki.find("apple"), nullptr);
  EXPECT_EQ(pki.find("nonexistent"), nullptr);
}

TEST(PublicPki, IntermediateChainsToRoot) {
  const auto* le = public_pki().find("lets-encrypt");
  ASSERT_NE(le, nullptr);
  const auto& intermediate = le->intermediate.certificate();
  EXPECT_EQ(intermediate.issuer, le->root.dn());
  EXPECT_TRUE(crypto::tsig_verify(le->root.key().key, intermediate.tbs_der,
                                  intermediate.signature));
  EXPECT_TRUE(intermediate.basic_constraints.has_value());
  EXPECT_TRUE(intermediate.basic_constraints->is_ca);
}

TEST(PublicPki, Deterministic) {
  // Same PKI reconstructed from scratch issues identical certificates.
  const PublicPki a;
  const PublicPki b;
  ASSERT_EQ(a.cas().size(), b.cas().size());
  for (std::size_t i = 0; i < a.cas().size(); ++i) {
    EXPECT_EQ(a.cas()[i].root.certificate().der,
              b.cas()[i].root.certificate().der);
    EXPECT_EQ(a.cas()[i].intermediate.certificate().der,
              b.cas()[i].intermediate.certificate().der);
  }
}

TEST(TrustEvaluator, PublicLeafClassifiedPublic) {
  const auto evaluator = make_default_evaluator();
  const auto* le = public_pki().find("lets-encrypt");
  const auto leaf = issue_leaf(le->intermediate, "site.example.com");
  EXPECT_EQ(evaluator.classify(leaf), IssuerClass::kPublic);
}

TEST(TrustEvaluator, PrivateLeafClassifiedPrivate) {
  const auto evaluator = make_default_evaluator();
  x509::DistinguishedName dn;
  dn.add_org("Campus Medical CA").add_cn("Campus Medical Issuing CA");
  const auto ca = CertificateAuthority::make_root(
      dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  const auto leaf = issue_leaf(ca, "device-17");
  EXPECT_EQ(evaluator.classify(leaf), IssuerClass::kPrivate);
}

TEST(TrustEvaluator, SelfSignedIsPrivate) {
  const auto evaluator = make_default_evaluator();
  x509::DistinguishedName dn;
  dn.add_org("Internet Widgits Pty Ltd");
  const auto key = crypto::TsigKey::derive("widgits");
  const auto cert = x509::CertificateBuilder()
                        .serial_hex("00")
                        .subject(dn)
                        .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                        .public_key(key.key)
                        .self_sign(key);
  EXPECT_EQ(evaluator.classify(cert), IssuerClass::kPrivate);
}

TEST(TrustEvaluator, IntermediateInChainMakesPublic) {
  // Leaf issued by an unknown sub-CA whose own issuer is public: the
  // paper's rule accepts chain membership at any level.
  const auto evaluator = make_default_evaluator();
  const auto* dc = public_pki().find("digicert");
  x509::DistinguishedName sub_dn;
  sub_dn.add_org("Example Hosting").add_cn("Example Hosting Issuing CA");
  const auto sub =
      CertificateAuthority::make_intermediate(dc->intermediate, sub_dn, 0,
                                              to_unix({2035, 1, 1, 0, 0, 0}));
  const auto leaf = issue_leaf(sub, "leaf.example.com");
  EXPECT_EQ(evaluator.classify(leaf), IssuerClass::kPrivate)
      << "leaf alone does not chain";
  EXPECT_EQ(evaluator.classify(leaf, {sub.certificate()}),
            IssuerClass::kPublic)
      << "with the intermediate present, its issuer is trusted";
}

TEST(TrustEvaluator, ValidateFullChain) {
  const auto evaluator = make_default_evaluator();
  const auto* le = public_pki().find("lets-encrypt");
  const auto leaf = issue_leaf(le->intermediate, "ok.example.com");
  const std::vector<x509::Certificate> chain = {
      leaf, le->intermediate.certificate(), le->root.certificate()};
  EXPECT_EQ(evaluator.validate(chain, kNow), ChainStatus::kValid);
}

TEST(TrustEvaluator, ValidateDetectsExpiry) {
  const auto evaluator = make_default_evaluator();
  const auto* le = public_pki().find("lets-encrypt");
  const auto leaf = issue_leaf(le->intermediate, "ok.example.com");
  const std::vector<x509::Certificate> chain = {
      leaf, le->intermediate.certificate(), le->root.certificate()};
  EXPECT_EQ(evaluator.validate(chain, to_unix({2025, 6, 1, 0, 0, 0})),
            ChainStatus::kExpired);
}

TEST(TrustEvaluator, ValidateDetectsBrokenLink) {
  const auto evaluator = make_default_evaluator();
  const auto* le = public_pki().find("lets-encrypt");
  const auto* dc = public_pki().find("digicert");
  const auto leaf = issue_leaf(le->intermediate, "ok.example.com");
  // Wrong intermediate: issuer DN does not match.
  const std::vector<x509::Certificate> chain = {
      leaf, dc->intermediate.certificate()};
  EXPECT_EQ(evaluator.validate(chain, kNow), ChainStatus::kUntrustedRoot);
}

TEST(TrustEvaluator, ValidateDetectsBadSignature) {
  const auto evaluator = make_default_evaluator();
  const auto* le = public_pki().find("lets-encrypt");
  auto leaf = issue_leaf(le->intermediate, "ok.example.com");
  leaf.signature[0] ^= 0xff;
  const std::vector<x509::Certificate> chain = {
      leaf, le->intermediate.certificate(), le->root.certificate()};
  EXPECT_EQ(evaluator.validate(chain, kNow), ChainStatus::kBadSignature);
}

TEST(TrustEvaluator, ValidateEmptyChain) {
  const auto evaluator = make_default_evaluator();
  EXPECT_EQ(evaluator.validate({}, kNow), ChainStatus::kEmptyChain);
}

TEST(TrustEvaluator, ValidateUntrustedSelfSigned) {
  const auto evaluator = make_default_evaluator();
  x509::DistinguishedName dn;
  dn.add_org("Nobody");
  const auto key = crypto::TsigKey::derive("nobody");
  const auto cert = x509::CertificateBuilder()
                        .serial_hex("01")
                        .subject(dn)
                        .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                        .public_key(key.key)
                        .self_sign(key);
  EXPECT_EQ(evaluator.validate({cert}, kNow), ChainStatus::kUntrustedRoot);
}

TEST(TrustStore, OrganizationMembership) {
  TrustStore store("CCADB");
  store.add_organization("DigiCert Inc");
  x509::DistinguishedName issuer;
  issuer.add_org("DigiCert Inc").add_cn("Some Future DigiCert CA");
  TrustEvaluator evaluator;
  evaluator.add_store(std::move(store));
  EXPECT_TRUE(evaluator.is_trusted_issuer(issuer));
  x509::DistinguishedName other;
  other.add_org("Not DigiCert").add_cn("x");
  EXPECT_FALSE(evaluator.is_trusted_issuer(other));
}

TEST(CtDatabase, LogAndMatch) {
  ctlog::CtDatabase db;
  x509::DistinguishedName le;
  le.add_org("Let's Encrypt").add_cn("R3");
  x509::DistinguishedName proxy;
  proxy.add_org("Corporate Proxy CA");
  db.log_certificate("example.com", le);
  EXPECT_TRUE(db.has_domain("example.com"));
  EXPECT_FALSE(db.has_domain("other.com"));
  EXPECT_TRUE(db.issuer_matches("example.com", le));
  EXPECT_FALSE(db.issuer_matches("example.com", proxy));
  EXPECT_FALSE(db.issuer_matches("other.com", le));
  ASSERT_NE(db.issuers_for("example.com"), nullptr);
  EXPECT_EQ(db.issuers_for("example.com")->size(), 1u);
  EXPECT_EQ(db.issuers_for("other.com"), nullptr);
}

TEST(CtDatabase, MultipleIssuersPerDomain) {
  ctlog::CtDatabase db;
  x509::DistinguishedName a;
  a.add_org("Let's Encrypt");
  x509::DistinguishedName b;
  b.add_org("DigiCert Inc");
  db.log_certificate("example.com", a);
  db.log_certificate("example.com", b);
  EXPECT_TRUE(db.issuer_matches("example.com", a));
  EXPECT_TRUE(db.issuer_matches("example.com", b));
  EXPECT_EQ(db.issuers_for("example.com")->size(), 2u);
  EXPECT_EQ(db.domain_count(), 1u);
}

}  // namespace
}  // namespace mtlscope::trust
