#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mtlscope/gen/generator.hpp"
#include "mtlscope/textclass/domain.hpp"
#include "mtlscope/trust/store.hpp"

namespace mtlscope::gen {
namespace {

CampusModel tiny_model() {
  auto model = paper_model(5'000, 500'000);
  model.background_connections = 2'000;
  return model;
}

TEST(PaperModel, BasicShape) {
  const auto model = paper_model(100, 20'000);
  EXPECT_GT(model.clusters.size(), 40u);
  EXPECT_EQ(model.study_start, util::to_unix({2022, 5, 1, 0, 0, 0}));
  EXPECT_EQ(model.study_end, util::to_unix({2024, 4, 1, 0, 0, 0}));
  EXPECT_GT(model.background_connections, 0u);
  // Cluster names are unique (they seed per-cluster RNG streams).
  std::set<std::string> names;
  for (const auto& cluster : model.clusters) {
    EXPECT_TRUE(names.insert(cluster.name).second)
        << "duplicate cluster name " << cluster.name;
  }
}

TEST(PaperModel, ScalesMonotonically) {
  const auto big = paper_model(100, 20'000);
  const auto small = paper_model(1'000, 200'000);
  std::size_t big_certs = 0, small_certs = 0;
  for (const auto& c : big.clusters) {
    big_certs += c.server_certs.count + c.client_certs.count;
  }
  for (const auto& c : small.clusters) {
    small_certs += c.server_certs.count + c.client_certs.count;
  }
  EXPECT_GT(big_certs, 3 * small_certs);
}

TEST(PaperModel, CohortArithmeticApproximatesTable1) {
  // Pure model math, no generation: at scale 1 the cohort counts must
  // land in the neighbourhood of the paper's Table-1 totals.
  const auto model = paper_model(1, 1);
  double client_certs = 0, server_certs = 0;
  for (const auto& c : model.clusters) {
    if (c.tunnel_client_only) {
      client_certs += static_cast<double>(c.client_certs.count);
      continue;
    }
    server_certs += static_cast<double>(c.server_certs.count);
    if (c.mutual && c.sharing != SharingMode::kSameCertBothEnds) {
      client_certs += static_cast<double>(c.client_certs.count);
    }
    if (c.sharing == SharingMode::kSameCertBothEnds) {
      // Shared populations count on both sides (paper Table 1 counts them
      // in each role).
      client_certs += static_cast<double>(c.server_certs.count);
    }
  }
  // Paper: 5,915,995 server / 3,556,589 client unique certificates.
  EXPECT_GT(server_certs, 5.9e6 * 0.5);
  EXPECT_LT(server_certs, 5.9e6 * 1.5);
  EXPECT_GT(client_certs, 3.55e6 * 0.5);
  EXPECT_LT(client_certs, 3.55e6 * 1.5);
}

TEST(PaperModel, ConnectionArithmeticApproximatesStudyVolume) {
  // Mutual connection volume at scale 1 should approximate the paper's
  // 1.2B (the generator additionally floors at one conn per cert).
  const auto model = paper_model(1'000, 1);
  double mutual_conns = 0;
  for (const auto& c : model.clusters) {
    if (c.mutual && !c.tunnel_client_only) {
      mutual_conns += static_cast<double>(c.connections);
    }
  }
  EXPECT_GT(mutual_conns, 1.2e9 * 0.5);
  EXPECT_LT(mutual_conns, 1.2e9 * 1.5);
}

TEST(Generator, Deterministic) {
  std::vector<std::string> uids_a, uids_b;
  {
    TraceGenerator g(tiny_model());
    g.generate([&uids_a](const tls::TlsConnection& c) {
      if (uids_a.size() < 500) uids_a.push_back(c.uid + c.sni);
    });
  }
  {
    TraceGenerator g(tiny_model());
    g.generate([&uids_b](const tls::TlsConnection& c) {
      if (uids_b.size() < 500) uids_b.push_back(c.uid + c.sni);
    });
  }
  EXPECT_EQ(uids_a, uids_b);
}

TEST(Generator, SeedChangesStream) {
  auto model_a = tiny_model();
  auto model_b = tiny_model();
  model_b.seed ^= 0xdeadbeef;
  std::set<std::string> snis_a, snis_b;
  std::vector<util::UnixSeconds> ts_a, ts_b;
  TraceGenerator ga(std::move(model_a));
  ga.generate([&](const tls::TlsConnection& c) {
    if (ts_a.size() < 200) ts_a.push_back(c.timestamp);
  });
  TraceGenerator gb(std::move(model_b));
  gb.generate([&](const tls::TlsConnection& c) {
    if (ts_b.size() < 200) ts_b.push_back(c.timestamp);
  });
  EXPECT_NE(ts_a, ts_b);
}

TEST(Generator, TimestampsWithinStudyWindow) {
  const auto model = tiny_model();
  const auto start = model.study_start;
  const auto end = model.study_end;
  TraceGenerator g(tiny_model());
  g.generate([&](const tls::TlsConnection& c) {
    ASSERT_GE(c.timestamp, start);
    ASSERT_LT(c.timestamp, end);
  });
}

TEST(Generator, CertificatesValidAtUseUnlessIntentional) {
  // Outside the deliberately-expired / wrong-date cohorts, the leaf
  // presented in a connection must be valid at the connection time.
  TraceGenerator g(tiny_model());
  std::size_t total = 0, violations = 0;
  g.generate([&](const tls::TlsConnection& c) {
    for (const auto* leaf : {c.server_leaf(), c.client_leaf()}) {
      if (leaf == nullptr) continue;
      if (leaf->validity.dates_incorrect()) continue;  // Fig 3 cohorts
      if (leaf->validity.not_after <
          util::to_unix({2022, 5, 1, 0, 0, 0})) {
        continue;  // Fig 5 cohorts: expired before the study by design
      }
      ++total;
      if (!leaf->validity.contains(c.timestamp)) ++violations;
    }
  });
  ASSERT_GT(total, 1'000u);
  // The intentional cohorts (Fig 5 expired certs, GuardiCore long tails)
  // are a small fraction of the trace.
  EXPECT_LT(static_cast<double>(violations) / static_cast<double>(total),
            0.08);
}

TEST(Generator, MutualConnectionsHaveBothChains) {
  TraceGenerator g(tiny_model());
  g.generate([](const tls::TlsConnection& c) {
    if (c.is_mutual()) {
      ASSERT_FALSE(c.server_chain.empty());
      ASSERT_FALSE(c.client_chain.empty());
    }
  });
}

TEST(Generator, Tls13ConnectionsCarryNoCertificates) {
  TraceGenerator g(tiny_model());
  g.generate([](const tls::TlsConnection& c) {
    if (c.version == tls::TlsVersion::kTls13) {
      ASSERT_TRUE(c.server_chain.empty());
      ASSERT_TRUE(c.client_chain.empty());
    }
  });
}

TEST(Generator, ProducesPaperPopulations) {
  TraceGenerator g(tiny_model());
  bool saw_globus = false, saw_guardicore = false, saw_widgits = false,
       saw_webrtc = false, saw_fxp_sni = false, saw_personal = false;
  g.generate([&](const tls::TlsConnection& c) {
    if (c.sni == "FXP DCAU Cert") saw_fxp_sni = true;
    for (const auto* leaf : {c.server_leaf(), c.client_leaf()}) {
      if (leaf == nullptr) continue;
      const auto org = leaf->issuer.organization();
      if (org == "Globus Online") saw_globus = true;
      if (org == "GuardiCore") saw_guardicore = true;
      if (org == "Internet Widgits Pty Ltd") saw_widgits = true;
      const auto cn = leaf->subject.common_name();
      if (cn && cn->rfind("WebRTC", 0) == 0) saw_webrtc = true;
      if (cn && *cn == "John Smith") saw_personal = true;  // may not occur
    }
  });
  EXPECT_TRUE(saw_globus);
  EXPECT_TRUE(saw_guardicore);
  EXPECT_TRUE(saw_widgits);
  EXPECT_TRUE(saw_webrtc);
  EXPECT_TRUE(saw_fxp_sni);
  (void)saw_personal;
}

TEST(Generator, GlobusShareSameCertBothEnds) {
  TraceGenerator g(tiny_model());
  std::size_t globus_conns = 0, same_cert = 0;
  g.generate([&](const tls::TlsConnection& c) {
    if (c.sni != "FXP DCAU Cert" || !c.is_mutual()) return;
    ++globus_conns;
    same_cert +=
        c.server_leaf()->fingerprint() == c.client_leaf()->fingerprint();
  });
  ASSERT_GT(globus_conns, 0u);
  EXPECT_EQ(same_cert, globus_conns);
}

TEST(Generator, GlobusCertsRotateWithinValidity) {
  TraceGenerator g(tiny_model());
  std::set<std::string> fingerprints;
  g.generate([&](const tls::TlsConnection& c) {
    if (c.sni != "FXP DCAU Cert" || c.server_leaf() == nullptr) return;
    const auto* leaf = c.server_leaf();
    fingerprints.insert(leaf->fingerprint_hex());
    EXPECT_EQ(leaf->serial_hex(), "00");
    // 14-day reissue cycle.
    EXPECT_LE(leaf->validity.period_days(), 15);
    EXPECT_TRUE(leaf->validity.contains(c.timestamp));
  });
  EXPECT_GT(fingerprints.size(), 5u);
}

TEST(Generator, CtDatabasePopulatedForPublicServers) {
  TraceGenerator g(tiny_model());
  g.generate([](const tls::TlsConnection&) {});
  const auto& ct = g.ct_database();
  EXPECT_TRUE(ct.has_domain("amazonaws.com"));
  EXPECT_TRUE(ct.has_domain("rapid7.com"));
  // Private-CA-only domains are not in CT.
  EXPECT_FALSE(ct.has_domain("brhealth.org"));
}

TEST(Generator, StatsMatchStream) {
  TraceGenerator g(tiny_model());
  std::size_t conns = 0, mutual = 0;
  g.generate([&](const tls::TlsConnection& c) {
    ++conns;
    mutual += c.is_mutual();
  });
  EXPECT_EQ(g.stats().connections, conns);
  EXPECT_EQ(g.stats().mutual_connections, mutual);
  EXPECT_GT(g.stats().certificates_minted, 0u);
}

TEST(Generator, CampusAndDummyNameHelpers) {
  const auto campus = TraceGenerator::campus_issuer_names();
  ASSERT_FALSE(campus.empty());
  EXPECT_EQ(campus[0], "Blue Ridge University");
  const auto dummies = TraceGenerator::dummy_issuer_names();
  EXPECT_EQ(dummies.size(), 4u);
}

TEST(Generator, DirectionConsistentWithAddresses) {
  const auto inside = [](const net::IpAddress& addr) {
    return net::Subnet::parse("128.143.0.0/16")->contains(addr) ||
           net::Subnet::parse("10.0.0.0/8")->contains(addr);
  };
  TraceGenerator g(tiny_model());
  std::size_t checked = 0;
  g.generate([&](const tls::TlsConnection& c) {
    // Border tap: at least one endpoint relates to the university.
    if (inside(c.server.addr)) {
      ++checked;  // inbound: server inside
    } else if (inside(c.client.addr)) {
      ++checked;  // outbound: client inside
    }
  });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace mtlscope::gen
