#include <gtest/gtest.h>

#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"

namespace mtlscope::core {
namespace {

using util::to_unix;

const util::UnixSeconds kTs = to_unix({2023, 3, 1, 12, 0, 0});

x509::Certificate make_cert(const std::string& cn, bool public_ca,
                            util::UnixSeconds nb = to_unix({2023, 1, 1, 0, 0, 0}),
                            util::UnixSeconds na = to_unix({2024, 1, 1, 0, 0, 0})) {
  x509::CertificateBuilder builder;
  x509::DistinguishedName dn;
  dn.add_cn(cn);
  builder.serial_from_label("pt:" + cn)
      .subject(dn)
      .validity(nb, na)
      .public_key(crypto::TsigKey::derive(cn).key)
      .add_san_dns(cn + ".example.com");
  if (public_ca) {
    return trust::public_pki().find("digicert")->intermediate.issue(builder);
  }
  x509::DistinguishedName ca_dn;
  ca_dn.add_org("Pipeline Test Org").add_cn("Pipeline Test CA");
  static const auto ca = trust::CertificateAuthority::make_root(
      ca_dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  return ca.issue(builder);
}

tls::TlsConnection make_conn(const std::string& client_ip,
                             const std::string& server_ip,
                             const x509::Certificate* server_cert,
                             const x509::Certificate* client_cert,
                             const std::string& sni = "service.example.com",
                             util::UnixSeconds ts = kTs) {
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse(client_ip), 55555};
  if (!sni.empty()) client.sni = sni;
  if (client_cert != nullptr) client.chain = {*client_cert};
  tls::ServerProfile server;
  server.endpoint = {*net::IpAddress::parse(server_ip), 443};
  if (server_cert != nullptr) server.chain = {*server_cert};
  server.request_client_certificate = client_cert != nullptr;
  return tls::simulate_handshake(client, server, {"Cpt", ts, ts});
}

TEST(Pipeline, DirectionInference) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("dir-server", false);
  std::vector<Direction> seen;
  pipeline.add_observer([&seen](const EnrichedConnection& c) {
    seen.push_back(c.direction);
  });
  // Server inside 128.143/16 → inbound.
  pipeline.feed(make_conn("203.0.113.9", "128.143.1.1", &server_cert, nullptr));
  // Server outside, client inside 10/8 → outbound.
  pipeline.feed(make_conn("10.1.2.3", "198.51.100.1", &server_cert, nullptr));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Direction::kInbound);
  EXPECT_EQ(seen[1], Direction::kOutbound);
  EXPECT_EQ(pipeline.totals().inbound, 1u);
  EXPECT_EQ(pipeline.totals().outbound, 1u);
}

TEST(Pipeline, MutualDetection) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("m-server", false);
  const auto client_cert = make_cert("m-client", false);
  int mutual = 0, total = 0;
  pipeline.add_observer([&](const EnrichedConnection& c) {
    ++total;
    mutual += c.mutual;
  });
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &server_cert,
                          &client_cert));
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &server_cert, nullptr));
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", nullptr, &client_cert));
  EXPECT_EQ(total, 3);
  EXPECT_EQ(mutual, 1);
  EXPECT_EQ(pipeline.totals().mutual, 1u);
}

TEST(Pipeline, SldAndTldFromSni) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("sld-server", true);
  std::string sld, tld;
  pipeline.add_observer([&](const EnrichedConnection& c) {
    sld = c.sld;
    tld = c.tld;
  });
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &server_cert, nullptr,
                          "api.us-east.amazonaws.com"));
  EXPECT_EQ(sld, "amazonaws.com");
  EXPECT_EQ(tld, "com");
}

TEST(Pipeline, HostFallbackToSanWhenSniMissing) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("fallback", true);  // SAN fallback.example.com
  std::string resolved, sld;
  pipeline.add_observer([&](const EnrichedConnection& c) {
    resolved = c.resolved_host;
    sld = c.sld;
  });
  pipeline.feed(
      make_conn("10.0.0.1", "198.51.100.1", &server_cert, nullptr, ""));
  EXPECT_EQ(resolved, "fallback.example.com");
  EXPECT_EQ(sld, "example.com");
}

TEST(Pipeline, ServerAssociationRules) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("assoc", false);
  std::vector<ServerAssociation> seen;
  pipeline.add_observer([&](const EnrichedConnection& c) {
    seen.push_back(c.assoc);
  });
  const char* hosts[] = {"portal.brhealth.org", "vpn.brexample.edu",
                         "www.brexample.edu", "x.localmed.org",
                         "transfer.globus.org", "mystery.example.com"};
  for (const char* host : hosts) {
    pipeline.feed(
        make_conn("203.0.113.9", "128.143.1.1", &server_cert, nullptr, host));
  }
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], ServerAssociation::kUniversityHealth);
  EXPECT_EQ(seen[1], ServerAssociation::kUniversityVpn);
  EXPECT_EQ(seen[2], ServerAssociation::kUniversityServer);
  EXPECT_EQ(seen[3], ServerAssociation::kLocalOrganization);
  EXPECT_EQ(seen[4], ServerAssociation::kGlobus);
  EXPECT_EQ(seen[5], ServerAssociation::kUnknown);
}

TEST(Pipeline, NonDomainSniIsUnknownAssociation) {
  // The Globus "FXP DCAU Cert" SNI is not a domain: no SLD, Unknown assoc.
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("fxp", false);
  ServerAssociation assoc = ServerAssociation::kNone;
  std::string sld = "x";
  pipeline.add_observer([&](const EnrichedConnection& c) {
    assoc = c.assoc;
    sld = c.sld;
  });
  pipeline.feed(make_conn("203.0.113.9", "128.143.1.1", &server_cert, nullptr,
                          "FXP DCAU Cert"));
  EXPECT_EQ(assoc, ServerAssociation::kUnknown);
  EXPECT_TRUE(sld.empty());
}

TEST(Pipeline, CertFactsClassification) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto pub = make_cert("pub-leaf", true);
  const auto priv = make_cert("priv-leaf", false);
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &pub, &priv));
  const auto& certs = pipeline.certificates();
  ASSERT_EQ(certs.size(), 2u);
  const auto& pub_facts = certs.at(zeek::fuid_of(pub));
  const auto& priv_facts = certs.at(zeek::fuid_of(priv));
  EXPECT_EQ(pub_facts.issuer_class, trust::IssuerClass::kPublic);
  EXPECT_EQ(priv_facts.issuer_class, trust::IssuerClass::kPrivate);
  EXPECT_EQ(pub_facts.issuer_category, IssuerCategory::kPublic);
  EXPECT_TRUE(pub_facts.used_as_server);
  EXPECT_FALSE(pub_facts.used_as_client);
  EXPECT_TRUE(priv_facts.used_as_client);
  EXPECT_TRUE(priv_facts.used_in_mutual);
  EXPECT_EQ(pub_facts.serial_hex, pub.serial_hex());
}

TEST(Pipeline, UsageAggregation) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("agg-server", false);
  const auto client_cert = make_cert("agg-client", false);
  const auto t1 = to_unix({2023, 2, 1, 0, 0, 0});
  const auto t2 = to_unix({2023, 8, 1, 0, 0, 0});
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &server_cert,
                          &client_cert, "s.example.com", t1));
  pipeline.feed(make_conn("10.0.0.2", "198.51.100.1", &server_cert,
                          &client_cert, "s.example.com", t2));
  const auto& facts =
      pipeline.certificates().at(zeek::fuid_of(client_cert));
  EXPECT_EQ(facts.connection_count, 2u);
  EXPECT_EQ(facts.first_seen, t1);
  EXPECT_EQ(facts.last_seen, t2);
  EXPECT_NEAR(facts.activity_days(), 181.0, 1.0);
  EXPECT_EQ(facts.client_subnets.size(), 1u);  // both clients in 10.0.0/24
}

TEST(Pipeline, ExpiredClientUseDetected) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("exp-server", false);
  const auto expired = make_cert("exp-client", false,
                                 to_unix({2020, 1, 1, 0, 0, 0}),
                                 to_unix({2021, 1, 1, 0, 0, 0}));
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &server_cert, &expired));
  const auto& facts = pipeline.certificates().at(zeek::fuid_of(expired));
  EXPECT_TRUE(facts.client_use_while_expired);
}

TEST(Pipeline, SubnetTrackingByRole) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto cert = make_cert("role-cert", false);
  // Used as server from one address, as client from two /24s.
  pipeline.feed(make_conn("10.0.1.1", "198.51.100.1", &cert, nullptr));
  pipeline.feed(make_conn("10.0.2.1", "198.51.100.9", nullptr, &cert));
  pipeline.feed(make_conn("10.0.3.1", "198.51.100.9", nullptr, &cert));
  const auto& facts = pipeline.certificates().at(zeek::fuid_of(cert));
  EXPECT_TRUE(facts.used_as_server);
  EXPECT_TRUE(facts.used_as_client);
  EXPECT_EQ(facts.server_subnets.size(), 1u);
  EXPECT_EQ(facts.client_subnets.size(), 2u);
}

TEST(Pipeline, InterceptionConfirmationThreshold) {
  // A CT-mismatching issuer is flagged only after three distinct domains.
  ctlog::CtDatabase ct;
  const auto& le = trust::public_pki().find("lets-encrypt")->intermediate;
  for (const char* domain : {"aaa.com", "bbb.com", "ccc.com", "ddd.com"}) {
    ct.log_certificate(domain, le.dn());
  }
  auto config = PipelineConfig::campus_defaults();
  config.ct = &ct;
  Pipeline pipeline(std::move(config));

  x509::DistinguishedName proxy_dn;
  proxy_dn.add_org("Proxy Corp").add_cn("Proxy Inspection CA");
  const auto proxy = trust::CertificateAuthority::make_root(
      proxy_dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  const auto issue = [&proxy](const std::string& domain) {
    x509::DistinguishedName dn;
    dn.add_cn(domain);
    return proxy.issue(x509::CertificateBuilder()
                           .serial_from_label("icept:" + domain)
                           .subject(dn)
                           .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                           .public_key(crypto::TsigKey::derive(domain).key)
                           .add_san_dns(domain));
  };

  const auto a = issue("aaa.com");
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &a, nullptr, "aaa.com"));
  EXPECT_TRUE(pipeline.interception_issuers().empty()) << "1 domain";
  const auto b = issue("bbb.com");
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &b, nullptr, "bbb.com"));
  EXPECT_TRUE(pipeline.interception_issuers().empty()) << "2 domains";
  const auto c = issue("ccc.com");
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &c, nullptr, "ccc.com"));
  EXPECT_EQ(pipeline.interception_issuers().size(), 1u) << "3 domains";

  // Subsequent connections from the confirmed issuer are excluded.
  const auto d = issue("ddd.com");
  int observed = 0;
  pipeline.add_observer([&observed](const EnrichedConnection&) { ++observed; });
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &d, nullptr, "ddd.com"));
  EXPECT_EQ(observed, 0);
  EXPECT_GE(pipeline.interception_excluded_connections(), 2u);

  pipeline.finalize();
  EXPECT_EQ(pipeline.interception_flagged_certificates(), 4u);
}

TEST(Pipeline, LegitimatePrivateCaNotFlagged) {
  ctlog::CtDatabase ct;  // CT knows nothing about the internal domain
  auto config = PipelineConfig::campus_defaults();
  config.ct = &ct;
  Pipeline pipeline(std::move(config));
  const auto cert = make_cert("internal-service", false);
  int observed = 0;
  pipeline.add_observer([&observed](const EnrichedConnection&) { ++observed; });
  for (int i = 0; i < 5; ++i) {
    pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &cert, nullptr,
                            "internal-service.example.com"));
  }
  EXPECT_EQ(observed, 5);
  EXPECT_TRUE(pipeline.interception_issuers().empty());
}

TEST(Pipeline, ChainUpgradesPrivateLeafToPublic) {
  // §3.2.1: a leaf is public when its root OR INTERMEDIATE is in a trust
  // store — even if the direct issuer is unknown.
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto* digicert = trust::public_pki().find("digicert");
  x509::DistinguishedName sub_dn;
  sub_dn.add_org("Chain Test Hosting").add_cn("Chain Test Issuing CA");
  const auto subca = trust::CertificateAuthority::make_intermediate(
      digicert->intermediate, sub_dn, 0, to_unix({2038, 1, 1, 0, 0, 0}));
  x509::DistinguishedName leaf_dn;
  leaf_dn.add_cn("shop.example.com");
  const auto leaf =
      subca.issue(x509::CertificateBuilder()
                      .serial_from_label("chain-leaf")
                      .subject(leaf_dn)
                      .validity(to_unix({2023, 1, 1, 0, 0, 0}),
                                to_unix({2024, 1, 1, 0, 0, 0}))
                      .public_key(crypto::TsigKey::derive("cl").key)
                      .add_san_dns("shop.example.com"));

  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.0.0.1"), 55555};
  client.sni = "shop.example.com";
  tls::ServerProfile server;
  server.endpoint = {*net::IpAddress::parse("198.51.100.1"), 443};
  server.chain = {leaf, subca.certificate()};  // leaf + intermediate
  pipeline.feed(tls::simulate_handshake(client, server, {"CC1", kTs, kTs}));

  const auto& facts = pipeline.certificates().at(zeek::fuid_of(leaf));
  EXPECT_EQ(facts.issuer_class, trust::IssuerClass::kPublic);
  EXPECT_EQ(facts.issuer_category, IssuerCategory::kPublic);
}

TEST(Pipeline, LeafOnlyChainStaysPrivate) {
  // The same sub-CA leaf WITHOUT the intermediate in the chain cannot be
  // validated as public — exactly the paper's untrusted-issuer concern.
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto* digicert = trust::public_pki().find("digicert");
  x509::DistinguishedName sub_dn;
  sub_dn.add_org("Chain Test Hosting").add_cn("Chain Test Issuing CA");
  const auto subca = trust::CertificateAuthority::make_intermediate(
      digicert->intermediate, sub_dn, 0, to_unix({2038, 1, 1, 0, 0, 0}));
  x509::DistinguishedName leaf_dn;
  leaf_dn.add_cn("bare.example.com");
  const auto leaf =
      subca.issue(x509::CertificateBuilder()
                      .serial_from_label("bare-leaf")
                      .subject(leaf_dn)
                      .validity(to_unix({2023, 1, 1, 0, 0, 0}),
                                to_unix({2024, 1, 1, 0, 0, 0}))
                      .public_key(crypto::TsigKey::derive("bl").key));
  pipeline.feed(make_conn("10.0.0.1", "198.51.100.1", &leaf, nullptr,
                          "bare.example.com"));
  const auto& facts = pipeline.certificates().at(zeek::fuid_of(leaf));
  EXPECT_EQ(facts.issuer_class, trust::IssuerClass::kPrivate);
}

TEST(Pipeline, Tls13ConnectionsCountedButCertInvisible) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  const auto server_cert = make_cert("t13-server", false);
  const auto client_cert = make_cert("t13-client", false);
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.0.0.1"), 55555};
  client.max_version = tls::TlsVersion::kTls13;
  client.chain = {client_cert};
  tls::ServerProfile server;
  server.endpoint = {*net::IpAddress::parse("198.51.100.1"), 443};
  server.max_version = tls::TlsVersion::kTls13;
  server.chain = {server_cert};
  server.request_client_certificate = true;
  pipeline.feed(tls::simulate_handshake(client, server, {"C13", kTs, kTs}));
  EXPECT_EQ(pipeline.totals().connections, 1u);
  EXPECT_EQ(pipeline.totals().tls13, 1u);
  EXPECT_EQ(pipeline.totals().mutual, 0u);
  EXPECT_TRUE(pipeline.certificates().empty());
}

TEST(Pipeline, FactsFromLogFieldsWithoutDer) {
  // Real Zeek deployments usually do not log the DER; facts must come
  // from the parsed log fields.
  Pipeline pipeline(PipelineConfig::campus_defaults());
  zeek::X509Record record;
  record.fuid = "Fnoderlogonly000001";
  record.version = 3;
  record.serial = "0A0B";
  record.subject = "CN=John Smith";
  record.issuer = "O=Blue Ridge University,CN=Blue Ridge University User CA";
  record.not_valid_before = 0;
  record.not_valid_after = to_unix({2030, 1, 1, 0, 0, 0});
  record.key_length = 2048;
  pipeline.add_certificate(record);
  const auto& facts = pipeline.certificates().at(record.fuid);
  EXPECT_EQ(facts.subject_cn, "John Smith");
  EXPECT_EQ(facts.cn_type, textclass::InfoType::kPersonalName);
  EXPECT_TRUE(facts.campus_issuer);
  EXPECT_EQ(facts.issuer_category, IssuerCategory::kPrivateEducation);
  EXPECT_EQ(facts.serial_hex, "0A0B");
}

TEST(Pipeline, AddCertificateIsIdempotent) {
  Pipeline pipeline(PipelineConfig::campus_defaults());
  zeek::X509Record record;
  record.fuid = "Fsame0000000000001";
  record.subject = "CN=first";
  pipeline.add_certificate(record);
  record.subject = "CN=second";
  pipeline.add_certificate(record);
  EXPECT_EQ(pipeline.certificates().at(record.fuid).subject_cn, "first");
}

}  // namespace
}  // namespace mtlscope::core
