#include <gtest/gtest.h>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"

namespace mtlscope::core {
namespace {

using util::to_unix;

const trust::CertificateAuthority& test_ca() {
  static const auto ca = [] {
    x509::DistinguishedName dn;
    dn.add_org("Analyzer Test Org").add_cn("Analyzer Test CA");
    return trust::CertificateAuthority::make_root(
        dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  }();
  return ca;
}

x509::Certificate make_cert(
    const std::string& cn, const std::string& serial_hex = "",
    util::UnixSeconds nb = to_unix({2022, 6, 1, 0, 0, 0}),
    util::UnixSeconds na = to_unix({2024, 6, 1, 0, 0, 0})) {
  x509::DistinguishedName dn;
  dn.add_cn(cn);
  x509::CertificateBuilder builder;
  builder.subject(dn).validity(nb, na).public_key(
      crypto::TsigKey::derive("at:" + cn).key);
  if (serial_hex.empty()) {
    builder.serial_from_label("at:" + cn);
  } else {
    builder.serial_hex(serial_hex);
  }
  return test_ca().issue(builder);
}

struct Harness {
  Pipeline pipeline{PipelineConfig::campus_defaults()};

  void feed(const std::string& client_ip, const std::string& server_ip,
            const x509::Certificate* server_cert,
            const x509::Certificate* client_cert, const std::string& sni,
            util::UnixSeconds ts, std::uint16_t port = 443) {
    tls::ClientProfile client;
    client.endpoint = {*net::IpAddress::parse(client_ip), 50000};
    if (!sni.empty()) client.sni = sni;
    if (client_cert != nullptr) client.chain = {*client_cert};
    tls::ServerProfile server;
    server.endpoint = {*net::IpAddress::parse(server_ip), port};
    if (server_cert != nullptr) server.chain = {*server_cert};
    server.request_client_certificate = client_cert != nullptr;
    pipeline.feed(tls::simulate_handshake(client, server, {"Ch", ts, ts}));
  }
};

const util::UnixSeconds kT1 = to_unix({2022, 7, 1, 0, 0, 0});
const util::UnixSeconds kT2 = to_unix({2023, 7, 1, 0, 0, 0});

TEST(PrevalenceAnalyzer, MonthlyBuckets) {
  Harness h;
  PrevalenceAnalyzer prevalence;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { prevalence.observe(c); });
  const auto server = make_cert("prev-server");
  const auto client = make_cert("prev-client");
  h.feed("10.0.0.1", "198.51.100.1", &server, &client, "a.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &server, nullptr, "a.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &server, &client, "a.example.com", kT2);
  const auto series = prevalence.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].total, 2u);
  EXPECT_EQ(series[0].mutual, 1u);
  EXPECT_NEAR(series[0].mutual_pct(), 50.0, 1e-9);
  EXPECT_EQ(series[1].total, 1u);
  EXPECT_EQ(series[1].mutual_outbound, 1u);
  EXPECT_EQ(util::month_label(series[0].month_index), "2022-07");
}

TEST(ServicePortAnalyzer, QuadrantsAndGlobusRange) {
  Harness h;
  ServicePortAnalyzer ports;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { ports.observe(c); });
  const auto server = make_cert("port-server");
  const auto client = make_cert("port-client");
  for (int i = 0; i < 6; ++i) {
    h.feed("203.0.113.9", "128.143.1.1", &server, &client, "x.brexample.edu",
           kT1, 443);
  }
  h.feed("203.0.113.9", "128.143.1.1", &server, &client, "x.brexample.edu",
         kT1, 50123);
  h.feed("203.0.113.9", "128.143.1.1", &server, &client, "x.brexample.edu",
         kT1, 50999);
  h.feed("10.0.0.1", "198.51.100.1", &server, nullptr, "y.example.com", kT1,
         443);
  const auto in_mutual = ports.top(Direction::kInbound, true);
  ASSERT_GE(in_mutual.size(), 2u);
  EXPECT_EQ(in_mutual[0].port_label, "443");
  EXPECT_NEAR(in_mutual[0].share, 75.0, 1e-9);
  EXPECT_EQ(in_mutual[1].port_label, "50000-51000");
  EXPECT_EQ(in_mutual[1].service, "Corp. - Globus");
  const auto out_non = ports.top(Direction::kOutbound, false);
  ASSERT_EQ(out_non.size(), 1u);
  EXPECT_EQ(out_non[0].connections, 1u);
}

TEST(DummyIssuerAnalyzer, DetectsDummyClientAndServer) {
  Harness h;
  DummyIssuerAnalyzer dummies;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { dummies.observe(c); });

  x509::DistinguishedName widgits_dn;
  widgits_dn.add_country("AU").add_org("Internet Widgits Pty Ltd");
  const auto widgits = trust::CertificateAuthority::make_root(
      widgits_dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  x509::DistinguishedName leaf_dn;
  leaf_dn.add_cn("testcert");
  const auto dummy_leaf =
      widgits.issue(x509::CertificateBuilder()
                        .serial_hex("00")
                        .subject(leaf_dn)
                        .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                        .public_key(crypto::TsigKey::derive("dl").key));
  const auto normal = make_cert("normal-server");

  // Dummy client against a normal server, outbound.
  h.feed("10.0.0.1", "198.51.100.1", &normal, &dummy_leaf, "svc.example.com",
         kT1);
  // Dummy on BOTH ends.
  h.feed("10.0.0.2", "198.51.100.2", &dummy_leaf, &dummy_leaf,
         "fireboard.io", kT1);

  const auto rows = dummies.rows();
  ASSERT_GE(rows.size(), 2u);
  bool client_row = false, server_row = false;
  for (const auto& row : rows) {
    EXPECT_EQ(row.dummy_org, "Internet Widgits Pty Ltd");
    client_row |= row.client_side;
    server_row |= !row.client_side;
  }
  EXPECT_TRUE(client_row);
  EXPECT_TRUE(server_row);

  const auto both = dummies.both_ends_rows();
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].sld, "fireboard.io");
  EXPECT_EQ(both[0].client_org, "Internet Widgits Pty Ltd");
}

TEST(SerialCollisionAnalyzer, GroupsByIssuerAndSerial) {
  Harness h;
  SerialCollisionAnalyzer serials;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { serials.observe(c); });
  const auto s1 = make_cert("serial-a", "00");
  const auto s2 = make_cert("serial-b", "00");
  const auto c1 = make_cert("serial-c", "00");
  h.feed("10.0.0.1", "198.51.100.1", &s1, &c1, "a.example.com", kT1);
  h.feed("10.0.0.2", "198.51.100.1", &s2, &c1, "a.example.com", kT1);
  const auto groups = serials.collision_groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].serial, "00");
  EXPECT_EQ(groups[0].server_certs.size(), 2u);
  EXPECT_EQ(groups[0].client_certs.size(), 1u);
  EXPECT_EQ(groups[0].clients.size(), 2u);
  EXPECT_EQ(serials.involved_clients(Direction::kOutbound), 2u);
  EXPECT_EQ(serials.involved_clients(Direction::kInbound), 0u);
}

TEST(SerialCollisionAnalyzer, UniqueSerialsIgnored) {
  Harness h;
  SerialCollisionAnalyzer serials;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { serials.observe(c); });
  const auto s1 = make_cert("uniq-a");  // 16-byte random serial
  const auto s2 = make_cert("uniq-b");
  h.feed("10.0.0.1", "198.51.100.1", &s1, &s2, "a.example.com", kT1);
  EXPECT_TRUE(serials.collision_groups().empty());
}

TEST(SharedCertAnalyzer, SameConnectionDetection) {
  Harness h;
  SharedCertAnalyzer shared;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { shared.observe(c); });
  const auto cert = make_cert("shared-one");
  const auto other = make_cert("shared-other");
  h.feed("10.0.0.1", "198.51.100.1", &cert, &cert, "dup.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &cert, &cert, "dup.example.com", kT2);
  h.feed("10.0.0.1", "198.51.100.1", &cert, &other, "dup.example.com", kT1);
  const auto rows = shared.same_connection_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].sld, "example.com");
  EXPECT_EQ(rows[0].connections, 2u);
  EXPECT_NEAR(rows[0].duration_days(), 365.0, 1.0);
  EXPECT_EQ(shared.same_connection_conns(Direction::kOutbound), 2u);
}

TEST(SharedCertAnalyzer, SubnetQuantilesExcludeSameConn) {
  Harness h;
  SharedCertAnalyzer shared;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { shared.observe(c); });
  const auto cross = make_cert("cross-cert");
  const auto partner = make_cert("cross-partner");
  const auto same = make_cert("same-cert");
  // cross-cert: server in one conn, client in another (distinct conns).
  h.feed("10.0.0.1", "198.51.100.1", &cross, &partner, "a.example.com", kT1);
  h.feed("10.1.0.1", "198.51.100.2", &partner, &cross, "a.example.com", kT1);
  h.feed("10.2.0.1", "198.51.100.2", &partner, &cross, "a.example.com", kT1);
  // same-cert: both ends of one conn → excluded from Table 6.
  h.feed("10.0.0.9", "198.51.100.9", &same, &same, "b.example.com", kT1);
  const auto q = shared.subnet_quantiles(h.pipeline);
  EXPECT_EQ(q.cross_shared_certs, 2u);  // cross-cert and partner
  EXPECT_GE(q.client[3], 2u);           // cross used from two /24s as client
}

TEST(IncorrectDateAnalyzer, DetectsAndGroups) {
  Harness h;
  IncorrectDateAnalyzer dates;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { dates.observe(c); });
  const auto wrong_client = make_cert("idrive-client", "",
                                      to_unix({2019, 8, 2, 0, 0, 0}),
                                      to_unix({1849, 10, 24, 0, 0, 0}));
  const auto wrong_server = make_cert("idrive-server", "",
                                      to_unix({2020, 7, 3, 0, 0, 0}),
                                      to_unix({1850, 9, 25, 0, 0, 0}));
  const auto normal = make_cert("normal");
  h.feed("10.0.0.1", "198.51.100.1", &wrong_server, &wrong_client,
         "idrive.com", kT1);
  h.feed("10.0.0.2", "198.51.100.1", &normal, &wrong_client, "idrive.com",
         kT2);
  const auto rows = dates.rows();
  ASSERT_EQ(rows.size(), 2u);  // client row and server row
  const auto both = dates.both_ends_rows();
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].sld, "idrive.com");
  EXPECT_EQ(both[0].clients.size(), 1u);
  bool found_client_row = false;
  for (const auto& row : rows) {
    if (row.client_side) {
      found_client_row = true;
      EXPECT_EQ(row.clients.size(), 2u);
      EXPECT_EQ(util::from_unix(row.not_after).year, 1849);
    }
  }
  EXPECT_TRUE(found_client_row);
}

TEST(CertInventory, CountsRolesAndMutual) {
  Harness h;
  const auto server = make_cert("inv-server");
  const auto client = make_cert("inv-client");
  const auto lonely = make_cert("inv-nonmutual");
  h.feed("10.0.0.1", "198.51.100.1", &server, &client, "a.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &lonely, nullptr, "b.example.com", kT1);
  const auto result = analyze_cert_inventory(h.pipeline);
  EXPECT_EQ(result.total.total, 3u);
  EXPECT_EQ(result.total.mutual, 2u);
  EXPECT_EQ(result.server.total, 2u);
  EXPECT_EQ(result.client.total, 1u);
  EXPECT_EQ(result.client_private.total, 1u);
  EXPECT_EQ(result.client_private.mutual, 1u);
  EXPECT_NEAR(result.server.mutual_pct(), 50.0, 1e-9);
}

TEST(Utilization, ScopesAreDisjoint) {
  Harness h;
  const auto server = make_cert("ut-server");
  const auto client = make_cert("ut-client");
  const auto shared_cert = make_cert("ut-shared");
  const auto nonmutual = make_cert("ut-nonmutual");
  h.feed("10.0.0.1", "198.51.100.1", &server, &client, "a.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &shared_cert, &shared_cert,
         "b.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &nonmutual, nullptr, "c.example.com",
         kT1);
  const auto mutual = analyze_utilization(h.pipeline, CertScope::kMutual);
  const auto shared = analyze_utilization(h.pipeline, CertScope::kShared);
  const auto nonmut = analyze_utilization(h.pipeline, CertScope::kNonMutual);
  EXPECT_EQ(mutual.all.total, 3u);  // server, client, shared (all mutual)
  EXPECT_EQ(shared.all.total, 1u);
  EXPECT_EQ(nonmut.all.total, 1u);
  EXPECT_EQ(mutual.all.cn, 3u);  // every cert here has a CN
}

TEST(InfoTypes, SharedExcludedFromMutualScope) {
  Harness h;
  const auto server = make_cert("it-server");
  const auto client = make_cert("it-client");
  const auto shared_cert = make_cert("it-shared");
  h.feed("10.0.0.1", "198.51.100.1", &server, &client, "a.example.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &shared_cert, &shared_cert,
         "b.example.com", kT1);
  const auto mutual = analyze_info_types(h.pipeline, CertScope::kMutual);
  const auto shared = analyze_info_types(h.pipeline, CertScope::kShared);
  // Mutual scope: one server CN + one client CN; shared cert not counted.
  EXPECT_EQ(mutual.cells[0][1].cn_total, 1u);
  EXPECT_EQ(mutual.cells[1][1].cn_total, 1u);
  EXPECT_EQ(shared.cells[0][1].cn_total, 1u);
}

TEST(ExpiredAnalyzer, ComputesDaysExpiredAndActivity) {
  Harness h;
  const auto server = make_cert("ex-server");
  const auto expired = make_cert("ex-client", "", to_unix({2020, 1, 1, 0, 0, 0}),
                                 to_unix({2022, 1, 1, 0, 0, 0}));
  h.feed("10.0.0.1", "198.51.100.1", &server, &expired, "apple.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &server, &expired, "apple.com", kT2);
  const auto result = analyze_expired(h.pipeline);
  ASSERT_EQ(result.outbound.size(), 1u);
  EXPECT_TRUE(result.inbound.empty());
  EXPECT_NEAR(result.outbound[0].days_expired_at_first_use, 181.0, 1.5);
  EXPECT_NEAR(result.outbound[0].activity_days, 365.0, 1.0);
}

TEST(OutboundFlow, FlowsAndStatistics) {
  Harness h;
  OutboundFlowAnalyzer flows;
  h.pipeline.add_observer(
      [&](const EnrichedConnection& c) { flows.observe(c); });
  const auto pub_server = [] {
    x509::DistinguishedName dn;
    dn.add_cn("pub.example.com");
    return trust::public_pki().find("amazon")->intermediate.issue(
        x509::CertificateBuilder()
            .serial_from_label("flow-pub")
            .subject(dn)
            .validity(to_unix({2022, 6, 1, 0, 0, 0}),
                      to_unix({2024, 6, 1, 0, 0, 0}))
            .public_key(crypto::TsigKey::derive("flow-pub").key)
            .add_san_dns("pub.example.com"));
  }();
  const auto client = make_cert("flow-client");
  // 3 outbound mutual conns with SNI, 1 without, 1 inbound (ignored).
  h.feed("10.0.0.1", "198.51.100.1", &pub_server, &client,
         "svc.amazonaws.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &pub_server, &client,
         "svc.amazonaws.com", kT1);
  h.feed("10.0.0.1", "198.51.100.1", &pub_server, &client, "api.rapid7.com",
         kT1);
  h.feed("10.0.0.1", "198.51.100.1", &pub_server, &client, "", kT1);
  h.feed("203.0.113.9", "128.143.1.1", &pub_server, &client,
         "x.brexample.edu", kT1);

  const auto slds = flows.top_slds(5);
  ASSERT_EQ(slds.size(), 2u);
  EXPECT_EQ(slds[0].first, "amazonaws.com");
  EXPECT_NEAR(slds[0].second, 66.67, 0.1);
  EXPECT_EQ(slds[1].first, "rapid7.com");

  const auto top = flows.top_flows();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].tld, "com");
  EXPECT_EQ(top[0].server_class, trust::IssuerClass::kPublic);
  // The private client issuer has no known organization category match.
  EXPECT_NE(top[0].client_category, IssuerCategory::kPublic);
}

TEST(Tracking, RanksPersistentIdentifiers) {
  Harness h;
  const auto server = make_cert("trk-server");
  const auto sticky = make_cert("trk-sticky");   // reused, cross-network
  const auto oneoff = make_cert("trk-oneoff");
  h.feed("10.0.1.1", "198.51.100.1", &server, &sticky, "a.example.com", kT1);
  h.feed("10.0.2.1", "198.51.100.1", &server, &sticky, "a.example.com", kT2);
  h.feed("10.0.3.1", "198.51.100.1", &server, &oneoff, "a.example.com", kT1);
  const auto result = analyze_tracking(h.pipeline);
  EXPECT_EQ(result.client_certs, 2u);
  EXPECT_EQ(result.reused, 1u);
  EXPECT_EQ(result.cross_network, 1u);
  EXPECT_EQ(result.half_year_plus, 1u);  // kT1..kT2 is a year
  ASSERT_FALSE(result.most_trackable.empty());
  EXPECT_EQ(result.most_trackable[0].connections, 2u);
  EXPECT_EQ(result.most_trackable[0].subnets, 2u);
}

TEST(Tracking, PiiLongLivedWorstCase) {
  Harness h;
  const auto server = make_cert("trk2-server");
  const auto named = make_cert("John Smith");
  h.feed("10.0.1.1", "198.51.100.1", &server, &named, "a.example.com", kT1);
  h.feed("10.0.1.1", "198.51.100.1", &server, &named, "a.example.com", kT2);
  const auto result = analyze_tracking(h.pipeline);
  EXPECT_EQ(result.long_lived_with_pii, 1u);
}

TEST(Renewal, DetectsSequentialChains) {
  Harness h;
  const auto server = make_cert("rn-server");
  // Device "printer-7" renewed three times, back to back.
  const auto g1 = make_cert("printer-7", "", to_unix({2022, 6, 1, 0, 0, 0}),
                            to_unix({2022, 12, 1, 0, 0, 0}));
  // Same CN/issuer but different keys → different fingerprints: vary the
  // serial label through the CN-based key derivation by reusing make_cert
  // with identical CN needs distinct certs; build manually:
  const auto renew = [&](const char* label, util::UnixSeconds nb,
                         util::UnixSeconds na) {
    x509::DistinguishedName dn;
    dn.add_cn("printer-7");
    return test_ca().issue(x509::CertificateBuilder()
                               .serial_from_label(label)
                               .subject(dn)
                               .validity(nb, na)
                               .public_key(
                                   crypto::TsigKey::derive(label).key));
  };
  const auto g2 = renew("rn-2", to_unix({2022, 12, 1, 0, 0, 0}),
                        to_unix({2023, 6, 1, 0, 0, 0}));
  const auto g3 = renew("rn-3", to_unix({2023, 6, 15, 0, 0, 0}),  // 14d gap
                        to_unix({2023, 12, 1, 0, 0, 0}));
  h.feed("10.0.0.1", "198.51.100.1", &server, &g1, "a.example.com",
         to_unix({2022, 7, 1, 0, 0, 0}));
  h.feed("10.0.0.1", "198.51.100.1", &server, &g2, "a.example.com",
         to_unix({2023, 1, 1, 0, 0, 0}));
  h.feed("10.0.0.1", "198.51.100.1", &server, &g3, "a.example.com",
         to_unix({2023, 7, 1, 0, 0, 0}));
  const auto result = analyze_renewals(h.pipeline);
  EXPECT_EQ(result.chains, 1u);
  EXPECT_EQ(result.certificates_in_chains, 3u);
  EXPECT_EQ(result.seamless, 1u);
  EXPECT_EQ(result.gap, 1u);
  ASSERT_FALSE(result.top_issuers.empty());
  EXPECT_EQ(result.top_issuers[0].issuer, "Analyzer Test Org");
}

TEST(Renewal, GenericCnReuseIsNotARenewal) {
  Harness h;
  const auto server = make_cert("rr-server");
  // Two unrelated certs named "WebRTC" with heavily overlapping windows.
  const auto make_webrtc = [&](const char* label) {
    x509::DistinguishedName dn;
    dn.add_cn("WebRTC");
    return test_ca().issue(x509::CertificateBuilder()
                               .serial_from_label(label)
                               .subject(dn)
                               .validity(to_unix({2022, 6, 1, 0, 0, 0}) +
                                             (label[2] - '0') * 86'400,
                                         to_unix({2024, 6, 1, 0, 0, 0}))
                               .public_key(
                                   crypto::TsigKey::derive(label).key));
  };
  const auto w1 = make_webrtc("rr1");
  const auto w2 = make_webrtc("rr2");
  h.feed("10.0.0.1", "198.51.100.1", &server, &w1, "a.example.com", kT1);
  h.feed("10.0.0.2", "198.51.100.1", &server, &w2, "a.example.com", kT1);
  const auto result = analyze_renewals(h.pipeline);
  EXPECT_EQ(result.chains, 0u);
  EXPECT_EQ(result.cn_reuse_groups, 1u);
}

TEST(TextTable, RendersAligned) {
  TextTable table({"A", "Long header"});
  table.add_row({"x", "1"});
  table.add_row({"yyyy", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("A     Long header"), std::string::npos);
  EXPECT_NE(out.find("yyyy  22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, Formatting) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(1, 4), "25.00%");
  EXPECT_EQ(format_percent(1, 0), "-");
}

}  // namespace
}  // namespace mtlscope::core
