#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/crypto/rng.hpp"
#include "mtlscope/crypto/sha256.hpp"
#include "mtlscope/crypto/tsig.hpp"

namespace mtlscope::crypto {
namespace {

std::string digest_hex(const Sha256::Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// --- SHA-256 FIPS 180-4 / NIST CAVP vectors -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789";
  const auto oneshot = Sha256::hash(data);
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(data).substr(0, split));
    h.update(std::string_view(data).substr(split));
    EXPECT_EQ(h.finish(), oneshot) << "split at " << split;
  }
}

// Boundary lengths around the 55/56/64-byte padding edges.
class Sha256PaddingEdge : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256PaddingEdge, MatchesByteAtATime) {
  const std::string data(GetParam(), 'x');
  const auto oneshot = Sha256::hash(data);
  Sha256 h;
  for (const char c : data) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingEdge,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 128, 1000));

// --- HMAC-SHA256 RFC 4231 vectors ------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Hex / Base64 ----------------------------------------------------------

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(to_hex_upper(data), "0001ABFF7F");
  EXPECT_EQ(from_hex("0001abff7f").value(), data);
  EXPECT_EQ(from_hex("0001ABFF7F").value(), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_TRUE(from_hex("").has_value());       // empty is valid
  EXPECT_TRUE(from_hex("").value().empty());
}

TEST(Base64, Rfc4648Vectors) {
  const auto enc = [](std::string_view s) {
    return to_base64(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeRoundTrip) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const auto decoded = from_base64(to_base64(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Base64, ToleratesMissingPadding) {
  const auto decoded = from_base64("Zm9vYmE");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::string(decoded->begin(), decoded->end()), "fooba");
}

TEST(Base64, RejectsInvalidCharacter) {
  EXPECT_FALSE(from_base64("Zm9v!mFy").has_value());
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, WeightedApproximatesDistribution) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 40000, 0.75, 0.02);
}

TEST(Rng, UuidShape) {
  Rng rng(21);
  const std::string u = rng.uuid();
  ASSERT_EQ(u.size(), 36u);
  EXPECT_EQ(u[8], '-');
  EXPECT_EQ(u[13], '-');
  EXPECT_EQ(u[18], '-');
  EXPECT_EQ(u[23], '-');
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(5);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

// --- tsig -------------------------------------------------------------------

TEST(Tsig, DeriveDeterministic) {
  const auto a = TsigKey::derive("Example CA");
  const auto b = TsigKey::derive("Example CA");
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.bits(), 2048u);
}

TEST(Tsig, DeriveRespectsBits) {
  EXPECT_EQ(TsigKey::derive("weak", 1024).bits(), 1024u);
  EXPECT_EQ(TsigKey::derive("strong", 4096).bits(), 4096u);
}

TEST(Tsig, SignVerifyRoundTrip) {
  const auto key = TsigKey::derive("signer");
  const std::vector<std::uint8_t> tbs = {1, 2, 3, 4, 5};
  const auto sig = tsig_sign(key, tbs);
  EXPECT_TRUE(tsig_verify(key.key, tbs, sig));
}

TEST(Tsig, VerifyRejectsTamperedMessage) {
  const auto key = TsigKey::derive("signer");
  const std::vector<std::uint8_t> tbs = {1, 2, 3, 4, 5};
  auto sig = tsig_sign(key, tbs);
  std::vector<std::uint8_t> other = {1, 2, 3, 4, 6};
  EXPECT_FALSE(tsig_verify(key.key, other, sig));
}

TEST(Tsig, VerifyRejectsWrongKey) {
  const auto key = TsigKey::derive("signer");
  const auto other = TsigKey::derive("impostor");
  const std::vector<std::uint8_t> tbs = {9, 9, 9};
  const auto sig = tsig_sign(key, tbs);
  EXPECT_FALSE(tsig_verify(other.key, tbs, sig));
}

TEST(Tsig, VerifyRejectsTruncatedSignature) {
  const auto key = TsigKey::derive("signer");
  const std::vector<std::uint8_t> tbs = {1};
  auto sig = tsig_sign(key, tbs);
  sig.pop_back();
  EXPECT_FALSE(tsig_verify(key.key, tbs, sig));
}

}  // namespace
}  // namespace mtlscope::crypto
