// Durability suite (DESIGN §16): the write-side retry discipline, the
// atomic publication pipeline, the FaultVfs injector, and — riding
// along — direct coverage of the read-side retry.hpp policy the write
// path mirrors. The load-bearing assertions:
//
//   * read_fully / write_fully absorb EINTR storms and short transfers
//     unboundedly, absorb EAGAIN with bounded backoff (counted), and
//     surface a hard errno exactly once the budget is exhausted;
//   * atomic_publish_file either fully replaces the destination or
//     leaves its previous bytes untouched — never a torn file, never a
//     leftover temp sibling — and classifies ENOSPC/EIO failures;
//   * the container writer routes every frame through write_fully, so
//     injected EINTR/short-write storms leave a byte-perfect container
//     and an injected ENOSPC surfaces as a classified error, not a
//     truncated file that parses;
//   * shard-state saves are atomic under the same injection.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/core/shard_state.hpp"
#include "mtlscope/ingest/durable_io.hpp"
#include "mtlscope/ingest/retry.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;
using ingest::FaultVfs;
using ingest::WriteClass;
using ingest::WriteFault;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class DurableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultVfs::instance().clear();
    ingest::reset_write_retry_counters();
    ingest::reset_retry_counters();
    dir_ = fs::temp_directory_path() /
           ("mtlscope_durable_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultVfs::instance().clear();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// read_fully (retry.hpp) — the policy write_fully mirrors

TEST_F(DurableIoTest, ReadFullyRetriesEintrStormUnbounded) {
  const std::string payload = "forty-two bytes of deterministic payload!!";
  std::size_t calls = 0;
  const auto op = [&](char* dst, std::size_t len, std::size_t off) -> ssize_t {
    // Every other call is interrupted: 3x kMaxTransientRetries EINTRs in
    // total, far past the transient budget, and all absorbed.
    if (calls++ % 2 == 0) {
      errno = EINTR;
      return -1;
    }
    if (off >= payload.size()) return 0;
    const std::size_t n = std::min(len, std::size_t{1});
    std::memcpy(dst, payload.data() + off, n);
    return static_cast<ssize_t>(n);
  };
  std::string buf(payload.size(), '\0');
  const auto got = ingest::read_fully(op, buf.data(), buf.size(), 0);
  EXPECT_FALSE(got.error);
  EXPECT_EQ(got.bytes, payload.size());
  EXPECT_EQ(buf, payload);
  EXPECT_EQ(ingest::retry_counters().eintr_retries.load(),
            payload.size());  // one interruption absorbed per delivered byte
  // One-byte reads: every non-final delivery counts as a short read.
  EXPECT_EQ(ingest::retry_counters().short_reads.load(), payload.size() - 1);
}

TEST_F(DurableIoTest, ReadFullyBacksOffOnEagainThenRecovers) {
  int eagains = 3;
  const char byte = 'z';
  const auto op = [&](char* dst, std::size_t, std::size_t off) -> ssize_t {
    if (eagains > 0) {
      --eagains;
      errno = EAGAIN;
      return -1;
    }
    if (off >= 1) return 0;
    *dst = byte;
    return 1;
  };
  char buf[4] = {};
  const auto got = ingest::read_fully(op, buf, sizeof(buf), 0);
  EXPECT_FALSE(got.error);
  EXPECT_EQ(got.bytes, 1u);
  EXPECT_EQ(buf[0], byte);
  EXPECT_EQ(ingest::retry_counters().backoff_sleeps.load(), 3u);
}

TEST_F(DurableIoTest, ReadFullyGivesUpAfterTransientBudget) {
  const auto op = [](char*, std::size_t, std::size_t) -> ssize_t {
    errno = EAGAIN;
    return -1;
  };
  char buf[8];
  const auto got = ingest::read_fully(op, buf, sizeof(buf), 0);
  EXPECT_TRUE(got.error);
  EXPECT_EQ(got.err, EAGAIN);
  EXPECT_EQ(got.bytes, 0u);
  EXPECT_EQ(ingest::retry_counters().backoff_sleeps.load(),
            static_cast<std::uint64_t>(ingest::kMaxTransientRetries));
}

// ---------------------------------------------------------------------------
// write_fully

TEST_F(DurableIoTest, WriteFullyContinuesShortWritesAndEintr) {
  const std::string payload(97, 'q');
  std::string sink;
  std::size_t calls = 0;
  const auto op = [&](const char* src, std::size_t len,
                      std::size_t) -> ssize_t {
    if (calls++ % 3 == 0) {
      errno = EINTR;
      return -1;
    }
    const std::size_t n = std::min(len, std::size_t{7});  // chronic shorts
    sink.append(src, n);
    return static_cast<ssize_t>(n);
  };
  const auto out = ingest::write_fully(op, payload.data(), payload.size(), 0);
  EXPECT_FALSE(out.error);
  EXPECT_EQ(out.bytes, payload.size());
  EXPECT_EQ(sink, payload);
  EXPECT_GT(ingest::write_retry_counters().eintr_retries.load(), 0u);
  EXPECT_GT(ingest::write_retry_counters().short_writes.load(), 0u);
}

TEST_F(DurableIoTest, WriteFullyClassifiesHardFailure) {
  const auto op = [](const char*, std::size_t, std::size_t) -> ssize_t {
    errno = ENOSPC;
    return -1;
  };
  const char buf[16] = {};
  const auto out = ingest::write_fully(op, buf, sizeof(buf), 0);
  EXPECT_TRUE(out.error);
  EXPECT_EQ(out.err, ENOSPC);
  EXPECT_EQ(ingest::write_retry_counters().write_failures.load(), 1u);
  EXPECT_EQ(ingest::write_retry_counters().enospc_failures.load(), 1u);
}

TEST_F(DurableIoTest, WriteFullyTreatsZeroReturnAsBoundedTransient) {
  const auto op = [](const char*, std::size_t, std::size_t) -> ssize_t {
    return 0;  // device accepts nothing, forever
  };
  const char buf[4] = {};
  const auto out = ingest::write_fully(op, buf, sizeof(buf), 0);
  EXPECT_TRUE(out.error);
  EXPECT_EQ(out.err, EIO);
  EXPECT_EQ(ingest::write_retry_counters().backoff_sleeps.load(),
            static_cast<std::uint64_t>(ingest::kMaxTransientRetries));
}

TEST_F(DurableIoTest, ClassifyErrno) {
  EXPECT_EQ(ingest::classify_errno(0), WriteClass::kOk);
  EXPECT_EQ(ingest::classify_errno(ENOSPC), WriteClass::kNoSpace);
#ifdef EDQUOT
  EXPECT_EQ(ingest::classify_errno(EDQUOT), WriteClass::kNoSpace);
#endif
  EXPECT_EQ(ingest::classify_errno(EIO), WriteClass::kIo);
  EXPECT_EQ(ingest::classify_errno(EBADF), WriteClass::kOther);
}

// ---------------------------------------------------------------------------
// FaultVfs plan API + write_fully_fd over a real fd

TEST_F(DurableIoTest, FaultVfsInjectsEintrAndShortWritesTransparently) {
  auto& vfs = FaultVfs::instance();
  // Call sequence: 1 interrupted, 2 delivers half, 3 interrupted mid-
  // continuation, 4 delivers the rest.
  vfs.fault_write_at(1, WriteFault{WriteFault::Kind::kEintr, 0});
  vfs.fault_write_at(2, WriteFault{WriteFault::Kind::kShort, 0});
  vfs.fault_write_at(3, WriteFault{WriteFault::Kind::kEintr, 0});

  const std::string file = path("victim.bin");
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::string payload(64, 'x');
  const auto result = ingest::write_fully_fd(fd, payload, "victim");
  ::close(fd);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_EQ(slurp(file), payload);
  EXPECT_EQ(ingest::write_retry_counters().eintr_retries.load(), 2u);
  EXPECT_GE(ingest::write_retry_counters().short_writes.load(), 1u);
  EXPECT_GE(vfs.writes_seen(), 4u);
}

TEST_F(DurableIoTest, FaultVfsEnospcClassified) {
  FaultVfs::instance().fail_write_range(1, 1000, ENOSPC);
  const std::string file = path("full.bin");
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const auto result = ingest::write_fully_fd(fd, "doomed", "full");
  ::close(fd);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.cls, WriteClass::kNoSpace);
  EXPECT_EQ(result.err, ENOSPC);
  EXPECT_NE(result.message.find("no-space"), std::string::npos)
      << result.message;
}

// ---------------------------------------------------------------------------
// atomic_publish_file

TEST_F(DurableIoTest, AtomicPublishReplacesAndLeavesNoTemp) {
  const std::string dst = path("doc.json");
  ASSERT_TRUE(ingest::atomic_publish_file(dst, "v1", "test.site").ok);
  ASSERT_TRUE(ingest::atomic_publish_file(dst, "version-two", "test.site").ok);
  EXPECT_EQ(slurp(dst), "version-two");
  EXPECT_FALSE(fs::exists(ingest::publish_tmp_path(dst)));
  EXPECT_EQ(ingest::write_retry_counters().atomic_publishes.load(), 2u);
  EXPECT_GE(ingest::write_retry_counters().fsyncs.load(), 2u);
  EXPECT_GE(ingest::write_retry_counters().dir_fsyncs.load(), 2u);
}

TEST_F(DurableIoTest, AtomicPublishFailureRetainsPreviousBytes) {
  const std::string dst = path("doc.json");
  ASSERT_TRUE(ingest::atomic_publish_file(dst, "last-good", "test.site").ok);
  FaultVfs::instance().fail_write_range(1, 1000, ENOSPC);
  const auto result = ingest::atomic_publish_file(dst, "torn", "test.site");
  FaultVfs::instance().clear();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.cls, WriteClass::kNoSpace);
  EXPECT_EQ(slurp(dst), "last-good");  // destination untouched
  EXPECT_FALSE(fs::exists(ingest::publish_tmp_path(dst)));  // temp removed
}

TEST_F(DurableIoTest, PublishTmpPathIsDotPrefixedSibling) {
  EXPECT_EQ(ingest::publish_tmp_path("/a/b/cumulative.json"),
            "/a/b/.cumulative.json.tmp");
}

// ---------------------------------------------------------------------------
// ContainerWriter under injection (the raw ::write loops it replaced)

zeek::SslRecord make_ssl(int i) {
  zeek::SslRecord rec;
  rec.ts = 1700000000 + i;
  rec.uid = "C" + std::to_string(i);
  rec.orig_h = colfmt::Str("10.0.0." + std::to_string(i % 250));
  rec.orig_p = static_cast<std::uint16_t>(40000 + i);
  rec.resp_h = colfmt::Str("192.168.1.1");
  rec.resp_p = 443;
  rec.version = colfmt::Str("TLSv12");
  rec.server_name = colfmt::Str("host" + std::to_string(i % 7) + ".example");
  rec.established = true;
  rec.cert_chain_fuids.emplace_back("F" + std::to_string(i));
  return rec;
}

TEST_F(DurableIoTest, ContainerWriterSurvivesEintrAndShortWriteStorm) {
  auto& vfs = FaultVfs::instance();
  // Harass the first 40 hooked writes, alternating interrupt and short.
  for (std::uint64_t k = 1; k <= 40; ++k) {
    vfs.fault_write_at(k, WriteFault{k % 2 == 0 ? WriteFault::Kind::kEintr
                                                : WriteFault::Kind::kShort,
                                     0});
  }
  const std::string file = path("storm.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 16;  // many frames → many hooked writes
  colfmt::ContainerWriter writer(file, options);
  ASSERT_TRUE(writer.ok()) << writer.error();
  for (int i = 0; i < 200; ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  ASSERT_TRUE(writer.finish(&error)) << error;
  vfs.clear();

  auto reader = colfmt::ContainerReader::open(file, &error);
  ASSERT_TRUE(reader.has_value()) << error;
  std::uint64_t rows = 0;
  for (const auto& frame : reader->ssl_blocks()) rows += frame.rows;
  EXPECT_EQ(rows, 200u);
  EXPECT_GT(ingest::write_retry_counters().eintr_retries.load(), 0u);
  EXPECT_GT(ingest::write_retry_counters().short_writes.load(), 0u);
}

TEST_F(DurableIoTest, ContainerWriterClassifiesEnospc) {
  FaultVfs::instance().fail_write_range(3, 1'000'000, ENOSPC);
  const std::string file = path("full.mtlc");
  colfmt::WriterOptions options;
  options.block_rows = 16;
  colfmt::ContainerWriter writer(file, options);
  for (int i = 0; i < 200 && writer.ok(); ++i) writer.add_ssl(make_ssl(i));
  std::string error;
  const bool finished = writer.finish(&error);
  FaultVfs::instance().clear();
  ASSERT_FALSE(finished);
  EXPECT_NE(error.find("no-space"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// shard-state saves are atomic

TEST_F(DurableIoTest, ShardStateSaveFailureLeavesPreviousStateReadable) {
  core::ShardState state;
  state.pipeline.emplace(core::PipelineConfig::campus_defaults());
  state.meta.seed = 7;
  const std::string file = path("shard.state");
  std::string error;
  ASSERT_TRUE(core::save_shard_state(file, state, nullptr, &error)) << error;
  const std::string good = slurp(file);
  ASSERT_FALSE(good.empty());

  state.meta.seed = 8;
  FaultVfs::instance().fail_write_range(1, 1000, ENOSPC);
  const bool saved = core::save_shard_state(file, state, nullptr, &error);
  FaultVfs::instance().clear();
  EXPECT_FALSE(saved);
  EXPECT_NE(error.find("no-space"), std::string::npos) << error;
  EXPECT_EQ(slurp(file), good);  // previous generation intact
  EXPECT_FALSE(fs::exists(ingest::publish_tmp_path(file)));
}

}  // namespace
}  // namespace mtlscope
