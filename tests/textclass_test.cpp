#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/textclass/domain.hpp"
#include "mtlscope/textclass/matchers.hpp"
#include "mtlscope/textclass/ner.hpp"
#include "mtlscope/textclass/randomness.hpp"

namespace mtlscope::textclass {
namespace {

// --- Domain extraction ------------------------------------------------------

TEST(Domain, BasicExtraction) {
  const auto parts = DomainExtractor::instance().extract("www.example.com");
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->subdomain, "www");
  EXPECT_EQ(parts->domain, "example");
  EXPECT_EQ(parts->suffix, "com");
  EXPECT_EQ(parts->registrable(), "example.com");
}

TEST(Domain, MultiLabelSuffix) {
  const auto parts =
      DomainExtractor::instance().extract("shop.example.co.uk");
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->suffix, "co.uk");
  EXPECT_EQ(parts->registrable(), "example.co.uk");
}

TEST(Domain, CloudProviderSldMatchesPaper) {
  // The paper reports amazonaws.com / rapid7.com / gpcloudservice.com as
  // SLDs of outbound servers.
  EXPECT_EQ(sld_of("ec2-3-85-1-2.compute-1.amazonaws.com"), "amazonaws.com");
  EXPECT_EQ(sld_of("us.api.rapid7.com"), "rapid7.com");
  EXPECT_EQ(sld_of("device.gpcloudservice.com"), "gpcloudservice.com");
  EXPECT_EQ(tld_of("us.api.rapid7.com"), "com");
}

TEST(Domain, WildcardAccepted) {
  EXPECT_TRUE(DomainExtractor::instance().is_domain_name("*.example.com"));
  EXPECT_EQ(sld_of("*.example.com"), "example.com");
}

TEST(Domain, RejectsNonDomains) {
  const auto& ext = DomainExtractor::instance();
  EXPECT_FALSE(ext.is_domain_name(""));
  EXPECT_FALSE(ext.is_domain_name("localhost"));
  EXPECT_FALSE(ext.is_domain_name("no spaces.com") &&
               ext.is_domain_name("a b.com"));
  EXPECT_FALSE(ext.is_domain_name("John Smith"));
  EXPECT_FALSE(ext.is_domain_name("com"));          // bare suffix
  EXPECT_FALSE(ext.is_domain_name("example.zzz9")); // unknown suffix
  EXPECT_FALSE(ext.is_domain_name("WebRTC"));
}

TEST(Domain, CaseInsensitive) {
  EXPECT_EQ(sld_of("WWW.Example.COM"), "example.com");
}

TEST(Domain, TrailingDotTolerated) {
  EXPECT_EQ(sld_of("example.com."), "example.com");
}

TEST(Domain, PaperTableTlds) {
  // Every TLD the paper's tables mention must be known.
  for (const char* tld : {"com", "edu", "org", "gov", "net", "io", "me",
                          "cn", "co", "top", "education"}) {
    EXPECT_TRUE(DomainExtractor::instance().known_suffix(tld)) << tld;
  }
}

// --- Matchers ----------------------------------------------------------------

TEST(Matchers, IpLiterals) {
  EXPECT_TRUE(is_ip_literal("1.2.3.4"));
  EXPECT_TRUE(is_ip_literal("2001:db8::1"));
  EXPECT_FALSE(is_ip_literal("1.2.3.400"));
  EXPECT_FALSE(is_ip_literal("example.com"));
}

TEST(Matchers, MacAddresses) {
  EXPECT_TRUE(is_mac_address("12:34:56:AB:CD:EF"));
  EXPECT_TRUE(is_mac_address("12-34-56-ab-cd-ef"));
  EXPECT_TRUE(is_mac_address("123456abcdef"));
  EXPECT_FALSE(is_mac_address("123456789012"));  // all digits: ambiguous
  EXPECT_FALSE(is_mac_address("12:34:56:AB:CD"));
  EXPECT_FALSE(is_mac_address("12:34:56:AB:CD:GG"));
  EXPECT_FALSE(is_mac_address("hello world!"));
}

TEST(Matchers, SipAddresses) {
  EXPECT_TRUE(is_sip_address("sip:alice@voip.example.com"));
  EXPECT_TRUE(is_sip_address("sips:bob@example.com"));
  EXPECT_TRUE(is_sip_address("SIP:ext-4021"));
  EXPECT_FALSE(is_sip_address("sip:"));
  EXPECT_FALSE(is_sip_address("alice@example.com"));
}

TEST(Matchers, EmailAddresses) {
  EXPECT_TRUE(is_email_address("alice@example.com"));
  EXPECT_TRUE(is_email_address("a.b+c@mail.example.co.uk"));
  EXPECT_FALSE(is_email_address("no-at-sign.example.com"));
  EXPECT_FALSE(is_email_address("@example.com"));
  EXPECT_FALSE(is_email_address("alice@"));
  EXPECT_FALSE(is_email_address("a@b@c.com"));
  EXPECT_FALSE(is_email_address("alice@nodot"));
}

TEST(Matchers, Localhost) {
  EXPECT_TRUE(is_localhost("localhost"));
  EXPECT_TRUE(is_localhost("LOCALHOST"));
  EXPECT_TRUE(is_localhost("localdomain"));
  EXPECT_TRUE(is_localhost("myhost.localdomain"));
  EXPECT_TRUE(is_localhost("foo.localhost"));
  EXPECT_FALSE(is_localhost("localhost.example.com") &&
               !is_localhost("localhost.example.com"));  // prefix form ok
  EXPECT_FALSE(is_localhost("local"));
  EXPECT_FALSE(is_localhost("example.com"));
}

TEST(Matchers, CampusUserIds) {
  EXPECT_TRUE(is_campus_user_id("hd7gr"));
  EXPECT_TRUE(is_campus_user_id("ys3kz"));
  EXPECT_TRUE(is_campus_user_id("kd5eyn"));
  EXPECT_TRUE(is_campus_user_id("frv9vh"));
  EXPECT_TRUE(is_campus_user_id("ab12"));
  EXPECT_FALSE(is_campus_user_id("a1b"));        // one leading letter
  EXPECT_FALSE(is_campus_user_id("abcd1e"));     // four leading letters
  EXPECT_FALSE(is_campus_user_id("ab123c"));     // three digits
  EXPECT_FALSE(is_campus_user_id("AB1CD"));      // upper case
  EXPECT_FALSE(is_campus_user_id("server1"));
  EXPECT_FALSE(is_campus_user_id("hd7gr9"));     // digit after trailing letters
}

// --- NER-lite -------------------------------------------------------------------

TEST(Ner, PersonalNames) {
  EXPECT_TRUE(is_personal_name("John Smith"));
  EXPECT_TRUE(is_personal_name("mary jones"));
  EXPECT_TRUE(is_personal_name("Smith, John"));
  EXPECT_TRUE(is_personal_name("John Q. Smith"));
  EXPECT_TRUE(is_personal_name("john.smith"));
  EXPECT_TRUE(is_personal_name("Hongying Dong"));
}

TEST(Ner, NotPersonalNames) {
  EXPECT_FALSE(is_personal_name("WebRTC"));
  EXPECT_FALSE(is_personal_name("example.com"));
  EXPECT_FALSE(is_personal_name("Internet Widgits Pty Ltd"));
  EXPECT_FALSE(is_personal_name("xK7f2 qQz9p"));
  EXPECT_FALSE(is_personal_name(""));
  EXPECT_FALSE(is_personal_name("John"));  // single token: too ambiguous
}

TEST(Ner, OrgProduct) {
  EXPECT_TRUE(is_org_or_product("WebRTC"));
  EXPECT_TRUE(is_org_or_product("twilio"));
  EXPECT_TRUE(is_org_or_product("hangouts"));
  EXPECT_TRUE(is_org_or_product("Internet Widgits Pty Ltd"));
  EXPECT_TRUE(is_org_or_product("Honeywell International Inc"));
  EXPECT_TRUE(is_org_or_product("Hybrid Runbook Worker"));
  EXPECT_TRUE(is_org_or_product("Android Keystore"));
  EXPECT_TRUE(is_org_or_product("Fireboard Labs Inc"));
  EXPECT_TRUE(is_org_or_product("WebRTC-3fa8b2"));  // product substring
}

TEST(Ner, NotOrgProduct) {
  EXPECT_FALSE(is_org_or_product("John Smith"));
  EXPECT_FALSE(is_org_or_product("a7f82c9d"));
  EXPECT_FALSE(is_org_or_product(""));
  EXPECT_FALSE(is_org_or_product("hd7gr"));
}

TEST(Ner, TrigramCosineProperties) {
  EXPECT_NEAR(trigram_cosine("splunk", "splunk"), 1.0, 1e-9);
  EXPECT_GT(trigram_cosine("Splunk Inc", "splunk inc."), 0.75);
  EXPECT_LT(trigram_cosine("splunk", "honeywell"), 0.3);
  EXPECT_EQ(trigram_cosine("", "abc"), 0.0);
  // Symmetry.
  EXPECT_NEAR(trigram_cosine("microsoft corp", "microsoft corporation"),
              trigram_cosine("microsoft corporation", "microsoft corp"),
              1e-12);
}

TEST(Ner, CompanySimilarityThreshold) {
  // Slight variants of known companies should clear 0.9 …
  EXPECT_GE(best_company_similarity("splunk inc"), 0.9);
  // … while unrelated strings stay far below.
  EXPECT_LT(best_company_similarity("quasar nebular dynamics"), 0.9);
}

// --- Randomness ------------------------------------------------------------------

TEST(Randomness, Uuid) {
  EXPECT_TRUE(is_uuid("123e4567-e89b-12d3-a456-426614174000"));
  EXPECT_FALSE(is_uuid("123e4567-e89b-12d3-a456-42661417400"));   // short
  EXPECT_FALSE(is_uuid("123e4567-e89b-12d3-a456_426614174000"));  // bad sep
  EXPECT_FALSE(is_uuid("123e4567ze89b-12d3-a456-426614174000"));  // non-hex
}

TEST(Randomness, HexStrings) {
  EXPECT_TRUE(is_hex_string("deadbeef"));
  EXPECT_TRUE(is_hex_string("DEADBEEF01"));
  EXPECT_FALSE(is_hex_string("deadbeeg"));
  EXPECT_FALSE(is_hex_string(""));
}

TEST(Randomness, RandomDetection) {
  EXPECT_TRUE(looks_random("a81f34c2"));
  EXPECT_TRUE(looks_random("7c9e6679f3b341e8a4d1c2b3d4e5f607"));
  EXPECT_TRUE(looks_random("123e4567-e89b-12d3-a456-426614174000"));
  EXPECT_TRUE(looks_random("x7Qf9zB2kL0pW3rT"));
}

TEST(Randomness, NonRandomDetection) {
  EXPECT_FALSE(looks_random("fileserver"));
  EXPECT_FALSE(looks_random("__transfer__"));
  EXPECT_FALSE(looks_random("Dtls"));
  EXPECT_FALSE(looks_random("hmpp"));
  EXPECT_FALSE(looks_random("mail-gateway"));
  EXPECT_FALSE(looks_random("WebRTC"));
}

TEST(Randomness, ShapeBuckets) {
  EXPECT_EQ(classify_shape("a81f34c2"), StringShape::kRandomLen8);
  EXPECT_EQ(classify_shape("7c9e6679f3b341e8a4d1c2b3d4e5f607"),
            StringShape::kRandomLen32);
  EXPECT_EQ(classify_shape("123e4567-e89b-12d3-a456-426614174000"),
            StringShape::kRandomLen36);
  EXPECT_EQ(classify_shape("deadbeefdeadbeef"), StringShape::kRandomOther);
  EXPECT_EQ(classify_shape("fileserver"), StringShape::kNonRandom);
}

// --- Combined classifier ------------------------------------------------------------

struct ClassifyCase {
  const char* value;
  bool campus;
  InfoType expected;
};

class ClassifierCases : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifierCases, Classifies) {
  const auto& c = GetParam();
  ClassifyContext ctx;
  ctx.campus_issuer = c.campus;
  EXPECT_EQ(classify_value(c.value, ctx), c.expected) << c.value;
}

INSTANTIATE_TEST_SUITE_P(
    Values, ClassifierCases,
    ::testing::Values(
        ClassifyCase{"www.example.com", false, InfoType::kDomain},
        ClassifyCase{"1.2.3.4", false, InfoType::kIp},
        ClassifyCase{"12:34:56:AB:CD:EF", false, InfoType::kMac},
        ClassifyCase{"sip:4021@voip.example.com", false, InfoType::kSip},
        ClassifyCase{"alice@example.com", false, InfoType::kEmail},
        ClassifyCase{"hd7gr", true, InfoType::kUserAccount},
        // Same string without campus issuer context is NOT a user account.
        ClassifyCase{"hd7gr", false, InfoType::kUnidentified},
        ClassifyCase{"John Smith", false, InfoType::kPersonalName},
        ClassifyCase{"WebRTC", false, InfoType::kOrgProduct},
        ClassifyCase{"localhost", false, InfoType::kLocalhost},
        ClassifyCase{"a81f34c2", false, InfoType::kUnidentified},
        ClassifyCase{"123e4567-e89b-12d3-a456-426614174000", false,
                     InfoType::kUnidentified},
        // Priority: a domain name that is also company-like stays Domain.
        ClassifyCase{"splunk.com", false, InfoType::kDomain},
        // Email beats domain (emails contain domains).
        ClassifyCase{"john.smith@example.com", false, InfoType::kEmail}));

TEST(Classifier, PrecisionRecallOnNameFixture) {
  // The paper reports precision = recall = 0.9 for personal-name
  // detection. Check our recognizer reaches at least that on a fixture of
  // positives and hard negatives.
  const std::vector<std::string> positives = {
      "John Smith",    "Mary Jones",     "Hongying Dong", "Yixin Sun",
      "David Miller",  "Sarah Wilson",   "james brown",   "Linda Garcia",
      "Robert Taylor", "Jennifer Davis", "Wei Zhang",     "Priya Patel",
      "Kevin Du",      "Smith, John",    "Anna K. White", "Carlos Gomez",
      "Julia Novak",   "Omar Hassan",    "Emma Clark",    "Raj Kumar",
  };
  const std::vector<std::string> negatives = {
      "WebRTC",           "Internet Widgits Pty Ltd",
      "example.com",      "Hybrid Runbook Worker",
      "a81f34c2",         "FileWave Booster",
      "mail.google.com",  "sip:4021",
      "localhost",        "GuardiCore",
      "splunk forwarder", "__transfer__",
      "Dtls",             "ViptelaClient",
      "FXP DCAU Cert",    "Outset Medical",
      "tablo-dvr-8821",   "thinkpad-x1",
      "12:34:56:ab:cd:ef","hd7gr",
  };
  int true_positive = 0;
  for (const auto& p : positives) true_positive += is_personal_name(p);
  int false_positive = 0;
  for (const auto& n : negatives) false_positive += is_personal_name(n);
  const double recall =
      static_cast<double>(true_positive) / static_cast<double>(positives.size());
  const double precision =
      static_cast<double>(true_positive) /
      static_cast<double>(true_positive + false_positive);
  EXPECT_GE(recall, 0.9);
  EXPECT_GE(precision, 0.9);
}

}  // namespace
}  // namespace mtlscope::textclass
