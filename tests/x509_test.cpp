#include <gtest/gtest.h>

#include "mtlscope/crypto/tsig.hpp"
#include "mtlscope/util/time.hpp"
#include "mtlscope/x509/builder.hpp"
#include "mtlscope/x509/certificate.hpp"
#include "mtlscope/x509/name.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::x509 {
namespace {

using util::to_unix;

crypto::TsigKey test_key() { return crypto::TsigKey::derive("Test CA"); }

DistinguishedName ca_dn() {
  DistinguishedName dn;
  dn.add_country("US").add_org("Test CA Org").add_cn("Test CA");
  return dn;
}

Certificate make_leaf() {
  DistinguishedName subject;
  subject.add_org("Example Org").add_cn("leaf.example.com");
  return CertificateBuilder()
      .serial_from_label("leaf-1")
      .subject(subject)
      .validity(to_unix({2023, 1, 1, 0, 0, 0}), to_unix({2024, 1, 1, 0, 0, 0}))
      .public_key(crypto::TsigKey::derive("leaf-key").key)
      .add_san_dns("leaf.example.com")
      .add_san_dns("alt.example.com")
      .add_eku(asn1::oids::eku_server_auth())
      .sign(ca_dn(), test_key());
}

// --- DistinguishedName ---------------------------------------------------------

TEST(DistinguishedName, BuildAndQuery) {
  const auto dn = ca_dn();
  EXPECT_EQ(dn.common_name(), "Test CA");
  EXPECT_EQ(dn.organization(), "Test CA Org");
  EXPECT_EQ(dn.find(asn1::oids::country_name()), "US");
  EXPECT_FALSE(dn.find(asn1::oids::locality_name()).has_value());
}

TEST(DistinguishedName, ToStringFormat) {
  EXPECT_EQ(ca_dn().to_string(), "C=US,O=Test CA Org,CN=Test CA");
}

TEST(DistinguishedName, FromStringRoundTrip) {
  const auto parsed = DistinguishedName::from_string(ca_dn().to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ca_dn());
}

TEST(DistinguishedName, EscapesCommas) {
  DistinguishedName dn;
  dn.add_org("Acme, Inc.").add_cn("x");
  const std::string s = dn.to_string();
  EXPECT_EQ(s, "O=Acme\\, Inc.,CN=x");
  const auto parsed = DistinguishedName::from_string(s);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dn);
}

TEST(DistinguishedName, FromStringEmpty) {
  const auto parsed = DistinguishedName::from_string("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(DistinguishedName, FromStringRejectsNoEquals) {
  EXPECT_FALSE(DistinguishedName::from_string("garbage").has_value());
}

TEST(DistinguishedName, UnknownOidRendersAsDotted) {
  DistinguishedName dn;
  dn.add(asn1::Oid({2, 5, 4, 12}), "Dr.");  // title
  EXPECT_EQ(dn.to_string(), "2.5.4.12=Dr.");
  const auto parsed = DistinguishedName::from_string(dn.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dn);
}

// --- Build → parse round trip ----------------------------------------------------

TEST(Certificate, BuildParseRoundTrip) {
  const Certificate cert = make_leaf();
  EXPECT_EQ(cert.version, 3);
  EXPECT_EQ(cert.subject.common_name(), "leaf.example.com");
  EXPECT_EQ(cert.issuer, ca_dn());
  EXPECT_EQ(cert.validity.not_before, to_unix({2023, 1, 1, 0, 0, 0}));
  EXPECT_EQ(cert.validity.not_after, to_unix({2024, 1, 1, 0, 0, 0}));
  EXPECT_EQ(cert.san_dns(),
            (std::vector<std::string>{"leaf.example.com", "alt.example.com"}));
  ASSERT_EQ(cert.ext_key_usage.size(), 1u);
  EXPECT_EQ(cert.ext_key_usage[0], asn1::oids::eku_server_auth());
}

TEST(Certificate, ReParseIsIdentical) {
  const Certificate cert = make_leaf();
  const auto reparsed = parse_certificate(cert.der);
  const Certificate* c2 = get_certificate(reparsed);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->der, cert.der);
  EXPECT_EQ(c2->subject, cert.subject);
  EXPECT_EQ(c2->serial, cert.serial);
  EXPECT_EQ(c2->fingerprint(), cert.fingerprint());
}

TEST(Certificate, SignatureVerifies) {
  const Certificate cert = make_leaf();
  EXPECT_TRUE(crypto::tsig_verify(test_key().key, cert.tbs_der,
                                  cert.signature));
  EXPECT_FALSE(crypto::tsig_verify(crypto::TsigKey::derive("other").key,
                                   cert.tbs_der, cert.signature));
}

TEST(Certificate, SelfSigned) {
  DistinguishedName dn;
  dn.add_org("Internet Widgits Pty Ltd").add_cn("self");
  const auto key = crypto::TsigKey::derive("self-key");
  const Certificate cert = CertificateBuilder()
                               .serial_hex("00")
                               .subject(dn)
                               .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                               .public_key(key.key)
                               .self_sign(key);
  EXPECT_TRUE(cert.is_self_issued());
  EXPECT_EQ(cert.serial_hex(), "00");
  EXPECT_TRUE(crypto::tsig_verify(key.key, cert.tbs_der, cert.signature));
}

TEST(Certificate, Version1OmitsExtensions) {
  DistinguishedName dn;
  dn.add_cn("v1cert");
  const Certificate cert =
      CertificateBuilder()
          .version(1)
          .serial_hex("01")
          .subject(dn)
          .validity(0, 1000000)
          .public_key({1, 2, 3})
          .add_san_dns("ignored.example.com")  // dropped: v1 has no extensions
          .sign(ca_dn(), test_key());
  EXPECT_EQ(cert.version, 1);
  EXPECT_TRUE(cert.san.empty());
}

TEST(Certificate, SerialHexRendering) {
  DistinguishedName dn;
  dn.add_cn("s");
  const auto build = [&dn](std::string_view hex) {
    return CertificateBuilder()
        .serial_hex(hex)
        .subject(dn)
        .validity(0, 1)
        .public_key({1})
        .sign(ca_dn(), test_key());
  };
  EXPECT_EQ(build("00").serial_hex(), "00");
  EXPECT_EQ(build("01").serial_hex(), "01");
  EXPECT_EQ(build("024680").serial_hex(), "024680");
  EXPECT_EQ(build("03E8").serial_hex(), "03E8");
  // High bit set: DER adds a sign octet, rendering strips it back.
  EXPECT_EQ(build("FF").serial_hex(), "FF");
}

TEST(Certificate, CaAndKeyUsage) {
  DistinguishedName dn = ca_dn();
  const auto key = test_key();
  const Certificate cert =
      CertificateBuilder()
          .serial_from_label("ca")
          .subject(dn)
          .validity(0, to_unix({2040, 1, 1, 0, 0, 0}))
          .public_key(key.key)
          .ca(true, 1)
          .key_usage(key_usage::kKeyCertSign | key_usage::kCrlSign)
          .self_sign(key);
  ASSERT_TRUE(cert.basic_constraints.has_value());
  EXPECT_TRUE(cert.basic_constraints->is_ca);
  EXPECT_EQ(cert.basic_constraints->path_len, 1);
  ASSERT_TRUE(cert.key_usage_bits.has_value());
  EXPECT_TRUE(*cert.key_usage_bits & key_usage::kKeyCertSign);
  EXPECT_TRUE(*cert.key_usage_bits & key_usage::kCrlSign);
  EXPECT_FALSE(*cert.key_usage_bits & key_usage::kDigitalSignature);
}

TEST(Certificate, SanTypesRoundTrip) {
  DistinguishedName dn;
  dn.add_cn("san-test");
  const Certificate cert =
      CertificateBuilder()
          .serial_from_label("san")
          .subject(dn)
          .validity(0, 1)
          .public_key({1})
          .add_san_dns("host.example.com")
          .add_san_email("user@example.com")
          .add_san_uri("https://example.com/path")
          .add_san_ip(*net::IpAddress::parse("192.0.2.7"))
          .add_san_ip(*net::IpAddress::parse("2001:db8::7"))
          .sign(ca_dn(), test_key());
  ASSERT_EQ(cert.san.size(), 5u);
  EXPECT_EQ(cert.san[0], (SanEntry{SanEntry::Type::kDns, "host.example.com"}));
  EXPECT_EQ(cert.san[1], (SanEntry{SanEntry::Type::kEmail, "user@example.com"}));
  EXPECT_EQ(cert.san[2],
            (SanEntry{SanEntry::Type::kUri, "https://example.com/path"}));
  EXPECT_EQ(cert.san[3], (SanEntry{SanEntry::Type::kIp, "192.0.2.7"}));
  EXPECT_EQ(cert.san[4], (SanEntry{SanEntry::Type::kIp, "2001:db8::7"}));
}

// --- The paper's misconfiguration shapes -----------------------------------------

TEST(Certificate, IncorrectDatesRepresentable) {
  // IDrive-style: notBefore 2019, notAfter 1849 (§5.3.1 / Table 12).
  DistinguishedName dn;
  dn.add_org("IDrive Inc Certificate Authority").add_cn("backup-client");
  const Certificate cert =
      CertificateBuilder()
          .serial_from_label("idrive")
          .subject(dn)
          .validity(to_unix({2019, 8, 2, 0, 0, 0}),
                    to_unix({1849, 10, 24, 0, 0, 0}))
          .public_key({1})
          .sign(ca_dn(), test_key());
  EXPECT_TRUE(cert.validity.dates_incorrect());
  EXPECT_LT(cert.validity.period_days(), 0);
  EXPECT_EQ(util::from_unix(cert.validity.not_after).year, 1849);
}

TEST(Certificate, EqualDatesAreIncorrect) {
  Validity v{100, 100};
  EXPECT_TRUE(v.dates_incorrect());
}

TEST(Certificate, ExtremeValidityPeriod) {
  // The paper found one cert with an 83,432-day (~228-year) validity.
  const auto nb = to_unix({2020, 1, 1, 0, 0, 0});
  const auto na = nb + 83'432 * util::kSecondsPerDay;
  DistinguishedName dn;
  dn.add_cn("ancient");
  const Certificate cert = CertificateBuilder()
                               .serial_from_label("long")
                               .subject(dn)
                               .validity(nb, na)
                               .public_key({1})
                               .sign(ca_dn(), test_key());
  EXPECT_EQ(cert.validity.period_days(), 83'432);
  EXPECT_EQ(util::from_unix(cert.validity.not_after).year, 2248);
}

TEST(Certificate, ExpiryCheck) {
  const Certificate cert = make_leaf();
  EXPECT_FALSE(cert.expired_at(to_unix({2023, 6, 1, 0, 0, 0})));
  EXPECT_TRUE(cert.expired_at(to_unix({2024, 6, 1, 0, 0, 0})));
}

TEST(Certificate, EkuGating) {
  const Certificate server = make_leaf();
  EXPECT_TRUE(server.allows_server_auth());
  EXPECT_FALSE(server.allows_client_auth());

  DistinguishedName dn;
  dn.add_cn("no-eku");
  const Certificate unrestricted = CertificateBuilder()
                                       .serial_from_label("u")
                                       .subject(dn)
                                       .validity(0, 1)
                                       .public_key({1})
                                       .sign(ca_dn(), test_key());
  EXPECT_TRUE(unrestricted.allows_server_auth());
  EXPECT_TRUE(unrestricted.allows_client_auth());
}

TEST(Certificate, KeyBits) {
  DistinguishedName dn;
  dn.add_cn("weak");
  const Certificate cert =
      CertificateBuilder()
          .serial_from_label("weak")
          .subject(dn)
          .validity(0, 1)
          .public_key(crypto::TsigKey::derive("weak", 1024).key)
          .spki_algorithm(asn1::oids::alg_rsa_encryption())
          .sign(ca_dn(), test_key());
  EXPECT_EQ(cert.key_bits(), 1024u);
  EXPECT_EQ(cert.spki_algorithm, asn1::oids::alg_rsa_encryption());
}

// --- Parser robustness ------------------------------------------------------------

TEST(Parser, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(get_certificate(parse_certificate(garbage)), nullptr);
}

TEST(Parser, RejectsEmpty) {
  EXPECT_EQ(get_certificate(parse_certificate({})), nullptr);
}

TEST(Parser, RejectsTruncated) {
  const Certificate cert = make_leaf();
  for (const std::size_t keep :
       {cert.der.size() / 4, cert.der.size() / 2, cert.der.size() - 1}) {
    const std::span<const std::uint8_t> prefix(cert.der.data(), keep);
    EXPECT_EQ(get_certificate(parse_certificate(prefix)), nullptr)
        << "kept " << keep;
  }
}

TEST(Parser, RejectsTrailingBytes) {
  Certificate cert = make_leaf();
  auto der = cert.der;
  der.push_back(0x00);
  EXPECT_EQ(get_certificate(parse_certificate(der)), nullptr);
}

TEST(Parser, FlippedBytesNeverCrash) {
  // Property: single-byte corruption either parses to something or fails
  // cleanly; it must never crash or hang.
  const Certificate cert = make_leaf();
  auto der = cert.der;
  for (std::size_t i = 0; i < der.size(); i += 3) {
    der[i] ^= 0xff;
    (void)parse_certificate(der);
    der[i] ^= 0xff;
  }
  SUCCEED();
}

TEST(Certificate, FingerprintDistinguishesCerts) {
  const Certificate a = make_leaf();
  DistinguishedName dn;
  dn.add_cn("other.example.com");
  const Certificate b = CertificateBuilder()
                            .serial_from_label("other")
                            .subject(dn)
                            .validity(0, 1)
                            .public_key({1})
                            .sign(ca_dn(), test_key());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint_hex().size(), 64u);
}

}  // namespace
}  // namespace mtlscope::x509
