#include <gtest/gtest.h>

#include <sstream>

#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/public_cas.hpp"
#include "mtlscope/util/time.hpp"
#include "mtlscope/zeek/log_io.hpp"
#include "mtlscope/zeek/records.hpp"

namespace mtlscope {
namespace {

using util::to_unix;

x509::Certificate make_cert(const std::string& cn) {
  const auto* ca = trust::public_pki().find("digicert");
  x509::DistinguishedName dn;
  dn.add_org("Example").add_cn(cn);
  return ca->intermediate.issue(
      x509::CertificateBuilder()
          .serial_from_label("tlz:" + cn)
          .subject(dn)
          .validity(to_unix({2023, 1, 1, 0, 0, 0}),
                    to_unix({2024, 1, 1, 0, 0, 0}))
          .public_key(crypto::TsigKey::derive(cn).key)
          .add_san_dns(cn + ".example.com"));
}

tls::ClientProfile make_client(bool with_cert) {
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.1.2.3"), 50123};
  client.sni = "service.example.com";
  if (with_cert) client.chain = {make_cert("client-device")};
  return client;
}

tls::ServerProfile make_server(bool request_cert) {
  tls::ServerProfile server;
  server.endpoint = {*net::IpAddress::parse("192.0.2.10"), 443};
  server.chain = {make_cert("server-leaf")};
  server.request_client_certificate = request_cert;
  return server;
}

// --- handshake ----------------------------------------------------------------

TEST(Handshake, MutualWhenRequestedAndClientHasCert) {
  const auto conn = tls::simulate_handshake(make_client(true),
                                            make_server(true), {"C1", 100, 0});
  EXPECT_TRUE(conn.established);
  EXPECT_TRUE(conn.is_mutual());
  EXPECT_EQ(conn.server_chain.size(), 1u);
  EXPECT_EQ(conn.client_chain.size(), 1u);
  EXPECT_EQ(conn.sni, "service.example.com");
}

TEST(Handshake, NotMutualWithoutRequest) {
  const auto conn = tls::simulate_handshake(
      make_client(true), make_server(false), {"C2", 100, 0});
  EXPECT_TRUE(conn.established);
  EXPECT_FALSE(conn.is_mutual());
  EXPECT_TRUE(conn.client_chain.empty());
}

TEST(Handshake, NotMutualWhenClientHasNoCert) {
  const auto conn = tls::simulate_handshake(
      make_client(false), make_server(true), {"C3", 100, 0});
  EXPECT_FALSE(conn.is_mutual());
}

TEST(Handshake, VersionNegotiationIsMin) {
  auto client = make_client(false);
  auto server = make_server(false);
  client.max_version = tls::TlsVersion::kTls13;
  server.max_version = tls::TlsVersion::kTls12;
  EXPECT_EQ(tls::simulate_handshake(client, server, {"C4", 0, 0}).version,
            tls::TlsVersion::kTls12);
  server.max_version = tls::TlsVersion::kTls13;
  EXPECT_EQ(tls::simulate_handshake(client, server, {"C5", 0, 0}).version,
            tls::TlsVersion::kTls13);
}

TEST(Handshake, Tls13HidesCertificatesFromMonitor) {
  auto client = make_client(true);
  auto server = make_server(true);
  client.max_version = tls::TlsVersion::kTls13;
  server.max_version = tls::TlsVersion::kTls13;
  const auto conn = tls::simulate_handshake(client, server, {"C6", 0, 0});
  EXPECT_TRUE(conn.established);
  EXPECT_TRUE(conn.server_chain.empty());
  EXPECT_TRUE(conn.client_chain.empty());
  EXPECT_FALSE(conn.is_mutual());
}

TEST(Handshake, ValidatingServerRejectsExpiredClientCert) {
  auto client = make_client(true);
  auto server = make_server(true);
  server.validate_client_certificate = true;
  tls::HandshakeOptions options{"C7", 0, to_unix({2025, 1, 1, 0, 0, 0})};
  const auto conn = tls::simulate_handshake(client, server, options);
  EXPECT_FALSE(conn.established);
  // A lax server (the common case in the paper) accepts it.
  server.validate_client_certificate = false;
  EXPECT_TRUE(tls::simulate_handshake(client, server, options).established);
}

TEST(Handshake, MissingSniRecordedAsEmpty) {
  auto client = make_client(false);
  client.sni.reset();
  const auto conn =
      tls::simulate_handshake(client, make_server(false), {"C8", 0, 0});
  EXPECT_TRUE(conn.sni.empty());
}

TEST(TlsVersion, NamesRoundTrip) {
  for (const auto v :
       {tls::TlsVersion::kTls10, tls::TlsVersion::kTls11,
        tls::TlsVersion::kTls12, tls::TlsVersion::kTls13}) {
    EXPECT_EQ(tls::version_from_name(tls::version_name(v)), v);
  }
  EXPECT_FALSE(tls::version_from_name("SSLv3").has_value());
}

// --- zeek records ----------------------------------------------------------------

TEST(ZeekRecords, FuidStableAndDistinct) {
  const auto a = make_cert("a");
  const auto b = make_cert("b");
  EXPECT_EQ(zeek::fuid_of(a), zeek::fuid_of(a));
  EXPECT_NE(zeek::fuid_of(a), zeek::fuid_of(b));
  EXPECT_EQ(zeek::fuid_of(a).size(), 18u);
  EXPECT_EQ(zeek::fuid_of(a)[0], 'F');
}

TEST(ZeekRecords, X509RecordFields) {
  const auto cert = make_cert("record-check");
  const auto rec = zeek::to_x509_record(cert);
  EXPECT_EQ(rec.version, 3);
  EXPECT_EQ(rec.subject, cert.subject.to_string());
  EXPECT_EQ(rec.issuer, cert.issuer.to_string());
  EXPECT_EQ(rec.not_valid_before, cert.validity.not_before);
  EXPECT_EQ(rec.not_valid_after, cert.validity.not_after);
  ASSERT_EQ(rec.san_dns.size(), 1u);
  EXPECT_EQ(rec.san_dns[0], "record-check.example.com");
  EXPECT_FALSE(rec.cert_der.empty());
}

TEST(ZeekDataset, DedupsCertificates) {
  zeek::Dataset dataset;
  const auto conn = tls::simulate_handshake(make_client(true),
                                            make_server(true), {"D1", 10, 0});
  dataset.add_connection(conn);
  dataset.add_connection(conn);
  EXPECT_EQ(dataset.connection_count(), 2u);
  EXPECT_EQ(dataset.certificate_count(), 2u);  // server leaf + client leaf
}

TEST(ZeekDataset, LinksConnectionsToCerts) {
  zeek::Dataset dataset;
  dataset.add_connection(tls::simulate_handshake(
      make_client(true), make_server(true), {"D2", 10, 0}));
  const auto& ssl = dataset.ssl().front();
  ASSERT_EQ(ssl.cert_chain_fuids.size(), 1u);
  ASSERT_EQ(ssl.client_cert_chain_fuids.size(), 1u);
  EXPECT_NE(dataset.find_certificate(ssl.cert_chain_fuids[0]), nullptr);
  EXPECT_NE(dataset.find_certificate(ssl.client_cert_chain_fuids[0]), nullptr);
  EXPECT_EQ(dataset.find_certificate("Fnonexistent"), nullptr);
}

// --- zeek log I/O ------------------------------------------------------------------

zeek::Dataset sample_dataset() {
  zeek::Dataset dataset;
  dataset.add_connection(tls::simulate_handshake(
      make_client(true), make_server(true),
      {"CqyyZ51i8BpzXgVuT7", to_unix({2022, 5, 1, 8, 30, 0}), 0}));
  auto client = make_client(false);
  client.sni.reset();  // exercise unset SNI
  dataset.add_connection(tls::simulate_handshake(
      client, make_server(false), {"CabcDE1234", to_unix({2022, 5, 2, 0, 0, 0}), 0}));
  return dataset;
}

TEST(ZeekLogIo, SslRoundTrip) {
  const auto dataset = sample_dataset();
  const std::string text = zeek::ssl_log_to_string(dataset.ssl());
  EXPECT_NE(text.find("#fields"), std::string::npos);
  EXPECT_NE(text.find("#path\tssl"), std::string::npos);

  std::istringstream in(text);
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), dataset.ssl().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = (*parsed)[i];
    const auto& b = dataset.ssl()[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.uid, b.uid);
    EXPECT_EQ(a.orig_h, b.orig_h);
    EXPECT_EQ(a.orig_p, b.orig_p);
    EXPECT_EQ(a.resp_h, b.resp_h);
    EXPECT_EQ(a.resp_p, b.resp_p);
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.server_name, b.server_name);
    EXPECT_EQ(a.established, b.established);
    EXPECT_EQ(a.cert_chain_fuids, b.cert_chain_fuids);
    EXPECT_EQ(a.client_cert_chain_fuids, b.client_cert_chain_fuids);
  }
}

TEST(ZeekLogIo, X509RoundTrip) {
  const auto dataset = sample_dataset();
  const std::string text = zeek::x509_log_to_string(dataset);
  std::istringstream in(text);
  const auto parsed = zeek::parse_x509_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), dataset.certificate_count());
  for (const auto& rec : *parsed) {
    const auto* original = dataset.find_certificate(rec.fuid);
    ASSERT_NE(original, nullptr) << rec.fuid;
    EXPECT_EQ(rec.serial, original->serial);
    EXPECT_EQ(rec.subject, original->subject);
    EXPECT_EQ(rec.issuer, original->issuer);
    EXPECT_EQ(rec.not_valid_before, original->not_valid_before);
    EXPECT_EQ(rec.not_valid_after, original->not_valid_after);
    EXPECT_EQ(rec.san_dns, original->san_dns);
    EXPECT_EQ(rec.cert_der, original->cert_der);
  }
}

TEST(ZeekLogIo, DatasetRoundTrip) {
  const auto dataset = sample_dataset();
  std::istringstream ssl_in(zeek::ssl_log_to_string(dataset.ssl()));
  std::istringstream x509_in(zeek::x509_log_to_string(dataset));
  const auto parsed = zeek::parse_dataset(ssl_in, x509_in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->connection_count(), dataset.connection_count());
  EXPECT_EQ(parsed->certificate_count(), dataset.certificate_count());
}

TEST(ZeekLogIo, EscapesCommasInSetValues) {
  zeek::Dataset dataset;
  zeek::X509Record rec;
  rec.fuid = "Fdeadbeefdeadbeefd";
  rec.san_dns = {"a,b", "plain"};
  dataset.add_x509(rec);
  const std::string text = zeek::x509_log_to_string(dataset);
  std::istringstream in(text);
  const auto parsed = zeek::parse_x509_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].san_dns,
            (std::vector<colfmt::Str>{"a,b", "plain"}));
}

TEST(ZeekLogIo, ParseRejectsMissingHeader) {
  // Comments only, no #fields line and no data rows.
  std::istringstream in("#path\tssl\n#types\ttime\n");
  zeek::LogParseError error;
  EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
  EXPECT_EQ(error.message, "missing #fields header");
}

TEST(ZeekLogIo, ParseRejectsDataRowBeforeHeader) {
  // A data row before any #fields line used to be silently buffered (and
  // mapped by whichever header showed up later); it is now a structured
  // error pointing at the offending physical line.
  std::istringstream in("#path\tssl\nno header here\n");
  zeek::LogParseError error;
  EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
  EXPECT_EQ(error.message, "data row before #fields header");
  EXPECT_EQ(error.line, 2u);
}

TEST(ZeekLogIo, ParseRejectsFieldCountMismatch) {
  std::istringstream in(
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n"
      "1.0\tC1\n");
  zeek::LogParseError error;
  EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
  EXPECT_EQ(error.message, "field count mismatch");
}

TEST(ZeekLogIo, ParseRejectsBadTimestamp) {
  std::istringstream in(
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n"
      "oops\tC1\t10.0.0.1\t1\t10.0.0.2\t2\n");
  EXPECT_FALSE(zeek::parse_ssl_log(in).has_value());
}

TEST(ZeekLogIo, EmptyCertFromTls13ProducesEmptySets) {
  zeek::Dataset dataset;
  auto client = make_client(true);
  auto server = make_server(true);
  client.max_version = tls::TlsVersion::kTls13;
  server.max_version = tls::TlsVersion::kTls13;
  dataset.add_connection(
      tls::simulate_handshake(client, server, {"T13", 5, 0}));
  const std::string text = zeek::ssl_log_to_string(dataset.ssl());
  EXPECT_NE(text.find("(empty)"), std::string::npos);
  std::istringstream in(text);
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE((*parsed)[0].cert_chain_fuids.empty());
  EXPECT_FALSE((*parsed)[0].is_mutual());
}

}  // namespace
}  // namespace mtlscope
