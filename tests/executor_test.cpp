// PipelineExecutor: the sharded run must produce the full analyzer result
// set bit-identically for every shard count, and the mergeable pieces
// (CertFacts, connection analyzers) must fold correctly on their own.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

gen::CampusModel small_model() {
  // Small enough to run at four shard counts, big enough to populate
  // every analyzer (dummy issuers, collisions, interception, …).
  auto model = gen::paper_model(1'000, 300'000);
  model.background_connections = 30'000;
  return model;
}

/// Everything a run produces: the merged pipeline plus all eight
/// connection analyzers, merged across shards.
struct RunResult {
  core::Pipeline pipeline;
  core::PrevalenceAnalyzer prevalence;
  core::ServicePortAnalyzer ports;
  core::InboundAssociationAnalyzer assoc;
  core::OutboundFlowAnalyzer flows;
  core::DummyIssuerAnalyzer dummies;
  core::SerialCollisionAnalyzer serials;
  core::SharedCertAnalyzer shared;
  core::IncorrectDateAnalyzer dates;
};

RunResult run_sharded(const gen::TraceGenerator& generator,
                      const zeek::Dataset& dataset, std::size_t threads) {
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &generator.ct_database();
  core::PipelineExecutor executor(std::move(config), threads);

  core::Sharded<core::PrevalenceAnalyzer> prevalence(executor.shard_count());
  core::Sharded<core::ServicePortAnalyzer> ports(executor.shard_count());
  core::Sharded<core::InboundAssociationAnalyzer> assoc(
      executor.shard_count());
  core::Sharded<core::OutboundFlowAnalyzer> flows(executor.shard_count());
  core::Sharded<core::DummyIssuerAnalyzer> dummies(executor.shard_count());
  core::Sharded<core::SerialCollisionAnalyzer> serials(
      executor.shard_count());
  core::Sharded<core::SharedCertAnalyzer> shared(executor.shard_count());
  core::Sharded<core::IncorrectDateAnalyzer> dates(executor.shard_count());
  executor.attach(prevalence);
  executor.attach(ports);
  executor.attach(assoc);
  executor.attach(flows);
  executor.attach(dummies);
  executor.attach(serials);
  executor.attach(shared);
  executor.attach(dates);

  return RunResult{executor.run(dataset),
                   std::move(prevalence).merged(),
                   std::move(ports).merged(),
                   std::move(assoc).merged(),
                   std::move(flows).merged(),
                   std::move(dummies).merged(),
                   std::move(serials).merged(),
                   std::move(shared).merged(),
                   std::move(dates).merged()};
}

void expect_same_totals(const core::Pipeline& a, const core::Pipeline& b) {
  EXPECT_EQ(a.totals().connections, b.totals().connections);
  EXPECT_EQ(a.totals().established, b.totals().established);
  EXPECT_EQ(a.totals().rejected_handshakes, b.totals().rejected_handshakes);
  EXPECT_EQ(a.totals().mutual, b.totals().mutual);
  EXPECT_EQ(a.totals().inbound, b.totals().inbound);
  EXPECT_EQ(a.totals().outbound, b.totals().outbound);
  EXPECT_EQ(a.totals().tls13, b.totals().tls13);
  EXPECT_EQ(a.interception_excluded_connections(),
            b.interception_excluded_connections());
  EXPECT_EQ(a.interception_issuers(), b.interception_issuers());
}

void expect_same_facts(const core::CertFacts& a, const core::CertFacts& b) {
  EXPECT_EQ(a.fuid, b.fuid);
  EXPECT_EQ(a.issuer_class, b.issuer_class);
  EXPECT_EQ(a.issuer_category, b.issuer_category);
  EXPECT_EQ(a.campus_issuer, b.campus_issuer);
  EXPECT_EQ(a.cn_type, b.cn_type);
  EXPECT_EQ(a.flagged_interception, b.flagged_interception) << a.fuid;
  EXPECT_EQ(a.used_as_server, b.used_as_server) << a.fuid;
  EXPECT_EQ(a.used_as_client, b.used_as_client) << a.fuid;
  EXPECT_EQ(a.used_in_mutual, b.used_in_mutual) << a.fuid;
  EXPECT_EQ(a.seen_inbound, b.seen_inbound) << a.fuid;
  EXPECT_EQ(a.seen_outbound, b.seen_outbound) << a.fuid;
  EXPECT_EQ(a.seen_outbound_with_sni, b.seen_outbound_with_sni) << a.fuid;
  EXPECT_EQ(a.client_use_while_expired, b.client_use_while_expired) << a.fuid;
  EXPECT_EQ(a.connection_count, b.connection_count) << a.fuid;
  EXPECT_EQ(a.first_seen, b.first_seen) << a.fuid;
  EXPECT_EQ(a.last_seen, b.last_seen) << a.fuid;
  EXPECT_EQ(a.server_subnets, b.server_subnets) << a.fuid;
  EXPECT_EQ(a.client_subnets, b.client_subnets) << a.fuid;
  EXPECT_EQ(a.context_sld, b.context_sld) << a.fuid;
  EXPECT_EQ(a.context_assoc, b.context_assoc) << a.fuid;
}

void expect_same_certificates(const core::Pipeline& a,
                              const core::Pipeline& b) {
  const auto certs_a = a.certificates_sorted();
  const auto certs_b = b.certificates_sorted();
  ASSERT_EQ(certs_a.size(), certs_b.size());
  for (std::size_t i = 0; i < certs_a.size(); ++i) {
    expect_same_facts(*certs_a[i], *certs_b[i]);
  }
}

void expect_same_analyzers(const RunResult& a, const RunResult& b) {
  // Figure 1.
  const auto series_a = a.prevalence.series();
  const auto series_b = b.prevalence.series();
  ASSERT_EQ(series_a.size(), series_b.size());
  for (std::size_t i = 0; i < series_a.size(); ++i) {
    EXPECT_EQ(series_a[i].month_index, series_b[i].month_index);
    EXPECT_EQ(series_a[i].total, series_b[i].total);
    EXPECT_EQ(series_a[i].mutual, series_b[i].mutual);
    EXPECT_EQ(series_a[i].mutual_inbound, series_b[i].mutual_inbound);
    EXPECT_EQ(series_a[i].mutual_outbound, series_b[i].mutual_outbound);
  }

  // Table 2: all four quadrants, all ports.
  for (const auto direction :
       {core::Direction::kInbound, core::Direction::kOutbound}) {
    for (const bool mutual : {false, true}) {
      const auto top_a = a.ports.top(direction, mutual, 1'000);
      const auto top_b = b.ports.top(direction, mutual, 1'000);
      ASSERT_EQ(top_a.size(), top_b.size());
      for (std::size_t i = 0; i < top_a.size(); ++i) {
        EXPECT_EQ(top_a[i].port_label, top_b[i].port_label);
        EXPECT_EQ(top_a[i].connections, top_b[i].connections);
        EXPECT_DOUBLE_EQ(top_a[i].share, top_b[i].share);
      }
    }
  }

  // Table 3.
  EXPECT_EQ(a.assoc.total_connections(), b.assoc.total_connections());
  EXPECT_EQ(a.assoc.total_clients(), b.assoc.total_clients());
  const auto rows_a = a.assoc.rows();
  const auto rows_b = b.assoc.rows();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i].assoc, rows_b[i].assoc);
    EXPECT_EQ(rows_a[i].connections, rows_b[i].connections);
    EXPECT_EQ(rows_a[i].clients, rows_b[i].clients);
    EXPECT_EQ(rows_a[i].issuer_shares, rows_b[i].issuer_shares);
  }

  // Figure 2.
  const auto flows_a = a.flows.top_flows(1'000);
  const auto flows_b = b.flows.top_flows(1'000);
  ASSERT_EQ(flows_a.size(), flows_b.size());
  for (std::size_t i = 0; i < flows_a.size(); ++i) {
    EXPECT_EQ(flows_a[i].tld, flows_b[i].tld);
    EXPECT_EQ(flows_a[i].server_class, flows_b[i].server_class);
    EXPECT_EQ(flows_a[i].client_category, flows_b[i].client_category);
    EXPECT_EQ(flows_a[i].connections, flows_b[i].connections);
  }
  EXPECT_EQ(a.flows.top_slds(1'000), b.flows.top_slds(1'000));
  EXPECT_DOUBLE_EQ(a.flows.public_server_missing_client_issuer_pct(),
                   b.flows.public_server_missing_client_issuer_pct());

  // Table 4 / §5.1.1.
  const auto dummy_a = a.dummies.rows();
  const auto dummy_b = b.dummies.rows();
  ASSERT_EQ(dummy_a.size(), dummy_b.size());
  for (std::size_t i = 0; i < dummy_a.size(); ++i) {
    EXPECT_EQ(dummy_a[i].dummy_org, dummy_b[i].dummy_org);
    EXPECT_EQ(dummy_a[i].server_groups, dummy_b[i].server_groups);
    EXPECT_EQ(dummy_a[i].clients, dummy_b[i].clients);
    EXPECT_EQ(dummy_a[i].connections, dummy_b[i].connections);
  }
  EXPECT_EQ(a.dummies.weak_params().v1_certs, b.dummies.weak_params().v1_certs);
  EXPECT_EQ(a.dummies.weak_params().v1_tuples,
            b.dummies.weak_params().v1_tuples);
  EXPECT_EQ(a.dummies.weak_params().weak_key_certs,
            b.dummies.weak_params().weak_key_certs);
  EXPECT_EQ(a.dummies.weak_params().weak_key_tuples,
            b.dummies.weak_params().weak_key_tuples);

  // §5.1.2.
  const auto groups_a = a.serials.collision_groups();
  const auto groups_b = b.serials.collision_groups();
  ASSERT_EQ(groups_a.size(), groups_b.size());
  for (std::size_t i = 0; i < groups_a.size(); ++i) {
    EXPECT_EQ(groups_a[i].issuer_org, groups_b[i].issuer_org);
    EXPECT_EQ(groups_a[i].serial, groups_b[i].serial);
    EXPECT_EQ(groups_a[i].server_certs, groups_b[i].server_certs);
    EXPECT_EQ(groups_a[i].client_certs, groups_b[i].client_certs);
    EXPECT_EQ(groups_a[i].clients, groups_b[i].clients);
    EXPECT_EQ(groups_a[i].connections, groups_b[i].connections);
    EXPECT_EQ(groups_a[i].both_endpoint_connections,
              groups_b[i].both_endpoint_connections);
  }
  EXPECT_EQ(a.serials.involved_clients(core::Direction::kInbound),
            b.serials.involved_clients(core::Direction::kInbound));
  EXPECT_EQ(a.serials.involved_clients(core::Direction::kOutbound),
            b.serials.involved_clients(core::Direction::kOutbound));

  // Tables 5-6.
  const auto shared_a = a.shared.same_connection_rows();
  const auto shared_b = b.shared.same_connection_rows();
  ASSERT_EQ(shared_a.size(), shared_b.size());
  for (std::size_t i = 0; i < shared_a.size(); ++i) {
    EXPECT_EQ(shared_a[i].sld, shared_b[i].sld);
    EXPECT_EQ(shared_a[i].issuer, shared_b[i].issuer);
    EXPECT_EQ(shared_a[i].clients, shared_b[i].clients);
    EXPECT_EQ(shared_a[i].first, shared_b[i].first);
    EXPECT_EQ(shared_a[i].last, shared_b[i].last);
    EXPECT_EQ(shared_a[i].connections, shared_b[i].connections);
  }
  EXPECT_EQ(a.shared.same_conn_fuids(), b.shared.same_conn_fuids());
  EXPECT_EQ(a.shared.same_connection_conns(core::Direction::kInbound),
            b.shared.same_connection_conns(core::Direction::kInbound));
  EXPECT_EQ(a.shared.same_connection_conns(core::Direction::kOutbound),
            b.shared.same_connection_conns(core::Direction::kOutbound));
  const auto q_a = a.shared.subnet_quantiles(a.pipeline);
  const auto q_b = b.shared.subnet_quantiles(b.pipeline);
  EXPECT_EQ(q_a.server, q_b.server);
  EXPECT_EQ(q_a.client, q_b.client);
  EXPECT_EQ(q_a.cross_shared_certs, q_b.cross_shared_certs);

  // Figure 3 / Tables 11-12.
  for (const bool both : {false, true}) {
    const auto dates_a = both ? a.dates.both_ends_rows() : a.dates.rows();
    const auto dates_b = both ? b.dates.both_ends_rows() : b.dates.rows();
    ASSERT_EQ(dates_a.size(), dates_b.size());
    for (std::size_t i = 0; i < dates_a.size(); ++i) {
      EXPECT_EQ(dates_a[i].sld, dates_b[i].sld);
      EXPECT_EQ(dates_a[i].issuer, dates_b[i].issuer);
      EXPECT_EQ(dates_a[i].clients, dates_b[i].clients);
      EXPECT_EQ(dates_a[i].certs, dates_b[i].certs);
      EXPECT_EQ(dates_a[i].first, dates_b[i].first);
      EXPECT_EQ(dates_a[i].last, dates_b[i].last);
    }
  }

  // Certificate-level reports read the merged registry.
  const auto inv_a = core::analyze_cert_inventory(a.pipeline);
  const auto inv_b = core::analyze_cert_inventory(b.pipeline);
  for (const auto& [row_a, row_b] :
       {std::pair{inv_a.total, inv_b.total},
        std::pair{inv_a.server, inv_b.server},
        std::pair{inv_a.server_public, inv_b.server_public},
        std::pair{inv_a.server_private, inv_b.server_private},
        std::pair{inv_a.client, inv_b.client},
        std::pair{inv_a.client_public, inv_b.client_public},
        std::pair{inv_a.client_private, inv_b.client_private}}) {
    EXPECT_EQ(row_a.total, row_b.total);
    EXPECT_EQ(row_a.mutual, row_b.mutual);
  }
}

// --- Parameterized shard-count equivalence ---------------------------------

class ExecutorEquivalenceTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    generator_ = new gen::TraceGenerator(small_model());
    dataset_ = new zeek::Dataset(generator_->generate_dataset());
    reference_ = new RunResult(run_sharded(*generator_, *dataset_, 1));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete dataset_;
    delete generator_;
  }

  static gen::TraceGenerator* generator_;
  static zeek::Dataset* dataset_;
  static RunResult* reference_;  // K = 1 (the serial path)
};

gen::TraceGenerator* ExecutorEquivalenceTest::generator_ = nullptr;
zeek::Dataset* ExecutorEquivalenceTest::dataset_ = nullptr;
RunResult* ExecutorEquivalenceTest::reference_ = nullptr;

TEST_P(ExecutorEquivalenceTest, FullResultSetMatchesSerial) {
  const auto result = run_sharded(*generator_, *dataset_, GetParam());
  expect_same_totals(result.pipeline, reference_->pipeline);
  expect_same_certificates(result.pipeline, reference_->pipeline);
  expect_same_analyzers(result, *reference_);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ExecutorEquivalenceTest,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{7}));

TEST(ExecutorTest, SanityOnReferenceRun) {
  gen::TraceGenerator generator(small_model());
  const auto dataset = generator.generate_dataset();
  const auto result = run_sharded(generator, dataset, 3);
  EXPECT_GT(result.pipeline.totals().connections, 0u);
  EXPECT_GT(result.pipeline.certificates().size(), 0u);
  EXPECT_FALSE(result.pipeline.interception_issuers().empty());
  EXPECT_GT(result.pipeline.interception_excluded_connections(), 0u);
  EXPECT_FALSE(result.prevalence.series().empty());
}

// --- Legacy streaming pipeline vs executor (no CT: identical by design) ----

TEST(ExecutorTest, StreamingPipelineMatchesExecutorWithoutCt) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 500'000));
  const auto dataset = generator.generate_dataset();

  core::Pipeline streaming(core::PipelineConfig::campus_defaults());
  for (const auto& [fuid, record] : dataset.x509()) {
    streaming.add_certificate(record);
  }
  for (const auto& record : dataset.ssl()) {
    streaming.add_connection(record);
  }
  streaming.finalize();

  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 3);
  const auto sharded = executor.run(dataset);

  expect_same_totals(streaming, sharded);
  expect_same_certificates(streaming, sharded);
}

// --- CertFacts::merge ------------------------------------------------------

TEST(CertFactsMergeTest, FoldsUsageAggregates) {
  core::CertFacts a;
  a.fuid = "F1";
  a.used_as_server = true;
  a.seen_inbound = true;
  a.connection_count = 3;
  a.first_seen = 1'000;
  a.last_seen = 2'000;
  a.server_subnets = {0x0a000100u};
  a.context_sld = "";
  a.context_assoc = core::ServerAssociation::kNone;

  core::CertFacts b;
  b.fuid = "F1";
  b.used_as_client = true;
  b.used_in_mutual = true;
  b.seen_outbound = true;
  b.client_use_while_expired = true;
  b.connection_count = 2;
  b.first_seen = 500;
  b.last_seen = 1'500;
  b.server_subnets = {0x0a000200u};
  b.client_subnets = {0xc0a80100u};
  b.context_sld = "example.com";

  a.merge(b);
  EXPECT_TRUE(a.used_as_server);
  EXPECT_TRUE(a.used_as_client);
  EXPECT_TRUE(a.used_in_mutual);
  EXPECT_TRUE(a.seen_inbound);
  EXPECT_TRUE(a.seen_outbound);
  EXPECT_TRUE(a.client_use_while_expired);
  EXPECT_EQ(a.connection_count, 5u);
  EXPECT_EQ(a.first_seen, 500);
  EXPECT_EQ(a.last_seen, 2'000);
  EXPECT_EQ(a.server_subnets,
            (std::set<std::uint32_t>{0x0a000100u, 0x0a000200u}));
  EXPECT_EQ(a.client_subnets, (std::set<std::uint32_t>{0xc0a80100u}));
  // Representative context: first non-empty in merge order.
  EXPECT_EQ(a.context_sld, "example.com");
}

TEST(CertFactsMergeTest, PublicClassificationWins) {
  core::CertFacts a;
  a.fuid = "F1";
  a.issuer_class = trust::IssuerClass::kPrivate;
  a.issuer_category = core::IssuerCategory::kPrivateOthers;
  a.context_sld = "first.com";

  core::CertFacts b;
  b.fuid = "F1";
  b.issuer_class = trust::IssuerClass::kPublic;
  b.issuer_category = core::IssuerCategory::kPublic;
  b.context_sld = "second.com";

  a.merge(b);
  EXPECT_EQ(a.issuer_class, trust::IssuerClass::kPublic);
  EXPECT_EQ(a.issuer_category, core::IssuerCategory::kPublic);
  // First shard already had a context SLD; merge keeps it.
  EXPECT_EQ(a.context_sld, "first.com");
}

// --- Hand-rolled analyzer merges -------------------------------------------

zeek::SslRecord make_ssl(const std::string& client_ip, std::uint16_t port) {
  zeek::SslRecord record;
  record.orig_h = client_ip;
  record.resp_p = port;
  record.established = true;
  return record;
}

core::EnrichedConnection make_conn(const zeek::SslRecord& ssl,
                                   util::UnixSeconds ts, bool mutual,
                                   core::Direction direction) {
  core::EnrichedConnection conn;
  conn.ssl = &ssl;
  conn.ts = ts;
  conn.established = true;
  conn.mutual = mutual;
  conn.direction = direction;
  return conn;
}

TEST(AnalyzerMergeTest, PrevalenceMergeEqualsSingleStream) {
  const auto ssl = make_ssl("10.1.2.3", 443);
  const util::UnixSeconds may_2022 = 1'651'500'000;
  const util::UnixSeconds oct_2022 = 1'665'000'000;
  const auto c1 = make_conn(ssl, may_2022, true, core::Direction::kInbound);
  const auto c2 = make_conn(ssl, oct_2022, false, core::Direction::kInbound);
  const auto c3 = make_conn(ssl, oct_2022, true, core::Direction::kOutbound);

  core::PrevalenceAnalyzer whole;
  whole.observe(c1);
  whole.observe(c2);
  whole.observe(c3);

  core::PrevalenceAnalyzer first, second;
  first.observe(c1);
  second.observe(c2);
  second.observe(c3);
  first.merge(std::move(second));

  const auto expected = whole.series();
  const auto merged = first.series();
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].month_index, expected[i].month_index);
    EXPECT_EQ(merged[i].total, expected[i].total);
    EXPECT_EQ(merged[i].mutual, expected[i].mutual);
    EXPECT_EQ(merged[i].mutual_inbound, expected[i].mutual_inbound);
    EXPECT_EQ(merged[i].mutual_outbound, expected[i].mutual_outbound);
  }
}

TEST(AnalyzerMergeTest, ServicePortMergeEqualsSingleStream) {
  const auto ssl_a = make_ssl("10.1.2.3", 443);
  const auto ssl_b = make_ssl("10.1.2.4", 50'500);
  const auto c1 = make_conn(ssl_a, 0, true, core::Direction::kInbound);
  const auto c2 = make_conn(ssl_b, 0, true, core::Direction::kInbound);
  const auto c3 = make_conn(ssl_a, 0, false, core::Direction::kOutbound);

  core::ServicePortAnalyzer whole;
  whole.observe(c1);
  whole.observe(c2);
  whole.observe(c3);

  core::ServicePortAnalyzer first, second;
  first.observe(c1);
  second.observe(c2);
  second.observe(c3);
  first.merge(std::move(second));

  for (const auto direction :
       {core::Direction::kInbound, core::Direction::kOutbound}) {
    for (const bool mutual : {false, true}) {
      const auto expected = whole.top(direction, mutual, 10);
      const auto merged = first.top(direction, mutual, 10);
      ASSERT_EQ(merged.size(), expected.size());
      for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].port_label, expected[i].port_label);
        EXPECT_EQ(merged[i].connections, expected[i].connections);
        EXPECT_DOUBLE_EQ(merged[i].share, expected[i].share);
      }
    }
  }
}

TEST(ShardedTest, MergedFoldsAllShardsInOrder) {
  const auto ssl = make_ssl("10.1.2.3", 443);
  const auto conn = make_conn(ssl, 1'651'500'000, true,
                              core::Direction::kInbound);
  core::Sharded<core::PrevalenceAnalyzer> sharded(3);
  ASSERT_EQ(sharded.size(), 3u);
  sharded.shard(0).observe(conn);
  sharded.shard(1).observe(conn);
  sharded.shard(2).observe(conn);
  const auto merged = std::move(sharded).merged();
  const auto series = merged.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].total, 3u);
  EXPECT_EQ(series[0].mutual, 3u);
}

// --- Interception accounting is stream-order-independent -------------------

x509::Certificate issue_for_domain(const trust::CertificateAuthority& ca,
                                   const std::string& domain,
                                   const std::string& label) {
  x509::DistinguishedName dn;
  dn.add_cn(domain);
  return ca.issue(x509::CertificateBuilder()
                      .serial_from_label(label)
                      .subject(dn)
                      .validity(util::to_unix({2023, 1, 1, 0, 0, 0}),
                                util::to_unix({2024, 1, 1, 0, 0, 0}))
                      .public_key(crypto::TsigKey::derive(label).key)
                      .add_san_dns(domain));
}

tls::TlsConnection browse(const x509::Certificate& server_cert,
                          const std::string& sni, int i) {
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.9.8.7"), 50'000};
  client.sni = sni;
  tls::ServerProfile server;
  server.endpoint = {net::IpAddress::v4(203, 0, 113,
                                        static_cast<std::uint8_t>(i + 1)),
                     443};
  server.chain = {server_cert};
  return tls::simulate_handshake(
      client, server,
      {"Cord" + std::to_string(i), util::to_unix({2023, 6, 1, 0, 0, 0}), 0});
}

TEST(InterceptionReconciliationTest, ExclusionIsOrderIndependent) {
  const char* kDomains[] = {"alpha-site.com", "beta-site.com",
                            "gamma-site.com", "delta-site.com"};
  ctlog::CtDatabase ct;
  const auto& pki = trust::public_pki();
  for (std::size_t i = 0; i < std::size(kDomains); ++i) {
    ct.log_certificate(kDomains[i],
                       pki.cas()[i % pki.cas().size()].intermediate.dn());
  }

  x509::DistinguishedName proxy_dn;
  proxy_dn.add_org("Order Test Proxy").add_cn("Order Test Inspector");
  const auto proxy = trust::CertificateAuthority::make_root(
      proxy_dn, 0, util::to_unix({2030, 1, 1, 0, 0, 0}));

  std::vector<tls::TlsConnection> trace;
  int conn_id = 0;
  for (const char* domain : kDomains) {
    trace.push_back(browse(
        issue_for_domain(proxy, domain, std::string("proxy:") + domain),
        domain, conn_id++));
  }

  // Threshold 3 over 4 domains: in forward order the first two proxy
  // connections are counted before the issuer is confirmed; finalize()
  // must take them back out.
  const auto run_in_order = [&ct](const std::vector<tls::TlsConnection>& t,
                                  bool reversed) {
    auto config = core::PipelineConfig::campus_defaults();
    config.ct = &ct;
    core::Pipeline pipeline(std::move(config));
    if (reversed) {
      for (auto it = t.rbegin(); it != t.rend(); ++it) pipeline.feed(*it);
    } else {
      for (const auto& conn : t) pipeline.feed(conn);
    }
    pipeline.finalize();
    return pipeline;
  };

  const auto forward = run_in_order(trace, false);
  const auto backward = run_in_order(trace, true);

  EXPECT_EQ(forward.interception_issuers().size(), 1u);
  EXPECT_EQ(forward.interception_excluded_connections(), 4u);
  EXPECT_EQ(forward.totals().connections, 0u);
  expect_same_totals(forward, backward);

  // finalize() must be idempotent: the reconciliation ledger is consumed.
  auto again = run_in_order(trace, false);
  again.finalize();
  EXPECT_EQ(again.interception_excluded_connections(), 4u);
  EXPECT_EQ(again.totals().connections, 0u);

  // The sharded executor reaches the same verdict from the Zeek view.
  zeek::Dataset dataset;
  for (const auto& conn : trace) dataset.add_connection(conn);
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &ct;
  core::PipelineExecutor executor(std::move(config), 2);
  const auto sharded = executor.run(dataset);
  expect_same_totals(forward, sharded);
}

// --- Zeek log splitting ----------------------------------------------------

TEST(SplitLogTextTest, ChunksParseAndConcatenateToSerialResult) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 500'000));
  const auto dataset = generator.generate_dataset();
  const std::string text = zeek::ssl_log_to_string(dataset.ssl());

  std::istringstream serial_in(text);
  const auto serial = zeek::parse_ssl_log(serial_in);
  ASSERT_TRUE(serial.has_value());

  for (const std::size_t chunks : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    const auto parts = zeek::split_log_text(text, chunks);
    ASSERT_EQ(parts.size(), chunks);
    std::vector<zeek::SslRecord> reassembled;
    for (const auto& part : parts) {
      std::istringstream in(part);
      const auto parsed = zeek::parse_ssl_log(in);
      ASSERT_TRUE(parsed.has_value()) << "chunks=" << chunks;
      reassembled.insert(reassembled.end(), parsed->begin(), parsed->end());
    }
    ASSERT_EQ(reassembled.size(), serial->size()) << "chunks=" << chunks;
    for (std::size_t i = 0; i < reassembled.size(); ++i) {
      EXPECT_EQ(reassembled[i].uid, (*serial)[i].uid);
      EXPECT_EQ(reassembled[i].ts, (*serial)[i].ts);
      EXPECT_EQ(reassembled[i].cert_chain_fuids, (*serial)[i].cert_chain_fuids);
    }
  }
}

TEST(SplitLogTextTest, MoreChunksThanRowsYieldsHeaderOnlyTails) {
  gen::TraceGenerator generator(gen::paper_model(5'000, 5'000'000));
  const auto dataset = generator.generate_dataset();
  std::vector<zeek::SslRecord> three(dataset.ssl().begin(),
                                     dataset.ssl().begin() + 3);
  const std::string text = zeek::ssl_log_to_string(three);

  const auto parts = zeek::split_log_text(text, 10);
  ASSERT_EQ(parts.size(), 10u);
  std::size_t total = 0;
  for (const auto& part : parts) {
    std::istringstream in(part);
    const auto parsed = zeek::parse_ssl_log(in);
    ASSERT_TRUE(parsed.has_value());
    total += parsed->size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(ExecutorTest, RunLogsMatchesDatasetRun) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 500'000));
  const auto dataset = generator.generate_dataset();
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &generator.ct_database();

  core::PipelineExecutor direct(config, 1);
  const auto reference = direct.run(dataset);

  core::PipelineExecutor from_logs(config, 4);
  zeek::LogParseError error;
  const auto parsed =
      from_logs.run_logs(zeek::ssl_log_to_string(dataset.ssl()),
                         zeek::x509_log_to_string(dataset), &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  expect_same_totals(*parsed, reference);
  expect_same_certificates(*parsed, reference);
}

TEST(ExecutorTest, RunLogsReportsParseErrors) {
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 2);
  zeek::LogParseError error;
  const auto result = executor.run_logs("not a zeek log\n", "", &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(error.message.empty());
}

}  // namespace
}  // namespace mtlscope
