// Property-based suites: randomized round-trips and invariants across the
// encoding layers, driven by the deterministic Rng (seeds are printed by
// gtest parameterization, so failures are reproducible).
#include <gtest/gtest.h>

#include <sstream>

#include "mtlscope/asn1/der.hpp"
#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/crypto/rng.hpp"
#include "mtlscope/net/ip.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/x509/builder.hpp"
#include "mtlscope/x509/parser.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

using crypto::Rng;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- Random ASN.1 trees round-trip through the DER writer/reader -----------

struct Asn1Node {
  enum Kind { kInt, kString, kOctets, kSeq } kind;
  std::int64_t int_value = 0;
  std::string text;
  std::vector<std::uint8_t> bytes;
  std::vector<Asn1Node> children;
};

Asn1Node random_tree(Rng& rng, int depth) {
  Asn1Node node;
  const auto kind = rng.below(depth > 0 ? 4 : 3);
  switch (kind) {
    case 0:
      node.kind = Asn1Node::kInt;
      node.int_value = static_cast<std::int64_t>(rng()) >> rng.below(40);
      break;
    case 1:
      node.kind = Asn1Node::kString;
      node.text = rng.alnum(rng.below(40));
      break;
    case 2: {
      node.kind = Asn1Node::kOctets;
      node.bytes.resize(rng.below(60));
      for (auto& b : node.bytes) b = static_cast<std::uint8_t>(rng() & 0xff);
      break;
    }
    default: {
      node.kind = Asn1Node::kSeq;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        node.children.push_back(random_tree(rng, depth - 1));
      }
      break;
    }
  }
  return node;
}

void write_tree(asn1::DerWriter& w, const Asn1Node& node) {
  switch (node.kind) {
    case Asn1Node::kInt:
      w.integer(node.int_value);
      break;
    case Asn1Node::kString:
      w.utf8_string(node.text);
      break;
    case Asn1Node::kOctets:
      w.octet_string(node.bytes);
      break;
    case Asn1Node::kSeq:
      w.sequence([&node](asn1::DerWriter& inner) {
        for (const auto& child : node.children) write_tree(inner, child);
      });
      break;
  }
}

void check_tree(asn1::DerReader& r, const Asn1Node& node) {
  const auto value = r.read();
  switch (node.kind) {
    case Asn1Node::kInt:
      EXPECT_EQ(value.as_integer(), node.int_value);
      break;
    case Asn1Node::kString:
      EXPECT_EQ(value.text(), node.text);
      break;
    case Asn1Node::kOctets:
      EXPECT_EQ(std::vector<std::uint8_t>(value.content.begin(),
                                          value.content.end()),
                node.bytes);
      break;
    case Asn1Node::kSeq: {
      ASSERT_TRUE(value.tag.is_universal(asn1::tags::kSequence));
      asn1::DerReader inner(value);
      for (const auto& child : node.children) check_tree(inner, child);
      EXPECT_TRUE(inner.empty());
      break;
    }
  }
}

TEST_P(SeededProperty, DerTreeRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const auto tree = random_tree(rng, 4);
    asn1::DerWriter w;
    write_tree(w, tree);
    asn1::DerReader r(w.bytes());
    check_tree(r, tree);
    EXPECT_TRUE(r.empty());
  }
}

// --- Random certificates survive build → parse → rebuild --------------------

TEST_P(SeededProperty, CertificateRoundTrip) {
  Rng rng(GetParam());
  x509::DistinguishedName ca_dn;
  ca_dn.add_org("Prop CA " + rng.hex(4)).add_cn("Prop CA");
  const auto ca = trust::CertificateAuthority::make_root(
      ca_dn, 0, util::to_unix({2040, 1, 1, 0, 0, 0}));

  for (int i = 0; i < 20; ++i) {
    x509::CertificateBuilder builder;
    x509::DistinguishedName dn;
    if (rng.chance(0.9)) dn.add_cn(rng.alnum(1 + rng.below(30)));
    if (rng.chance(0.5)) dn.add_org("Org " + rng.alnum(8));
    if (rng.chance(0.3)) dn.add_country("US");
    builder.subject(dn);
    builder.version(rng.chance(0.1) ? 1 : 3);
    if (rng.chance(0.5)) {
      builder.serial_hex(rng.chance(0.5) ? "00" : "03E8");
    } else {
      builder.serial_from_label(rng.hex(12));
    }
    // Validity possibly reversed (the paper's incorrect-date certs) and
    // possibly in exotic centuries.
    const auto t1 = util::to_unix(
        {static_cast<int>(1800 + rng.below(400)), 1 + static_cast<int>(rng.below(12)),
         1 + static_cast<int>(rng.below(28)), 0, 0, 0});
    const auto t2 = t1 + (rng.chance(0.8) ? 1 : -1) *
                             static_cast<std::int64_t>(rng.below(20'000)) *
                             86'400;
    builder.validity(t1, t2);
    builder.public_key(crypto::TsigKey::derive(rng.hex(8),
                                               rng.chance(0.1) ? 1024 : 2048)
                           .key);
    const std::size_t sans = rng.below(4);
    for (std::size_t s = 0; s < sans; ++s) {
      builder.add_san_dns(rng.alnum(6) + ".example.com");
    }
    const auto cert = ca.issue(builder);

    const auto reparsed = x509::parse_certificate(cert.der);
    const auto* c2 = x509::get_certificate(reparsed);
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c2->subject, cert.subject);
    EXPECT_EQ(c2->issuer, cert.issuer);
    EXPECT_EQ(c2->serial, cert.serial);
    EXPECT_EQ(c2->validity, cert.validity);
    EXPECT_EQ(c2->san, cert.san);
    EXPECT_EQ(c2->version, cert.version);
    EXPECT_EQ(c2->der, cert.der);
    EXPECT_TRUE(crypto::tsig_verify(ca.key().key, c2->tbs_der,
                                    c2->signature));
  }
}

// --- Zeek log escaping survives arbitrary subject strings --------------------

TEST_P(SeededProperty, ZeekLogSurvivesHostileStrings) {
  Rng rng(GetParam());
  zeek::Dataset dataset;
  for (int i = 0; i < 25; ++i) {
    zeek::X509Record record;
    record.fuid = "F" + rng.hex(17);
    // Strings with the separators the format must escape.
    std::string nasty;
    for (int k = 0; k < 20; ++k) {
      switch (rng.below(6)) {
        case 0: nasty += ','; break;
        case 1: nasty += '\t'; break;
        case 2: nasty += '\\'; break;
        case 3: nasty += "\\x09"; break;
        default: nasty += rng.alnum(1); break;
      }
    }
    record.subject = "CN=" + nasty;
    record.san_dns = {nasty, rng.alnum(5)};
    record.serial = rng.hex(8);
    dataset.add_x509(record);
  }
  std::istringstream in(zeek::x509_log_to_string(dataset));
  const auto parsed = zeek::parse_x509_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), dataset.certificate_count());
  for (const auto& record : *parsed) {
    const auto* original = dataset.find_certificate(record.fuid);
    ASSERT_NE(original, nullptr);
    // Vector fields escape commas; they must round-trip exactly.
    EXPECT_EQ(record.san_dns, original->san_dns);
    EXPECT_EQ(record.serial, original->serial);
  }
}

// --- Classifier invariants -----------------------------------------------------

TEST_P(SeededProperty, ClassifierTotalAndDeterministic) {
  Rng rng(GetParam());
  textclass::ClassifyContext ctx;
  ctx.campus_issuer = rng.chance(0.5);
  for (int i = 0; i < 300; ++i) {
    std::string value;
    switch (rng.below(5)) {
      case 0: value = rng.alnum(rng.below(50)); break;
      case 1: value = rng.hex(8 + rng.below(40)); break;
      case 2: value = rng.uuid(); break;
      case 3: value = rng.alnum(4) + "." + rng.alnum(4) + ".com"; break;
      default:
        for (int k = 0; k < 12; ++k) {
          value += static_cast<char>(32 + rng.below(95));
        }
        break;
    }
    if (value.empty()) continue;
    const auto a = textclass::classify_value(value, ctx);
    const auto b = textclass::classify_value(value, ctx);
    EXPECT_EQ(a, b) << value;  // deterministic
    // NER-off result is either identical or folds into Unidentified.
    auto no_ner = ctx;
    no_ner.enable_ner = false;
    const auto c = textclass::classify_value(value, no_ner);
    if (a != textclass::InfoType::kPersonalName &&
        a != textclass::InfoType::kOrgProduct) {
      EXPECT_EQ(c, a) << value;
    } else {
      EXPECT_EQ(c, textclass::InfoType::kUnidentified) << value;
    }
  }
}

// --- Subnet algebra ---------------------------------------------------------------

TEST_P(SeededProperty, SubnetContainsItsMembers) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto addr = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    const int prefix = static_cast<int>(rng.below(33));
    const net::Subnet subnet(addr, prefix);
    EXPECT_TRUE(subnet.contains(addr))
        << subnet.to_string() << " " << addr.to_string();
    // The canonical base is contained too.
    EXPECT_TRUE(subnet.contains(subnet.base()));
    // A /24 grouping is consistent: same /24 => same group.
    const auto sibling = net::IpAddress::v4(
        (addr.v4_value() & 0xffffff00u) |
        static_cast<std::uint32_t>(rng.below(256)));
    EXPECT_EQ(net::slash24_of(addr), net::slash24_of(sibling));
  }
}

TEST_P(SeededProperty, IpStringRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto v4 = net::IpAddress::v4(static_cast<std::uint32_t>(rng()));
    EXPECT_EQ(net::IpAddress::parse(v4.to_string()), v4);
    std::array<std::uint8_t, 16> bytes;
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng() & 0xff);
    const auto v6 = net::IpAddress::v6(bytes);
    EXPECT_EQ(net::IpAddress::parse(v6.to_string()), v6);
  }
}

// --- Encodings ---------------------------------------------------------------------

TEST_P(SeededProperty, HexAndBase64RoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> data(rng.below(200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xff);
    EXPECT_EQ(crypto::from_hex(crypto::to_hex(data)), data);
    EXPECT_EQ(crypto::from_base64(crypto::to_base64(data)), data);
  }
}

TEST_P(SeededProperty, DnStringRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    x509::DistinguishedName dn;
    const std::size_t attrs = 1 + rng.below(4);
    for (std::size_t a = 0; a < attrs; ++a) {
      std::string value;
      for (int k = 0; k < 10; ++k) {
        switch (rng.below(5)) {
          case 0: value += ','; break;
          case 1: value += '\\'; break;
          case 2: value += '='; break;
          default: value += rng.alnum(1); break;
        }
      }
      dn.add_cn(value);
    }
    const auto parsed = x509::DistinguishedName::from_string(dn.to_string());
    ASSERT_TRUE(parsed.has_value()) << dn.to_string();
    EXPECT_EQ(*parsed, dn);
  }
}

}  // namespace
}  // namespace mtlscope
