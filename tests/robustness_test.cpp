// Robustness suites: hostile/degenerate inputs across the parsing layers.
#include <gtest/gtest.h>

#include <sstream>

#include "mtlscope/asn1/der.hpp"
#include "mtlscope/crypto/rng.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/x509/parser.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

// --- Zeek log parser ---------------------------------------------------------

TEST(ZeekRobustness, UnknownColumnsAreIgnored) {
  std::istringstream in(
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"
      "\tfuture_field\tserver_name\n"
      "#types\ttime\tstring\taddr\tport\taddr\tport\tstring\tstring\n"
      "100.000000\tC1\t10.0.0.1\t1\t10.0.0.2\t443\twhatever\thost.com\n");
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].server_name, "host.com");
  EXPECT_EQ((*parsed)[0].resp_p, 443);
}

TEST(ZeekRobustness, ReorderedColumns) {
  std::istringstream in(
      "#fields\tuid\tts\tid.resp_p\tid.resp_h\tid.orig_p\tid.orig_h\n"
      "C9\t42.000000\t8443\t192.0.2.1\t1234\t10.9.9.9\n");
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].uid, "C9");
  EXPECT_EQ((*parsed)[0].ts, 42);
  EXPECT_EQ((*parsed)[0].resp_p, 8443);
  EXPECT_EQ((*parsed)[0].orig_h, "10.9.9.9");
}

TEST(ZeekRobustness, HeaderOnlyLogIsEmpty) {
  std::istringstream in(
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n");
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(ZeekRobustness, InterleavedCommentsSkipped) {
  std::istringstream in(
      "#separator \\x09\n"
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n"
      "1.000000\tC1\t10.0.0.1\t1\t10.0.0.2\t2\n"
      "#close\t2024-03-31-23-59-59\n"
      "2.000000\tC2\t10.0.0.1\t1\t10.0.0.2\t2\n");
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(ZeekRobustness, MissingRequiredColumnFails) {
  std::istringstream in(
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\n"
      "1.000000\tC1\t10.0.0.1\t1\t10.0.0.2\n");
  zeek::LogParseError error;
  EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
  EXPECT_NE(error.message.find("id.resp_p"), std::string::npos);
}

TEST(ZeekRobustness, X509MissingDerFallsBackToFields) {
  std::istringstream in(
      "#fields\tfuid\tcertificate.serial\tcertificate.subject"
      "\tcertificate.issuer\n"
      "F1\t0A\tCN=host.example.com\tO=Some Org\\x2c Inc.,CN=Some CA\n");
  const auto parsed = zeek::parse_x509_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].serial, "0A");
  EXPECT_TRUE((*parsed)[0].cert_der.empty());
}

// --- DER reader fuzz ----------------------------------------------------------

TEST(DerRobustness, RandomBytesNeverCrash) {
  crypto::Rng rng(0xfeed);
  for (int i = 0; i < 2'000; ++i) {
    std::vector<std::uint8_t> bytes(rng.below(120));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng() & 0xff);
    asn1::DerReader reader(bytes);
    try {
      while (!reader.empty()) {
        const auto value = reader.read();
        // Exercise the typed decoders too; they may throw, never crash.
        try {
          (void)value.as_integer();
        } catch (const asn1::DerError&) {
        }
        try {
          (void)value.as_oid();
        } catch (const asn1::DerError&) {
        }
        try {
          (void)value.as_time();
        } catch (const asn1::DerError&) {
        }
      }
    } catch (const asn1::DerError&) {
      // fine: malformed input must raise, not crash
    }
  }
  SUCCEED();
}

TEST(DerRobustness, RandomBytesNeverParseAsCertificate) {
  crypto::Rng rng(0xcafe);
  int parsed_count = 0;
  for (int i = 0; i < 2'000; ++i) {
    std::vector<std::uint8_t> bytes(rng.below(300));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng() & 0xff);
    if (x509::get_certificate(x509::parse_certificate(bytes)) != nullptr) {
      ++parsed_count;
    }
  }
  EXPECT_EQ(parsed_count, 0);
}

// --- Classifier hostile inputs ---------------------------------------------------

TEST(ClassifierRobustness, DegenerateStrings) {
  textclass::ClassifyContext ctx;
  // None of these may crash; all must return *something*.
  const char* cases[] = {
      "",
      " ",
      "\t\t\t",
      "....",
      "@@@@",
      "sip:",
      "a",
      "\xff\xfe\xfd",                    // invalid UTF-8
      "=======================",
      "..............................................................",
  };
  for (const char* value : cases) {
    (void)textclass::classify_value(value, ctx);
  }
  SUCCEED();
}

TEST(ClassifierRobustness, VeryLongStrings) {
  textclass::ClassifyContext ctx;
  const std::string long_domain =
      std::string(300, 'a') + ".example.com";  // over the 253-char DNS limit
  EXPECT_NE(textclass::classify_value(long_domain, ctx),
            textclass::InfoType::kDomain);
  const std::string long_text(10'000, 'x');
  (void)textclass::classify_value(long_text, ctx);
  SUCCEED();
}

}  // namespace
}  // namespace mtlscope
