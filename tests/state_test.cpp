// Shard-state serialization (DESIGN §12): round-trips must be lossless
// and canonical (state → bytes → state → bytes is byte-identical), and
// every malformed input — flipped bytes, truncation at any prefix, bad
// magic, unknown versions or section ids — must fail with a structured
// error, never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/shard_state.hpp"
#include "mtlscope/core/state_io.hpp"
#include "mtlscope/crypto/sha256.hpp"
#include "mtlscope/gen/generator.hpp"

namespace mtlscope {
namespace {

/// Small enough for every-prefix truncation sweeps, big enough to
/// populate every analyzer section.
core::ShardState folded_state(std::size_t threads = 2) {
  auto model = gen::paper_model(2'000, 600'000);
  model.background_connections = 5'000;
  model.seed = 7;
  gen::TraceGenerator generator(std::move(model));
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &generator.ct_database();
  core::PipelineExecutor executor(config, threads);
  auto state = executor.fold(generator.generate_dataset());
  state.meta.seed = 7;
  state.meta.cert_scale = 2'000;
  state.meta.conn_scale = 600'000;
  return state;
}

core::ShardState empty_state() {
  core::ShardState state;
  state.pipeline.emplace(core::PipelineConfig::campus_defaults());
  return state;
}

/// Recomputes the SHA-256 trailer after an intentional mutation, so the
/// parser reaches the section under test instead of the digest check.
std::string refresh_digest(std::string data) {
  const std::size_t payload = data.size() - crypto::Sha256::kDigestSize;
  const auto digest =
      crypto::Sha256::hash(std::string_view(data.data(), payload));
  for (std::size_t i = 0; i < digest.size(); ++i) {
    data[payload + i] = static_cast<char>(digest[i]);
  }
  return data;
}

TEST(StateIo, PrimitivesRoundTrip) {
  core::StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.i64(-42);
  w.f64(3.5);
  w.str(std::string_view("hello\0world", 11));  // embedded NUL survives
  const std::string bytes = std::move(w).take();

  core::StateReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_EQ(r.str(), std::string("hello\0world", 11));
  EXPECT_TRUE(r.done());
}

TEST(StateIo, ReaderOverrunThrowsStructuredError) {
  core::StateWriter w;
  w.u32(1);
  const std::string bytes = std::move(w).take();
  core::StateReader r(bytes);
  r.u32();
  EXPECT_THROW(r.u64(), core::StateError);
  core::StateReader r2(bytes);
  EXPECT_THROW(r2.str(), core::StateError);  // length prefix overruns
}

TEST(ShardState, PopulatedRoundTripIsLosslessAndCanonical) {
  const auto state = folded_state();
  const std::string bytes = core::serialize_shard_state(state);

  core::StateFileInfo info;
  std::string error;
  auto parsed = core::parse_shard_state(bytes, &info, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(info.format_version, core::kStateFormatVersion);
  EXPECT_EQ(info.bytes, bytes.size());
  EXPECT_EQ(info.digest_hex.size(), 64u);

  // Lossless: spot-check every section's content.
  EXPECT_EQ(parsed->meta.seed, state.meta.seed);
  EXPECT_EQ(parsed->meta.cert_scale, state.meta.cert_scale);
  ASSERT_TRUE(parsed->pipeline.has_value());
  EXPECT_EQ(parsed->pipeline->totals().connections,
            state.pipeline->totals().connections);
  EXPECT_EQ(parsed->pipeline->totals().mutual, state.pipeline->totals().mutual);
  EXPECT_EQ(parsed->pipeline->certificates().size(),
            state.pipeline->certificates().size());
  EXPECT_EQ(parsed->analyzers.prevalence.series().size(),
            state.analyzers.prevalence.series().size());
  EXPECT_EQ(parsed->analyzers.service_ports
                .top(core::Direction::kInbound, true)
                .size(),
            state.analyzers.service_ports.top(core::Direction::kInbound, true)
                .size());
  EXPECT_EQ(parsed->analyzers.dummy_issuers.rows().size(),
            state.analyzers.dummy_issuers.rows().size());
  EXPECT_EQ(parsed->analyzers.serial_collisions.collision_groups().size(),
            state.analyzers.serial_collisions.collision_groups().size());

  // Canonical: re-serialization is byte-identical.
  EXPECT_EQ(core::serialize_shard_state(*parsed), bytes);
}

TEST(ShardState, SerializationIsThreadCountInvariant) {
  const std::string one = core::serialize_shard_state(folded_state(1));
  const std::string four = core::serialize_shard_state(folded_state(4));
  EXPECT_EQ(one, four);
}

TEST(ShardState, EmptyPipelineRoundTrips) {
  const auto state = empty_state();
  const std::string bytes = core::serialize_shard_state(state);
  std::string error;
  auto parsed = core::parse_shard_state(bytes, nullptr, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->pipeline->totals().connections, 0u);
  EXPECT_EQ(core::serialize_shard_state(*parsed), bytes);
}

TEST(ShardState, LedgerReasonsRoundTrip) {
  auto state = empty_state();
  state.ledger.quarantine(
      core::LedgerPhase::kUpgrades,
      core::QuarantinedRecord{core::InputRole::kSsl, 10, 2, 5,
                              "bad column count", "abcd"});
  state.ledger.quarantine(
      core::LedgerPhase::kUpgrades,
      core::QuarantinedRecord{core::InputRole::kSsl, 20, 3, 5,
                              "bad column count", "ef01"});
  state.ledger.quarantine(
      core::LedgerPhase::kRegistry,
      core::QuarantinedRecord{core::InputRole::kX509, 30, 4, 5,
                              "bad timestamp", "2345"});
  state.ledger.count_rows_ok(core::InputRole::kSsl, 100);
  state.ledger.finalize();

  const std::string bytes = core::serialize_shard_state(state);
  std::string error;
  auto parsed = core::parse_shard_state(bytes, nullptr, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& ssl = parsed->ledger.reasons(core::InputRole::kSsl);
  ASSERT_EQ(ssl.size(), 1u);
  EXPECT_EQ(ssl.at("bad column count"), 2u);
  EXPECT_EQ(parsed->ledger.reasons(core::InputRole::kX509).at("bad timestamp"),
            1u);
  EXPECT_EQ(parsed->ledger.rows_ok_total(), 100u);
  EXPECT_EQ(parsed->ledger.entries().size(), 3u);
  EXPECT_EQ(core::serialize_shard_state(*parsed), bytes);
}

TEST(ShardState, FlippedByteFailsDigestCheck) {
  const std::string bytes = core::serialize_shard_state(empty_state());
  // Flip one payload byte past the fixed header.
  std::string corrupt = bytes;
  corrupt[24] = static_cast<char>(corrupt[24] ^ 0x40);
  std::string error;
  EXPECT_FALSE(core::parse_shard_state(corrupt, nullptr, &error).has_value());
  EXPECT_NE(error.find("digest mismatch"), std::string::npos) << error;
}

TEST(ShardState, EveryTruncationPrefixFailsCleanly) {
  const std::string bytes = core::serialize_shard_state(empty_state());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    const auto parsed = core::parse_shard_state(
        std::string_view(bytes.data(), len), nullptr, &error);
    EXPECT_FALSE(parsed.has_value()) << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
  }
}

TEST(ShardState, BadMagicIsReported) {
  std::string bytes = core::serialize_shard_state(empty_state());
  bytes[0] = 'X';
  std::string error;
  EXPECT_FALSE(core::parse_shard_state(bytes, nullptr, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(ShardState, UnknownVersionIsReportedEvenWithValidDigest) {
  std::string bytes = core::serialize_shard_state(empty_state());
  bytes[8] = 2;  // little-endian u32 version right after the magic
  // With the digest refreshed the version check must still win...
  std::string error;
  EXPECT_FALSE(
      core::parse_shard_state(refresh_digest(bytes), nullptr, &error)
          .has_value());
  EXPECT_NE(error.find("unsupported state format version 2"),
            std::string::npos)
      << error;
  // ...and with a stale digest the version is still what gets reported,
  // so a v2 producer's files always name the real problem.
  error.clear();
  EXPECT_FALSE(core::parse_shard_state(bytes, nullptr, &error).has_value());
  EXPECT_NE(error.find("unsupported state format version 2"),
            std::string::npos)
      << error;
}

TEST(ShardState, UnknownSectionIdIsReported) {
  std::string bytes = core::serialize_shard_state(empty_state());
  // Section table starts after magic(8) + version(4) + endian(4) +
  // count(4); the first section id is a little-endian u32 at offset 20.
  bytes[20] = 99;
  std::string error;
  EXPECT_FALSE(
      core::parse_shard_state(refresh_digest(bytes), nullptr, &error)
          .has_value());
  EXPECT_NE(error.find("unknown state section id"), std::string::npos)
      << error;
}

TEST(ShardState, MetaCompatibilityGatesReduce) {
  core::ShardStateMeta a;
  a.seed = 1;
  a.cert_scale = 100;
  a.conn_scale = 50'000;
  core::ShardStateMeta b = a;
  EXPECT_TRUE(core::compatible_meta(a, b));
  b.ssl_log = "other-slice.log";  // paths legitimately differ
  EXPECT_TRUE(core::compatible_meta(a, b));
  b.seed = 2;
  EXPECT_FALSE(core::compatible_meta(a, b));
  b = a;
  b.cert_scale = 200;
  EXPECT_FALSE(core::compatible_meta(a, b));
  b = a;
  b.file_mode = true;
  EXPECT_FALSE(core::compatible_meta(a, b));

  EXPECT_EQ(core::describe_meta(a),
            "mode=synthetic seed=1 cert_scale=100 conn_scale=50000");
  EXPECT_EQ(core::describe_meta(b),
            "mode=file seed=1 cert_scale=100 conn_scale=50000");
}

TEST(ShardState, MergeAccumulatesAndStaysCanonical) {
  auto whole = folded_state();
  auto a = folded_state();
  auto b = empty_state();
  b.meta = a.meta;
  a.merge(std::move(b));
  a.pipeline->finalize();
  a.ledger.finalize();
  // Merging an empty compatible shard is an identity on the serialized
  // canonical form.
  EXPECT_EQ(core::serialize_shard_state(a), core::serialize_shard_state(whole));
}

TEST(ShardState, SaveLoadRoundTripsThroughDisk) {
  const auto state = folded_state();
  const std::string path = ::testing::TempDir() + "/mtlscope_state_test.state";
  core::StateFileInfo saved;
  std::string error;
  ASSERT_TRUE(core::save_shard_state(path, state, &saved, &error)) << error;
  core::StateFileInfo loaded;
  auto back = core::load_shard_state(path, &loaded, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(saved.digest_hex, loaded.digest_hex);
  EXPECT_EQ(saved.bytes, loaded.bytes);
  EXPECT_EQ(core::serialize_shard_state(*back),
            core::serialize_shard_state(state));
  std::remove(path.c_str());
}

TEST(ShardState, LoadMissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(core::load_shard_state("/nonexistent/mtlscope.state", nullptr,
                                      &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mtlscope
