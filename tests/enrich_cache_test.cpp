// Enrichment-memoization teeth (DESIGN §15): the DER-keyed facts cache
// and the per-run host/address cache are pure memo layers — every cached
// answer must equal the uncached computation, on fixture certificates
// and on hostile DER bodies alike, and a full run's canonical JSON must
// be byte-identical across --scan=columnar|rows, thread counts, input
// formats, and --on-error=skip over dirty input.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mtlscope/colfmt/convert.hpp"
#include "mtlscope/core/enrich.hpp"
#include "mtlscope/core/result_doc.hpp"
#include "mtlscope/experiments/options.hpp"
#include "mtlscope/experiments/registry.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/ingest/fault.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;

/// Small fixture population: ~1k certificates, ~10k connections.
zeek::Dataset small_dataset() {
  auto model = gen::paper_model(10'000, 2'000'000);
  gen::TraceGenerator generator(std::move(model));
  return generator.generate_dataset();
}

/// Field-by-field equality over everything make_facts computes (usage
/// aggregates start zeroed on both sides and are not compared).
void expect_same_facts(const core::CertFacts& a, const core::CertFacts& b,
                       const std::string& label) {
  EXPECT_EQ(a.fuid, b.fuid) << label;
  EXPECT_EQ(a.version, b.version) << label;
  EXPECT_EQ(a.key_bits, b.key_bits) << label;
  EXPECT_EQ(a.serial_hex, b.serial_hex) << label;
  EXPECT_EQ(a.subject_cn, b.subject_cn) << label;
  EXPECT_EQ(a.issuer_org, b.issuer_org) << label;
  EXPECT_EQ(a.issuer_cn, b.issuer_cn) << label;
  EXPECT_EQ(a.issuer_dn, b.issuer_dn) << label;
  EXPECT_EQ(a.validity.not_before, b.validity.not_before) << label;
  EXPECT_EQ(a.validity.not_after, b.validity.not_after) << label;
  ASSERT_EQ(a.san_dns.size(), b.san_dns.size()) << label;
  for (std::size_t i = 0; i < a.san_dns.size(); ++i) {
    EXPECT_EQ(a.san_dns[i], b.san_dns[i]) << label << " san " << i;
  }
  EXPECT_EQ(a.san_email_count, b.san_email_count) << label;
  EXPECT_EQ(a.san_uri_count, b.san_uri_count) << label;
  EXPECT_EQ(a.san_ip_count, b.san_ip_count) << label;
  EXPECT_EQ(a.issuer_class, b.issuer_class) << label;
  EXPECT_EQ(a.issuer_category, b.issuer_category) << label;
  EXPECT_EQ(a.campus_issuer, b.campus_issuer) << label;
  EXPECT_EQ(a.cn_type, b.cn_type) << label;
  ASSERT_EQ(a.san_dns_types.size(), b.san_dns_types.size()) << label;
  for (std::size_t i = 0; i < a.san_dns_types.size(); ++i) {
    EXPECT_EQ(a.san_dns_types[i], b.san_dns_types[i]) << label << " t" << i;
  }
}

TEST(EnrichCache, MemoizedFactsMatchUnmemoizedOnFixtureCerts) {
  const auto dataset = small_dataset();
  ASSERT_GT(dataset.certificate_count(), 100u);

  // `warm` answers every certificate twice (miss, then pointer-keyed
  // hit); `cold` is rebuilt per certificate so its answer can never come
  // from a cache. All three must agree on every field.
  const core::Enricher warm(core::PipelineConfig::campus_defaults());
  std::size_t with_der = 0;
  for (const auto& [fuid, record] : dataset.x509()) {
    if (!record.cert_der.empty()) ++with_der;
    const core::CertFacts first = warm.make_facts(record);
    const core::CertFacts second = warm.make_facts(record);
    const core::Enricher cold(core::PipelineConfig::campus_defaults());
    const core::CertFacts uncached = cold.make_facts(record);
    expect_same_facts(first, second, "repeat call, fuid " + fuid.str());
    expect_same_facts(first, uncached, "fresh enricher, fuid " + fuid.str());
  }

  // Every DER-carrying certificate missed once, hit once, and was
  // admitted (fixture DER is well-formed and fuid-distinct).
  ASSERT_GT(with_der, 0u);
  const auto stats = warm.facts_cache_stats();
  EXPECT_EQ(stats.misses, with_der);
  EXPECT_EQ(stats.hits, with_der);
  EXPECT_EQ(stats.unique, with_der);
}

TEST(EnrichCache, HostileDerFallbackIsNeverCached) {
  // Malformed DER: SEQUENCE claiming a 4 GB body, then garbage. The
  // logged-fields fallback depends on per-row fields beyond the DER
  // bytes, so it must bypass the cache — and stay deterministic.
  const std::vector<std::uint8_t> hostile = {0x30, 0x84, 0xff, 0xff, 0xff,
                                             0xff, 0x02, 0x01, 0x00, 0x30};
  zeek::X509Record record;
  record.fuid = colfmt::Str("Fhostile1");
  record.version = 3;
  record.serial = colfmt::Str("0102");
  record.subject = colfmt::Str("CN=hostile.example");
  record.issuer = colfmt::Str("CN=Private Issuer,O=HostileOrg");
  record.not_valid_before = 100;
  record.not_valid_after = 400;
  record.key_length = 2048;
  record.cert_der = colfmt::Str(std::string_view(
      reinterpret_cast<const char*>(hostile.data()), hostile.size()));

  const core::Enricher warm(core::PipelineConfig::campus_defaults());
  const core::CertFacts first = warm.make_facts(record);
  const core::CertFacts second = warm.make_facts(record);
  const core::Enricher cold(core::PipelineConfig::campus_defaults());
  const core::CertFacts uncached = cold.make_facts(record);
  expect_same_facts(first, second, "hostile repeat");
  expect_same_facts(first, uncached, "hostile fresh");
  EXPECT_EQ(first.subject_cn, "hostile.example");
  EXPECT_EQ(first.issuer_org, "HostileOrg");

  // Both calls computed: the fallback result was not admitted.
  const auto stats = warm.facts_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.unique, 0u);
}

/// Scratch directory keyed by PID so parallel ctest trees never share.
class EnrichCacheRuns : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mtlscope_enrich_cache_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path.string();
  }

  fs::path dir_;
};

std::string canonical_run(const experiments::RunOptions& options) {
  const auto docs = experiments::run_experiments({"table1"}, options);
  return core::render_json_envelope(docs, /*include_perf=*/false);
}

TEST_F(EnrichCacheRuns, CanonicalJsonIdenticalAcrossScanThreadsAndFormats) {
  const auto dataset = small_dataset();
  const std::string ssl_path =
      write_file("ssl.log", zeek::ssl_log_to_string(dataset.ssl()));
  const std::string x509_path =
      write_file("x509.log", zeek::x509_log_to_string(dataset));

  const std::string container = (dir_ / "logs.mtlc").string();
  {
    colfmt::CompactRequest request;
    request.ssl_path = ssl_path;
    request.x509_path = x509_path;
    request.out_path = container;
    std::string error;
    ASSERT_TRUE(colfmt::compact_logs(request, nullptr, &error)) << error;
  }

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto scan : {experiments::RunOptions::ScanMode::kRows,
                            experiments::RunOptions::ScanMode::kColumnar}) {
      for (const bool compact : {false, true}) {
        experiments::RunOptions options;
        options.threads = threads;
        options.scan = scan;
        options.ssl_log = compact ? container : ssl_path;
        if (!compact) options.x509_log = x509_path;
        const std::string json = canonical_run(options);
        if (reference.empty()) {
          reference = json;
          ASSERT_FALSE(reference.empty());
        } else {
          EXPECT_EQ(json, reference)
              << "threads=" << threads << " compact=" << compact
              << " scan=" << static_cast<int>(scan);
        }
      }
    }
  }
}

TEST_F(EnrichCacheRuns, DirtySkipRunsIdenticalAcrossScanModes) {
  const auto dataset = small_dataset();
  std::size_t ssl_bad = 0, x509_bad = 0;
  const std::string ssl_path = write_file(
      "dirty_ssl.log", ingest::corrupt_log_rows(
                           zeek::ssl_log_to_string(dataset.ssl()), 20240504,
                           0.01, &ssl_bad));
  const std::string x509_path = write_file(
      "dirty_x509.log", ingest::corrupt_log_rows(
                            zeek::x509_log_to_string(dataset), 20240505,
                            0.02, &x509_bad));
  ASSERT_GT(ssl_bad, 0u);
  ASSERT_GT(x509_bad, 0u);

  const std::string container = (dir_ / "dirty.mtlc").string();
  {
    colfmt::CompactRequest request;
    request.ssl_path = ssl_path;
    request.x509_path = x509_path;
    request.out_path = container;
    request.errors.on_error = ingest::ErrorPolicy::Action::kSkip;
    colfmt::CompactStats stats;
    std::string error;
    ASSERT_TRUE(colfmt::compact_logs(request, &stats, &error)) << error;
    ASSERT_GT(stats.quarantined, 0u);
  }

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const auto scan : {experiments::RunOptions::ScanMode::kRows,
                            experiments::RunOptions::ScanMode::kColumnar}) {
      for (const bool compact : {false, true}) {
        experiments::RunOptions options;
        options.threads = threads;
        options.scan = scan;
        options.errors.on_error = ingest::ErrorPolicy::Action::kSkip;
        options.ssl_log = compact ? container : ssl_path;
        if (!compact) options.x509_log = x509_path;
        const std::string json = canonical_run(options);
        if (reference.empty()) {
          reference = json;
          EXPECT_NE(json.find("data_quality"), std::string::npos);
        } else {
          EXPECT_EQ(json, reference)
              << "threads=" << threads << " compact=" << compact
              << " scan=" << static_cast<int>(scan);
        }
      }
    }
  }
}

}  // namespace
}  // namespace mtlscope
