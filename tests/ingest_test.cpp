// mtlscope::ingest: sources (mmap / buffered parity), record-aligned
// chunking (boundary equivalence for any chunk size), the backpressured
// queue + reorder window, and the streaming executor entry points —
// run_log_files() must match the in-memory run for every thread count
// and chunk size, and fail loudly (file + byte offset) on bad input.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/ingest/chunk_queue.hpp"
#include "mtlscope/ingest/chunker.hpp"
#include "mtlscope/ingest/source.hpp"
#include "mtlscope/zeek/log_io.hpp"
#include "mtlscope/zeek/parse_plan.hpp"

namespace mtlscope {
namespace {

namespace fs = std::filesystem;

/// Scratch directory for the log files this suite writes.
class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keyed by PID so concurrent runs of this binary (e.g. the default and
    // sanitizer ctest trees) never share — and never delete — each other's
    // scratch files.
    dir_ = fs::temp_directory_path() /
           ("mtlscope_ingest_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path.string();
  }

  fs::path dir_;
};

std::string small_ssl_log() {
  return "#separator \\x09\n"
         "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"
         "\tversion\tserver_name\testablished\tcert_chain_fuids"
         "\tclient_cert_chain_fuids\n"
         "100.000000\tC1\t10.0.0.1\t1000\t10.0.0.2\t443\tTLSv12\thost.a"
         "\tT\tFa\t(empty)\n"
         "200.000000\tC2\t10.0.0.3\t1001\t10.0.0.4\t443\tTLSv13\thost.b"
         "\tT\tFb\tFc\n"
         "300.000000\tC3\t10.0.0.5\t1002\t10.0.0.6\t8443\t-\t-"
         "\tF\t(empty)\t(empty)\n";
}

// ---------------------------------------------------------------------------
// Sources

TEST_F(IngestTest, MappedAndBufferedSourcesAgree) {
  const std::string text = small_ssl_log();
  const std::string path = write_file("ssl.log", text);

  ingest::IngestError error;
  const auto mapped = ingest::open_source(path, &error);
  ASSERT_NE(mapped, nullptr) << error.to_string();
  ingest::SourceOptions buffered_options;
  buffered_options.force_buffered = true;
  const auto buffered = ingest::open_source(path, &error, buffered_options);
  ASSERT_NE(buffered, nullptr) << error.to_string();

  ASSERT_EQ(mapped->size(), text.size());
  ASSERT_EQ(buffered->size(), text.size());
  std::string scratch_a, scratch_b;
  // Whole file, an interior window, and an out-of-range fetch.
  EXPECT_EQ(mapped->fetch(0, text.size(), scratch_a),
            buffered->fetch(0, text.size(), scratch_b));
  EXPECT_EQ(mapped->fetch(10, 40, scratch_a),
            buffered->fetch(10, 40, scratch_b));
  EXPECT_EQ(mapped->fetch(text.size() - 5, 100, scratch_a), text.substr(text.size() - 5));
  EXPECT_TRUE(mapped->fetch(text.size() + 1, 10, scratch_a).empty());
  // release() is a hint; it must not corrupt later reads.
  mapped->release(0, text.size());
  EXPECT_EQ(mapped->fetch(0, text.size(), scratch_a), text);
}

TEST_F(IngestTest, MissingFileReportsStructuredError) {
  ingest::IngestError error;
  const auto source =
      ingest::open_source((dir_ / "absent.log").string(), &error);
  EXPECT_EQ(source, nullptr);
  EXPECT_EQ(error.file, (dir_ / "absent.log").string());
  EXPECT_FALSE(error.reason.empty());
  EXPECT_NE(error.to_string().find("absent.log"), std::string::npos);
}

TEST_F(IngestTest, MemorySourceIsZeroCopy) {
  const std::string text = small_ssl_log();
  const ingest::MemorySource source(text);
  std::string scratch;
  const auto view = source.fetch(0, text.size(), scratch);
  EXPECT_EQ(view.data(), text.data());  // no copy
  EXPECT_TRUE(scratch.empty());
}

// ---------------------------------------------------------------------------
// Layout + chunking

TEST_F(IngestTest, DetectsHeaderBlock) {
  const std::string text = small_ssl_log();
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);
  EXPECT_EQ(layout.header, text.substr(0, layout.body_begin));
  EXPECT_EQ(text[layout.body_begin], '1');  // first data row ("100.000000…")
  EXPECT_EQ(layout.header.substr(0, 11), "#separator ");
}

TEST_F(IngestTest, ChunksConcatenateToBodyForAnyChunkSize) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const auto dataset = generator.generate_dataset();
  const std::string text = zeek::ssl_log_to_string(dataset.ssl());
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);

  for (const std::size_t chunk_bytes :
       {std::size_t{4} << 10, std::size_t{64} << 10, std::size_t{1} << 20,
        text.size()}) {
    ingest::RecordChunker chunker(source, chunk_bytes, layout.body_begin,
                                  text.size());
    std::string reassembled = layout.header;
    ingest::Chunk chunk;
    std::size_t chunks = 0;
    while (chunker.next(chunk)) {
      EXPECT_EQ(chunk.seq, chunks);
      if (!chunk.data.empty()) {
        EXPECT_EQ(chunk.data.back(), '\n') << "chunk must end on a record";
      }
      reassembled.append(chunk.view());
      ++chunks;
    }
    EXPECT_EQ(reassembled, text) << "chunk_bytes=" << chunk_bytes;
    EXPECT_GE(chunks, 1u);
  }
}

TEST_F(IngestTest, ShardRangesAreContiguousAndRecordAligned) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const std::string text =
      zeek::ssl_log_to_string(generator.generate_dataset().ssl());
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);

  for (const std::size_t k : {1u, 2u, 4u, 7u}) {
    const auto ranges =
        ingest::shard_record_ranges(source, layout.body_begin, text.size(), k);
    ASSERT_EQ(ranges.size(), k);
    std::size_t prev = layout.body_begin;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, prev);  // contiguous cover
      if (begin > layout.body_begin && begin < text.size()) {
        EXPECT_EQ(text[begin - 1], '\n');  // record-aligned
      }
      prev = end;
    }
    EXPECT_EQ(prev, text.size());
  }
}

TEST_F(IngestTest, ChunkStreamPresentsHeaderThenBody) {
  const std::string header = "#fields\ta\tb\n";
  const std::string body = "1\t2\n3\t4\n";
  ingest::ChunkStream in(header, body);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, header + body);

  ingest::ChunkStream lines(header, body);
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  EXPECT_EQ(got, (std::vector<std::string>{"#fields\ta\tb", "1\t2", "3\t4"}));

  ingest::ChunkStream empty({}, {});
  EXPECT_EQ(empty.get(), std::istream::traits_type::eof());
}

// ---------------------------------------------------------------------------
// Robustness: CRLF, missing trailing newline, footers, degenerate logs

TEST_F(IngestTest, CrlfLogsParseIdenticallyToLf) {
  const std::string lf = small_ssl_log();
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += "\r\n";
    else crlf.push_back(c);
  }
  std::istringstream lf_in(lf), crlf_in(crlf);
  const auto a = zeek::parse_ssl_log(lf_in);
  const auto b = zeek::parse_ssl_log(crlf_in);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].uid, (*b)[i].uid);
    EXPECT_EQ((*a)[i].server_name, (*b)[i].server_name);
    EXPECT_EQ((*a)[i].established, (*b)[i].established);
  }
}

TEST_F(IngestTest, FinalRecordWithoutNewlineIsNotDropped) {
  std::string text = small_ssl_log();
  text.pop_back();  // strip the trailing '\n'
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);
  ingest::RecordChunker chunker(source, 64, layout.body_begin, text.size());
  std::string body;
  ingest::Chunk chunk;
  while (chunker.next(chunk)) body.append(chunk.view());
  EXPECT_EQ(layout.header + body, text);

  std::istringstream in(text);
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->back().uid, "C3");
}

TEST_F(IngestTest, CloseFooterMidFileLandsInBodies) {
  std::string text = small_ssl_log();
  text += "#close\t2024-05-04-00-00-00\n";
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);
  // The footer is NOT part of the leading header block…
  EXPECT_EQ(layout.header.find("#close"), std::string::npos);
  // …and tiny chunks still reassemble the body bytes, footer included.
  ingest::RecordChunker chunker(source, 48, layout.body_begin, text.size());
  std::string body;
  ingest::Chunk chunk;
  while (chunker.next(chunk)) body.append(chunk.view());
  EXPECT_EQ(layout.header + body, text);
  // The parser skips '#' lines wherever they appear.
  std::istringstream in(text);
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST_F(IngestTest, HeaderOnlyAndEmptyLogsRoundTrip) {
  const std::string header_only =
      "#separator \\x09\n#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h"
      "\tid.resp_p\n";
  const ingest::MemorySource source(header_only);
  const auto layout = ingest::detect_log_layout(source);
  EXPECT_EQ(layout.body_begin, header_only.size());
  ingest::RecordChunker chunker(source, 1 << 20, layout.body_begin,
                                header_only.size());
  ingest::Chunk chunk;
  ASSERT_TRUE(chunker.next(chunk));  // exactly one empty chunk
  EXPECT_TRUE(chunk.data.empty());
  EXPECT_FALSE(chunker.next(chunk));

  ingest::ChunkStream in(layout.header, {});
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());

  const ingest::MemorySource empty_source(std::string_view{});
  const auto empty_layout = ingest::detect_log_layout(empty_source);
  EXPECT_TRUE(empty_layout.header.empty());
  EXPECT_EQ(empty_layout.body_begin, 0u);
}

// ---------------------------------------------------------------------------
// Queue + reorder window

TEST_F(IngestTest, ChunkQueueAppliesBackpressure) {
  ingest::ChunkQueue<int> queue(2);
  ASSERT_TRUE(queue.push(0));
  ASSERT_TRUE(queue.push(1));
  EXPECT_EQ(queue.size(), 2u);

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(2);  // blocks: queue is full
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load()) << "push must block while full";
  EXPECT_EQ(queue.size(), 2u) << "occupancy never exceeds capacity";

  EXPECT_EQ(queue.pop(), 0);  // slow consumer finally makes room
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  queue.close();
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_FALSE(queue.push(9)) << "closed queue refuses new items";
}

TEST_F(IngestTest, OrderedCollectorResequencesWorkers) {
  ingest::OrderedCollector<std::string> collector(8);
  std::vector<std::thread> workers;
  for (const std::size_t seq : {2u, 0u, 3u, 1u}) {
    workers.emplace_back(
        [&collector, seq] { collector.put(seq, "r" + std::to_string(seq)); });
  }
  collector.finish(4);
  std::vector<std::string> got;
  while (auto value = collector.take()) got.push_back(*value);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(got, (std::vector<std::string>{"r0", "r1", "r2", "r3"}));
}

TEST_F(IngestTest, OrderedCollectorWindowBoundsProducers) {
  ingest::OrderedCollector<int> collector(2);  // window: seq < next + 2
  std::atomic<bool> far_put{false};
  std::thread eager([&] {
    collector.put(2, 20);  // 2 >= 0 + 2 → must block
    far_put.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(far_put.load()) << "put beyond the window must block";
  collector.put(0, 0);
  collector.put(1, 10);
  collector.finish(3);
  EXPECT_EQ(collector.take(), 0);   // frees the window; seq 2 may land
  EXPECT_EQ(collector.take(), 10);
  EXPECT_EQ(collector.take(), 20);
  eager.join();
  EXPECT_TRUE(far_put.load());
  EXPECT_EQ(collector.take(), std::nullopt);
}

// ---------------------------------------------------------------------------
// Streaming executor

void expect_same_totals(const core::Pipeline& a, const core::Pipeline& b) {
  EXPECT_EQ(a.totals().connections, b.totals().connections);
  EXPECT_EQ(a.totals().established, b.totals().established);
  EXPECT_EQ(a.totals().rejected_handshakes, b.totals().rejected_handshakes);
  EXPECT_EQ(a.totals().mutual, b.totals().mutual);
  EXPECT_EQ(a.totals().inbound, b.totals().inbound);
  EXPECT_EQ(a.totals().outbound, b.totals().outbound);
  EXPECT_EQ(a.totals().tls13, b.totals().tls13);
  EXPECT_EQ(a.interception_excluded_connections(),
            b.interception_excluded_connections());
  EXPECT_EQ(a.interception_issuers(), b.interception_issuers());
}

void expect_same_certificates(const core::Pipeline& a,
                              const core::Pipeline& b) {
  const auto certs_a = a.certificates_sorted();
  const auto certs_b = b.certificates_sorted();
  ASSERT_EQ(certs_a.size(), certs_b.size());
  for (std::size_t i = 0; i < certs_a.size(); ++i) {
    EXPECT_EQ(certs_a[i]->fuid, certs_b[i]->fuid);
    EXPECT_EQ(certs_a[i]->issuer_class, certs_b[i]->issuer_class);
    EXPECT_EQ(certs_a[i]->used_in_mutual, certs_b[i]->used_in_mutual);
    EXPECT_EQ(certs_a[i]->connection_count, certs_b[i]->connection_count);
    EXPECT_EQ(certs_a[i]->first_seen, certs_b[i]->first_seen);
    EXPECT_EQ(certs_a[i]->flagged_interception, certs_b[i]->flagged_interception);
  }
}

TEST_F(IngestTest, RunLogFilesMatchesInMemoryRunForAllConfigurations) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 1'000'000));
  const auto dataset = generator.generate_dataset();
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &generator.ct_database();

  const std::string ssl_text = zeek::ssl_log_to_string(dataset.ssl());
  const std::string x509_text = zeek::x509_log_to_string(dataset);
  const std::string ssl_path = write_file("ssl.log", ssl_text);
  const std::string x509_path = write_file("x509.log", x509_text);

  core::PipelineExecutor reference_executor(config, 1);
  const auto reference = reference_executor.run(dataset);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t chunk_bytes :
         {std::size_t{4} << 10, std::size_t{64} << 10, ssl_text.size()}) {
      core::PipelineExecutor executor(config, threads);
      ingest::IngestOptions options;
      options.chunk_bytes = chunk_bytes;
      ingest::IngestError error;
      const auto streamed =
          executor.run_log_files(ssl_path, x509_path, &error, options);
      ASSERT_TRUE(streamed.has_value())
          << "threads=" << threads << " chunk=" << chunk_bytes << ": "
          << error.to_string();
      expect_same_totals(*streamed, reference);
      expect_same_certificates(*streamed, reference);
    }
  }
}

TEST_F(IngestTest, BufferedFallbackMatchesMmap) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const auto dataset = generator.generate_dataset();
  const std::string ssl_path =
      write_file("ssl.log", zeek::ssl_log_to_string(dataset.ssl()));
  const std::string x509_path =
      write_file("x509.log", zeek::x509_log_to_string(dataset));
  const auto config = core::PipelineConfig::campus_defaults();

  ingest::IngestOptions mmap_options;
  mmap_options.chunk_bytes = 32 << 10;
  ingest::IngestOptions buffered_options = mmap_options;
  buffered_options.force_buffered = true;

  core::PipelineExecutor executor_a(config, 2);
  core::PipelineExecutor executor_b(config, 2);
  ingest::IngestError error;
  const auto mapped =
      executor_a.run_log_files(ssl_path, x509_path, &error, mmap_options);
  ASSERT_TRUE(mapped.has_value()) << error.to_string();
  const auto buffered =
      executor_b.run_log_files(ssl_path, x509_path, &error, buffered_options);
  ASSERT_TRUE(buffered.has_value()) << error.to_string();
  expect_same_totals(*mapped, *buffered);
  expect_same_certificates(*mapped, *buffered);
}

TEST_F(IngestTest, RunLogsMemoryPathStillMatchesDatasetRun) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 1'000'000));
  const auto dataset = generator.generate_dataset();
  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &generator.ct_database();

  core::PipelineExecutor direct(config, 1);
  const auto reference = direct.run(dataset);

  core::PipelineExecutor from_logs(config, 4);
  zeek::LogParseError error;
  const auto parsed =
      from_logs.run_logs(zeek::ssl_log_to_string(dataset.ssl()),
                         zeek::x509_log_to_string(dataset), &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  expect_same_totals(*parsed, reference);
  expect_same_certificates(*parsed, reference);
}

TEST_F(IngestTest, TruncatedLogReportsFileAndOffset) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const auto dataset = generator.generate_dataset();
  std::string ssl_text = zeek::ssl_log_to_string(dataset.ssl());
  // Cut mid-record so the final row is missing fields: a silent tail
  // drop here would skew every downstream statistic.
  ssl_text.resize(ssl_text.rfind('\t'));
  const std::string ssl_path = write_file("ssl.log", ssl_text);
  const std::string x509_path =
      write_file("x509.log", zeek::x509_log_to_string(dataset));

  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 2);
  ingest::IngestError error;
  const auto result = executor.run_log_files(ssl_path, x509_path, &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(error.file, ssl_path);
  EXPECT_GT(error.byte_offset, 0u);
  EXPECT_NE(error.reason.find("field count mismatch"), std::string::npos)
      << error.reason;
}

TEST_F(IngestTest, MissingInputFileFailsRunLogFiles) {
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(), 1);
  ingest::IngestError error;
  const auto result = executor.run_log_files(
      (dir_ / "no_ssl.log").string(), (dir_ / "no_x509.log").string(), &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(error.file, (dir_ / "no_ssl.log").string());
  EXPECT_FALSE(error.reason.empty());
}

TEST_F(IngestTest, SmallQueueDepthStillMatches) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const auto dataset = generator.generate_dataset();
  const std::string ssl_path =
      write_file("ssl.log", zeek::ssl_log_to_string(dataset.ssl()));
  const std::string x509_path =
      write_file("x509.log", zeek::x509_log_to_string(dataset));
  const auto config = core::PipelineConfig::campus_defaults();

  core::PipelineExecutor reference_executor(config, 1);
  ingest::IngestError error;
  const auto reference =
      reference_executor.run_log_files(ssl_path, x509_path, &error);
  ASSERT_TRUE(reference.has_value()) << error.to_string();

  // depth 1 maximizes backpressure: the reader can only ever be one chunk
  // ahead of the slowest worker.
  core::PipelineExecutor executor(config, 4);
  ingest::IngestOptions options;
  options.chunk_bytes = 8 << 10;
  options.queue_depth = 1;
  const auto squeezed =
      executor.run_log_files(ssl_path, x509_path, &error, options);
  ASSERT_TRUE(squeezed.has_value()) << error.to_string();
  expect_same_totals(*squeezed, *reference);
  expect_same_certificates(*squeezed, *reference);
}

// ---------------------------------------------------------------------------
// Zero-copy fast path over ingest chunks (this suite runs under tsan)

TEST_F(IngestTest, FastPathOverChunksMatchesWholeFileParse) {
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const std::string text =
      zeek::ssl_log_to_string(generator.generate_dataset().ssl());
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);
  const zeek::SslPlan plan =
      zeek::SslPlan::compile(zeek::ColumnPlan::from_header(layout.header));
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.missing, nullptr);

  std::istringstream whole_in(text);
  const auto whole = zeek::parse_ssl_log(whole_in);
  ASSERT_TRUE(whole.has_value());

  for (const std::size_t chunk_bytes :
       {std::size_t{4} << 10, std::size_t{64} << 10, text.size()}) {
    ingest::RecordChunker chunker(source, chunk_bytes, layout.body_begin,
                                  text.size());
    std::vector<zeek::SslRecord> records;
    ingest::Chunk chunk;
    while (chunker.next(chunk)) {
      ASSERT_TRUE(zeek::parse_ssl_records(chunk.view(), plan, records));
    }
    ASSERT_EQ(records.size(), whole->size()) << "chunk_bytes=" << chunk_bytes;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].uid, (*whole)[i].uid);
      EXPECT_EQ(records[i].cert_chain_fuids, (*whole)[i].cert_chain_fuids);
    }
  }
}

TEST_F(IngestTest, FastPathSharesOnePlanAcrossThreads) {
  // One immutable compiled plan read concurrently by every worker — the
  // sharing pattern the executor uses; tsan checks it stays race-free.
  gen::TraceGenerator generator(gen::paper_model(2'000, 2'000'000));
  const std::string text =
      zeek::ssl_log_to_string(generator.generate_dataset().ssl());
  const ingest::MemorySource source(text);
  const auto layout = ingest::detect_log_layout(source);
  const zeek::SslPlan plan =
      zeek::SslPlan::compile(zeek::ColumnPlan::from_header(layout.header));
  ASSERT_EQ(plan.missing, nullptr);

  constexpr std::size_t kWorkers = 4;
  const auto ranges = ingest::shard_record_ranges(source, layout.body_begin,
                                                  text.size(), kWorkers);
  std::vector<std::vector<zeek::SslRecord>> per_worker(kWorkers);
  std::vector<std::thread> workers;
  std::string scratch[kWorkers];
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      const auto [begin, end] = ranges[w];
      const std::string_view body =
          source.fetch(begin, end - begin, scratch[w]);
      ASSERT_TRUE(zeek::parse_ssl_records(body, plan, per_worker[w]));
    });
  }
  for (auto& t : workers) t.join();

  std::size_t total = 0;
  for (const auto& part : per_worker) total += part.size();
  std::istringstream whole_in(text);
  const auto whole = zeek::parse_ssl_log(whole_in);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(total, whole->size());
}

}  // namespace
}  // namespace mtlscope
