// Parity and property tests for the compiled-plan Zeek parsers: the
// zero-copy batch fast path (parse_ssl_records / parse_x509_records)
// against the row-materializing reference parsers, plus the tokenizer's
// allocation-free guarantee and the schema-plan compiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "mtlscope/zeek/log_io.hpp"
#include "mtlscope/zeek/parse_plan.hpp"

// Global allocation counter for the allocation-free tokenizer check.
// Counting (not forbidding) keeps gtest and the fixtures free to
// allocate; the test measures the delta across the hot loop only.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mtlscope;

// --- helpers ---------------------------------------------------------------

void expect_equal(const zeek::SslRecord& a, const zeek::SslRecord& b,
                  std::size_t row) {
  EXPECT_EQ(a.ts, b.ts) << "row " << row;
  EXPECT_EQ(a.uid, b.uid) << "row " << row;
  EXPECT_EQ(a.orig_h, b.orig_h) << "row " << row;
  EXPECT_EQ(a.orig_p, b.orig_p) << "row " << row;
  EXPECT_EQ(a.resp_h, b.resp_h) << "row " << row;
  EXPECT_EQ(a.resp_p, b.resp_p) << "row " << row;
  EXPECT_EQ(a.version, b.version) << "row " << row;
  EXPECT_EQ(a.server_name, b.server_name) << "row " << row;
  EXPECT_EQ(a.established, b.established) << "row " << row;
  EXPECT_EQ(a.cert_chain_fuids, b.cert_chain_fuids) << "row " << row;
  EXPECT_EQ(a.client_cert_chain_fuids, b.client_cert_chain_fuids)
      << "row " << row;
}

void expect_equal(const zeek::X509Record& a, const zeek::X509Record& b,
                  std::size_t row) {
  EXPECT_EQ(a.fuid, b.fuid) << "row " << row;
  EXPECT_EQ(a.version, b.version) << "row " << row;
  EXPECT_EQ(a.serial, b.serial) << "row " << row;
  EXPECT_EQ(a.subject, b.subject) << "row " << row;
  EXPECT_EQ(a.issuer, b.issuer) << "row " << row;
  EXPECT_EQ(a.not_valid_before, b.not_valid_before) << "row " << row;
  EXPECT_EQ(a.not_valid_after, b.not_valid_after) << "row " << row;
  EXPECT_EQ(a.key_alg, b.key_alg) << "row " << row;
  EXPECT_EQ(a.key_length, b.key_length) << "row " << row;
  EXPECT_EQ(a.san_dns, b.san_dns) << "row " << row;
  EXPECT_EQ(a.san_email, b.san_email) << "row " << row;
  EXPECT_EQ(a.san_uri, b.san_uri) << "row " << row;
  EXPECT_EQ(a.san_ip, b.san_ip) << "row " << row;
  EXPECT_EQ(a.cert_der, b.cert_der) << "row " << row;
}

enum class FieldKind { kTime, kPort, kCount, kScalar, kBool, kVector };

FieldKind ssl_field_kind(std::string_view name) {
  if (name == "ts") return FieldKind::kTime;
  if (name == "id.orig_p" || name == "id.resp_p") return FieldKind::kPort;
  if (name == "established") return FieldKind::kBool;
  if (name == "cert_chain_fuids" || name == "client_cert_chain_fuids") {
    return FieldKind::kVector;
  }
  return FieldKind::kScalar;
}

FieldKind x509_field_kind(std::string_view name) {
  if (name == "certificate.not_valid_before" ||
      name == "certificate.not_valid_after") {
    return FieldKind::kTime;
  }
  if (name == "certificate.version" || name == "certificate.key_length") {
    return FieldKind::kCount;
  }
  if (name.substr(0, 4) == "san.") return FieldKind::kVector;
  return FieldKind::kScalar;
}

/// A raw (already-escaped) field value drawn from a pool that covers the
/// interesting cases: unset, (empty), every escape the writer emits,
/// lone backslashes, and literal commas inside scalars.
std::string random_raw(FieldKind kind, std::mt19937& rng) {
  auto pick = [&rng](std::initializer_list<const char*> pool) {
    std::uniform_int_distribution<std::size_t> dist(0, pool.size() - 1);
    return std::string(*(pool.begin() + dist(rng)));
  };
  switch (kind) {
    case FieldKind::kTime:
      return pick({"1700000000.123456", "5.0", "123.000000", "0.0"});
    case FieldKind::kPort:
      return pick({"443", "0", "65535", "-", "8443"});
    case FieldKind::kCount:
      return pick({"3", "-", "1024", "0"});
    case FieldKind::kBool:
      return pick({"T", "F", "-"});
    case FieldKind::kScalar:
      return pick({"plain", "-", "(empty)", "a\\x09b", "back\\x5cslash",
                   "comma, literal", "ends\\x5c", "lone\\backslash",
                   "TLSv12", "crl\\x0aafter"});
    case FieldKind::kVector:
      return pick({"-", "(empty)", "F1abcdefabcdefabcd",
                   "F1abcdefabcdefabcd,F2abcdefabcdefabcd",
                   "F\\x2cmid,Fplain", "F\\x5ctail,F2", "one,two,three"});
  }
  return "-";
}

std::vector<std::string> ssl_columns() {
  return {"ts",           "uid",       "id.orig_h",
          "id.orig_p",    "id.resp_h", "id.resp_p",
          "version",      "server_name", "established",
          "cert_chain_fuids", "client_cert_chain_fuids", "extra_col"};
}

std::vector<std::string> x509_columns() {
  return {"fuid",
          "certificate.version",
          "certificate.serial",
          "certificate.subject",
          "certificate.issuer",
          "certificate.not_valid_before",
          "certificate.not_valid_after",
          "certificate.key_alg",
          "certificate.key_length",
          "san.dns",
          "san.email",
          "san.uri",
          "san.ip",
          "cert_der",
          "extra_col"};
}

struct GeneratedLog {
  std::string text;    // full log, header + body
  std::string header;  // leading '#' block (newline-terminated)
  std::string body;    // data rows (and any mid-body comments)
};

/// Builds a log with a shuffled column order and randomized raw values.
/// `crlf` terminates every line with "\r\n" instead of "\n".
template <typename KindFn>
GeneratedLog generate_log(std::vector<std::string> columns,
                          const KindFn& kind_of, std::size_t rows,
                          std::mt19937& rng, bool crlf) {
  std::shuffle(columns.begin(), columns.end(), rng);
  const std::string eol = crlf ? "\r\n" : "\n";
  GeneratedLog log;
  log.header = "#separator \\x09" + eol + "#path\ttest" + eol + "#fields";
  for (const auto& name : columns) log.header += "\t" + name;
  log.header += eol;
  for (std::size_t i = 0; i < rows; ++i) {
    std::string line;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) line += '\t';
      if (columns[c] == "extra_col") {
        line += "junk\\x09junk";  // unknown column: ignored by the plans
      } else {
        line += random_raw(kind_of(columns[c]), rng);
      }
    }
    log.body += line + eol;
    if (i == rows / 2) {
      // A mid-body comment (Zeek writes #close footers); and a second
      // #fields line, which first-#fields-wins must ignore.
      log.body += "#close\t2024-01-01" + eol;
      log.body += "#fields\tbogus\tcolumns" + eol;
    }
  }
  log.text = log.header + log.body;
  return log;
}

// --- parity property tests -------------------------------------------------

TEST(ZeekParseParity, SslFastMatchesReferenceAcrossShuffledSchemas) {
  std::mt19937 rng(20240805);
  for (int trial = 0; trial < 30; ++trial) {
    const bool crlf = trial % 3 == 0;
    const auto log = generate_log(ssl_columns(), ssl_field_kind, 25, rng, crlf);
    std::istringstream fast_in(log.text);
    std::istringstream ref_in(log.text);
    zeek::LogParseError fast_err, ref_err;
    const auto fast = zeek::parse_ssl_log(fast_in, &fast_err);
    const auto ref = zeek::parse_ssl_log_reference(ref_in, &ref_err);
    ASSERT_EQ(fast.has_value(), ref.has_value()) << "trial " << trial;
    ASSERT_TRUE(fast.has_value())
        << "trial " << trial << ": " << fast_err.message;
    ASSERT_EQ(fast->size(), ref->size()) << "trial " << trial;
    for (std::size_t i = 0; i < fast->size(); ++i) {
      expect_equal((*fast)[i], (*ref)[i], i);
    }
  }
}

TEST(ZeekParseParity, X509FastMatchesReferenceAcrossShuffledSchemas) {
  std::mt19937 rng(20240806);
  for (int trial = 0; trial < 30; ++trial) {
    const bool crlf = trial % 4 == 0;
    const auto log =
        generate_log(x509_columns(), x509_field_kind, 25, rng, crlf);
    std::istringstream fast_in(log.text);
    std::istringstream ref_in(log.text);
    zeek::LogParseError fast_err, ref_err;
    const auto fast = zeek::parse_x509_log(fast_in, &fast_err);
    const auto ref = zeek::parse_x509_log_reference(ref_in, &ref_err);
    ASSERT_EQ(fast.has_value(), ref.has_value()) << "trial " << trial;
    ASSERT_TRUE(fast.has_value())
        << "trial " << trial << ": " << fast_err.message;
    ASSERT_EQ(fast->size(), ref->size()) << "trial " << trial;
    for (std::size_t i = 0; i < fast->size(); ++i) {
      expect_equal((*fast)[i], (*ref)[i], i);
    }
  }
}

TEST(ZeekParseParity, ChunkBoundarySplitsReproduceTheSerialParse) {
  std::mt19937 rng(7);
  const auto log = generate_log(ssl_columns(), ssl_field_kind, 40, rng,
                                /*crlf=*/false);
  const zeek::SslPlan plan =
      zeek::SslPlan::compile(zeek::ColumnPlan::from_header(log.header));
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.missing, nullptr);

  std::vector<zeek::SslRecord> whole;
  ASSERT_TRUE(zeek::parse_ssl_records(log.body, plan, whole));

  // Split the body at every record boundary: parsing the two halves as
  // separate batches into one vector must reproduce the serial parse.
  std::vector<std::size_t> cuts;
  for (std::size_t pos = log.body.find('\n'); pos != std::string::npos;
       pos = log.body.find('\n', pos + 1)) {
    cuts.push_back(pos + 1);
  }
  for (const std::size_t cut : cuts) {
    std::vector<zeek::SslRecord> split;
    const std::string_view body(log.body);
    ASSERT_TRUE(zeek::parse_ssl_records(body.substr(0, cut), plan, split));
    ASSERT_TRUE(zeek::parse_ssl_records(body.substr(cut), plan, split));
    ASSERT_EQ(split.size(), whole.size()) << "cut at " << cut;
    for (std::size_t i = 0; i < split.size(); ++i) {
      expect_equal(split[i], whole[i], i);
    }
  }
}

// --- exact decode semantics ------------------------------------------------

TEST(ZeekParseSemantics, EscapesUnsetAndEmptyDecodeExactly) {
  const std::string text =
      "#fields\tuid\tts\tid.resp_p\tserver_name\tid.orig_h\tid.orig_p"
      "\tid.resp_h\testablished\tversion\tcert_chain_fuids"
      "\tclient_cert_chain_fuids\n"
      "CABC\t12.5\t443\ttab\\x09here\t10.0.0.1\t51000\t10.0.0.2\tT\t-"
      "\tF1,F\\x2cmid,F\\x5cslash\t(empty)\n"
      "CDEF\t13.0\t-\t(empty)\t10.0.0.3\t51001\t10.0.0.4\tF\tTLSv13\t-"
      "\tlone\\backslash\n";
  std::istringstream in(text);
  const auto parsed = zeek::parse_ssl_log(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  const auto& r0 = (*parsed)[0];
  EXPECT_EQ(r0.uid, "CABC");
  EXPECT_EQ(r0.ts, 12);
  EXPECT_EQ(r0.resp_p, 443);
  EXPECT_EQ(r0.server_name, "tab\there");  // \x09 unescapes to TAB
  EXPECT_EQ(r0.version, "");               // "-" is unset
  EXPECT_TRUE(r0.established);
  EXPECT_EQ(r0.cert_chain_fuids,
            (std::vector<colfmt::Str>{"F1", "F,mid", "F\\slash"}));
  EXPECT_TRUE(r0.client_cert_chain_fuids.empty());
  const auto& r1 = (*parsed)[1];
  EXPECT_EQ(r1.resp_p, 0);                  // "-" port parses as 0
  EXPECT_EQ(r1.server_name, "(empty)");     // scalar "(empty)" stays literal
  EXPECT_FALSE(r1.established);
  EXPECT_TRUE(r1.cert_chain_fuids.empty());
  EXPECT_EQ(r1.client_cert_chain_fuids,
            (std::vector<colfmt::Str>{"lone\\backslash"}));
}

TEST(ZeekParseSemantics, DataRowBeforeHeaderFailsBothPaths) {
  const std::string text = "#path\tssl\nrow before header\n";
  {
    std::istringstream in(text);
    zeek::LogParseError error;
    EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
    EXPECT_EQ(error.message, "data row before #fields header");
    EXPECT_EQ(error.line, 2u);
  }
  {
    std::istringstream in(text);
    zeek::LogParseError error;
    EXPECT_FALSE(zeek::parse_ssl_log_reference(in, &error).has_value());
    EXPECT_EQ(error.message, "data row before #fields header");
    EXPECT_EQ(error.line, 2u);
  }
}

TEST(ZeekParseSemantics, FirstFieldsLineWinsInBothPaths) {
  // The second #fields line must be treated as a comment (it would
  // otherwise remap — and here break — every row).
  const std::string text =
      "#fields\tfuid\tcertificate.serial\n"
      "Fone\tAA01\n"
      "#fields\tcertificate.serial\tfuid\n"
      "Ftwo\tAA02\n";
  std::istringstream fast_in(text);
  std::istringstream ref_in(text);
  const auto fast = zeek::parse_x509_log(fast_in);
  const auto ref = zeek::parse_x509_log_reference(ref_in);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(ref.has_value());
  ASSERT_EQ(fast->size(), 2u);
  ASSERT_EQ(ref->size(), 2u);
  EXPECT_EQ((*fast)[1].fuid, "Ftwo");
  EXPECT_EQ((*fast)[1].serial, "AA02");
  for (std::size_t i = 0; i < 2; ++i) expect_equal((*fast)[i], (*ref)[i], i);
}

TEST(ZeekParseSemantics, ErrorLineNumbersCountPhysicalLines) {
  const std::string text =
      "#separator \\x09\n"
      "#path\tssl\n"
      "#fields\tts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\n"
      "1.0\tC1\t10.0.0.1\t1\t10.0.0.2\t2\n"
      "short\trow\n";
  std::istringstream in(text);
  zeek::LogParseError error;
  EXPECT_FALSE(zeek::parse_ssl_log(in, &error).has_value());
  EXPECT_EQ(error.message, "field count mismatch");
  EXPECT_EQ(error.line, 5u);  // physical line, header included
}

// --- plan compiler ---------------------------------------------------------

TEST(ZeekParsePlan, MissingRequiredFieldsReportInLegacyOrder) {
  const auto plan_no_ts = zeek::SslPlan::compile(
      zeek::ColumnPlan::from_fields_payload("uid\tid.orig_h"));
  ASSERT_NE(plan_no_ts.missing, nullptr);
  EXPECT_STREQ(plan_no_ts.missing, "ts");

  const auto plan_no_uid = zeek::SslPlan::compile(
      zeek::ColumnPlan::from_fields_payload(
          "ts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p"));
  ASSERT_NE(plan_no_uid.missing, nullptr);
  EXPECT_STREQ(plan_no_uid.missing, "uid");

  const auto x509 =
      zeek::X509Plan::compile(zeek::ColumnPlan::from_fields_payload("san.dns"));
  ASSERT_NE(x509.missing, nullptr);
  EXPECT_STREQ(x509.missing, "fuid");
}

TEST(ZeekParsePlan, FromHeaderFindsFirstFieldsLine) {
  const auto plan = zeek::ColumnPlan::from_header(
      "#separator \\x09\n#fields\ta\tb\tc\n#types\tx\ty\tz\n");
  ASSERT_TRUE(plan.valid());
  EXPECT_EQ(plan.column_count(), 3u);
  EXPECT_EQ(plan.index_of("b"), 1u);
  EXPECT_EQ(plan.index_of("nope"), zeek::kNoColumn);
  EXPECT_FALSE(zeek::ColumnPlan::from_header("#path\tssl\n").valid());
}

TEST(ZeekParsePlan, SplitFieldsReportsTotalCountPastCapacity) {
  std::string_view out[2];
  EXPECT_EQ(zeek::split_fields("a\tb\tc\td", out, 2), 4u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "b");
  EXPECT_EQ(zeek::split_fields("", out, 2), 1u);  // one empty field
  EXPECT_EQ(out[0], "");
}

// --- allocation guarantee --------------------------------------------------

TEST(ZeekParseAlloc, TokenizerAndDecodeAreAllocationFreeWithoutEscapes) {
  const std::string_view line =
      "1700000000.123456\tCX1abcdef\t10.1.2.3\t51234\t93.184.216.34\t443"
      "\tTLSv12\texample.test\tT\tF1abcdefabcdefabcd\t-";
  std::string_view fields[16];
  std::string storage;
  storage.reserve(64);  // pre-warmed; must not be touched on this input
  std::size_t checksum = 0;

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t count = zeek::split_fields(line, fields, 16);
    for (std::size_t i = 0; i < count && i < 16; ++i) {
      checksum += zeek::decode_field(fields[i], storage).size();
    }
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "tokenize+decode allocated on escape-free input";
  EXPECT_GT(checksum, 0u);
}

TEST(ZeekParseAlloc, DecodeFieldUnescapesOnlyWhenEscapesArePresent) {
  std::string storage;
  const std::string_view plain = "no-escapes-here";
  // Zero-copy: the returned view must alias the input, not the storage.
  const std::string_view out = zeek::decode_field(plain, storage);
  EXPECT_EQ(out.data(), plain.data());
  EXPECT_EQ(zeek::decode_field("a\\x09b", storage), "a\tb");
  EXPECT_EQ(zeek::decode_field("trailing\\x5c", storage), "trailing\\");
  EXPECT_EQ(zeek::decode_field("bad\\xZZ", storage), "bad\\xZZ");
}

}  // namespace
