// End-to-end integration: generate a scaled campus trace, serialize it to
// Zeek ASCII logs, parse the logs back, run the measurement pipeline over
// the parsed records, and check the paper's headline shapes survive the
// full round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace mtlscope {
namespace {

gen::CampusModel test_model() {
  // cert_scale must stay moderate: the tiny fixed-count cohorts (dummy
  // issuers, incorrect dates, …) do not scale below their floors, so an
  // extreme scale would let them distort population-share assertions.
  auto model = gen::paper_model(1'000, 300'000);
  // Keep the background proportional to the (coverage-dominated) mutual
  // volume so the mutual share stays in a plausible band.
  model.background_connections = 60'000;
  return model;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new gen::TraceGenerator(test_model());
    dataset_ = new zeek::Dataset();
    generator_->generate([](const tls::TlsConnection& conn) {
      dataset_->add_connection(conn);
    });

    // Serialize both logs to text and parse them back.
    std::istringstream ssl_in(zeek::ssl_log_to_string(dataset_->ssl()));
    std::istringstream x509_in(zeek::x509_log_to_string(*dataset_));
    auto parsed = zeek::parse_dataset(ssl_in, x509_in);
    ASSERT_TRUE(parsed.has_value());
    parsed_ = new zeek::Dataset(std::move(*parsed));

    // Pipeline over the PARSED records (full log round trip).
    auto config = core::PipelineConfig::campus_defaults();
    config.ct = &generator_->ct_database();
    pipeline_ = new core::Pipeline(std::move(config));
    prevalence_ = new core::PrevalenceAnalyzer();
    ports_ = new core::ServicePortAnalyzer();
    shared_ = new core::SharedCertAnalyzer();
    pipeline_->add_observer([](const core::EnrichedConnection& c) {
      prevalence_->observe(c);
      ports_->observe(c);
      shared_->observe(c);
    });
    for (const auto& [fuid, record] : parsed_->x509()) {
      pipeline_->add_certificate(record);
    }
    for (const auto& record : parsed_->ssl()) {
      pipeline_->add_connection(record);
    }
    pipeline_->finalize();
  }

  static void TearDownTestSuite() {
    delete prevalence_;
    delete ports_;
    delete shared_;
    delete pipeline_;
    delete parsed_;
    delete dataset_;
    delete generator_;
  }

  static gen::TraceGenerator* generator_;
  static zeek::Dataset* dataset_;
  static zeek::Dataset* parsed_;
  static core::Pipeline* pipeline_;
  static core::PrevalenceAnalyzer* prevalence_;
  static core::ServicePortAnalyzer* ports_;
  static core::SharedCertAnalyzer* shared_;
};

gen::TraceGenerator* IntegrationTest::generator_ = nullptr;
zeek::Dataset* IntegrationTest::dataset_ = nullptr;
zeek::Dataset* IntegrationTest::parsed_ = nullptr;
core::Pipeline* IntegrationTest::pipeline_ = nullptr;
core::PrevalenceAnalyzer* IntegrationTest::prevalence_ = nullptr;
core::ServicePortAnalyzer* IntegrationTest::ports_ = nullptr;
core::SharedCertAnalyzer* IntegrationTest::shared_ = nullptr;

TEST_F(IntegrationTest, LogRoundTripPreservesEverything) {
  EXPECT_EQ(parsed_->connection_count(), dataset_->connection_count());
  EXPECT_EQ(parsed_->certificate_count(), dataset_->certificate_count());
  for (const auto& [fuid, original] : dataset_->x509()) {
    const auto* round_tripped = parsed_->find_certificate(fuid);
    ASSERT_NE(round_tripped, nullptr) << fuid;
    EXPECT_EQ(round_tripped->subject, original.subject);
    EXPECT_EQ(round_tripped->serial, original.serial);
    EXPECT_EQ(round_tripped->cert_der, original.cert_der);
  }
}

TEST_F(IntegrationTest, PipelineSawEveryNonExcludedConnection) {
  EXPECT_GT(pipeline_->totals().connections, 5'000u);
  EXPECT_EQ(pipeline_->totals().connections +
                pipeline_->interception_excluded_connections() +
                pipeline_->totals().rejected_handshakes,
            parsed_->connection_count());
}

TEST_F(IntegrationTest, StrictValidatorsRejectExpiredClients) {
  // The model includes one strict cohort whose expired-cert handshakes
  // fail; the pipeline must drop them (§3.2.1 established-only analysis).
  EXPECT_GT(pipeline_->totals().rejected_handshakes, 0u);
}

TEST_F(IntegrationTest, MutualShareIsPlausible) {
  const auto& totals = pipeline_->totals();
  const double share = static_cast<double>(totals.mutual) /
                       static_cast<double>(totals.connections);
  // With the default 8x background multiplier, mutual sits around 5-20%.
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.4);
}

TEST_F(IntegrationTest, AdoptionGrowsOverTheStudy) {
  const auto series = prevalence_->series();
  ASSERT_EQ(series.size(), 23u);  // May 2022 .. March 2024
  EXPECT_GT(series.back().mutual_pct(), series.front().mutual_pct());
}

TEST_F(IntegrationTest, HttpsDominatesEveryQuadrant) {
  for (const auto dir : {core::Direction::kInbound,
                         core::Direction::kOutbound}) {
    for (const bool mutual : {false, true}) {
      const auto top = ports_->top(dir, mutual, 1);
      ASSERT_FALSE(top.empty());
      EXPECT_EQ(top[0].port_label, "443")
          << gen::direction_name(dir) << " mutual=" << mutual;
    }
  }
}

TEST_F(IntegrationTest, CertificateInventoryShape) {
  const auto inventory = core::analyze_cert_inventory(*pipeline_);
  EXPECT_GT(inventory.total.total, 1'000u);
  // Paper shapes: client certs overwhelmingly mutual, public server certs
  // rarely mutual, private server certs mostly mutual.
  EXPECT_GT(inventory.client.mutual_pct(), 80.0);
  EXPECT_LT(inventory.server_public.mutual_pct(), 10.0);
  EXPECT_GT(inventory.server_private.mutual_pct(), 50.0);
}

TEST_F(IntegrationTest, SameConnSharingSurvivesRoundTrip) {
  const auto rows = shared_->same_connection_rows();
  bool globus = false;
  for (const auto& row : rows) {
    if (row.issuer == "Globus Online") globus = true;
  }
  EXPECT_TRUE(globus);
}

TEST_F(IntegrationTest, InterceptionFilteredOut) {
  EXPECT_FALSE(pipeline_->interception_issuers().empty());
  EXPECT_GT(pipeline_->interception_excluded_connections(), 0u);
  // None of the flagged issuers is a campus CA.
  for (const auto& issuer : pipeline_->interception_issuers()) {
    EXPECT_EQ(issuer.view().find("Blue Ridge University"),
              std::string_view::npos);
  }
}

TEST_F(IntegrationTest, SensitiveInformationDetected) {
  const auto info =
      core::analyze_info_types(*pipeline_, core::CertScope::kMutual);
  const auto& client_private = info.cells[1][1];
  EXPECT_GT(client_private.cn[static_cast<std::size_t>(
                textclass::InfoType::kPersonalName)],
            0u);
  EXPECT_GT(client_private.cn[static_cast<std::size_t>(
                textclass::InfoType::kUserAccount)],
            0u);
  // Org/Product (WebRTC et al.) is the dominant bucket. At this scale
  // random slot coverage shaves a few percent, so compare against the
  // next-largest bucket rather than an absolute majority.
  const auto org = client_private.cn[static_cast<std::size_t>(
      textclass::InfoType::kOrgProduct)];
  for (std::size_t i = 0; i < textclass::kInfoTypeCount; ++i) {
    if (i == static_cast<std::size_t>(textclass::InfoType::kOrgProduct)) {
      continue;
    }
    EXPECT_GE(org, client_private.cn[i]) << "info type " << i;
  }
  EXPECT_GT(org, client_private.cn_total / 3);
}

TEST_F(IntegrationTest, UtilizationMatchesPaperDirection) {
  const auto util =
      core::analyze_utilization(*pipeline_, core::CertScope::kMutual);
  const auto pct = [](const core::UtilizationResult::Row& r, bool cn) {
    return r.total == 0 ? 0.0
                        : 100.0 * static_cast<double>(cn ? r.cn : r.san_dns) /
                              static_cast<double>(r.total);
  };
  EXPECT_GT(pct(util.server, true), 99.0);
  EXPECT_LT(pct(util.server_priv, false), 5.0);
  EXPECT_GT(pct(util.server_pub, false), 50.0);
}

}  // namespace
}  // namespace mtlscope
