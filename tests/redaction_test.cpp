#include <gtest/gtest.h>

#include "mtlscope/core/redaction.hpp"
#include "mtlscope/x509/builder.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::core {
namespace {

using util::to_unix;

const trust::CertificateAuthority& ca() {
  static const auto authority = [] {
    x509::DistinguishedName dn;
    dn.add_org("Redaction Test CA Org").add_cn("Redaction Test CA");
    return trust::CertificateAuthority::make_root(
        dn, 0, to_unix({2040, 1, 1, 0, 0, 0}));
  }();
  return authority;
}

x509::Certificate make_user_cert() {
  x509::DistinguishedName dn;
  dn.add_org("Example Org").add_cn("John Smith");
  return ca().issue(x509::CertificateBuilder()
                        .serial_hex("0A1B2C")
                        .subject(dn)
                        .validity(to_unix({2023, 1, 1, 0, 0, 0}),
                                  to_unix({2024, 1, 1, 0, 0, 0}))
                        .public_key(crypto::TsigKey::derive("user-key").key)
                        .add_san_dns("John Smith")
                        .add_san_dns("device.example.com")
                        .add_san_email("john.smith@example.com")
                        .add_eku(asn1::oids::eku_client_auth()));
}

TEST(Audit, FindsSensitiveFields) {
  const auto findings = audit_certificate(make_user_cert());
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].field, PrivacyFinding::Field::kSubjectCn);
  EXPECT_EQ(findings[0].type, textclass::InfoType::kPersonalName);
  EXPECT_EQ(findings[1].field, PrivacyFinding::Field::kSanDns);
  EXPECT_EQ(findings[1].value, "John Smith");
  EXPECT_EQ(findings[2].field, PrivacyFinding::Field::kSanEmail);
}

TEST(Audit, CleanCertificateHasNoFindings) {
  x509::DistinguishedName dn;
  dn.add_cn("device-7f3a.example.com");
  const auto cert =
      ca().issue(x509::CertificateBuilder()
                     .serial_from_label("clean")
                     .subject(dn)
                     .validity(0, to_unix({2030, 1, 1, 0, 0, 0}))
                     .public_key(crypto::TsigKey::derive("clean").key)
                     .add_san_dns("device-7f3a.example.com"));
  EXPECT_TRUE(audit_certificate(cert).empty());
}

TEST(Audit, UserAccountNeedsCampusContext) {
  x509::DistinguishedName dn;
  dn.add_cn("hd7gr");
  const auto cert =
      ca().issue(x509::CertificateBuilder()
                     .serial_from_label("acct")
                     .subject(dn)
                     .validity(0, 1'000'000)
                     .public_key(crypto::TsigKey::derive("acct").key));
  EXPECT_TRUE(audit_certificate(cert).empty());
  textclass::ClassifyContext campus;
  campus.campus_issuer = true;
  const auto findings = audit_certificate(cert, campus);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, textclass::InfoType::kUserAccount);
}

TEST(Redaction, RemovesAllSensitiveInformation) {
  const auto key = crypto::TsigKey::derive("pseudonym-key");
  const auto original = make_user_cert();
  const auto redacted = redact_certificate(original, ca(), key);
  EXPECT_TRUE(audit_certificate(redacted).empty());
  // The literal identity is gone from the whole encoding.
  const std::string der(redacted.der.begin(), redacted.der.end());
  EXPECT_EQ(der.find("John Smith"), std::string::npos);
  EXPECT_EQ(der.find("john.smith@example.com"), std::string::npos);
}

TEST(Redaction, PreservesAuthenticationMaterial) {
  const auto key = crypto::TsigKey::derive("pseudonym-key");
  const auto original = make_user_cert();
  const auto redacted = redact_certificate(original, ca(), key);
  EXPECT_EQ(redacted.public_key, original.public_key);
  EXPECT_EQ(redacted.serial, original.serial);
  EXPECT_EQ(redacted.validity, original.validity);
  EXPECT_EQ(redacted.ext_key_usage, original.ext_key_usage);
  EXPECT_EQ(redacted.issuer, original.issuer);
  // Non-sensitive attributes survive.
  EXPECT_EQ(redacted.subject.organization(), "Example Org");
  // Non-sensitive SAN entries survive; the email SAN is dropped.
  const auto dns = redacted.san_dns();
  ASSERT_EQ(dns.size(), 2u);
  EXPECT_EQ(dns[1], "device.example.com");
  for (const auto& entry : redacted.san) {
    EXPECT_NE(entry.type, x509::SanEntry::Type::kEmail);
  }
}

TEST(Redaction, PseudonymsAreStableAndKeyDependent) {
  const auto key_a = crypto::TsigKey::derive("key-a");
  const auto key_b = crypto::TsigKey::derive("key-b");
  EXPECT_EQ(pseudonym_for(key_a, "John Smith"),
            pseudonym_for(key_a, "John Smith"));
  EXPECT_NE(pseudonym_for(key_a, "John Smith"),
            pseudonym_for(key_a, "Mary Jones"));
  EXPECT_NE(pseudonym_for(key_a, "John Smith"),
            pseudonym_for(key_b, "John Smith"));
  EXPECT_EQ(pseudonym_for(key_a, "x").rfind("anon-", 0), 0u);
}

TEST(Redaction, StablePseudonymAcrossReissue) {
  // The relying party can keep authorizing the same subject across
  // renewals: two redactions of the same identity share the CN.
  const auto key = crypto::TsigKey::derive("pseudonym-key");
  const auto first = redact_certificate(make_user_cert(), ca(), key);
  const auto second = redact_certificate(make_user_cert(), ca(), key);
  EXPECT_EQ(first.subject.common_name(), second.subject.common_name());
}

TEST(Redaction, OutputParsesAndVerifies) {
  const auto key = crypto::TsigKey::derive("pseudonym-key");
  const auto redacted = redact_certificate(make_user_cert(), ca(), key);
  const auto reparsed = x509::parse_certificate(redacted.der);
  ASSERT_NE(x509::get_certificate(reparsed), nullptr);
  EXPECT_TRUE(crypto::tsig_verify(ca().key().key, redacted.tbs_der,
                                  redacted.signature));
}

TEST(Redaction, SensitivityPredicate) {
  EXPECT_TRUE(is_sensitive_info(textclass::InfoType::kPersonalName));
  EXPECT_TRUE(is_sensitive_info(textclass::InfoType::kUserAccount));
  EXPECT_TRUE(is_sensitive_info(textclass::InfoType::kEmail));
  EXPECT_TRUE(is_sensitive_info(textclass::InfoType::kMac));
  EXPECT_FALSE(is_sensitive_info(textclass::InfoType::kDomain));
  EXPECT_FALSE(is_sensitive_info(textclass::InfoType::kOrgProduct));
  EXPECT_FALSE(is_sensitive_info(textclass::InfoType::kUnidentified));
}

}  // namespace
}  // namespace mtlscope::core
