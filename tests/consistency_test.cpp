// Generator ↔ classifier consistency: every CN-content kind the trace
// generator can emit must be classified by the textclass pipeline as the
// information type it was calibrated to represent. This is what makes the
// Table-8 reproduction meaningful: the analysis must *recover* the
// population mix, not receive it.
#include <gtest/gtest.h>

#include <map>

#include "mtlscope/gen/generator.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/trust/store.hpp"

namespace mtlscope {
namespace {

using textclass::InfoType;

/// Generates a focused single-cluster trace whose client CNs all come from
/// one content kind, then measures what the classifier calls them.
std::map<InfoType, int> classify_cohort(gen::CnContent kind,
                                        bool campus_issuer) {
  gen::CampusModel model;
  model.study_start = util::to_unix({2022, 5, 1, 0, 0, 0});
  model.study_end = util::to_unix({2024, 4, 1, 0, 0, 0});
  gen::TrafficCluster cluster;
  cluster.name = "consistency";
  cluster.direction = gen::Direction::kOutbound;
  cluster.sld = "consistency-test.com";
  cluster.connections = 200;
  cluster.client_ips = 20;
  cluster.server_certs.count = 2;
  cluster.server_certs.issuer_kind = gen::IssuerKind::kPublicCa;
  cluster.server_certs.cn = {{gen::CnContent::kHostUnderDomain, 1.0}};
  cluster.client_certs.count = 200;
  cluster.client_certs.issuer_kind = campus_issuer
                                         ? gen::IssuerKind::kCampus
                                         : gen::IssuerKind::kPrivateOrg;
  cluster.client_certs.issuer_ref = "Consistency Test Org";
  cluster.client_certs.cn = {{kind, 1.0}};
  model.clusters.push_back(std::move(cluster));

  gen::TraceGenerator generator(std::move(model));
  std::map<InfoType, int> histogram;
  generator.generate([&](const tls::TlsConnection& conn) {
    const auto* leaf = conn.client_leaf();
    if (leaf == nullptr) return;
    const auto cn = leaf->subject.common_name();
    if (!cn || cn->empty()) return;
    textclass::ClassifyContext ctx;
    ctx.campus_issuer = campus_issuer;
    ++histogram[textclass::classify_value(*cn, ctx)];
  });
  return histogram;
}

/// Fraction of the cohort classified as `expected`.
double share_of(const std::map<InfoType, int>& histogram, InfoType expected) {
  int total = 0, hit = 0;
  for (const auto& [type, count] : histogram) {
    total += count;
    if (type == expected) hit += count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

struct ConsistencyCase {
  gen::CnContent kind;
  bool campus;
  InfoType expected;
  double min_share;  // classification accuracy floor
};

class GeneratorClassifierConsistency
    : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(GeneratorClassifierConsistency, CohortClassifiesAsCalibrated) {
  const auto& c = GetParam();
  const auto histogram = classify_cohort(c.kind, c.campus);
  EXPECT_GE(share_of(histogram, c.expected), c.min_share)
      << "kind " << static_cast<int>(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, GeneratorClassifierConsistency,
    ::testing::Values(
        ConsistencyCase{gen::CnContent::kHostUnderDomain, false,
                        InfoType::kDomain, 1.0},
        ConsistencyCase{gen::CnContent::kEmailServiceDomain, false,
                        InfoType::kDomain, 1.0},
        ConsistencyCase{gen::CnContent::kIpAddress, false, InfoType::kIp,
                        1.0},
        ConsistencyCase{gen::CnContent::kMacAddress, false, InfoType::kMac,
                        1.0},
        ConsistencyCase{gen::CnContent::kSipAddress, false, InfoType::kSip,
                        1.0},
        ConsistencyCase{gen::CnContent::kEmailAddress, false,
                        InfoType::kEmail, 1.0},
        ConsistencyCase{gen::CnContent::kUserAccount, true,
                        InfoType::kUserAccount, 1.0},
        ConsistencyCase{gen::CnContent::kPersonalName, false,
                        InfoType::kPersonalName, 1.0},
        ConsistencyCase{gen::CnContent::kWebRtc, false, InfoType::kOrgProduct,
                        1.0},
        ConsistencyCase{gen::CnContent::kTwilio, false, InfoType::kOrgProduct,
                        1.0},
        ConsistencyCase{gen::CnContent::kHangouts, false,
                        InfoType::kOrgProduct, 1.0},
        ConsistencyCase{gen::CnContent::kCompanyName, false,
                        InfoType::kOrgProduct, 0.95},
        ConsistencyCase{gen::CnContent::kProductName, false,
                        InfoType::kOrgProduct, 0.95},
        ConsistencyCase{gen::CnContent::kLocalhost, false,
                        InfoType::kLocalhost, 1.0},
        ConsistencyCase{gen::CnContent::kRandomHex8, false,
                        InfoType::kUnidentified, 1.0},
        ConsistencyCase{gen::CnContent::kRandomHex32, false,
                        InfoType::kUnidentified, 1.0},
        ConsistencyCase{gen::CnContent::kUuid, false, InfoType::kUnidentified,
                        1.0},
        ConsistencyCase{gen::CnContent::kRandomOther, false,
                        InfoType::kUnidentified, 0.9},
        ConsistencyCase{gen::CnContent::kNonRandomToken, false,
                        InfoType::kUnidentified, 0.7}));

TEST(GeneratorClassifier, UserAccountsRequireCampusIssuer) {
  // Without campus context, the same strings must NOT classify as user
  // accounts (the paper checks issuer fields for campus CAs, §6.1.1).
  const auto histogram =
      classify_cohort(gen::CnContent::kUserAccount, /*campus=*/false);
  EXPECT_EQ(share_of(histogram, InfoType::kUserAccount), 0.0);
}

TEST(GeneratorClassifier, IssuerClassificationAgrees) {
  // Certificates the generator mints as public / private must classify
  // accordingly through the trust evaluator.
  const auto evaluator = trust::make_default_evaluator();
  gen::TraceGenerator generator([] {
    auto model = gen::paper_model(5'000, 1'000'000);
    model.background_connections = 0;
    return model;
  }());
  std::size_t checked = 0;
  generator.generate([&](const tls::TlsConnection& conn) {
    const auto* leaf = conn.server_leaf();
    if (leaf == nullptr) return;
    const auto org = leaf->issuer.organization();
    if (!org) return;
    // Spot-check two unambiguous populations.
    if (*org == "Blue Ridge University") {
      EXPECT_EQ(evaluator.classify(*leaf), trust::IssuerClass::kPrivate);
      ++checked;
    } else if (*org == "Amazon" || *org == "DigiCert Inc") {
      EXPECT_EQ(evaluator.classify(*leaf), trust::IssuerClass::kPublic);
      ++checked;
    }
  });
  EXPECT_GT(checked, 50u);
}

}  // namespace
}  // namespace mtlscope
