// Tests for the report formatting helpers, the ResultDoc IR, and its
// emitters — including the JSON round-trip guarantees the machine-readable
// output contract rests on: the JSON parses, carries every table cell that
// the text rendering shows, and is byte-stable across thread counts and
// input modes (streamed vs in-memory).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "mtlscope/core/report.hpp"
#include "mtlscope/core/result_doc.hpp"
#include "mtlscope/experiments/registry.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/zeek/log_io.hpp"

namespace core = mtlscope::core;
namespace experiments = mtlscope::experiments;

// ---------------------------------------------------------------------------
// format_* edge cases

TEST(FormatCount, SmallValues) {
  EXPECT_EQ(core::format_count(0), "0");
  EXPECT_EQ(core::format_count(7), "7");
  EXPECT_EQ(core::format_count(42), "42");
  EXPECT_EQ(core::format_count(999), "999");
}

TEST(FormatCount, ExactThousandBoundaries) {
  EXPECT_EQ(core::format_count(1'000), "1,000");
  EXPECT_EQ(core::format_count(1'001), "1,001");
  EXPECT_EQ(core::format_count(999'999), "999,999");
  EXPECT_EQ(core::format_count(1'000'000), "1,000,000");
  EXPECT_EQ(core::format_count(1'000'000'000), "1,000,000,000");
}

TEST(FormatCount, LargeValues) {
  EXPECT_EQ(core::format_count(1'234'567'890), "1,234,567,890");
  EXPECT_EQ(core::format_count(std::numeric_limits<std::uint64_t>::max()),
            "18,446,744,073,709,551,615");
}

TEST(FormatDouble, ZeroAndDecimals) {
  EXPECT_EQ(core::format_double(0, 2), "0.00");
  EXPECT_EQ(core::format_double(0, 0), "0");
  EXPECT_EQ(core::format_double(1.0, 3), "1.000");
  EXPECT_EQ(core::format_double(12.5, 1), "12.5");
}

TEST(FormatDouble, Negatives) {
  EXPECT_EQ(core::format_double(-3.21, 2), "-3.21");
  EXPECT_EQ(core::format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(core::format_double(-0.25, 2), "-0.25");
}

TEST(FormatPercent, Basic) {
  EXPECT_EQ(core::format_percent(1, 2), "50.00%");
  EXPECT_EQ(core::format_percent(0, 5), "0.00%");
  EXPECT_EQ(core::format_percent(2, 1, 1), "200.0%");
  EXPECT_EQ(core::format_percent(1, 3, 4), "33.3333%");
}

TEST(FormatPercent, ZeroDenominatorIsDash) {
  // The "-" convention keeps empty-population rows readable; the JSON
  // emitter turns the same case into null.
  EXPECT_EQ(core::format_percent(5, 0), "-");
  EXPECT_EQ(core::format_percent(0, 0), "-");
}

TEST(FormatPercent, Negatives) {
  EXPECT_EQ(core::format_percent(-1, 4), "-25.00%");
  EXPECT_EQ(core::format_percent(1, -4), "-25.00%");
}

// ---------------------------------------------------------------------------
// TextTable

TEST(TextTable, OverflowingRowThrows) {
  core::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TextTable, ShortRowIsPadded) {
  core::TextTable table({"a", "b"});
  table.add_row({"only"});
  EXPECT_EQ(table.row_count(), 1u);
  const std::string text = table.render();
  EXPECT_NE(text.find("only"), std::string::npos);
}

TEST(TextTable, RendersAlignedColumns) {
  core::TextTable table({"name", "n"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "23"});
  EXPECT_EQ(table.render(),
            "name    n\n"
            "----------\n"
            "x       1\n"
            "longer  23\n");
}

// ---------------------------------------------------------------------------
// Cell + ResultTable

TEST(Cell, RenderingMatchesFormatHelpers) {
  EXPECT_EQ(core::Cell::count(1'234'567).rendered(), "1,234,567");
  EXPECT_EQ(core::Cell::number(3.14159, 3).rendered(), "3.142");
  EXPECT_EQ(core::Cell::percent(1, 2).rendered(), "50.00%");
  EXPECT_EQ(core::Cell::percent_value(12.5, 1).rendered(), "12.5%");
  EXPECT_EQ(core::Cell::text("raw").rendered(), "raw");
}

TEST(Cell, ValueAndHasValue) {
  EXPECT_TRUE(core::Cell::count(5).has_value());
  EXPECT_EQ(core::Cell::count(5).value(), 5.0);
  EXPECT_EQ(core::Cell::percent(1, 2).value(), 50.0);
  EXPECT_FALSE(core::Cell::text("x").has_value());
  // Zero denominator: renders "-", carries no numeric value.
  const auto dash = core::Cell::percent(3, 0);
  EXPECT_FALSE(dash.has_value());
  EXPECT_EQ(dash.rendered(), "-");
}

TEST(ResultTable, OverflowingRowThrowsShortRowPads) {
  core::ResultTable table("t", {{"a", core::ColumnType::kCount},
                                {"b", core::ColumnType::kString}});
  EXPECT_THROW(table.add_row({core::Cell::count(1), core::Cell::text("x"),
                              core::Cell::text("extra")}),
               std::invalid_argument);
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({core::Cell::count(1)});
  ASSERT_EQ(table.rows().size(), 1u);
  ASSERT_EQ(table.rows()[0].size(), 2u);
  EXPECT_EQ(table.rows()[0][1].kind(), core::Cell::Kind::kText);
  EXPECT_EQ(table.rows()[0][1].rendered(), "");
}

TEST(ResultTable, RenderTextMatchesTextTable) {
  core::ResultTable table("t", {{"name", core::ColumnType::kString},
                                {"count", core::ColumnType::kCount}});
  table.add_row({core::Cell::text("alpha"), core::Cell::count(1'234)});
  table.add_row({core::Cell::text("b"), core::Cell::count(9)});

  core::TextTable reference({"name", "count"});
  reference.add_row({"alpha", "1,234"});
  reference.add_row({"b", "9"});
  EXPECT_EQ(table.render_text(), reference.render());
}

// ---------------------------------------------------------------------------
// CSV / TSV emitter

TEST(RenderCsv, QuotesSeparatorQuoteAndNewline) {
  core::ResultTable table("t", {{"plain", core::ColumnType::kString},
                                {"with,comma", core::ColumnType::kString}});
  table.add_row({core::Cell::text("a,b"), core::Cell::text("say \"hi\"")});
  table.add_row({core::Cell::text("line\nbreak"), core::Cell::count(1'851)});
  EXPECT_EQ(core::render_csv(table, ','),
            "plain,\"with,comma\"\n"
            "\"a,b\",\"say \"\"hi\"\"\"\n"
            "\"line\nbreak\",\"1,851\"\n");
}

TEST(RenderCsv, TsvCollapsesSeparatorsInsteadOfQuoting) {
  core::ResultTable table("t", {{"a", core::ColumnType::kString},
                                {"b", core::ColumnType::kCount}});
  table.add_row({core::Cell::text("tab\there\nand newline"),
                 core::Cell::count(1'851)});
  EXPECT_EQ(core::render_csv(table, '\t'),
            "a\tb\n"
            "tab here and newline\t1,851\n");
}

// ---------------------------------------------------------------------------
// JSON emitter

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(core::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(core::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(core::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(core::json_escape(std::string("\x01")), "\\u0001");
  // UTF-8 passes through raw (the renderings use §, ≈, em-dashes).
  EXPECT_EQ(core::json_escape("§ 3"), "§ 3");
}

TEST(RenderJson, CompactCanonicalShape) {
  core::ResultDoc doc;
  doc.experiment = "unit";
  doc.anchor = "Unit";
  doc.title = "t";
  doc.run.cert_scale = 2;
  doc.run.conn_scale = 3;
  doc.run.seed = 7;
  auto& table = doc.add_table("t1", {{"n", core::ColumnType::kCount},
                                     {"pct", core::ColumnType::kPercent}});
  table.add_row({core::Cell::count(5), core::Cell::percent(1, 0)});
  doc.add_line("hello");
  doc.add_check("lbl", true);

  EXPECT_EQ(
      core::render_json(doc, 0),
      "{\"experiment\":\"unit\",\"anchor\":\"Unit\",\"title\":\"t\","
      "\"config\":{\"mode\":\"synthetic\",\"cert_scale\":2,"
      "\"conn_scale\":3,\"seed\":7},\"blocks\":[{\"type\":\"table\","
      "\"id\":\"t1\",\"columns\":[{\"name\":\"n\",\"kind\":\"count\"},"
      "{\"name\":\"pct\",\"kind\":\"percent\"}],\"rows\":[[{\"kind\":"
      "\"count\",\"value\":5,\"text\":\"5\"},{\"kind\":\"percent\","
      "\"value\":null,\"text\":\"-\"}]]},{\"type\":\"line\",\"text\":"
      "\"hello\"},{\"type\":\"check\",\"status\":\"ok\",\"label\":\"lbl\","
      "\"text\":\"  lbl: OK\"}]}\n");
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (test-local): enough of RFC 8259 to validate the
// emitter's output and walk its structure.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    JsonValue v;
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(text_.substr(pos_, 4),
                                               nullptr, 16));
          pos_ += 4;
          // The emitter only writes \u for control characters, so the
          // one-byte decoding covers everything it produces.
          if (code > 0x7f) fail("non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Every table cell / line / check text the JSON carries.
void collect_texts(const JsonValue& doc, std::vector<std::string>* cells,
                   std::vector<std::string>* lines) {
  const JsonValue* blocks = doc.find("blocks");
  ASSERT_NE(blocks, nullptr);
  ASSERT_EQ(blocks->kind, JsonValue::Kind::kArray);
  for (const JsonValue& block : blocks->array) {
    const JsonValue* type = block.find("type");
    ASSERT_NE(type, nullptr);
    if (type->string == "table") {
      const JsonValue* rows = block.find("rows");
      ASSERT_NE(rows, nullptr);
      for (const JsonValue& row : rows->array) {
        for (const JsonValue& cell : row.array) {
          const JsonValue* text = cell.find("text");
          ASSERT_NE(text, nullptr);
          cells->push_back(text->string);
        }
      }
    } else {
      const JsonValue* text = block.find("text");
      ASSERT_NE(text, nullptr);
      lines->push_back(text->string);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// JSON round-trip over real experiment runs. Small scale overrides keep the
// pipeline pass cheap; table1 and table13 share one pristine-model pass.

namespace {

experiments::RunOptions small_run_options() {
  experiments::RunOptions options;
  options.cert_scale_override = 400;
  options.conn_scale_override = 2'000'000;
  options.stable_output = true;
  return options;
}

}  // namespace

TEST(JsonRoundTrip, ParsesAndCarriesEveryTextCell) {
  experiments::RunOptions options = small_run_options();
  const auto docs =
      experiments::run_experiments({"table1", "table13"}, options);
  ASSERT_EQ(docs.size(), 2u);
  for (const auto& doc : docs) {
    const std::string pretty = core::render_json(doc, 2);
    const std::string compact = core::render_json(doc, 0);
    JsonValue parsed_pretty = JsonParser(pretty).parse();
    JsonValue parsed = JsonParser(compact).parse();
    // Indentation is presentation only: same structure either way.
    EXPECT_EQ(parsed_pretty.object.size(), parsed.object.size());

    const JsonValue* experiment = parsed.find("experiment");
    ASSERT_NE(experiment, nullptr);
    EXPECT_EQ(experiment->string, doc.experiment);
    ASSERT_NE(parsed.find("config"), nullptr);
    ASSERT_NE(parsed.find("records"), nullptr);

    // Every table cell / line / check the JSON carries must appear in the
    // text rendering, and vice versa there is no text-only table content.
    std::vector<std::string> cells, lines;
    collect_texts(parsed, &cells, &lines);
    EXPECT_FALSE(cells.empty());
    const std::string text = core::render_text(doc);
    for (const std::string& cell : cells) {
      EXPECT_NE(text.find(cell), std::string::npos)
          << doc.experiment << ": cell \"" << cell
          << "\" missing from text rendering";
    }
    for (const std::string& line : lines) {
      EXPECT_NE(text.find(line), std::string::npos)
          << doc.experiment << ": line \"" << line
          << "\" missing from text rendering";
    }
  }
}

TEST(JsonRoundTrip, ByteStableAcrossThreadCounts) {
  experiments::RunOptions serial = small_run_options();
  serial.threads = 1;
  experiments::RunOptions sharded = small_run_options();
  sharded.threads = 4;
  const auto docs1 =
      experiments::run_experiments({"table1", "table13"}, serial);
  const auto docs4 =
      experiments::run_experiments({"table1", "table13"}, sharded);
  ASSERT_EQ(docs1.size(), docs4.size());
  for (std::size_t i = 0; i < docs1.size(); ++i) {
    EXPECT_EQ(core::render_json(docs1[i], 2), core::render_json(docs4[i], 2));
    // --stable-output text is the goldens' contract; hold it here too.
    EXPECT_EQ(core::render_text(docs1[i]), core::render_text(docs4[i]));
  }
}

TEST(JsonRoundTrip, ByteStableStreamedVersusInMemory) {
  // Write a small log pair, then run the same experiment through the
  // streaming ingest path (tiny chunks) and the in-memory path.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mtlscope_report_test";
  std::filesystem::create_directories(dir);
  auto model = mtlscope::gen::paper_model(400, 2'000'000);
  model.seed = 20240504;
  mtlscope::gen::TraceGenerator generator(std::move(model));
  const auto dataset = generator.generate_dataset();
  {
    std::ofstream out(dir / "ssl.log", std::ios::binary);
    mtlscope::zeek::write_ssl_log(out, dataset.ssl());
  }
  {
    std::ofstream out(dir / "x509.log", std::ios::binary);
    mtlscope::zeek::write_x509_log(out, dataset);
  }

  experiments::RunOptions base;
  base.ssl_log = (dir / "ssl.log").string();
  base.x509_log = (dir / "x509.log").string();
  base.stable_output = true;

  experiments::RunOptions in_memory = base;
  in_memory.in_memory = true;
  experiments::RunOptions streamed = base;
  streamed.chunk_mb = 0.0625;  // 64 KiB chunks: many refill boundaries

  const auto mem = experiments::run_experiment("table1", in_memory);
  const auto stream = experiments::run_experiment("table1", streamed);
  EXPECT_EQ(core::render_json(mem, 2), core::render_json(stream, 2));
  EXPECT_EQ(core::render_text(mem), core::render_text(stream));
  EXPECT_GT(mem.run.records, 0u);

  std::filesystem::remove_all(dir);
}
