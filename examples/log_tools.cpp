// log_tools: round-trip mtlscope through the filesystem.
//
//   ./build/examples/log_tools export DIR   write ssl.log + x509.log for a
//                                           scaled synthetic campus trace
//   ./build/examples/log_tools report DIR   run the measurement pipeline
//                                           over DIR/ssl.log + DIR/x509.log
//
// `report` works on ANY logs in the supported schema — point it at your own
// Zeek output (the x509.log needs the fields listed in zeek/log_io.hpp; a
// cert_der column is used when present, otherwise the parsed fields are).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/zeek/log_io.hpp"

using namespace mtlscope;

namespace {

int export_logs(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  gen::TraceGenerator generator(gen::paper_model(2'000, 200'000));
  zeek::Dataset dataset;
  generator.generate([&dataset](const tls::TlsConnection& conn) {
    dataset.add_connection(conn);
  });

  {
    std::ofstream ssl(dir / "ssl.log");
    zeek::write_ssl_log(ssl, dataset.ssl());
  }
  {
    std::ofstream x509(dir / "x509.log");
    zeek::write_x509_log(x509, dataset);
  }
  std::printf("wrote %s connections to %s/ssl.log\n",
              core::format_count(dataset.connection_count()).c_str(),
              dir.c_str());
  std::printf("wrote %s certificates to %s/x509.log\n",
              core::format_count(dataset.certificate_count()).c_str(),
              dir.c_str());
  return 0;
}

int report(const std::filesystem::path& dir, std::size_t threads) {
  std::ifstream ssl_in(dir / "ssl.log");
  std::ifstream x509_in(dir / "x509.log");
  if (!ssl_in || !x509_in) {
    std::fprintf(stderr, "need %s/ssl.log and %s/x509.log\n", dir.c_str(),
                 dir.c_str());
    return 1;
  }
  std::ostringstream ssl_text, x509_text;
  ssl_text << ssl_in.rdbuf();
  x509_text << x509_in.rdbuf();

  // run_logs() chunk-splits both logs, parses the chunks in parallel, and
  // runs one pipeline shard per worker; results are identical for any
  // --threads value.
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(),
                                  threads);
  core::Sharded<core::PrevalenceAnalyzer> prevalence_shards(
      executor.shard_count());
  core::Sharded<core::ServicePortAnalyzer> ports_shards(executor.shard_count());
  executor.attach(prevalence_shards);
  executor.attach(ports_shards);

  zeek::LogParseError error;
  const auto parsed = executor.run_logs(ssl_text.str(), x509_text.str(),
                                        &error);
  if (!parsed) {
    std::fprintf(stderr, "parse error (line %zu): %s\n", error.line,
                 error.message.c_str());
    return 1;
  }
  const core::Pipeline& pipeline = *parsed;
  auto prevalence = std::move(prevalence_shards).merged();
  auto ports = std::move(ports_shards).merged();

  const auto& totals = pipeline.totals();
  std::printf("connections: %s   mutual: %s (%s)   certificates: %s\n",
              core::format_count(totals.connections).c_str(),
              core::format_count(totals.mutual).c_str(),
              core::format_percent(static_cast<double>(totals.mutual),
                                   static_cast<double>(totals.connections))
                  .c_str(),
              core::format_count(pipeline.certificates().size()).c_str());

  const auto series = prevalence.series();
  if (series.size() >= 2) {
    std::printf("mutual-TLS adoption: %.2f%% (first month) -> %.2f%% (last "
                "month)\n",
                series.front().mutual_pct(), series.back().mutual_pct());
  }

  std::printf("\ntop mutual-TLS services:\n");
  core::TextTable table({"Dir", "Port", "Share", "Service"});
  for (const auto dir_kind :
       {core::Direction::kInbound, core::Direction::kOutbound}) {
    for (const auto& s : ports.top(dir_kind, true, 3)) {
      table.add_row({dir_kind == core::Direction::kInbound ? "in" : "out",
                     s.port_label, core::format_double(s.share, 1) + "%",
                     s.service});
    }
  }
  std::printf("%s", table.render().c_str());

  const auto inventory = core::analyze_cert_inventory(pipeline);
  std::printf("\ncertificates in mutual TLS: %s of %s (%s)\n",
              core::format_count(inventory.total.mutual).c_str(),
              core::format_count(inventory.total.total).c_str(),
              core::format_double(inventory.total.mutual_pct(), 1).c_str());

  const auto info =
      core::analyze_info_types(pipeline, core::CertScope::kMutual);
  const auto& cpriv = info.cells[1][1];
  std::printf("sensitive client CNs: %s personal names, %s user accounts\n",
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kPersonalName)])
                  .c_str(),
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kUserAccount)])
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 0;  // 0 → hardware concurrency
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    }
  }
  if (argc >= 3 && std::strcmp(argv[1], "export") == 0) {
    return export_logs(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "report") == 0) {
    return report(argv[2], threads);
  }
  std::fprintf(stderr,
               "usage: %s export DIR   (write synthetic ssl.log/x509.log)\n"
               "       %s report DIR [--threads=N]   (analyze DIR/ssl.log + "
               "DIR/x509.log)\n",
               argv[0], argv[0]);
  return 2;
}
