// log_tools: round-trip mtlscope through the filesystem.
//
//   ./build/examples/log_tools export DIR   write ssl.log + x509.log for a
//                                           scaled synthetic campus trace
//   ./build/examples/log_tools report DIR   run the measurement pipeline
//                                           over DIR/ssl.log + DIR/x509.log
//
// `report` works on ANY logs in the supported schema — point it at your own
// Zeek output (the x509.log needs the fields listed in zeek/log_io.hpp; a
// cert_der column is used when present, otherwise the parsed fields are).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/zeek/log_io.hpp"

using namespace mtlscope;

namespace {

int export_logs(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  gen::TraceGenerator generator(gen::paper_model(2'000, 200'000));
  zeek::Dataset dataset;
  generator.generate([&dataset](const tls::TlsConnection& conn) {
    dataset.add_connection(conn);
  });

  {
    std::ofstream ssl(dir / "ssl.log");
    zeek::write_ssl_log(ssl, dataset.ssl());
  }
  {
    std::ofstream x509(dir / "x509.log");
    zeek::write_x509_log(x509, dataset);
  }
  std::printf("wrote %s connections to %s/ssl.log\n",
              core::format_count(dataset.connection_count()).c_str(),
              dir.c_str());
  std::printf("wrote %s certificates to %s/x509.log\n",
              core::format_count(dataset.certificate_count()).c_str(),
              dir.c_str());
  return 0;
}

int report(const std::filesystem::path& dir) {
  std::ifstream ssl_in(dir / "ssl.log");
  std::ifstream x509_in(dir / "x509.log");
  if (!ssl_in || !x509_in) {
    std::fprintf(stderr, "need %s/ssl.log and %s/x509.log\n", dir.c_str(),
                 dir.c_str());
    return 1;
  }
  zeek::LogParseError error;
  const auto dataset = zeek::parse_dataset(ssl_in, x509_in, &error);
  if (!dataset) {
    std::fprintf(stderr, "parse error (line %zu): %s\n", error.line,
                 error.message.c_str());
    return 1;
  }

  core::Pipeline pipeline(core::PipelineConfig::campus_defaults());
  core::PrevalenceAnalyzer prevalence;
  core::ServicePortAnalyzer ports;
  pipeline.add_observer([&](const core::EnrichedConnection& c) {
    prevalence.observe(c);
    ports.observe(c);
  });
  for (const auto& [fuid, record] : dataset->x509()) {
    pipeline.add_certificate(record);
  }
  for (const auto& record : dataset->ssl()) {
    pipeline.add_connection(record);
  }
  pipeline.finalize();

  const auto& totals = pipeline.totals();
  std::printf("connections: %s   mutual: %s (%s)   certificates: %s\n",
              core::format_count(totals.connections).c_str(),
              core::format_count(totals.mutual).c_str(),
              core::format_percent(static_cast<double>(totals.mutual),
                                   static_cast<double>(totals.connections))
                  .c_str(),
              core::format_count(pipeline.certificates().size()).c_str());

  std::printf("\ntop mutual-TLS services:\n");
  core::TextTable table({"Dir", "Port", "Share", "Service"});
  for (const auto dir_kind :
       {core::Direction::kInbound, core::Direction::kOutbound}) {
    for (const auto& s : ports.top(dir_kind, true, 3)) {
      table.add_row({dir_kind == core::Direction::kInbound ? "in" : "out",
                     s.port_label, core::format_double(s.share, 1) + "%",
                     s.service});
    }
  }
  std::printf("%s", table.render().c_str());

  const auto inventory = core::analyze_cert_inventory(pipeline);
  std::printf("\ncertificates in mutual TLS: %s of %s (%s)\n",
              core::format_count(inventory.total.mutual).c_str(),
              core::format_count(inventory.total.total).c_str(),
              core::format_double(inventory.total.mutual_pct(), 1).c_str());

  const auto info =
      core::analyze_info_types(pipeline, core::CertScope::kMutual);
  const auto& cpriv = info.cells[1][1];
  std::printf("sensitive client CNs: %s personal names, %s user accounts\n",
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kPersonalName)])
                  .c_str(),
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kUserAccount)])
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "export") == 0) {
    return export_logs(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "report") == 0) {
    return report(argv[2]);
  }
  std::fprintf(stderr,
               "usage: %s export DIR   (write synthetic ssl.log/x509.log)\n"
               "       %s report DIR   (analyze DIR/ssl.log + DIR/x509.log)\n",
               argv[0], argv[0]);
  return 2;
}
