// log_tools: round-trip mtlscope through the filesystem.
//
//   ./build/examples/log_tools export DIR   write ssl.log + x509.log for a
//                                           scaled synthetic campus trace
//   ./build/examples/log_tools report DIR   run the measurement pipeline
//                                           over DIR/ssl.log + DIR/x509.log
//
// `report` works on ANY logs in the supported schema — point it at your own
// Zeek output (the x509.log needs the fields listed in zeek/log_io.hpp; a
// cert_der column is used when present, otherwise the parsed fields are).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/zeek/log_io.hpp"

using namespace mtlscope;

namespace {

int export_logs(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  gen::TraceGenerator generator(gen::paper_model(2'000, 200'000));
  zeek::Dataset dataset;
  generator.generate([&dataset](const tls::TlsConnection& conn) {
    dataset.add_connection(conn);
  });

  {
    std::ofstream ssl(dir / "ssl.log");
    zeek::write_ssl_log(ssl, dataset.ssl());
  }
  {
    std::ofstream x509(dir / "x509.log");
    zeek::write_x509_log(x509, dataset);
  }
  std::printf("wrote %s connections to %s/ssl.log\n",
              core::format_count(dataset.connection_count()).c_str(),
              dir.c_str());
  std::printf("wrote %s certificates to %s/x509.log\n",
              core::format_count(dataset.certificate_count()).c_str(),
              dir.c_str());
  return 0;
}

struct ReportOptions {
  std::size_t threads = 0;    // 0 → hardware concurrency
  double chunk_mb = 1.0;      // streaming chunk size (0.0625 = 64 KiB)
  bool in_memory = false;     // slurp both logs instead of streaming
};

int report(const std::filesystem::path& dir, const ReportOptions& options) {
  const std::string ssl_path = (dir / "ssl.log").string();
  const std::string x509_path = (dir / "x509.log").string();

  // run_log_files() streams both logs through the bounded-memory ingest
  // layer: mmap + record-aligned chunks + one pipeline shard per worker.
  // Results are byte-identical for any --threads or --chunk-mb value, and
  // resident memory stays O(chunk × queue depth) even for logs larger
  // than RAM.
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults(),
                                  options.threads);
  core::Sharded<core::PrevalenceAnalyzer> prevalence_shards(
      executor.shard_count());
  core::Sharded<core::ServicePortAnalyzer> ports_shards(executor.shard_count());
  executor.attach(prevalence_shards);
  executor.attach(ports_shards);

  std::optional<core::Pipeline> parsed;
  if (options.in_memory) {
    std::ifstream ssl_in(ssl_path, std::ios::binary);
    std::ifstream x509_in(x509_path, std::ios::binary);
    if (!ssl_in || !x509_in) {
      std::fprintf(stderr, "need %s and %s\n", ssl_path.c_str(),
                   x509_path.c_str());
      return 1;
    }
    std::ostringstream ssl_text, x509_text;
    ssl_text << ssl_in.rdbuf();
    x509_text << x509_in.rdbuf();
    zeek::LogParseError error;
    parsed = executor.run_logs(ssl_text.str(), x509_text.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "parse error: %s\n", error.message.c_str());
      return 1;
    }
  } else {
    ingest::IngestOptions ingest_options;
    ingest_options.chunk_bytes = static_cast<std::size_t>(
        options.chunk_mb > 0 ? options.chunk_mb * 1024 * 1024 : 1);
    ingest::IngestError error;
    parsed = executor.run_log_files(ssl_path, x509_path, &error,
                                    ingest_options);
    if (!parsed) {
      std::fprintf(stderr, "ingest error: %s\n", error.to_string().c_str());
      return 1;
    }
  }
  const core::Pipeline& pipeline = *parsed;
  auto prevalence = std::move(prevalence_shards).merged();
  auto ports = std::move(ports_shards).merged();

  const auto& totals = pipeline.totals();
  std::printf("connections: %s   mutual: %s (%s)   certificates: %s\n",
              core::format_count(totals.connections).c_str(),
              core::format_count(totals.mutual).c_str(),
              core::format_percent(static_cast<double>(totals.mutual),
                                   static_cast<double>(totals.connections))
                  .c_str(),
              core::format_count(pipeline.certificates().size()).c_str());

  const auto series = prevalence.series();
  if (series.size() >= 2) {
    std::printf("mutual-TLS adoption: %.2f%% (first month) -> %.2f%% (last "
                "month)\n",
                series.front().mutual_pct(), series.back().mutual_pct());
  }

  std::printf("\ntop mutual-TLS services:\n");
  core::TextTable table({"Dir", "Port", "Share", "Service"});
  for (const auto dir_kind :
       {core::Direction::kInbound, core::Direction::kOutbound}) {
    for (const auto& s : ports.top(dir_kind, true, 3)) {
      table.add_row({dir_kind == core::Direction::kInbound ? "in" : "out",
                     s.port_label, core::format_double(s.share, 1) + "%",
                     s.service});
    }
  }
  std::printf("%s", table.render().c_str());

  const auto inventory = core::analyze_cert_inventory(pipeline);
  std::printf("\ncertificates in mutual TLS: %s of %s (%s)\n",
              core::format_count(inventory.total.mutual).c_str(),
              core::format_count(inventory.total.total).c_str(),
              core::format_double(inventory.total.mutual_pct(), 1).c_str());

  const auto info =
      core::analyze_info_types(pipeline, core::CertScope::kMutual);
  const auto& cpriv = info.cells[1][1];
  std::printf("sensitive client CNs: %s personal names, %s user accounts\n",
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kPersonalName)])
                  .c_str(),
              core::format_count(cpriv.cn[static_cast<std::size_t>(
                                     textclass::InfoType::kUserAccount)])
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ReportOptions options;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--chunk-mb=", 11) == 0) {
      options.chunk_mb = std::atof(argv[i] + 11);
    } else if (std::strcmp(argv[i], "--in-memory") == 0) {
      options.in_memory = true;
    }
  }
  if (argc >= 3 && std::strcmp(argv[1], "export") == 0) {
    return export_logs(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "report") == 0) {
    return report(argv[2], options);
  }
  std::fprintf(stderr,
               "usage: %s export DIR   (write synthetic ssl.log/x509.log)\n"
               "       %s report DIR [--threads=N] [--chunk-mb=M] "
               "[--in-memory]\n"
               "         (analyze DIR/ssl.log + DIR/x509.log; streamed with "
               "bounded memory\n"
               "          unless --in-memory)\n",
               argv[0], argv[0]);
  return 2;
}
