// campus_audit: produce an operator-style mutual-TLS audit report —
// prevalence, services, issuer mix, and the security findings the paper
// flags (dummy issuers, serial collisions, shared certificates, expired
// client certificates). By default the input is a scaled synthetic
// campus trace; point --ssl-log/--x509-log at real Zeek logs to audit
// those instead (streamed with bounded memory, any file size).
//
// Usage: ./build/examples/campus_audit [--cert-scale=N] [--conn-scale=N]
//                                      [--threads=N]
//                                      [--ssl-log=F --x509-log=F]
//                                      [--chunk-mb=M]
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/gen/generator.hpp"

using namespace mtlscope;

int main(int argc, char** argv) {
  double cert_scale = 500, conn_scale = 50'000;
  std::size_t threads = 0;  // 0 → hardware concurrency
  std::string ssl_log, x509_log;
  double chunk_mb = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cert-scale=", 13) == 0) {
      cert_scale = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--conn-scale=", 13) == 0) {
      conn_scale = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--ssl-log=", 10) == 0) {
      ssl_log = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--x509-log=", 11) == 0) {
      x509_log = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--chunk-mb=", 11) == 0) {
      chunk_mb = std::atof(argv[i] + 11);
    }
  }
  const bool file_mode = !ssl_log.empty() || !x509_log.empty();
  if (file_mode && (ssl_log.empty() || x509_log.empty())) {
    std::fprintf(stderr, "need both --ssl-log= and --x509-log=\n");
    return 2;
  }

  if (file_mode) {
    std::printf("mtlscope campus audit (%s + %s, streamed)\n\n",
                ssl_log.c_str(), x509_log.c_str());
  } else {
    std::printf("mtlscope campus audit (synthetic trace 1:%g certs, 1:%g "
                "connections)\n\n",
                cert_scale, conn_scale);
  }

  gen::TraceGenerator generator(gen::paper_model(cert_scale, conn_scale));
  auto config = core::PipelineConfig::campus_defaults();
  // The synthetic CT database only describes the synthetic trace.
  if (!file_mode) config.ct = &generator.ct_database();
  core::PipelineExecutor executor(std::move(config), threads);
  std::printf("pipeline workers: %zu\n\n", executor.shard_count());

  // One analyzer instance per shard; merged after the run.
  core::Sharded<core::PrevalenceAnalyzer> prevalence_shards(
      executor.shard_count());
  core::Sharded<core::ServicePortAnalyzer> ports_shards(executor.shard_count());
  core::Sharded<core::DummyIssuerAnalyzer> dummies_shards(
      executor.shard_count());
  core::Sharded<core::SerialCollisionAnalyzer> serials_shards(
      executor.shard_count());
  core::Sharded<core::SharedCertAnalyzer> shared_shards(executor.shard_count());
  executor.attach(prevalence_shards);
  executor.attach(ports_shards);
  executor.attach(dummies_shards);
  executor.attach(serials_shards);
  executor.attach(shared_shards);

  std::optional<core::Pipeline> result;
  if (file_mode) {
    ingest::IngestOptions ingest_options;
    ingest_options.chunk_bytes = static_cast<std::size_t>(
        chunk_mb > 0 ? chunk_mb * 1024 * 1024 : 1);
    ingest::IngestError error;
    result = executor.run_log_files(ssl_log, x509_log, &error, ingest_options);
    if (!result) {
      std::fprintf(stderr, "ingest error: %s\n", error.to_string().c_str());
      return 1;
    }
  } else {
    result.emplace(executor.run(generator.generate_dataset()));
  }
  const core::Pipeline& pipeline = *result;
  auto prevalence = std::move(prevalence_shards).merged();
  auto ports = std::move(ports_shards).merged();
  auto dummies = std::move(dummies_shards).merged();
  auto serials = std::move(serials_shards).merged();
  auto shared = std::move(shared_shards).merged();

  // --- Traffic overview -----------------------------------------------------
  const auto& totals = pipeline.totals();
  std::printf("== traffic ==\n");
  std::printf("connections analyzed: %s (mutual %s = %s)\n",
              core::format_count(totals.connections).c_str(),
              core::format_count(totals.mutual).c_str(),
              core::format_percent(static_cast<double>(totals.mutual),
                                   static_cast<double>(totals.connections))
                  .c_str());
  std::printf("excluded as TLS interception: %zu connections, %zu issuers\n",
              pipeline.interception_excluded_connections(),
              pipeline.interception_issuers().size());

  const auto series = prevalence.series();
  if (series.size() >= 2) {
    std::printf("mutual-TLS adoption: %.2f%% (first month) -> %.2f%% (last "
                "month)\n",
                series.front().mutual_pct(), series.back().mutual_pct());
  }

  std::printf("\n== top mutual-TLS services ==\n");
  core::TextTable table({"Dir", "Port", "Share", "Service"});
  for (const auto dir : {core::Direction::kInbound,
                         core::Direction::kOutbound}) {
    for (const auto& share : ports.top(dir, true, 3)) {
      table.add_row({dir == core::Direction::kInbound ? "in" : "out",
                     share.port_label,
                     core::format_double(share.share, 1) + "%",
                     share.service});
    }
  }
  std::printf("%s", table.render().c_str());

  // --- Certificate inventory --------------------------------------------------
  const auto inventory = core::analyze_cert_inventory(pipeline);
  std::printf("\n== certificates ==\n");
  std::printf("unique: %s (server %s / client %s); %s participate in "
              "mutual TLS\n",
              core::format_count(inventory.total.total).c_str(),
              core::format_count(inventory.server.total).c_str(),
              core::format_count(inventory.client.total).c_str(),
              core::format_percent(
                  static_cast<double>(inventory.total.mutual),
                  static_cast<double>(inventory.total.total))
                  .c_str());

  // --- Findings ----------------------------------------------------------------
  std::printf("\n== findings ==\n");
  int finding = 0;

  const auto dummy_rows = dummies.rows();
  if (!dummy_rows.empty()) {
    std::size_t dummy_conns = 0;
    for (const auto& row : dummy_rows) dummy_conns += row.connections;
    std::printf("[%d] dummy-issuer certificates accepted in %s connections "
                "(e.g. '%s')\n",
                ++finding, core::format_count(dummy_conns).c_str(),
                dummy_rows.front().dummy_org.c_str());
  }
  const auto collision_groups = serials.collision_groups();
  if (!collision_groups.empty()) {
    const auto& g = collision_groups.front();
    std::printf("[%d] serial-number collisions in %zu issuer/serial groups "
                "(largest: issuer '%s', serial %s, %zu certificates)\n",
                ++finding, collision_groups.size(), g.issuer_org.c_str(),
                g.serial.c_str(),
                g.server_certs.size() + g.client_certs.size());
  }
  const auto shared_rows = shared.same_connection_rows();
  if (!shared_rows.empty()) {
    std::printf("[%d] the same certificate served both endpoints in %s "
                "connections across %zu service groups\n",
                ++finding,
                core::format_count(
                    shared.same_connection_conns(core::Direction::kInbound) +
                    shared.same_connection_conns(core::Direction::kOutbound))
                    .c_str(),
                shared_rows.size());
  }
  const auto expired = core::analyze_expired(pipeline);
  if (!expired.inbound.empty() || !expired.outbound.empty()) {
    std::printf("[%d] %zu expired client certificates still completing "
                "handshakes (%zu inbound / %zu outbound)\n",
                ++finding, expired.inbound.size() + expired.outbound.size(),
                expired.inbound.size(), expired.outbound.size());
  }
  const auto info =
      core::analyze_info_types(pipeline, core::CertScope::kMutual);
  const auto& cpriv = info.cells[1][1];
  const auto names = cpriv.cn[static_cast<std::size_t>(
      textclass::InfoType::kPersonalName)];
  const auto accounts = cpriv.cn[static_cast<std::size_t>(
      textclass::InfoType::kUserAccount)];
  if (names + accounts > 0) {
    std::printf("[%d] PRIVACY: %s client certificates expose personal names "
                "and %s expose user accounts in their CN\n",
                ++finding, core::format_count(names).c_str(),
                core::format_count(accounts).c_str());
  }
  if (finding == 0) std::printf("no adverse findings\n");
  return 0;
}
