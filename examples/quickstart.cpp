// Quickstart: the core mtlscope workflow in one file.
//
//  1. Create a private CA and issue server + client certificates.
//  2. Simulate a mutual-TLS handshake and capture the monitor's view.
//  3. Serialize the observation as Zeek ssl.log / x509.log text.
//  4. Re-parse the logs and run the measurement pipeline over them.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"
#include "mtlscope/zeek/log_io.hpp"

using namespace mtlscope;

int main() {
  // --- 1. A private CA issues the two endpoint certificates. --------------
  x509::DistinguishedName ca_dn;
  ca_dn.add_org("Quickstart Labs").add_cn("Quickstart Labs Root CA");
  const auto ca = trust::CertificateAuthority::make_root(
      ca_dn, util::to_unix({2020, 1, 1, 0, 0, 0}),
      util::to_unix({2035, 1, 1, 0, 0, 0}));

  x509::DistinguishedName server_dn;
  server_dn.add_org("Quickstart Labs").add_cn("api.quickstart-labs.com");
  const auto server_cert = ca.issue(
      x509::CertificateBuilder()
          .serial_from_label("server-1")
          .subject(server_dn)
          .validity(util::to_unix({2023, 1, 1, 0, 0, 0}),
                    util::to_unix({2024, 6, 1, 0, 0, 0}))
          .public_key(crypto::TsigKey::derive("server-key").key)
          .add_san_dns("api.quickstart-labs.com")
          .add_eku(asn1::oids::eku_server_auth()));

  x509::DistinguishedName client_dn;
  client_dn.add_cn("John Smith");  // the privacy issue the paper studies
  const auto client_cert = ca.issue(
      x509::CertificateBuilder()
          .serial_from_label("client-1")
          .subject(client_dn)
          .validity(util::to_unix({2023, 1, 1, 0, 0, 0}),
                    util::to_unix({2024, 6, 1, 0, 0, 0}))
          .public_key(crypto::TsigKey::derive("client-key").key)
          .add_eku(asn1::oids::eku_client_auth()));

  std::printf("issued server cert: subject=%s serial=%s (%zu-byte DER)\n",
              server_cert.subject.to_string().c_str(),
              server_cert.serial_hex().c_str(), server_cert.der.size());
  std::printf("issued client cert: subject=%s fingerprint=%s…\n",
              client_cert.subject.to_string().c_str(),
              client_cert.fingerprint_hex().substr(0, 16).c_str());

  // Chain validation against the default (public) trust stores: a private
  // CA does not chain, as expected.
  const auto evaluator = trust::make_default_evaluator();
  std::printf("issuer class vs public roots: %s\n",
              evaluator.classify(server_cert) == trust::IssuerClass::kPublic
                  ? "Public CA"
                  : "Private CA");

  // --- 2. Mutual handshake as seen from the network border. ---------------
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.20.30.40"), 52100};
  client.sni = "api.quickstart-labs.com";
  client.chain = {client_cert};

  tls::ServerProfile server;
  server.endpoint = {*net::IpAddress::parse("128.143.7.7"), 443};
  server.chain = {server_cert};
  server.request_client_certificate = true;

  const auto conn = tls::simulate_handshake(
      client, server,
      {"Cq1quickstart", util::to_unix({2023, 6, 15, 12, 0, 0}), 0});
  std::printf("\nhandshake: established=%s mutual=%s version=%s sni=%s\n",
              conn.established ? "yes" : "no", conn.is_mutual() ? "yes" : "no",
              std::string(tls::version_name(conn.version)).c_str(),
              conn.sni.c_str());

  // --- 3. Zeek-format logs. ------------------------------------------------
  zeek::Dataset dataset;
  dataset.add_connection(conn);
  const std::string ssl_log = zeek::ssl_log_to_string(dataset.ssl());
  std::printf("\nssl.log:\n%s", ssl_log.c_str());

  // --- 4. Measurement pipeline over the logs (sharded executor). ----------
  // run_logs() splits both logs into per-worker chunks, parses them in
  // parallel, and merges the shard pipelines deterministically — the same
  // entry point the repro_* binaries use for full-scale traces.
  core::PipelineExecutor executor(core::PipelineConfig::campus_defaults());
  executor.add_shared_observer([](const core::EnrichedConnection& enriched) {
    std::printf(
        "\npipeline: direction=%s mutual=%s sld=%s client-CN-type=%s "
        "client-issuer=%s\n",
        enriched.direction == core::Direction::kInbound ? "inbound"
                                                        : "outbound",
        enriched.mutual ? "yes" : "no", enriched.sld.c_str(),
        enriched.client_leaf
            ? textclass::info_type_name(enriched.client_leaf->cn_type)
            : "-",
        enriched.client_leaf
            ? core::issuer_category_name(enriched.client_leaf->issuer_category)
            : "-");
  });
  const auto pipeline =
      executor.run_logs(ssl_log, zeek::x509_log_to_string(dataset));
  if (!pipeline) {
    std::printf("log parse failed\n");
    return 1;
  }

  std::printf("\nThe client certificate exposed a personal name on the wire "
              "— exactly the privacy finding of the paper's Section 6.\n");
  return 0;
}
