// interception_hunt: demonstrate the CT-log-based TLS interception
// detection of §3.2.1 against a hand-built scenario.
//
// A corporate proxy re-signs popular public domains with its own CA; the
// hunter flags issuers whose certificates contradict CT across several
// domains while leaving legitimate private CAs (which never appear in CT)
// alone.
#include <cstdio>
#include <vector>

#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/pipeline.hpp"
#include "mtlscope/ctlog/ct_database.hpp"
#include "mtlscope/tls/handshake.hpp"
#include "mtlscope/trust/authority.hpp"
#include "mtlscope/trust/public_cas.hpp"

using namespace mtlscope;

namespace {

x509::Certificate issue_for_domain(const trust::CertificateAuthority& ca,
                                   const std::string& domain,
                                   const std::string& label) {
  x509::DistinguishedName dn;
  dn.add_cn(domain);
  return ca.issue(x509::CertificateBuilder()
                      .serial_from_label(label)
                      .subject(dn)
                      .validity(util::to_unix({2023, 1, 1, 0, 0, 0}),
                                util::to_unix({2024, 1, 1, 0, 0, 0}))
                      .public_key(crypto::TsigKey::derive(label).key)
                      .add_san_dns(domain));
}

tls::TlsConnection browse(const x509::Certificate& server_cert,
                          const std::string& sni, int i) {
  tls::ClientProfile client;
  client.endpoint = {*net::IpAddress::parse("10.9.8.7"), 50000};
  client.sni = sni;
  tls::ServerProfile server;
  server.endpoint = {net::IpAddress::v4(203, 0, 113,
                                        static_cast<std::uint8_t>(i + 1)),
                     443};
  server.chain = {server_cert};
  return tls::simulate_handshake(
      client, server,
      {"Chunt" + std::to_string(i), util::to_unix({2023, 6, 1, 0, 0, 0}), 0});
}

}  // namespace

int main() {
  const char* kDomains[] = {"search-portal.com", "mail-hub.com",
                            "cdn-images.net", "social-feed.com",
                            "video-stream.net"};

  // CT knows the legitimate issuers of these public domains.
  ctlog::CtDatabase ct;
  const auto& pki = trust::public_pki();
  for (std::size_t i = 0; i < std::size(kDomains); ++i) {
    ct.log_certificate(kDomains[i],
                       pki.cas()[i % pki.cas().size()].intermediate.dn());
  }

  // The villain: a proxy CA re-signing all of them.
  x509::DistinguishedName proxy_dn;
  proxy_dn.add_org("Acme Security Appliances").add_cn("Acme SSL Inspector");
  const auto proxy = trust::CertificateAuthority::make_root(
      proxy_dn, 0, util::to_unix({2030, 1, 1, 0, 0, 0}));

  // The bystander: a legitimate private CA for an internal service that
  // never appears in CT.
  x509::DistinguishedName internal_dn;
  internal_dn.add_org("Quickstart Labs").add_cn("Quickstart Internal CA");
  const auto internal_ca = trust::CertificateAuthority::make_root(
      internal_dn, 0, util::to_unix({2030, 1, 1, 0, 0, 0}));

  auto config = core::PipelineConfig::campus_defaults();
  config.ct = &ct;

  int conn_id = 0;
  std::vector<tls::TlsConnection> trace;
  // Intercepted browsing: proxy-signed certs for CT-known domains.
  for (int round = 0; round < 2; ++round) {
    for (const char* domain : kDomains) {
      trace.push_back(browse(
          issue_for_domain(proxy, domain,
                           std::string("proxy:") + domain),
          domain, conn_id++));
    }
  }
  // Legitimate internal service: private CA, domain unknown to CT.
  trace.push_back(browse(
      issue_for_domain(internal_ca, "intranet.quickstart-labs.com",
                       "internal:intranet"),
      "intranet.quickstart-labs.com", conn_id++));

  // Path 1: the legacy streaming pipeline, fed connection by connection.
  core::Pipeline pipeline(config);
  for (const auto& conn : trace) pipeline.feed(conn);
  pipeline.finalize();

  std::printf("interception issuers detected: %zu\n",
              pipeline.interception_issuers().size());
  for (const auto& issuer : pipeline.interception_issuers()) {
    std::printf("  FLAGGED: %s\n", issuer.c_str());
  }
  std::printf("connections excluded: %zu of %d\n",
              pipeline.interception_excluded_connections(), conn_id);
  std::printf("certificates flagged: %zu\n",
              pipeline.interception_flagged_certificates());

  bool internal_flagged = false;
  for (const auto& issuer : pipeline.interception_issuers()) {
    if (issuer.view().find("Quickstart") != std::string_view::npos) {
      internal_flagged = true;
    }
  }
  std::printf("legitimate internal CA left alone: %s\n",
              internal_flagged ? "NO (bug!)" : "yes");

  // Path 2: the sharded executor over the Zeek-log view of the same trace.
  // Interception confirmation there is a whole-stream pre-pass, so the
  // verdict must agree with the streaming hunt regardless of shard count.
  zeek::Dataset dataset;
  for (const auto& conn : trace) dataset.add_connection(conn);
  core::PipelineExecutor executor(config, 4);
  const auto sharded = executor.run(dataset);
  const bool agree =
      sharded.interception_issuers() == pipeline.interception_issuers() &&
      sharded.interception_excluded_connections() ==
          pipeline.interception_excluded_connections();
  std::printf("sharded executor (4 workers) agrees: %s\n",
              agree ? "yes" : "NO (bug!)");
  return (internal_flagged || !agree) ? 1 : 0;
}
