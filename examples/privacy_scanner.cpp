// privacy_scanner: scan a Zeek x509.log for sensitive information in
// certificate CN/SAN fields — the paper's Section-6 analysis as a tool.
//
// Usage:
//   ./build/examples/privacy_scanner path/to/x509.log [--threads=N]
//   ./build/examples/privacy_scanner --demo     (generate a synthetic log)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mtlscope/core/redaction.hpp"
#include "mtlscope/core/report.hpp"
#include "mtlscope/gen/generator.hpp"
#include "mtlscope/textclass/classifier.hpp"
#include "mtlscope/x509/name.hpp"
#include "mtlscope/zeek/log_io.hpp"

using namespace mtlscope;

namespace {

bool is_sensitive(textclass::InfoType type) {
  switch (type) {
    case textclass::InfoType::kPersonalName:
    case textclass::InfoType::kUserAccount:
    case textclass::InfoType::kEmail:
    case textclass::InfoType::kMac:
      return true;
    default:
      return false;
  }
}

/// One sensitive hit, kept in record order for deterministic printing.
struct Finding {
  textclass::InfoType type;
  std::string cn;
  std::string issuer;
};

/// Per-worker scan state; merged in worker order after the join, so the
/// output is identical for any thread count.
struct ScanShard {
  std::map<textclass::InfoType, std::size_t> histogram;
  std::vector<Finding> findings;
};

ScanShard scan_range(const std::vector<zeek::X509Record>& records,
                     std::size_t begin, std::size_t end) {
  ScanShard shard;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& record = records[i];
    const auto subject = x509::DistinguishedName::from_string(record.subject);
    const auto issuer = x509::DistinguishedName::from_string(record.issuer);
    if (!subject) continue;
    const auto cn = subject->common_name();
    if (!cn || cn->empty()) continue;

    textclass::ClassifyContext ctx;
    std::string issuer_text;
    if (issuer) {
      if (const auto org = issuer->organization()) {
        issuer_text = std::string(*org);
      }
      ctx.campus_issuer =
          issuer_text.find("University") != std::string::npos;
    }
    ctx.issuer = issuer_text;

    const auto type = textclass::classify_value(*cn, ctx);
    ++shard.histogram[type];
    if (is_sensitive(type)) {
      shard.findings.push_back({type, std::string(*cn), issuer_text});
    }
  }
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  std::string x509_text;
  std::size_t threads = 0;  // 0 → hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    }
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (argc >= 2 && std::strcmp(argv[1], "--demo") != 0 &&
      std::strncmp(argv[1], "--threads=", 10) != 0) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    x509_text = buffer.str();
  } else {
    std::printf("(demo mode: generating a synthetic campus x509.log)\n\n");
    gen::TraceGenerator generator(gen::paper_model(2'000, 500'000));
    zeek::Dataset dataset;
    generator.generate([&dataset](const tls::TlsConnection& conn) {
      dataset.add_connection(conn);
    });
    x509_text = zeek::x509_log_to_string(dataset);
  }

  std::istringstream in(x509_text);
  zeek::LogParseError error;
  const auto records = zeek::parse_x509_log(in, &error);
  if (!records) {
    std::fprintf(stderr, "x509.log parse error (line %zu): %s\n", error.line,
                 error.message.c_str());
    return 1;
  }

  std::printf("scanning %zu certificates with %zu worker(s)…\n\n",
              records->size(), threads);

  // Classification is per-record, so the scan shards cleanly: contiguous
  // record ranges, one histogram per worker, merged in worker order.
  std::vector<ScanShard> shards(threads);
  if (threads <= 1) {
    shards[0] = scan_range(*records, 0, records->size());
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = records->size() * t / threads;
      const std::size_t end = records->size() * (t + 1) / threads;
      workers.emplace_back([&shards, &records, t, begin, end] {
        shards[t] = scan_range(*records, begin, end);
      });
    }
    for (auto& worker : workers) worker.join();
  }

  std::map<textclass::InfoType, std::size_t> histogram;
  std::size_t sensitive = 0;
  std::size_t shown = 0;
  for (const auto& shard : shards) {
    for (const auto& [type, count] : shard.histogram) {
      histogram[type] += count;
    }
    sensitive += shard.findings.size();
    for (const auto& finding : shard.findings) {
      if (shown >= 12) break;
      ++shown;
      std::printf("  [%-13s] CN=\"%s\"  issuer=\"%s\"\n",
                  textclass::info_type_name(finding.type),
                  finding.cn.c_str(), finding.issuer.c_str());
    }
  }
  if (sensitive > shown) {
    std::printf("  … and %zu more\n", sensitive - shown);
  }

  std::printf("\nCN information types:\n");
  core::TextTable table({"Type", "Certificates", "Share"});
  for (const auto& [type, count] : histogram) {
    table.add_row({textclass::info_type_name(type),
                   core::format_count(count),
                   core::format_percent(static_cast<double>(count),
                                        static_cast<double>(records->size()))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n%zu certificates (%s) expose sensitive information in their CN.\n"
      "Certificates travel unencrypted in TLS <= 1.2 handshakes: anyone on "
      "the path can read these values (paper §6.3.7).\n",
      sensitive,
      core::format_percent(static_cast<double>(sensitive),
                           static_cast<double>(records->size()))
          .c_str());

  // Remediation demo (§7): re-issue one exposed certificate with its
  // identity pseudonymized.
  if (sensitive > 0) {
    x509::DistinguishedName demo_dn;
    demo_dn.add_org("Example Org").add_cn("John Smith");
    x509::DistinguishedName ca_dn;
    ca_dn.add_org("Privacy Demo CA Org").add_cn("Privacy Demo CA");
    const auto demo_ca = trust::CertificateAuthority::make_root(
        ca_dn, 0, util::to_unix({2040, 1, 1, 0, 0, 0}));
    const auto exposed = demo_ca.issue(
        x509::CertificateBuilder()
            .serial_from_label("demo")
            .subject(demo_dn)
            .validity(0, util::to_unix({2030, 1, 1, 0, 0, 0}))
            .public_key(crypto::TsigKey::derive("demo-user").key));
    const auto key = crypto::TsigKey::derive("org pseudonym secret");
    const auto redacted = core::redact_certificate(exposed, demo_ca, key);
    std::printf(
        "\nremediation (core::redact_certificate):\n"
        "  before: %s\n  after:  %s\n"
        "The pseudonym is HMAC-derived: stable across renewals for "
        "authorization,\nmeaningless to the network.\n",
        exposed.subject.to_string().c_str(),
        redacted.subject.to_string().c_str());
  }
  return 0;
}
