#include "mtlscope/tls/handshake.hpp"

#include <algorithm>

namespace mtlscope::tls {

std::string_view version_name(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls10:
      return "TLSv10";
    case TlsVersion::kTls11:
      return "TLSv11";
    case TlsVersion::kTls12:
      return "TLSv12";
    case TlsVersion::kTls13:
      return "TLSv13";
  }
  return "unknown";
}

std::optional<TlsVersion> version_from_name(std::string_view name) {
  if (name == "TLSv10") return TlsVersion::kTls10;
  if (name == "TLSv11") return TlsVersion::kTls11;
  if (name == "TLSv12") return TlsVersion::kTls12;
  if (name == "TLSv13") return TlsVersion::kTls13;
  return std::nullopt;
}

TlsConnection simulate_handshake(const ClientProfile& client,
                                 const ServerProfile& server,
                                 const HandshakeOptions& options) {
  TlsConnection conn;
  conn.uid = options.uid;
  conn.timestamp = options.timestamp;
  conn.client = client.endpoint;
  conn.server = server.endpoint;
  conn.sni = client.sni.value_or("");
  conn.version = std::min(client.max_version, server.max_version);
  conn.established = true;

  // The monitor's certificate visibility ends at TLS 1.3: the handshake
  // encrypts Certificate messages after ServerHello.
  const bool certificates_visible = conn.version != TlsVersion::kTls13;

  const bool client_sends_chain =
      server.request_client_certificate && !client.chain.empty();

  if (server.validate_client_certificate && client_sends_chain) {
    const auto& leaf = client.chain.front();
    if (!leaf.validity.contains(options.validation_time)) {
      conn.established = false;
    }
  }

  if (certificates_visible) {
    conn.server_chain = server.chain;
    if (client_sends_chain) conn.client_chain = client.chain;
  }
  return conn;
}

}  // namespace mtlscope::tls
