#include "mtlscope/ingest/durable_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>

namespace mtlscope::ingest {

// ---------------------------------------------------------------------------
// Classification

WriteClass classify_errno(int err) {
  switch (err) {
    case 0:
      return WriteClass::kOk;
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return WriteClass::kNoSpace;
    case EIO:
      return WriteClass::kIo;
    default:
      return WriteClass::kOther;
  }
}

const char* write_class_name(WriteClass cls) {
  switch (cls) {
    case WriteClass::kOk:
      return "ok";
    case WriteClass::kNoSpace:
      return "no-space";
    case WriteClass::kIo:
      return "io-error";
    case WriteClass::kOther:
      return "error";
  }
  return "error";
}

// ---------------------------------------------------------------------------
// Counters

WriteRetryCounters& write_retry_counters() {
  static WriteRetryCounters counters;
  return counters;
}

void reset_write_retry_counters() {
  WriteRetryCounters& c = write_retry_counters();
  for (std::atomic<std::uint64_t>* field :
       {&c.eintr_retries, &c.short_writes, &c.backoff_sleeps,
        &c.write_failures, &c.enospc_failures, &c.fsyncs, &c.dir_fsyncs,
        &c.atomic_publishes, &c.checkpoint_gens_written,
        &c.checkpoint_gens_restored, &c.degraded_episodes}) {
    field->store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// fd-level helpers

WriteResult write_error(const std::string& what, int err) {
  WriteResult r;
  r.ok = false;
  r.err = err;
  r.cls = classify_errno(err);
  r.message = what + ": " + write_class_name(r.cls) + " (" +
              std::strerror(err) + ")";
  return r;
}

WriteResult write_fully_fd(int fd, std::string_view data,
                           const std::string& label) {
  FaultVfs& vfs = FaultVfs::instance();
  const auto out = write_fully(
      [&vfs, fd](const char* src, std::size_t n, std::size_t) {
        return vfs.write(fd, src, n);
      },
      data.data(), data.size(), 0);
  if (out.error) return write_error("cannot write " + label, out.err);
  return WriteResult{};
}

WriteResult fsync_retry(int fd, const std::string& label) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) {
      write_retry_counters().eintr_retries.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    // EINVAL/EROFS-style: the fd has no sync semantics (pipe, some
    // tmpfs configurations). Not a durability failure we can act on.
    if (errno == EINVAL) break;
    return write_error("cannot fsync " + label, errno);
  }
  write_retry_counters().fsyncs.fetch_add(1, std::memory_order_relaxed);
  return WriteResult{};
}

WriteResult fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return write_error("cannot open directory " + dir, errno);
  while (::fsync(fd) != 0) {
    if (errno == EINTR) {
      write_retry_counters().eintr_retries.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (errno == EINVAL) break;  // filesystem without directory sync
    const int err = errno;
    ::close(fd);
    return write_error("cannot fsync directory " + dir, err);
  }
  ::close(fd);
  write_retry_counters().dir_fsyncs.fetch_add(1, std::memory_order_relaxed);
  return WriteResult{};
}

std::string publish_tmp_path(const std::string& dst) {
  const std::filesystem::path path(dst);
  const std::filesystem::path tmp_name =
      "." + path.filename().string() + ".tmp";
  return (path.parent_path() / tmp_name).string();
}

WriteResult durable_rename(const std::string& tmp, const std::string& dst,
                           const std::string& site) {
  crash_point(site + ".after_fsync");
  int err = 0;
  if (!FaultVfs::instance().rename(tmp, dst, &err)) {
    WriteResult r = write_error("cannot rename " + tmp + " to " + dst, err);
    write_retry_counters().write_failures.fetch_add(1,
                                                    std::memory_order_relaxed);
    if (r.cls == WriteClass::kNoSpace) {
      write_retry_counters().enospc_failures.fetch_add(
          1, std::memory_order_relaxed);
    }
    return r;
  }
  crash_point(site + ".after_rename");
  WriteResult r = fsync_parent_dir(dst);
  if (!r.ok) return r;
  write_retry_counters().atomic_publishes.fetch_add(1,
                                                    std::memory_order_relaxed);
  return WriteResult{};
}

WriteResult atomic_publish_file(const std::string& dst,
                                std::string_view contents,
                                const std::string& site) {
  const std::string tmp = publish_tmp_path(dst);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return write_error("cannot create " + tmp, errno);
  WriteResult r = write_fully_fd(fd, contents, tmp);
  if (!r.ok) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return r;
  }
  crash_point(site + ".after_write");
  r = fsync_retry(fd, tmp);
  if (::close(fd) != 0 && r.ok) r = write_error("cannot close " + tmp, errno);
  if (!r.ok) {
    ::unlink(tmp.c_str());
    return r;
  }
  r = durable_rename(tmp, dst, site);
  if (!r.ok) ::unlink(tmp.c_str());
  return r;
}

// ---------------------------------------------------------------------------
// FaultVfs

struct FaultVfs::Plan {
  std::mutex mu;
  // write ordinal (1-based) → fault; covers both the plan API and the
  // MTLSCOPE_FAIL_WRITE storm (expanded into entries at parse time
  // would be unbounded, so the storm keeps its own range).
  std::map<std::uint64_t, WriteFault> write_faults;
  std::uint64_t storm_from = 0;  // 0 = no storm
  std::uint64_t storm_count = 0;
  int storm_err = ENOSPC;
  // torn rename
  std::uint64_t tear_at = 0;  // 0 = disabled; counts matching renames
  std::string tear_substr;
  std::atomic<std::uint64_t> tear_matches{0};
  // crash point
  std::string crash_label;
  std::uint64_t crash_n = 0;
  std::map<std::string, std::uint64_t> crash_hits;

  bool any() const {
    return !write_faults.empty() || storm_count != 0 || tear_at != 0 ||
           !crash_label.empty();
  }
};

namespace {

/// "K[:enospc|eio][:M]" → (from, err, count). Returns false on malformed
/// input (injection silently disabled — a chaos driver always verifies
/// the schedule fired, so a typo cannot pass as a green run).
bool parse_fail_write(const char* spec, std::uint64_t* from, int* err,
                      std::uint64_t* count) {
  char* end = nullptr;
  const unsigned long long k = std::strtoull(spec, &end, 10);
  if (end == spec || k == 0) return false;
  *from = k;
  *err = ENOSPC;
  *count = 1;
  if (*end == '\0') return true;
  if (*end != ':') return false;
  const char* rest = end + 1;
  if (std::strncmp(rest, "enospc", 6) == 0) {
    *err = ENOSPC;
    rest += 6;
  } else if (std::strncmp(rest, "eio", 3) == 0) {
    *err = EIO;
    rest += 3;
  }
  if (*rest == '\0') return true;
  if (*rest != ':') return false;
  const unsigned long long m = std::strtoull(rest + 1, &end, 10);
  if (end == rest + 1 || m == 0) return false;
  *count = m;
  return true;
}

}  // namespace

FaultVfs::FaultVfs() : plan_(new Plan) {
  bool armed = false;
  if (const char* spec = std::getenv("MTLSCOPE_FAIL_WRITE")) {
    std::uint64_t from = 0, count = 0;
    int err = ENOSPC;
    if (parse_fail_write(spec, &from, &err, &count)) {
      plan_->storm_from = from;
      plan_->storm_count = count;
      plan_->storm_err = err;
      armed = true;
    }
  }
  if (const char* spec = std::getenv("MTLSCOPE_TEAR_RENAME")) {
    char* end = nullptr;
    const unsigned long long k = std::strtoull(spec, &end, 10);
    if (end != spec && k > 0) {
      plan_->tear_at = k;
      if (*end == ':') plan_->tear_substr = end + 1;
      armed = true;
    }
  }
  if (const char* spec = std::getenv("MTLSCOPE_CRASH_AT")) {
    const char* colon = std::strrchr(spec, ':');
    if (colon != nullptr && colon != spec) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(colon + 1, &end, 10);
      if (end != colon + 1 && *end == '\0' && n > 0) {
        plan_->crash_label.assign(spec, colon - spec);
        plan_->crash_n = n;
        armed = true;
      }
    }
  }
  if (armed) active_.store(true, std::memory_order_relaxed);
}

FaultVfs& FaultVfs::instance() {
  static FaultVfs vfs;
  return vfs;
}

void FaultVfs::fault_write_at(std::uint64_t ordinal, WriteFault fault) {
  std::lock_guard<std::mutex> lock(plan_->mu);
  plan_->write_faults[ordinal] = fault;
  active_.store(true, std::memory_order_relaxed);
}

void FaultVfs::fail_write_range(std::uint64_t ordinal, std::uint64_t count,
                                int err) {
  std::lock_guard<std::mutex> lock(plan_->mu);
  plan_->storm_from = ordinal;
  plan_->storm_count = count;
  plan_->storm_err = err;
  active_.store(true, std::memory_order_relaxed);
}

void FaultVfs::clear() {
  std::lock_guard<std::mutex> lock(plan_->mu);
  plan_->write_faults.clear();
  plan_->storm_from = 0;
  plan_->storm_count = 0;
  plan_->tear_at = 0;
  plan_->tear_substr.clear();
  plan_->tear_matches.store(0, std::memory_order_relaxed);
  plan_->crash_label.clear();
  plan_->crash_n = 0;
  plan_->crash_hits.clear();
  write_ordinal_.store(0, std::memory_order_relaxed);
  rename_ordinal_.store(0, std::memory_order_relaxed);
  active_.store(false, std::memory_order_relaxed);
}

ssize_t FaultVfs::faulted_write(int fd, const void* buf, std::size_t n,
                                std::uint64_t ordinal) {
  WriteFault fault;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(plan_->mu);
    const auto it = plan_->write_faults.find(ordinal);
    if (it != plan_->write_faults.end()) {
      fault = it->second;
      have = true;
    } else if (plan_->storm_count != 0 && ordinal >= plan_->storm_from &&
               ordinal < plan_->storm_from + plan_->storm_count) {
      fault.kind = WriteFault::Kind::kErrno;
      fault.err = plan_->storm_err;
      have = true;
    }
  }
  if (!have) return ::write(fd, buf, n);
  switch (fault.kind) {
    case WriteFault::Kind::kErrno:
      errno = fault.err;
      return -1;
    case WriteFault::Kind::kEintr:
      errno = EINTR;
      return -1;
    case WriteFault::Kind::kShort: {
      const std::size_t half = n > 1 ? n / 2 : 1;
      return ::write(fd, buf, half);
    }
  }
  errno = EIO;
  return -1;
}

ssize_t FaultVfs::write(int fd, const void* buf, std::size_t n) {
  if (!active()) return ::write(fd, buf, n);
  const std::uint64_t ordinal =
      write_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  return faulted_write(fd, buf, n, ordinal);
}

bool FaultVfs::torn_rename(const std::string& from, const std::string& to,
                           int* err) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (err != nullptr) *err = errno;
    return false;
  }
  // The rename happened but "power was lost" before the filesystem made
  // it durable: model the worst legal outcome on a non-atomic
  // filesystem — the destination exists with only a prefix of its bytes.
  struct stat st{};
  if (::stat(to.c_str(), &st) == 0 && st.st_size > 0) {
    (void)!::truncate(to.c_str(), st.st_size / 2);
  }
  std::fprintf(stderr, "faultvfs: torn rename of %s; exiting %d\n",
               to.c_str(), kTornRenameExitCode);
  std::fflush(stderr);
  ::_exit(kTornRenameExitCode);
}

bool FaultVfs::rename(const std::string& from, const std::string& to,
                      int* err) {
  if (!active()) {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      if (err != nullptr) *err = errno;
      return false;
    }
    return true;
  }
  rename_ordinal_.fetch_add(1, std::memory_order_relaxed);
  bool tear = false;
  {
    std::lock_guard<std::mutex> lock(plan_->mu);
    if (plan_->tear_at != 0 &&
        (plan_->tear_substr.empty() ||
         to.find(plan_->tear_substr) != std::string::npos)) {
      const std::uint64_t match =
          plan_->tear_matches.fetch_add(1, std::memory_order_relaxed) + 1;
      tear = match == plan_->tear_at;
    }
  }
  if (tear) return torn_rename(from, to, err);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (err != nullptr) *err = errno;
    return false;
  }
  return true;
}

void FaultVfs::hit_crash_point(const std::string& label) {
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(plan_->mu);
    if (plan_->crash_label.empty() || plan_->crash_label != label) return;
    const std::uint64_t hits = ++plan_->crash_hits[label];
    crash = hits == plan_->crash_n;
  }
  if (crash) {
    std::fprintf(stderr, "faultvfs: crash point %s; exiting %d\n",
                 label.c_str(), kCrashPointExitCode);
    std::fflush(stderr);
    ::_exit(kCrashPointExitCode);
  }
}

}  // namespace mtlscope::ingest
