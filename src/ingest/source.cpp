#include "mtlscope/ingest/source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mtlscope/ingest/durable_io.hpp"
#include "mtlscope/ingest/retry.hpp"

namespace mtlscope::ingest {
namespace {

void set_error(IngestError* error, const std::string& file,
               std::size_t offset, std::string reason) {
  if (error == nullptr) return;
  error->file = file;
  error->byte_offset = offset;
  error->reason = std::move(reason);
}

std::string errno_string() { return std::strerror(errno); }

/// Best-effort readahead: while the caller parses [offset, offset+len),
/// ask the kernel to start paging in the next chunk-sized region so a
/// sequential pass overlaps I/O with parsing. Advisory only — absent
/// kernel support (or past EOF) it is a no-op, never an error.
void advise_next_chunk_fd(int fd, std::size_t offset, std::size_t len,
                          std::size_t file_size) {
#if defined(POSIX_FADV_WILLNEED)
  const std::size_t next = offset + len;
  if (len == 0 || next >= file_size) return;
  const std::size_t ahead = std::min(len, file_size - next);
  ::posix_fadvise(fd, static_cast<off_t>(next), static_cast<off_t>(ahead),
                  POSIX_FADV_WILLNEED);
#else
  (void)fd;
  (void)offset;
  (void)len;
  (void)file_size;
#endif
}

void advise_next_chunk_map(void* map, std::size_t offset, std::size_t len,
                           std::size_t map_size) {
#if defined(MADV_WILLNEED)
  const std::size_t next = offset + len;
  if (len == 0 || next >= map_size) return;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t begin = next / page * page;
  const std::size_t ahead = std::min(len, map_size - begin);
  ::madvise(static_cast<char*>(map) + begin, ahead, MADV_WILLNEED);
#else
  (void)map;
  (void)offset;
  (void)len;
  (void)map_size;
#endif
}

/// RAII fd.
class FileHandle {
 public:
  explicit FileHandle(int fd = -1) : fd_(fd) {}
  ~FileHandle() {
    if (fd_ >= 0) ::close(fd_);
  }
  FileHandle(FileHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FileHandle& operator=(FileHandle&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

/// mmap-backed source: fetch() is zero-copy, release() madvises consumed
/// pages away so a sequential pass keeps RSS bounded by the chunk window.
class MappedFile final : public Source {
 public:
  MappedFile(std::string name, FileHandle fd, void* map, std::size_t size)
      : Source(std::move(name)),
        fd_(std::move(fd)),
        map_(map),
        size_(size),
        live_size_(size) {
    if (map_ != nullptr) {
      ::madvise(map_, size_, MADV_SEQUENTIAL);
    }
  }
  ~MappedFile() override {
    if (map_ != nullptr) ::munmap(map_, size_);
  }

  std::size_t size() const override { return size_; }

  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override {
    if (offset >= size_) return {};
    len = std::min(len, size_ - offset);
    // SIGBUS guard: touching mapped pages past the file's current end
    // faults if the file shrank under us (log rotation, truncation).
    // One fstat per fetch (one chunk ≈ 1 MiB, so the syscall is noise)
    // detects the shrink; the affected range is then served by pread,
    // which clamps at the real EOF instead of faulting. The detection
    // races a truncation landing between the fstat and the copy — the
    // window is documented best-effort (DESIGN §11).
    std::size_t live = live_size_.load(std::memory_order_relaxed);
    if (live == size_) {
      struct stat st{};
      if (::fstat(fd_.get(), &st) == 0 && st.st_size >= 0 &&
          static_cast<std::size_t>(st.st_size) < size_) {
        live = static_cast<std::size_t>(st.st_size);
        live_size_.store(live, std::memory_order_relaxed);
        note_truncation(live);
      }
    }
    if (live < size_) {
      if (offset >= live) return {};
      len = std::min(len, live - offset);
      scratch.resize(len);
      const auto got = read_fully(
          [this](char* dst, std::size_t n, std::size_t at) {
            return ::pread(fd_.get(), dst, n, static_cast<off_t>(at));
          },
          scratch.data(), len, offset);
      scratch.resize(got.bytes);
      return {scratch.data(), got.bytes};
    }
    advise_next_chunk_map(map_, offset, len, size_);
    return {static_cast<const char*>(map_) + offset, len};
  }

  void release(std::size_t offset, std::size_t len) const override {
    if (map_ == nullptr || len == 0) return;
    // Only whole pages strictly inside the range: the pages straddling the
    // boundaries may still back a neighbouring chunk's view.
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t begin = (offset + page - 1) / page * page;
    std::size_t end = std::min(offset + len, size_) / page * page;
    if (end <= begin) return;
    ::madvise(static_cast<char*>(map_) + begin, end - begin, MADV_DONTNEED);
  }

 private:
  FileHandle fd_;
  void* map_;
  std::size_t size_;
  /// Last fstat'd file size; sticks below size_ once a shrink is seen so
  /// later fetches skip the mapping (and the fstat) entirely.
  mutable std::atomic<std::size_t> live_size_;
};

/// pread-backed fallback: every fetch copies into the caller's scratch.
class BufferedFile final : public Source {
 public:
  BufferedFile(std::string name, FileHandle fd, std::size_t size)
      : Source(std::move(name)), fd_(std::move(fd)), size_(size) {}

  std::size_t size() const override { return size_; }

  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override {
    if (offset >= size_) return {};
    len = std::min(len, size_ - offset);
    advise_next_chunk_fd(fd_.get(), offset, len, size_);
    scratch.resize(len);
    const auto got = read_fully(
        [this](char* dst, std::size_t n, std::size_t at) {
          return ::pread(fd_.get(), dst, n, static_cast<off_t>(at));
        },
        scratch.data(), len, offset);
    // EOF before the stat'd size means the file shrank while streaming.
    if (!got.error && got.bytes < len) note_truncation(offset + got.bytes);
    scratch.resize(got.bytes);
    return {scratch.data(), got.bytes};
  }

 private:
  FileHandle fd_;
  std::size_t size_;
};

/// Copies a non-seekable stream (stdin, FIFO) into an unlinked temp file
/// so the multi-pass pipeline can replay it. Disk-backed, never RAM.
FileHandle spool_to_tempfile(int in_fd, std::size_t* spooled,
                             IngestError* error, const std::string& name) {
  std::FILE* tmp = std::tmpfile();
  if (tmp == nullptr) {
    set_error(error, name, 0, "cannot create spool file: " + errno_string());
    return FileHandle{};
  }
  const int tmp_fd = ::dup(::fileno(tmp));
  std::size_t total = 0;
  char buf[1 << 16];
  while (true) {
    // read_fully owns the EINTR/short-read/backoff discipline (shared
    // with the pread fetch path); a short result here means EOF or a
    // hard error, never a transient hiccup.
    const auto got = read_fully(
        [in_fd](char* dst, std::size_t n, std::size_t) {
          return ::read(in_fd, dst, n);
        },
        buf, sizeof(buf), total);
    if (got.error) {
      errno = got.err;
      set_error(error, name, total, "read failed: " + errno_string());
      std::fclose(tmp);
      ::close(tmp_fd);
      return FileHandle{};
    }
    if (got.bytes == 0) break;
    // write_fully mirrors the read-side discipline (EINTR retry, short
    // writes continued, bounded EAGAIN backoff) and classifies the hard
    // error — a full disk surfaces as a structured message, not a
    // truncated spool.
    const auto put =
        write_fully_fd(tmp_fd, std::string_view(buf, got.bytes), "spool");
    if (!put.ok) {
      set_error(error, name, total, "spool write failed: " + put.message);
      std::fclose(tmp);
      ::close(tmp_fd);
      return FileHandle{};
    }
    total += got.bytes;
    if (got.bytes < sizeof(buf)) break;  // EOF mid-buffer
  }
  std::fclose(tmp);  // tmp_fd keeps the (unlinked) inode alive
  *spooled = total;
  return FileHandle(tmp_fd);
}

}  // namespace

void Source::release(std::size_t, std::size_t) const {}

std::string_view MemorySource::fetch(std::size_t offset, std::size_t len,
                                     std::string& scratch) const {
  (void)scratch;
  if (offset >= data_.size()) return {};
  return data_.substr(offset, len);
}

std::unique_ptr<Source> open_source(const std::string& path,
                                    IngestError* error,
                                    const SourceOptions& options) {
  if (path == "-") {
    std::size_t size = 0;
    FileHandle fd = spool_to_tempfile(STDIN_FILENO, &size, error, "<stdin>");
    if (fd.get() < 0) return nullptr;
    return std::make_unique<BufferedFile>("<stdin>", std::move(fd), size);
  }

  FileHandle fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    set_error(error, path, 0, "cannot open: " + errno_string());
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) {
    set_error(error, path, 0, "cannot stat: " + errno_string());
    return nullptr;
  }
  if (!S_ISREG(st.st_mode)) {
    // FIFO / character device: spool to disk so the pipeline can re-read.
    std::size_t size = 0;
    FileHandle spooled = spool_to_tempfile(fd.get(), &size, error, path);
    if (spooled.get() < 0) return nullptr;
    return std::make_unique<BufferedFile>(path, std::move(spooled), size);
  }

  const auto size = static_cast<std::size_t>(st.st_size);
  if (!options.force_buffered && size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    if (map != MAP_FAILED) {
      return std::make_unique<MappedFile>(path, std::move(fd), map, size);
    }
  }
  return std::make_unique<BufferedFile>(path, std::move(fd), size);
}

}  // namespace mtlscope::ingest
