#include "mtlscope/ingest/source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mtlscope::ingest {
namespace {

void set_error(IngestError* error, const std::string& file,
               std::size_t offset, std::string reason) {
  if (error == nullptr) return;
  error->file = file;
  error->byte_offset = offset;
  error->reason = std::move(reason);
}

std::string errno_string() { return std::strerror(errno); }

/// RAII fd.
class FileHandle {
 public:
  explicit FileHandle(int fd = -1) : fd_(fd) {}
  ~FileHandle() {
    if (fd_ >= 0) ::close(fd_);
  }
  FileHandle(FileHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FileHandle& operator=(FileHandle&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

/// mmap-backed source: fetch() is zero-copy, release() madvises consumed
/// pages away so a sequential pass keeps RSS bounded by the chunk window.
class MappedFile final : public Source {
 public:
  MappedFile(std::string name, FileHandle fd, void* map, std::size_t size)
      : Source(std::move(name)), fd_(std::move(fd)), map_(map), size_(size) {
    if (map_ != nullptr) {
      ::madvise(map_, size_, MADV_SEQUENTIAL);
    }
  }
  ~MappedFile() override {
    if (map_ != nullptr) ::munmap(map_, size_);
  }

  std::size_t size() const override { return size_; }

  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override {
    (void)scratch;
    if (offset >= size_) return {};
    len = std::min(len, size_ - offset);
    return {static_cast<const char*>(map_) + offset, len};
  }

  void release(std::size_t offset, std::size_t len) const override {
    if (map_ == nullptr || len == 0) return;
    // Only whole pages strictly inside the range: the pages straddling the
    // boundaries may still back a neighbouring chunk's view.
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t begin = (offset + page - 1) / page * page;
    std::size_t end = std::min(offset + len, size_) / page * page;
    if (end <= begin) return;
    ::madvise(static_cast<char*>(map_) + begin, end - begin, MADV_DONTNEED);
  }

 private:
  FileHandle fd_;
  void* map_;
  std::size_t size_;
};

/// pread-backed fallback: every fetch copies into the caller's scratch.
class BufferedFile final : public Source {
 public:
  BufferedFile(std::string name, FileHandle fd, std::size_t size)
      : Source(std::move(name)), fd_(std::move(fd)), size_(size) {}

  std::size_t size() const override { return size_; }

  std::string_view fetch(std::size_t offset, std::size_t len,
                         std::string& scratch) const override {
    if (offset >= size_) return {};
    len = std::min(len, size_ - offset);
    scratch.resize(len);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::pread(fd_.get(), scratch.data() + got, len - got,
                                static_cast<off_t>(offset + got));
      if (n <= 0) break;  // EOF/error: return the short read
      got += static_cast<std::size_t>(n);
    }
    scratch.resize(got);
    return {scratch.data(), got};
  }

 private:
  FileHandle fd_;
  std::size_t size_;
};

/// Copies a non-seekable stream (stdin, FIFO) into an unlinked temp file
/// so the multi-pass pipeline can replay it. Disk-backed, never RAM.
FileHandle spool_to_tempfile(int in_fd, std::size_t* spooled,
                             IngestError* error, const std::string& name) {
  std::FILE* tmp = std::tmpfile();
  if (tmp == nullptr) {
    set_error(error, name, 0, "cannot create spool file: " + errno_string());
    return FileHandle{};
  }
  const int tmp_fd = ::dup(::fileno(tmp));
  std::size_t total = 0;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(in_fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, name, total, "read failed: " + errno_string());
      std::fclose(tmp);
      ::close(tmp_fd);
      return FileHandle{};
    }
    if (n == 0) break;
    ssize_t written = 0;
    while (written < n) {
      const ssize_t w = ::write(tmp_fd, buf + written,
                                static_cast<std::size_t>(n - written));
      if (w <= 0) {
        set_error(error, name, total, "spool write failed: " + errno_string());
        std::fclose(tmp);
        ::close(tmp_fd);
        return FileHandle{};
      }
      written += w;
    }
    total += static_cast<std::size_t>(n);
  }
  std::fclose(tmp);  // tmp_fd keeps the (unlinked) inode alive
  *spooled = total;
  return FileHandle(tmp_fd);
}

}  // namespace

void Source::release(std::size_t, std::size_t) const {}

std::string_view MemorySource::fetch(std::size_t offset, std::size_t len,
                                     std::string& scratch) const {
  (void)scratch;
  if (offset >= data_.size()) return {};
  return data_.substr(offset, len);
}

std::unique_ptr<Source> open_source(const std::string& path,
                                    IngestError* error,
                                    const SourceOptions& options) {
  if (path == "-") {
    std::size_t size = 0;
    FileHandle fd = spool_to_tempfile(STDIN_FILENO, &size, error, "<stdin>");
    if (fd.get() < 0) return nullptr;
    return std::make_unique<BufferedFile>("<stdin>", std::move(fd), size);
  }

  FileHandle fd(::open(path.c_str(), O_RDONLY));
  if (fd.get() < 0) {
    set_error(error, path, 0, "cannot open: " + errno_string());
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) {
    set_error(error, path, 0, "cannot stat: " + errno_string());
    return nullptr;
  }
  if (!S_ISREG(st.st_mode)) {
    // FIFO / character device: spool to disk so the pipeline can re-read.
    std::size_t size = 0;
    FileHandle spooled = spool_to_tempfile(fd.get(), &size, error, path);
    if (spooled.get() < 0) return nullptr;
    return std::make_unique<BufferedFile>(path, std::move(spooled), size);
  }

  const auto size = static_cast<std::size_t>(st.st_size);
  if (!options.force_buffered && size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    if (map != MAP_FAILED) {
      return std::make_unique<MappedFile>(path, std::move(fd), map, size);
    }
  }
  return std::make_unique<BufferedFile>(path, std::move(fd), size);
}

}  // namespace mtlscope::ingest
