#include "mtlscope/ingest/chunker.hpp"

#include <algorithm>
#include <cstring>

namespace mtlscope::ingest {
namespace {

/// Window size for boundary probes; large enough that one probe almost
/// always finds the newline, small enough to stay cache-friendly.
constexpr std::size_t kProbeWindow = std::size_t{4} << 10;

/// Returns the offset one past the first '\n' at or after `from`, or
/// `end` if none remains.
std::size_t after_next_newline(const Source& source, std::size_t from,
                               std::size_t end, std::string& probe) {
  std::size_t pos = from;
  while (pos < end) {
    const std::size_t want = std::min(kProbeWindow, end - pos);
    const std::string_view window = source.fetch(pos, want, probe);
    if (window.empty()) return end;  // short read: treat as end of data
    const std::size_t nl = window.find('\n');
    if (nl != std::string_view::npos) {
      const std::size_t found = pos + nl + 1;
      return std::min(found, end);
    }
    pos += window.size();
  }
  return end;
}

}  // namespace

LogLayout detect_log_layout(const Source& source) {
  LogLayout layout;
  std::string probe;
  std::size_t pos = 0;
  const std::size_t size = source.size();
  while (pos < size) {
    const std::string_view first = source.fetch(pos, 1, probe);
    if (first.empty() || first[0] != '#') break;
    const std::size_t eol = after_next_newline(source, pos, size, probe);
    // Copy the header line (headers are a few hundred bytes; copying once
    // per file keeps every later chunk zero-copy).
    std::size_t line_pos = pos;
    while (line_pos < eol) {
      const std::string_view piece =
          source.fetch(line_pos, eol - line_pos, probe);
      if (piece.empty()) break;
      layout.header.append(piece);
      line_pos += piece.size();
    }
    if (layout.header.empty() || layout.header.back() != '\n') {
      layout.header.push_back('\n');  // unterminated trailing header line
    }
    pos = eol;
  }
  layout.body_begin = pos;
  return layout;
}

RecordChunker::RecordChunker(const Source& source, std::size_t chunk_bytes,
                             std::size_t begin, std::size_t end)
    : source_(source),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 1)),
      pos_(begin),
      end_(std::min(end, source.size())) {}

bool RecordChunker::next(Chunk& chunk) {
  if (pos_ >= end_) {
    if (emitted_any_) return false;
    // Empty range: emit one empty chunk so the header still gets parsed
    // (and validated) downstream exactly once.
    emitted_any_ = true;
    chunk.seq = seq_++;
    chunk.offset = pos_;
    chunk.data = {};
    return true;
  }
  const std::size_t target = std::min(pos_ + chunk_bytes_, end_);
  const std::size_t cut =
      target >= end_ ? end_ : after_next_newline(source_, target, end_, probe_);
  chunk.seq = seq_++;
  chunk.offset = pos_;
  chunk.data = source_.fetch(pos_, cut - pos_, chunk.scratch);
  pos_ = cut;
  emitted_any_ = true;
  return true;
}

std::size_t align_to_record(const Source& source, std::size_t from,
                            std::size_t end) {
  if (from == 0 || from >= end) return std::min(from, end);
  std::string probe;
  const std::string_view prev = source.fetch(from - 1, 1, probe);
  if (!prev.empty() && prev[0] == '\n') return from;
  return after_next_newline(source, from, end, probe);
}

std::vector<std::pair<std::size_t, std::size_t>> shard_record_ranges(
    const Source& source, std::size_t begin, std::size_t end, std::size_t k) {
  if (k == 0) k = 1;
  end = std::min(end, source.size());
  begin = std::min(begin, end);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(k);
  const std::size_t span = end - begin;
  std::size_t prev = begin;
  for (std::size_t s = 0; s < k; ++s) {
    std::size_t cut =
        s + 1 == k ? end
                   : align_to_record(source, begin + span * (s + 1) / k, end);
    cut = std::max(cut, prev);  // ranges stay monotone (tiny bodies)
    ranges.emplace_back(prev, cut);
    prev = cut;
  }
  return ranges;
}

ChunkStream::ChunkStream(std::string_view header, std::string_view body)
    : std::istream(this) {
  segments_[0] = header;
  segments_[1] = body;
  // Start with an empty get area; underflow() installs the first segment.
}

ChunkStream::int_type ChunkStream::underflow() {
  while (current_ < 2) {
    const std::string_view seg = segments_[current_];
    if (gptr() == nullptr || gptr() >= egptr()) {
      if (!seg.empty() && gptr() == nullptr) {
        // Install this segment (streambuf wants mutable pointers; the
        // buffer is never written — this stream is input-only).
        char* base = const_cast<char*>(seg.data());
        setg(base, base, base + seg.size());
        return traits_type::to_int_type(*gptr());
      }
      ++current_;
      if (current_ < 2 && !segments_[current_].empty()) {
        char* base = const_cast<char*>(segments_[current_].data());
        setg(base, base, base + segments_[current_].size());
        return traits_type::to_int_type(*gptr());
      }
    } else {
      return traits_type::to_int_type(*gptr());
    }
  }
  return traits_type::eof();
}

}  // namespace mtlscope::ingest
