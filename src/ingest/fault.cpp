#include "mtlscope/ingest/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "mtlscope/ingest/retry.hpp"

namespace mtlscope::ingest {
namespace {

/// splitmix64 finalizer: one 64-bit hash step with full avalanche, so a
/// (seed, offset) pair maps to an effectively independent random word.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t byte_hash(std::uint64_t seed, std::size_t offset) {
  return mix64(seed ^ mix64(static_cast<std::uint64_t>(offset)));
}

/// True when the top 53 bits of `h`, read as a uniform [0,1) value, fall
/// under `rate`.
bool hash_below(std::uint64_t h, double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  constexpr double kScale = 1.0 / 9007199254740992.0;  // 2^-53
  return static_cast<double>(h >> 11) * kScale < rate;
}

/// Non-zero XOR mask for a corrupted byte (zero would be a no-op flip).
char corrupt_mask(std::uint64_t h) {
  auto b = static_cast<unsigned char>(h >> 56);
  if (b == 0) b = 0xa5;
  return static_cast<char>(b);
}

}  // namespace

FaultInjectingSource::FaultInjectingSource(const Source& inner, FaultPlan plan)
    : Source(inner.name()),
      inner_(inner),
      plan_(plan),
      failures_left_(plan.fail_fetches) {}

std::size_t FaultInjectingSource::size() const { return inner_.size(); }

std::string_view FaultInjectingSource::fetch(std::size_t offset,
                                             std::size_t len,
                                             std::string& scratch) const {
  if (plan_.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
  }
  // Transient failures: each one is absorbed here by the same bounded
  // backoff a real flaky fd would cost read_fully, bumping the shared
  // retry counters so tests can assert the discipline ran. The fetch
  // always succeeds eventually — an empty view would silently truncate
  // the chunker's input instead of modelling a retried read.
  int attempt = 0;
  while (attempt < kMaxTransientRetries) {
    std::size_t left = failures_left_.load(std::memory_order_relaxed);
    if (left == 0) break;
    if (!failures_left_.compare_exchange_weak(left, left - 1,
                                              std::memory_order_relaxed)) {
      continue;
    }
    failures_injected_.fetch_add(1, std::memory_order_relaxed);
    retry_counters().backoff_sleeps.fetch_add(1, std::memory_order_relaxed);
    backoff_sleep(attempt++);
  }

  const std::size_t full = inner_.size();
  if (plan_.truncate_at < full) {
    // Same observable behaviour as a real mid-stream shrink: reads clamp
    // at the live end and the source flags truncation once a read hits it.
    if (offset >= plan_.truncate_at) {
      note_truncation(plan_.truncate_at);
      return {};
    }
    if (offset + len > plan_.truncate_at) {
      note_truncation(plan_.truncate_at);
      len = plan_.truncate_at - offset;
    }
  }

  const std::string_view view = inner_.fetch(offset, len, scratch);
  if (plan_.corrupt_byte_rate <= 0 || view.empty()) return view;

  // Corrupt a private copy (the inner view may be zero-copy into an mmap
  // we must not write through, or may already live in `scratch`).
  std::string dirty(view);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const std::size_t abs = offset + i;
    if (abs < plan_.protect_prefix) continue;
    const std::uint64_t h = byte_hash(plan_.seed, abs);
    if (hash_below(h, plan_.corrupt_byte_rate)) dirty[i] ^= corrupt_mask(h);
  }
  scratch = std::move(dirty);
  return {scratch.data(), scratch.size()};
}

void FaultInjectingSource::release(std::size_t offset, std::size_t len) const {
  inner_.release(offset, len);
}

bool fault_corrupts_byte(std::uint64_t seed, double rate, std::size_t offset) {
  return hash_below(byte_hash(seed, offset), rate);
}

std::string corrupt_log_rows(std::string_view text, std::uint64_t seed,
                             double rate, std::size_t* corrupted) {
  std::string out(text);
  std::size_t touched = 0;
  std::size_t data_row = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    std::size_t end = eol;
    if (end > pos && out[end - 1] == '\r') --end;  // leave CRLF framing alone
    const std::size_t len = end - pos;
    if (len > 0 && out[pos] != '#') {
      // Decide per data-row index, not per byte, so `rate` is an exact
      // expected fraction of rows independent of row lengths.
      const std::uint64_t h = byte_hash(seed, data_row);
      if (hash_below(h, rate)) {
        ++touched;
        // All kinds are length-preserving (newline positions never move)
        // and guaranteed to fail with "field count mismatch" on any
        // multi-column plan.
        const unsigned kind = static_cast<unsigned>(h % 3);
        const std::size_t last_tab = out.rfind('\t', end - 1);
        const bool has_tab = last_tab != std::string::npos && last_tab >= pos;
        if (kind == 0 && has_tab) {
          out[last_tab] = ' ';  // drop a separator: one field too few
        } else if (kind == 1 && out[pos] != '\t') {
          out[pos] = '\t';  // add a separator: one field too many
        } else {
          // Binary-ish garbage, no tabs or newlines: collapses to a
          // single field.
          for (std::size_t i = 0; i < len; ++i) {
            const std::uint64_t g = byte_hash(seed ^ 0x6761726261676521ULL,
                                              pos + i);
            char c = static_cast<char>(0x21 + (g % 0x5e));  // printable
            if (c == '\t' || c == '#') c = '!';
            out[pos + i] = c;
          }
        }
      }
      ++data_row;
    }
    if (eol == out.size()) break;
    pos = eol + 1;
  }
  if (corrupted != nullptr) *corrupted = touched;
  return out;
}

}  // namespace mtlscope::ingest
