#include "mtlscope/ingest/retry.hpp"

#include <chrono>
#include <thread>

namespace mtlscope::ingest {

RetryCounters& retry_counters() {
  static RetryCounters counters;
  return counters;
}

void reset_retry_counters() {
  RetryCounters& counters = retry_counters();
  counters.eintr_retries.store(0, std::memory_order_relaxed);
  counters.short_reads.store(0, std::memory_order_relaxed);
  counters.backoff_sleeps.store(0, std::memory_order_relaxed);
}

void backoff_sleep(int attempt) {
  if (attempt < 0) attempt = 0;
  if (attempt >= kMaxTransientRetries) attempt = kMaxTransientRetries - 1;
  const auto delay = std::chrono::microseconds(100) * (1 << attempt);
  std::this_thread::sleep_for(delay);
}

}  // namespace mtlscope::ingest
