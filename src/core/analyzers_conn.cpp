// Connection-level analyzers (Figures 1-2, Tables 2-6, 10-12, §5.1).
#include <algorithm>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/net/services.hpp"

namespace mtlscope::core {
namespace {

/// Client identity key: the IPv4 address (the paper's "number of client
/// IPs" estimate). IPv6 addresses hash into the same space.
std::uint32_t client_key(const EnrichedConnection& conn) {
  // The pipeline's enrichment memo resolves this per unique address; the
  // parse below is the fallback for hand-built test connections.
  if (conn.client_key != 0) return conn.client_key;
  const auto addr = net::IpAddress::parse(conn.ssl->orig_h);
  if (!addr) return 0;
  if (addr->is_v4()) return addr->v4_value();
  std::uint32_t h = 0x811c9dc5;
  for (const auto b : addr->v6_bytes()) h = (h ^ b) * 0x01000193;
  return h;
}

std::string issuer_label(const CertFacts& facts) {
  if (!facts.issuer_org.empty()) return facts.issuer_org.str();
  if (!facts.issuer_cn.empty()) return facts.issuer_cn.str();
  return "(missing)";
}

}  // namespace

const char* cert_scope_name(CertScope scope) {
  switch (scope) {
    case CertScope::kMutual:
      return "mutual TLS";
    case CertScope::kShared:
      return "shared (server+client)";
    case CertScope::kNonMutual:
      return "non-mutual TLS";
  }
  return "?";
}

// --- Figure 1 ----------------------------------------------------------------

void PrevalenceAnalyzer::observe(const EnrichedConnection& conn) {
  auto& point = months_[util::month_index(conn.ts)];
  point.month_index = util::month_index(conn.ts);
  ++point.total;
  if (conn.mutual) {
    ++point.mutual;
    if (conn.direction == Direction::kInbound) {
      ++point.mutual_inbound;
    } else {
      ++point.mutual_outbound;
    }
  }
}

void PrevalenceAnalyzer::merge(PrevalenceAnalyzer&& other) {
  for (const auto& [idx, point] : other.months_) {
    auto& mine = months_[idx];
    mine.month_index = idx;
    mine.total += point.total;
    mine.mutual += point.mutual;
    mine.mutual_inbound += point.mutual_inbound;
    mine.mutual_outbound += point.mutual_outbound;
  }
}

std::vector<PrevalenceAnalyzer::MonthPoint> PrevalenceAnalyzer::series()
    const {
  std::vector<MonthPoint> out;
  out.reserve(months_.size());
  for (const auto& [idx, point] : months_) out.push_back(point);
  return out;
}

// --- Table 2 -------------------------------------------------------------------

void ServicePortAnalyzer::observe(const EnrichedConnection& conn) {
  const std::size_t quadrant =
      (conn.direction == Direction::kOutbound ? 2u : 0u) +
      (conn.mutual ? 1u : 0u);
  const std::uint16_t port = conn.ssl->resp_p;
  // The paper groups Globus's 50000-51000 range as one service row.
  const std::string label = (port >= 50000 && port <= 51000)
                                ? "50000-51000"
                                : std::to_string(port);
  ++counts_[quadrant][label];
  ++totals_[quadrant];
}

void ServicePortAnalyzer::merge(ServicePortAnalyzer&& other) {
  for (std::size_t q = 0; q < counts_.size(); ++q) {
    for (const auto& [label, count] : other.counts_[q]) {
      counts_[q][label] += count;
    }
    totals_[q] += other.totals_[q];
  }
}

std::vector<ServicePortAnalyzer::PortShare> ServicePortAnalyzer::top(
    Direction direction, bool mutual, std::size_t n) const {
  const std::size_t quadrant =
      (direction == Direction::kOutbound ? 2u : 0u) + (mutual ? 1u : 0u);
  std::vector<PortShare> shares;
  for (const auto& [label, count] : counts_[quadrant]) {
    PortShare s;
    s.port_label = label;
    s.connections = count;
    s.share = totals_[quadrant] == 0
                  ? 0
                  : 100.0 * static_cast<double>(count) /
                        static_cast<double>(totals_[quadrant]);
    const bool university = direction == Direction::kInbound;
    if (label == "50000-51000") {
      s.service = "Corp. - Globus";
    } else {
      s.service = net::service_label(
          static_cast<std::uint16_t>(std::stoi(label)), university);
    }
    shares.push_back(std::move(s));
  }
  std::sort(shares.begin(), shares.end(),
            [](const PortShare& a, const PortShare& b) {
              return a.connections > b.connections;
            });
  if (shares.size() > n) shares.resize(n);
  return shares;
}

// --- Table 3 ----------------------------------------------------------------------

void InboundAssociationAnalyzer::observe(const EnrichedConnection& conn) {
  if (conn.direction != Direction::kInbound || !conn.mutual) return;
  ++total_conns_;
  auto& acc = acc_[conn.assoc];
  ++acc.connections;
  const std::uint32_t client = client_key(conn);
  acc.clients.insert(client);
  if (conn.client_leaf != nullptr) {
    acc.clients_by_category[conn.client_leaf->issuer_category].insert(client);
  }
}

void InboundAssociationAnalyzer::merge(InboundAssociationAnalyzer&& other) {
  total_conns_ += other.total_conns_;
  for (auto& [assoc, acc] : other.acc_) {
    auto& mine = acc_[assoc];
    mine.connections += acc.connections;
    mine.clients.insert(acc.clients.begin(), acc.clients.end());
    for (auto& [category, clients] : acc.clients_by_category) {
      mine.clients_by_category[category].insert(clients.begin(),
                                                clients.end());
    }
  }
}

std::vector<InboundAssociationAnalyzer::Row> InboundAssociationAnalyzer::rows()
    const {
  std::vector<Row> out;
  for (const auto& [assoc, acc] : acc_) {
    Row row;
    row.assoc = assoc;
    row.connections = acc.connections;
    row.clients = acc.clients.size();
    for (const auto& [category, clients] : acc.clients_by_category) {
      row.issuer_shares.emplace_back(
          category, acc.clients.empty()
                        ? 0
                        : 100.0 * static_cast<double>(clients.size()) /
                              static_cast<double>(acc.clients.size()));
    }
    std::sort(row.issuer_shares.begin(), row.issuer_shares.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) {
              return a.connections > b.connections;
            });
  return out;
}

std::uint64_t InboundAssociationAnalyzer::total_clients() const {
  std::set<std::uint32_t> all;
  for (const auto& [assoc, acc] : acc_) {
    all.insert(acc.clients.begin(), acc.clients.end());
  }
  return all.size();
}

// --- Figure 2 ---------------------------------------------------------------------

void OutboundFlowAnalyzer::observe(const EnrichedConnection& conn) {
  if (conn.direction != Direction::kOutbound || !conn.mutual) return;
  if (conn.sni.empty()) return;  // Fig 2: flows with a valid SNI only
  ++with_sni_;
  if (!conn.sld.empty()) ++sld_counts_[conn.sld.str()];
  if (conn.server_leaf == nullptr || conn.client_leaf == nullptr) return;
  const auto key = std::make_tuple(
      conn.tld.empty() ? std::string("(none)") : conn.tld.str(),
      static_cast<int>(conn.server_leaf->issuer_class),
      static_cast<int>(conn.client_leaf->issuer_category));
  ++flows_[key];
  if (conn.server_leaf->issuer_class == trust::IssuerClass::kPublic) {
    ++public_server_conns_;
    if (conn.client_leaf->issuer_category ==
        IssuerCategory::kPrivateMissingIssuer) {
      ++public_server_missing_client_;
    }
  }
}

void OutboundFlowAnalyzer::merge(OutboundFlowAnalyzer&& other) {
  for (const auto& [sld, count] : other.sld_counts_) sld_counts_[sld] += count;
  for (const auto& [key, count] : other.flows_) flows_[key] += count;
  with_sni_ += other.with_sni_;
  public_server_conns_ += other.public_server_conns_;
  public_server_missing_client_ += other.public_server_missing_client_;
}

std::vector<OutboundFlowAnalyzer::Flow> OutboundFlowAnalyzer::top_flows(
    std::size_t n) const {
  std::vector<Flow> out;
  for (const auto& [key, count] : flows_) {
    Flow f;
    f.tld = std::get<0>(key);
    f.server_class = static_cast<trust::IssuerClass>(std::get<1>(key));
    f.client_category = static_cast<IssuerCategory>(std::get<2>(key));
    f.connections = count;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Flow& a, const Flow& b) {
    return a.connections > b.connections;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<std::pair<std::string, double>> OutboundFlowAnalyzer::top_slds(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> counts(
      sld_counts_.begin(), sld_counts_.end());
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::pair<std::string, double>> out;
  for (std::size_t i = 0; i < counts.size() && i < n; ++i) {
    out.emplace_back(counts[i].first,
                     with_sni_ == 0
                         ? 0
                         : 100.0 * static_cast<double>(counts[i].second) /
                               static_cast<double>(with_sni_));
  }
  return out;
}

double OutboundFlowAnalyzer::public_server_missing_client_issuer_pct() const {
  if (public_server_conns_ == 0) return 0;
  return 100.0 * static_cast<double>(public_server_missing_client_) /
         static_cast<double>(public_server_conns_);
}

double OutboundFlowAnalyzer::missing_issuer_client_cert_pct(
    const Pipeline& pipeline) {
  std::uint64_t outbound_clients = 0;
  std::uint64_t missing = 0;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.used_as_client || !facts.seen_outbound_with_sni) continue;
    ++outbound_clients;
    if (facts.issuer_category == IssuerCategory::kPrivateMissingIssuer) {
      ++missing;
    }
  }
  if (outbound_clients == 0) return 0;
  return 100.0 * static_cast<double>(missing) /
         static_cast<double>(outbound_clients);
}

// --- Table 4 / Table 10 ---------------------------------------------------------------

void DummyIssuerAnalyzer::observe(const EnrichedConnection& conn) {
  if (!conn.mutual) return;
  const bool client_dummy =
      conn.client_leaf != nullptr &&
      conn.client_leaf->issuer_category == IssuerCategory::kPrivateDummy;
  const bool server_dummy =
      conn.server_leaf != nullptr &&
      conn.server_leaf->issuer_category == IssuerCategory::kPrivateDummy;
  if (!client_dummy && !server_dummy) return;

  const std::uint32_t client = client_key(conn);
  const auto record = [&](bool client_side, const CertFacts& facts) {
    Key key{conn.direction, client_side, issuer_label(facts)};
    auto& row = rows_[key];
    row.direction = conn.direction;
    row.client_side = client_side;
    row.dummy_org = key.dummy_org;
    // Inbound groups servers by SLD, outbound by TLD (Table 4 caption).
    const std::string group =
        conn.direction == Direction::kInbound
            ? (conn.sld.empty() ? std::string("(missing)") : conn.sld.str())
            : (conn.tld.empty() ? std::string("(missing)") : conn.tld.str());
    row.server_groups.insert(group);
    row.clients.insert(client);
    ++row.connections;
  };
  if (client_dummy) record(true, *conn.client_leaf);
  if (server_dummy) record(false, *conn.server_leaf);

  if (client_dummy && server_dummy) {
    const std::string key = conn.sld.str() + "|" +
                            issuer_label(*conn.client_leaf) + "|" +
                            issuer_label(*conn.server_leaf);
    auto& row = both_[key];
    if (row.clients.empty()) {
      row.sld = conn.sld;
      row.client_org = issuer_label(*conn.client_leaf);
      row.server_org = issuer_label(*conn.server_leaf);
      row.first = row.last = conn.ts;
    }
    row.clients.insert(client);
    row.first = std::min(row.first, conn.ts);
    row.last = std::max(row.last, conn.ts);
  }

  // §5.1.1 weak parameters (client side only, as the paper reports).
  if (client_dummy) {
    std::string tuple;
    tuple.reserve(conn.ssl->orig_h.size() + conn.client_leaf->fuid.size() +
                  conn.ssl->resp_h.size() + 20 + 3);
    tuple += conn.ssl->orig_h.view();
    tuple += '|';
    tuple += conn.client_leaf->fuid.view();
    tuple += '|';
    tuple += conn.ssl->resp_h.view();
    tuple += '|';
    if (conn.server_leaf != nullptr) tuple += conn.server_leaf->fuid.view();
    if (conn.client_leaf->version == 1) {
      weak_.v1_certs.insert(conn.client_leaf->fuid);
      if (v1_tuple_set_.insert(tuple).second) ++weak_.v1_tuples;
    }
    if (conn.client_leaf->key_bits == 1024) {
      weak_.weak_key_certs.insert(conn.client_leaf->fuid);
      if (weak_tuple_set_.insert(tuple).second) ++weak_.weak_key_tuples;
    }
  }
}

void DummyIssuerAnalyzer::merge(DummyIssuerAnalyzer&& other) {
  for (auto& [key, row] : other.rows_) {
    const auto it = rows_.find(key);
    if (it == rows_.end()) {
      rows_.emplace(key, std::move(row));
      continue;
    }
    Row& mine = it->second;
    mine.server_groups.insert(row.server_groups.begin(),
                              row.server_groups.end());
    mine.clients.insert(row.clients.begin(), row.clients.end());
    mine.connections += row.connections;
  }
  for (auto& [key, row] : other.both_) {
    const auto it = both_.find(key);
    if (it == both_.end()) {
      both_.emplace(key, std::move(row));
      continue;
    }
    BothEndsRow& mine = it->second;
    mine.clients.insert(row.clients.begin(), row.clients.end());
    mine.first = std::min(mine.first, row.first);
    mine.last = std::max(mine.last, row.last);
  }
  weak_.v1_certs.insert(other.weak_.v1_certs.begin(),
                        other.weak_.v1_certs.end());
  weak_.weak_key_certs.insert(other.weak_.weak_key_certs.begin(),
                              other.weak_.weak_key_certs.end());
  v1_tuple_set_.insert(other.v1_tuple_set_.begin(), other.v1_tuple_set_.end());
  weak_tuple_set_.insert(other.weak_tuple_set_.begin(),
                         other.weak_tuple_set_.end());
  // Tuple counts track the (deduplicated) tuple sets, so re-derive them
  // from the unions rather than adding shard counts.
  weak_.v1_tuples = v1_tuple_set_.size();
  weak_.weak_key_tuples = weak_tuple_set_.size();
}

std::vector<DummyIssuerAnalyzer::Row> DummyIssuerAnalyzer::rows() const {
  std::vector<Row> out;
  for (const auto& [key, row] : rows_) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.connections > b.connections;
  });
  return out;
}

std::vector<DummyIssuerAnalyzer::BothEndsRow>
DummyIssuerAnalyzer::both_ends_rows() const {
  std::vector<BothEndsRow> out;
  for (const auto& [key, row] : both_) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const BothEndsRow& a, const BothEndsRow& b) {
              return a.clients.size() > b.clients.size();
            });
  return out;
}

// --- §5.1.2 serial collisions -------------------------------------------------------------

bool SerialCollisionAnalyzer::candidate(const CertFacts& facts) {
  // Dummy serials are short; unique serials in this corpus (and from
  // modern CAs) are long random values. Bounding candidate length keeps
  // the group map small.
  return facts.serial_hex.size() <= 6;
}

void SerialCollisionAnalyzer::observe(const EnrichedConnection& conn) {
  if (!conn.mutual) return;
  const bool server_candidate =
      conn.server_leaf != nullptr && candidate(*conn.server_leaf);
  const bool client_candidate =
      conn.client_leaf != nullptr && candidate(*conn.client_leaf);
  if (!server_candidate && !client_candidate) return;

  const std::uint32_t client = client_key(conn);
  const auto record = [&](const CertFacts& facts, bool as_server) {
    const auto key = std::make_tuple(issuer_label(facts),
                                     facts.serial_hex.str(),
                                     static_cast<int>(conn.direction));
    auto& group = groups_[key];
    group.issuer_org = issuer_label(facts);
    group.serial = facts.serial_hex.str();
    group.direction = conn.direction;
    (as_server ? group.server_certs : group.client_certs).insert(facts.fuid);
    group.clients.insert(client);
    ++group.connections;
    if (server_candidate && client_candidate) {
      if (as_server) ++group.both_endpoint_connections;
    }
  };
  if (server_candidate) record(*conn.server_leaf, true);
  if (client_candidate) record(*conn.client_leaf, false);
}

void SerialCollisionAnalyzer::merge(SerialCollisionAnalyzer&& other) {
  for (auto& [key, group] : other.groups_) {
    const auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(group));
      continue;
    }
    Group& mine = it->second;
    mine.server_certs.insert(group.server_certs.begin(),
                             group.server_certs.end());
    mine.client_certs.insert(group.client_certs.begin(),
                             group.client_certs.end());
    mine.clients.insert(group.clients.begin(), group.clients.end());
    mine.connections += group.connections;
    mine.both_endpoint_connections += group.both_endpoint_connections;
  }
  for (std::size_t d = 0; d < involved_clients_.size(); ++d) {
    involved_clients_[d].insert(other.involved_clients_[d].begin(),
                                other.involved_clients_[d].end());
  }
}

std::vector<SerialCollisionAnalyzer::Group>
SerialCollisionAnalyzer::collision_groups() const {
  std::vector<Group> out;
  for (const auto& [key, group] : groups_) {
    if (group.server_certs.size() + group.client_certs.size() > 1) {
      out.push_back(group);
    }
  }
  std::sort(out.begin(), out.end(), [](const Group& a, const Group& b) {
    return a.server_certs.size() + a.client_certs.size() >
           b.server_certs.size() + b.client_certs.size();
  });
  return out;
}

std::uint64_t SerialCollisionAnalyzer::involved_clients(Direction d) const {
  std::set<std::uint32_t> clients;
  for (const auto& [key, group] : groups_) {
    if (group.direction != d) continue;
    if (group.server_certs.size() + group.client_certs.size() > 1) {
      clients.insert(group.clients.begin(), group.clients.end());
    }
  }
  return clients.size();
}

// --- Table 5 / 6 ------------------------------------------------------------------------------

void SharedCertAnalyzer::observe(const EnrichedConnection& conn) {
  if (conn.server_leaf == nullptr || conn.client_leaf == nullptr) return;
  if (conn.server_leaf->fuid != conn.client_leaf->fuid) return;

  same_conn_fuids_.insert(conn.server_leaf->fuid);
  ++same_conn_conns_[conn.direction == Direction::kOutbound ? 1 : 0];

  // Self-signed certificates (no issuer org, issuer CN == subject CN —
  // the WebRTC/DTLS population) collapse into one group; everything else
  // groups by issuer, as in Table 5.
  const bool self_signed = conn.server_leaf->issuer_org.empty() &&
                           conn.server_leaf->issuer_cn ==
                               conn.server_leaf->subject_cn;
  const std::string issuer =
      self_signed ? "(self-signed)" : issuer_label(*conn.server_leaf);
  const std::string key = std::string(conn.direction == Direction::kInbound
                                          ? "in|"
                                          : "out|") +
                          conn.sld.str() + "|" + issuer;
  auto& row = same_conn_[key];
  if (row.connections == 0) {
    row.sld = conn.sld;
    row.issuer = issuer;
    row.public_issuer =
        conn.server_leaf->issuer_class == trust::IssuerClass::kPublic;
    row.first = row.last = conn.ts;
  }
  row.clients.insert(client_key(conn));
  row.first = std::min(row.first, conn.ts);
  row.last = std::max(row.last, conn.ts);
  ++row.connections;
}

void SharedCertAnalyzer::merge(SharedCertAnalyzer&& other) {
  for (auto& [key, row] : other.same_conn_) {
    const auto it = same_conn_.find(key);
    if (it == same_conn_.end()) {
      same_conn_.emplace(key, std::move(row));
      continue;
    }
    SameConnRow& mine = it->second;
    mine.clients.insert(row.clients.begin(), row.clients.end());
    mine.first = std::min(mine.first, row.first);
    mine.last = std::max(mine.last, row.last);
    mine.connections += row.connections;
  }
  for (std::size_t d = 0; d < same_conn_conns_.size(); ++d) {
    same_conn_conns_[d] += other.same_conn_conns_[d];
  }
  same_conn_fuids_.insert(other.same_conn_fuids_.begin(),
                          other.same_conn_fuids_.end());
}

std::vector<SharedCertAnalyzer::SameConnRow>
SharedCertAnalyzer::same_connection_rows() const {
  std::vector<SameConnRow> out;
  for (const auto& [key, row] : same_conn_) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const SameConnRow& a, const SameConnRow& b) {
              return a.clients.size() > b.clients.size();
            });
  return out;
}

std::uint64_t SharedCertAnalyzer::same_connection_conns(Direction d) const {
  return same_conn_conns_[d == Direction::kOutbound ? 1 : 0];
}

SharedCertAnalyzer::SubnetQuantiles SharedCertAnalyzer::subnet_quantiles(
    const Pipeline& pipeline) const {
  std::vector<std::size_t> server_counts;
  std::vector<std::size_t> client_counts;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.used_as_server || !facts.used_as_client) continue;
    if (same_conn_fuids_.contains(facts.fuid)) continue;  // §5.2.2

    server_counts.push_back(facts.server_subnets.size());
    client_counts.push_back(facts.client_subnets.size());
  }
  const auto quantiles = [](std::vector<std::size_t>& counts) {
    std::array<std::size_t, 4> q{};
    if (counts.empty()) return q;
    std::sort(counts.begin(), counts.end());
    const auto at = [&counts](double p) {
      const std::size_t idx = std::min(
          counts.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(counts.size())));
      return counts[idx];
    };
    q = {at(0.50), at(0.75), at(0.99), counts.back()};
    return q;
  };
  SubnetQuantiles out;
  out.cross_shared_certs = server_counts.size();
  out.server = quantiles(server_counts);
  out.client = quantiles(client_counts);
  return out;
}

// --- Figure 3 / Tables 11-12 ---------------------------------------------------------------------

void IncorrectDateAnalyzer::observe(const EnrichedConnection& conn) {
  const bool client_wrong = conn.client_leaf != nullptr &&
                            conn.client_leaf->validity.dates_incorrect();
  const bool server_wrong = conn.server_leaf != nullptr &&
                            conn.server_leaf->validity.dates_incorrect();
  if (!client_wrong && !server_wrong) return;

  const std::uint32_t client = client_key(conn);
  const auto record = [&](std::map<std::string, Row>& sink,
                          const CertFacts& facts, bool client_side) {
    const std::string key = conn.sld.str() + "|" + issuer_label(facts) + "|" +
                            (client_side ? "C" : "S") + "|" +
                            std::to_string(facts.validity.not_before);
    auto& row = sink[key];
    if (row.certs.empty()) {
      row.sld = conn.sld;
      row.client_side = client_side;
      row.issuer = issuer_label(facts);
      row.not_before = facts.validity.not_before;
      row.not_after = facts.validity.not_after;
      row.first = row.last = conn.ts;
    }
    row.clients.insert(client);
    row.certs.insert(facts.fuid);
    row.first = std::min(row.first, conn.ts);
    row.last = std::max(row.last, conn.ts);
  };
  if (client_wrong) record(rows_, *conn.client_leaf, true);
  if (server_wrong) record(rows_, *conn.server_leaf, false);
  if (client_wrong && server_wrong) {
    record(both_, *conn.client_leaf, true);
  }
}

void IncorrectDateAnalyzer::merge(IncorrectDateAnalyzer&& other) {
  const auto merge_rows = [](std::map<std::string, Row>& into,
                             std::map<std::string, Row>&& from) {
    for (auto& [key, row] : from) {
      const auto it = into.find(key);
      if (it == into.end()) {
        into.emplace(key, std::move(row));
        continue;
      }
      Row& mine = it->second;
      mine.clients.insert(row.clients.begin(), row.clients.end());
      mine.certs.insert(row.certs.begin(), row.certs.end());
      mine.first = std::min(mine.first, row.first);
      mine.last = std::max(mine.last, row.last);
    }
  };
  merge_rows(rows_, std::move(other.rows_));
  merge_rows(both_, std::move(other.both_));
}

std::vector<IncorrectDateAnalyzer::Row> IncorrectDateAnalyzer::rows() const {
  std::vector<Row> out;
  for (const auto& [key, row] : rows_) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.clients.size() > b.clients.size();
  });
  return out;
}

std::vector<IncorrectDateAnalyzer::Row> IncorrectDateAnalyzer::both_ends_rows()
    const {
  std::vector<Row> out;
  for (const auto& [key, row] : both_) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.clients.size() > b.clients.size();
  });
  return out;
}

}  // namespace mtlscope::core
