#include "mtlscope/core/result_doc.hpp"

#include <cstdio>
#include <stdexcept>

namespace mtlscope::core {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

Cell Cell::text(std::string s) {
  Cell cell;
  cell.kind_ = Kind::kText;
  cell.text_ = std::move(s);
  return cell;
}

Cell Cell::count(std::uint64_t n) {
  Cell cell;
  cell.kind_ = Kind::kCount;
  cell.count_ = n;
  return cell;
}

Cell Cell::number(double v, int decimals) {
  Cell cell;
  cell.kind_ = Kind::kDouble;
  cell.value_ = v;
  cell.decimals_ = decimals;
  return cell;
}

Cell Cell::percent(double numerator, double denominator, int decimals) {
  Cell cell;
  cell.kind_ = Kind::kPercent;
  cell.value_ = numerator;
  cell.denominator_ = denominator;
  cell.decimals_ = decimals;
  return cell;
}

Cell Cell::percent_value(double pct, int decimals) {
  Cell cell;
  cell.kind_ = Kind::kPercentValue;
  cell.value_ = pct;
  cell.decimals_ = decimals;
  return cell;
}

std::string Cell::rendered() const {
  switch (kind_) {
    case Kind::kText:
      return text_;
    case Kind::kCount:
      return format_count(count_);
    case Kind::kDouble:
      return format_double(value_, decimals_);
    case Kind::kPercent:
      return format_percent(value_, denominator_, decimals_);
    case Kind::kPercentValue:
      return format_double(value_, decimals_) + "%";
  }
  return text_;
}

bool Cell::has_value() const {
  switch (kind_) {
    case Kind::kText:
      return false;
    case Kind::kPercent:
      return denominator_ != 0;
    default:
      return true;
  }
}

double Cell::value() const {
  switch (kind_) {
    case Kind::kCount:
      return static_cast<double>(count_);
    case Kind::kPercent:
      return denominator_ == 0 ? 0 : 100.0 * value_ / denominator_;
    default:
      return value_;
  }
}

const char* column_type_name(ColumnType type) {
  switch (type) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kCount:
      return "count";
    case ColumnType::kPercent:
      return "percent";
    case ColumnType::kDouble:
      return "double";
  }
  return "string";
}

ResultTable::ResultTable(std::string id, std::vector<Column> columns)
    : id_(std::move(id)), columns_(std::move(columns)) {}

void ResultTable::add_row(std::vector<Cell> cells) {
  if (cells.size() > columns_.size()) {
    throw std::invalid_argument(
        "ResultTable::add_row: " + std::to_string(cells.size()) +
        " cells exceed " + std::to_string(columns_.size()) +
        " columns in table '" + id_ + "'");
  }
  while (cells.size() < columns_.size()) cells.push_back(Cell::text(""));
  rows_.push_back(std::move(cells));
}

std::string ResultTable::render_text() const {
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const auto& column : columns_) headers.push_back(column.name);
  TextTable table(std::move(headers));
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(cell.rendered());
    table.add_row(std::move(cells));
  }
  return table.render();
}

ResultTable& ResultDoc::add_table(std::string id,
                                  std::vector<Column> columns) {
  ResultBlock block;
  block.kind = ResultBlock::Kind::kTable;
  block.table = ResultTable(std::move(id), std::move(columns));
  blocks_.push_back(std::move(block));
  return blocks_.back().table;
}

void ResultDoc::add_line(std::string line) {
  ResultBlock block;
  block.kind = ResultBlock::Kind::kLine;
  block.line = std::move(line);
  blocks_.push_back(std::move(block));
}

void ResultDoc::add_check(std::string text, std::string label, int status) {
  ResultBlock block;
  block.kind = ResultBlock::Kind::kCheck;
  block.check = Check{std::move(text), std::move(label), status};
  blocks_.push_back(std::move(block));
}

void ResultDoc::add_check(std::string label, bool ok) {
  std::string text = "  " + label + ": " + (ok ? "OK" : "MISS");
  add_check(std::move(text), std::move(label), ok ? 1 : 0);
}

std::vector<const ResultTable*> ResultDoc::tables() const {
  std::vector<const ResultTable*> out;
  for (const auto& block : blocks_) {
    if (block.kind == ResultBlock::Kind::kTable) out.push_back(&block.table);
  }
  return out;
}

namespace {

constexpr const char* kBannerRule =
    "================================================================";

std::string render_banner(const ResultDoc& doc) {
  std::string out;
  out += strf("%s\n", kBannerRule);
  out += strf("%s\n", doc.title.c_str());
  if (doc.run.file_mode) {
    out += strf("input: %s + %s\n", doc.run.ssl_log.c_str(),
                doc.run.x509_log.c_str());
  } else {
    out += strf("model: cert_scale=1:%g conn_scale=1:%g seed=%llu\n",
                doc.run.cert_scale, doc.run.conn_scale,
                static_cast<unsigned long long>(doc.run.seed));
  }
  if (!doc.run.stable_output) {
    out += strf("threads: %zu%s\n", doc.run.threads,
                doc.run.threads_requested == 0 ? " (hardware concurrency)"
                                               : "");
  }
  out += strf("%s\n", kBannerRule);
  return out;
}

/// The data-quality footer line: printed whenever a best-effort run
/// quarantined anything — including under --stable-output, because every
/// field is a pure function of the input bytes.
std::string render_data_quality_line(const DataQualityInfo& dq) {
  std::string out = strf(
      "\n[data quality: %llu rows quarantined of %llu parsed (ssl %llu, "
      "x509 %llu), policy=%s",
      static_cast<unsigned long long>(dq.quarantined_total()),
      static_cast<unsigned long long>(dq.quarantined_total() + dq.rows_ok),
      static_cast<unsigned long long>(dq.ssl_quarantined),
      static_cast<unsigned long long>(dq.x509_quarantined),
      dq.policy.c_str());
  if (dq.io_events > 0) {
    out += strf(", io_events=%llu",
                static_cast<unsigned long long>(dq.io_events));
  }
  out += "]\n";
  // Per-reason breakdown table: one line per (input, reason) with exact
  // counts — unlike the sample list, never capped.
  for (const auto& reason : dq.reasons) {
    out += strf("  %-5s %-32s %llu\n", reason.input.c_str(),
                reason.reason.c_str(),
                static_cast<unsigned long long>(reason.count));
  }
  return out;
}

std::string render_footer(const ResultDoc& doc) {
  if (!doc.run.present) return "";
  std::string out;
  if (doc.run.data_quality.present) {
    out += render_data_quality_line(doc.run.data_quality);
  }
  if (doc.run.stable_output) return out;
  if (doc.run.state_format_version != 0) {
    out += strf("\n[state: format v%u, digest %s]\n",
                doc.run.state_format_version, doc.run.state_digest.c_str());
  }
  if (doc.run.file_mode) {
    out += "\n";
  } else if (doc.run.gen_stats) {
    out += strf(
        "\n[run: %zu connections generated, %zu mutual, %zu certificates "
        "minted]\n",
        doc.run.gen_connections, doc.run.gen_mutual,
        doc.run.gen_certificates);
  }
  out += strf("[pipeline: %zu threads, %zu records in %.3f s — %.0f "
              "records/s]\n",
              doc.run.threads, doc.run.records, doc.run.wall_seconds,
              doc.run.records_per_second());
  return out;
}

}  // namespace

std::string render_body_text(const ResultDoc& doc) {
  std::string out;
  for (const auto& block : doc.blocks()) {
    switch (block.kind) {
      case ResultBlock::Kind::kTable:
        out += block.table.render_text();
        break;
      case ResultBlock::Kind::kLine:
        out += block.line;
        out += "\n";
        break;
      case ResultBlock::Kind::kCheck:
        out += block.check.text;
        out += "\n";
        break;
    }
  }
  return out;
}

std::string render_text(const ResultDoc& doc) {
  return render_banner(doc) + render_body_text(doc) + render_footer(doc);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Minimal deterministic JSON writer: keys appear in call order, floats
/// print with a fixed decimal count, no locale involvement anywhere.
class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    comma();
    newline();
    out_ += '"';
    out_ += json_escape(name);
    out_ += indent_ > 0 ? "\": " : "\":";
    just_keyed_ = true;
  }

  void value_string(const std::string& v) {
    prefix();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
  }
  void value_raw(const std::string& v) {
    prefix();
    out_ += v;
  }
  void value_uint(std::uint64_t v) { value_raw(std::to_string(v)); }
  void value_double(double v, int decimals) {
    value_raw(format_double(v, decimals));
  }
  void value_bool(bool v) { value_raw(v ? "true" : "false"); }
  void value_null() { value_raw("null"); }

  std::string str() && { return std::move(out_); }

 private:
  void open(char c) {
    prefix();
    out_ += c;
    ++depth_;
    first_.push_back(true);
  }
  void close(char c) {
    --depth_;
    const bool empty = first_.back();
    first_.pop_back();
    if (!empty) newline();
    out_ += c;
  }
  void prefix() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    comma();
    newline();
  }
  void comma() {
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void newline() {
    if (indent_ <= 0 || depth_ == 0) return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  std::vector<bool> first_;
  bool just_keyed_ = false;
};

void write_cell(JsonWriter& w, const Cell& cell) {
  w.begin_object();
  w.key("kind");
  switch (cell.kind()) {
    case Cell::Kind::kText:
      w.value_string("string");
      break;
    case Cell::Kind::kCount:
      w.value_string("count");
      break;
    case Cell::Kind::kDouble:
      w.value_string("double");
      break;
    case Cell::Kind::kPercent:
    case Cell::Kind::kPercentValue:
      w.value_string("percent");
      break;
  }
  if (cell.kind() != Cell::Kind::kText) {
    w.key("value");
    if (!cell.has_value()) {
      w.value_null();
    } else if (cell.kind() == Cell::Kind::kCount) {
      w.value_uint(cell.count_value());
    } else {
      w.value_double(cell.value(), cell.decimals());
    }
  }
  w.key("text");
  w.value_string(cell.rendered());
  w.end_object();
}

void write_table(JsonWriter& w, const ResultTable& table) {
  w.begin_object();
  w.key("type");
  w.value_string("table");
  w.key("id");
  w.value_string(table.id());
  w.key("columns");
  w.begin_array();
  for (const auto& column : table.columns()) {
    w.begin_object();
    w.key("name");
    w.value_string(column.name);
    w.key("kind");
    w.value_string(column_type_name(column.type));
    w.end_object();
  }
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const auto& row : table.rows()) {
    w.begin_array();
    for (const auto& cell : row) write_cell(w, cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string render_json(const ResultDoc& doc, int indent) {
  return render_json_with_perf(doc, indent, /*include_perf=*/false);
}

std::string render_json_with_perf(const ResultDoc& doc, int indent,
                                  bool include_perf) {
  JsonWriter w(indent);
  w.begin_object();
  w.key("experiment");
  w.value_string(doc.experiment);
  w.key("anchor");
  w.value_string(doc.anchor);
  w.key("title");
  w.value_string(doc.title);
  w.key("config");
  w.begin_object();
  if (doc.run.file_mode) {
    w.key("mode");
    w.value_string("file");
    w.key("ssl_log");
    w.value_string(doc.run.ssl_log);
    w.key("x509_log");
    w.value_string(doc.run.x509_log);
  } else {
    w.key("mode");
    w.value_string("synthetic");
    w.key("cert_scale");
    w.value_raw(strf("%g", doc.run.cert_scale));
    w.key("conn_scale");
    w.value_raw(strf("%g", doc.run.conn_scale));
  }
  w.key("seed");
  w.value_uint(doc.run.seed);
  w.end_object();
  if (doc.run.present) {
    w.key("records");
    w.value_uint(doc.run.records);
  }
  if (doc.run.data_quality.present) {
    // Canonical, not perf: quarantine counts and samples are pure
    // functions of the input bytes, so they are byte-stable across
    // thread counts, chunk sizes, and --stable-output.
    const DataQualityInfo& dq = doc.run.data_quality;
    w.key("data_quality");
    w.begin_object();
    w.key("policy");
    w.value_string(dq.policy);
    w.key("rows_ok");
    w.value_uint(dq.rows_ok);
    w.key("quarantined");
    w.begin_object();
    w.key("ssl");
    w.value_uint(dq.ssl_quarantined);
    w.key("x509");
    w.value_uint(dq.x509_quarantined);
    w.end_object();
    w.key("io_events");
    w.value_uint(dq.io_events);
    w.key("reasons");
    w.begin_array();
    for (const auto& reason : dq.reasons) {
      w.begin_object();
      w.key("input");
      w.value_string(reason.input);
      w.key("reason");
      w.value_string(reason.reason);
      w.key("count");
      w.value_uint(reason.count);
      w.end_object();
    }
    w.end_array();
    w.key("samples");
    w.begin_array();
    for (const auto& sample : dq.samples) {
      w.begin_object();
      w.key("input");
      w.value_string(sample.input);
      w.key("byte_offset");
      w.value_uint(sample.byte_offset);
      w.key("line");
      w.value_uint(sample.line);
      w.key("reason");
      w.value_string(sample.reason);
      w.key("digest");
      w.value_string(sample.digest);
      w.end_object();
    }
    w.end_array();
    w.key("samples_truncated");
    w.value_bool(dq.samples_truncated);
    w.end_object();
  }
  if (doc.run.gen_stats) {
    w.key("generated");
    w.begin_object();
    w.key("connections");
    w.value_uint(doc.run.gen_connections);
    w.key("mutual");
    w.value_uint(doc.run.gen_mutual);
    w.key("certificates");
    w.value_uint(doc.run.gen_certificates);
    w.end_object();
  }
  if (include_perf && doc.run.present) {
    // Volatile run counters. Deliberately outside the canonical surface:
    // wall clock and throughput differ run to run, and the thread count
    // differs by flag — none of it may reach golden files.
    w.key("perf");
    w.begin_object();
    w.key("group");
    w.value_string(doc.run.perf_group);
    w.key("threads");
    w.value_uint(doc.run.threads);
    w.key("wall_seconds");
    w.value_double(doc.run.wall_seconds, 6);
    w.key("records_per_second");
    w.value_double(doc.run.records_per_second(), 0);
    w.key("parse_bytes");
    w.value_uint(doc.run.parse_bytes);
    w.key("parse_bytes_per_second");
    w.value_double(doc.run.parse_bytes_per_second(), 0);
    if (!doc.run.scan.empty()) {
      // Enrichment memoization + scan choice (DESIGN §15). Volatile:
      // hit/miss splits shift with shard boundaries even though the
      // analysis results never do.
      w.key("enrich");
      w.begin_object();
      w.key("scan");
      w.value_string(doc.run.scan);
      w.key("facts_cache_hits");
      w.value_uint(doc.run.facts_cache_hits);
      w.key("facts_cache_misses");
      w.value_uint(doc.run.facts_cache_misses);
      w.key("facts_cache_unique");
      w.value_uint(doc.run.facts_cache_unique);
      w.key("enrich_cache_hits");
      w.value_uint(doc.run.enrich_cache_hits);
      w.key("enrich_cache_misses");
      w.value_uint(doc.run.enrich_cache_misses);
      w.key("enrich_cache_unique");
      w.value_uint(doc.run.enrich_cache_unique);
      w.end_object();
    }
    if (doc.run.durability_present) {
      // Write-path durability counters (DESIGN §16). Volatile: retry
      // and fsync counts depend on signal timing and disk behaviour,
      // never on the analyzed records.
      w.key("durability");
      w.begin_object();
      w.key("write_retries");
      w.value_uint(doc.run.write_retries);
      w.key("write_failures");
      w.value_uint(doc.run.write_failures);
      w.key("fsyncs");
      w.value_uint(doc.run.fsyncs);
      w.key("dir_fsyncs");
      w.value_uint(doc.run.dir_fsyncs);
      w.key("atomic_publishes");
      w.value_uint(doc.run.atomic_publishes);
      w.key("checkpoint_gens_written");
      w.value_uint(doc.run.ckpt_gens_written);
      w.key("checkpoint_gens_restored");
      w.value_uint(doc.run.ckpt_gens_restored);
      w.key("degraded_episodes");
      w.value_uint(doc.run.degraded_episodes);
      w.end_object();
    }
    if (doc.run.state_format_version != 0) {
      w.key("state_format_version");
      w.value_uint(doc.run.state_format_version);
      w.key("state_digest");
      w.value_string(doc.run.state_digest);
    }
    w.end_object();
  }
  w.key("blocks");
  w.begin_array();
  for (const auto& block : doc.blocks()) {
    switch (block.kind) {
      case ResultBlock::Kind::kTable:
        write_table(w, block.table);
        break;
      case ResultBlock::Kind::kLine:
        w.begin_object();
        w.key("type");
        w.value_string("line");
        w.key("text");
        w.value_string(block.line);
        w.end_object();
        break;
      case ResultBlock::Kind::kCheck:
        w.begin_object();
        w.key("type");
        w.value_string("check");
        w.key("status");
        w.value_string(block.check.status < 0
                           ? "info"
                           : (block.check.status ? "ok" : "miss"));
        w.key("label");
        w.value_string(block.check.label);
        w.key("text");
        w.value_string(block.check.text);
        w.end_object();
        break;
    }
  }
  w.end_array();
  w.end_object();
  std::string out = std::move(w).str();
  out += "\n";
  return out;
}

namespace {

std::string csv_field(const std::string& value, char sep) {
  if (sep == '\t') {
    // TSV: no quoting convention — collapse the separator chars instead.
    std::string out = value;
    for (char& c : out) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    return out;
  }
  const bool needs_quotes =
      value.find_first_of(std::string{sep} + "\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_csv(const ResultTable& table, char sep) {
  std::string out;
  bool first = true;
  for (const auto& column : table.columns()) {
    if (!first) out += sep;
    first = false;
    out += csv_field(column.name, sep);
  }
  out += "\n";
  for (const auto& row : table.rows()) {
    first = true;
    for (const auto& cell : row) {
      if (!first) out += sep;
      first = false;
      out += csv_field(cell.rendered(), sep);
    }
    out += "\n";
  }
  return out;
}

std::string render_json_envelope(const std::vector<ResultDoc>& docs,
                                 bool include_perf) {
  std::string out = "{\n  \"experiments\": [\n";
  bool first = true;
  for (const auto& doc : docs) {
    if (!first) out += ",\n";
    first = false;
    std::string body = render_json_with_perf(doc, 0, include_perf);
    if (!body.empty() && body.back() == '\n') body.pop_back();
    out += "    ";
    out += body;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace mtlscope::core
