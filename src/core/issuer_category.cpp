#include "mtlscope/core/issuer_category.hpp"

#include <algorithm>
#include <cctype>

#include "mtlscope/textclass/ner.hpp"

namespace mtlscope::core {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains_any(const std::string& haystack,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (haystack.find(n) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

const char* issuer_category_name(IssuerCategory c) {
  switch (c) {
    case IssuerCategory::kPublic:
      return "Public";
    case IssuerCategory::kPrivateCorporation:
      return "Private - Corporation";
    case IssuerCategory::kPrivateEducation:
      return "Private - Education";
    case IssuerCategory::kPrivateGovernment:
      return "Private - Government";
    case IssuerCategory::kPrivateWebHosting:
      return "Private - WebHosting";
    case IssuerCategory::kPrivateDummy:
      return "Private - Dummy";
    case IssuerCategory::kPrivateOthers:
      return "Private - Others";
    case IssuerCategory::kPrivateMissingIssuer:
      return "Private - MissingIssuer";
  }
  return "?";
}

IssuerCategorizer::IssuerCategorizer(std::vector<std::string> dummy_orgs)
    : dummy_orgs_(std::move(dummy_orgs)) {
  for (auto& org : dummy_orgs_) org = to_lower(org);
}

IssuerCategory IssuerCategorizer::categorize(
    const x509::DistinguishedName& issuer, bool is_public) const {
  if (is_public) return IssuerCategory::kPublic;

  const auto org_view = issuer.organization();
  if (!org_view || org_view->empty()) {
    return IssuerCategory::kPrivateMissingIssuer;
  }
  const std::string org = to_lower(*org_view);

  for (const auto& dummy : dummy_orgs_) {
    if (org == dummy) return IssuerCategory::kPrivateDummy;
  }

  if (contains_any(org, {"university", "college", "school", "academy",
                         "campus", "institute of technology"})) {
    return IssuerCategory::kPrivateEducation;
  }
  if (contains_any(org, {"government", "federal", "ministry", "municipal",
                         "county of", "state of", "u.s. ", "gpo"})) {
    return IssuerCategory::kPrivateGovernment;
  }
  if (contains_any(org, {"hosting", "cpanel", "plesk", "webhost",
                         "datacenter", "colocation"})) {
    return IssuerCategory::kPrivateWebHosting;
  }

  // Corporations: gazetteer / legal-suffix / cosine-similarity match — the
  // paper's fuzzy matching plus manual validation (§4.2).
  if (textclass::is_org_or_product(org)) {
    return IssuerCategory::kPrivateCorporation;
  }

  return IssuerCategory::kPrivateOthers;
}

}  // namespace mtlscope::core
