#include "mtlscope/core/pipeline.hpp"

#include <algorithm>

#include "mtlscope/core/enrich.hpp"

namespace mtlscope::core {

PipelineConfig PipelineConfig::campus_defaults() {
  PipelineConfig config;
  config.university_subnets = {*net::Subnet::parse("128.143.0.0/16"),
                               *net::Subnet::parse("10.0.0.0/8")};
  config.campus_issuer_orgs = {"Blue Ridge University"};
  config.dummy_issuer_orgs = {"Internet Widgits Pty Ltd", "Default Company Ltd",
                              "Unspecified", "Acme Co"};
  config.association_rules = {
      {"brhealth.org", ServerAssociation::kUniversityHealth},
      {"vpn.brexample.edu", ServerAssociation::kUniversityVpn},
      {"brexample.edu", ServerAssociation::kUniversityServer},
      {"localmed.org", ServerAssociation::kLocalOrganization},
      {"globus.org", ServerAssociation::kGlobus},
      {"tablodash.com", ServerAssociation::kThirdPartyService},
      {"thirdparty-hosting.com", ServerAssociation::kThirdPartyService},
  };
  config.study_start = util::to_unix({2022, 5, 1, 0, 0, 0});
  config.study_end = util::to_unix({2024, 4, 1, 0, 0, 0});
  return config;
}

void CertFacts::merge(const CertFacts& other) {
  // Chain upgrades are monotonic (private → public); a shard that saw the
  // upgrade wins. Identical certificates otherwise share all parsed and
  // classification fields, so only usage aggregates need folding.
  if (other.issuer_class == trust::IssuerClass::kPublic &&
      issuer_class != trust::IssuerClass::kPublic) {
    issuer_class = trust::IssuerClass::kPublic;
    issuer_category = other.issuer_category;
  }
  flagged_interception |= other.flagged_interception;
  used_as_server |= other.used_as_server;
  used_as_client |= other.used_as_client;
  used_in_mutual |= other.used_in_mutual;
  seen_inbound |= other.seen_inbound;
  seen_outbound |= other.seen_outbound;
  seen_outbound_with_sni |= other.seen_outbound_with_sni;
  client_use_while_expired |= other.client_use_while_expired;
  connection_count += other.connection_count;
  first_seen = std::min(first_seen, other.first_seen);
  last_seen = std::max(last_seen, other.last_seen);
  server_subnets.insert(other.server_subnets.begin(),
                        other.server_subnets.end());
  client_subnets.insert(other.client_subnets.begin(),
                        other.client_subnets.end());
  // "First observed" context: this pipeline precedes `other` in stream
  // order, so its value wins when present.
  if (context_sld.empty()) context_sld = other.context_sld;
  if (context_assoc == ServerAssociation::kNone) {
    context_assoc = other.context_assoc;
  }
}

Pipeline::Pipeline(PipelineConfig config)
    : enricher_(std::make_shared<Enricher>(std::move(config))) {}

Pipeline::Pipeline(Prepared prepared)
    : enricher_(std::move(prepared.enricher)),
      base_certs_(std::move(prepared.base_certificates)),
      frozen_issuers_(std::move(prepared.interception_issuers)),
      prepared_(true) {}

const PipelineConfig& Pipeline::config() const { return enricher_->config(); }

void Pipeline::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

void Pipeline::add_certificate(const zeek::X509Record& record) {
  if (certs_.contains(record.fuid)) return;
  if (prepared_ && base_certs_ != nullptr &&
      base_certs_->contains(record.fuid)) {
    return;  // the shared registry already carries this certificate
  }
  certs_.emplace(record.fuid, enricher_->make_facts(record));
}

const CertFacts* Pipeline::find_base(const colfmt::Str& fuid) const {
  if (base_certs_ == nullptr) return nullptr;
  const auto it = base_certs_->find(fuid);
  return it == base_certs_->end() ? nullptr : &it->second;
}

CertFacts* Pipeline::local_cert(const colfmt::Str& fuid) {
  const auto it = certs_.find(fuid);
  if (it != certs_.end()) return &it->second;
  if (prepared_) {
    // Copy-on-first-use from the shared registry: the copy starts with
    // zero usage, which this shard then accumulates locally.
    if (const CertFacts* base = find_base(fuid)) {
      return &certs_.emplace(fuid, *base).first->second;
    }
  }
  return nullptr;
}

void Pipeline::add_connection(const zeek::SslRecord& record) {
  // §3.2.1: "our analysis is conducted using established TLS connections".
  // Failed handshakes (e.g. a strict server rejecting an expired client
  // certificate) are tallied and dropped.
  if (!record.established) {
    ++totals_.rejected_handshakes;
    return;
  }

  const auto find_cert = [this](const colfmt::StrVec& fuids)
      -> CertFacts* {
    if (fuids.empty()) return nullptr;
    return local_cert(fuids.front());
  };
  CertFacts* server_leaf = find_cert(record.cert_chain_fuids);
  CertFacts* client_leaf = find_cert(record.client_cert_chain_fuids);

  // Chain-level classification (§3.2.1): a leaf is public-CA-issued when
  // its root OR INTERMEDIATE is in a trust store. The leaf's own facts are
  // computed in isolation; upgrade it when a chain member is public. In
  // prepared mode the executor applied this over the whole stream already.
  if (!prepared_) {
    const auto upgrade_by_chain =
        [this](CertFacts* leaf, const colfmt::StrVec& fuids) {
          if (leaf == nullptr ||
              leaf->issuer_class == trust::IssuerClass::kPublic) {
            return;
          }
          for (std::size_t i = 1; i < fuids.size(); ++i) {
            const auto it = certs_.find(fuids[i]);
            if (it != certs_.end() &&
                it->second.issuer_class == trust::IssuerClass::kPublic) {
              leaf->issuer_class = trust::IssuerClass::kPublic;
              leaf->issuer_category = IssuerCategory::kPublic;
              return;
            }
          }
        };
    upgrade_by_chain(server_leaf, record.cert_chain_fuids);
    upgrade_by_chain(client_leaf, record.client_cert_chain_fuids);
  }

  EnrichedConnection conn =
      enricher_->enrich(record, server_leaf, client_leaf, cache_);

  // Interception filter (§3.2.1): server leaf with an untrusted issuer
  // whose SNI domain has a *different* issuer on record in CT.
  if (prepared_) {
    if (server_leaf != nullptr && frozen_issuers_ != nullptr &&
        frozen_issuers_->contains(server_leaf->issuer_dn)) {
      server_leaf->flagged_interception = true;
      ++excluded_connections_;
      return;  // excluded from all analyses
    }
  } else if (server_leaf != nullptr && config().ct != nullptr) {
    bool exclude = interception_issuers_.contains(server_leaf->issuer_dn);
    if (!exclude &&
        server_leaf->issuer_class == trust::IssuerClass::kPrivate &&
        !conn.sld.empty() && config().ct->has_domain(conn.sld)) {
      const auto* issuers = config().ct->issuers_for(conn.sld);
      if (issuers != nullptr &&
          !issuers->contains(server_leaf->issuer_dn.view())) {
        // CT disagrees about this domain's issuer. One-off disagreements
        // happen legitimately (shared or misconfigured certs on popular
        // domains); an issuer re-signing several *different* CT-logged
        // domains is an interception proxy. This threshold stands in for
        // the paper's manual investigation of mismatches (§3.2.1).
        auto& domains = interception_candidates_[server_leaf->issuer_dn];
        domains.insert(conn.sld);
        if (domains.size() >= config().interception_domain_threshold) {
          interception_issuers_.insert(server_leaf->issuer_dn);
          exclude = true;
        }
      }
    }
    if (exclude) {
      server_leaf->flagged_interception = true;
      ++excluded_connections_;
      return;  // excluded from all analyses
    }
  }

  ++totals_.connections;
  if (record.established) ++totals_.established;
  if (conn.mutual) ++totals_.mutual;
  if (conn.direction == Direction::kInbound) {
    ++totals_.inbound;
  } else {
    ++totals_.outbound;
  }
  if (record.version == "TLSv13") ++totals_.tls13;

  // Streaming-mode ledger: if this connection's server-leaf issuer is
  // confirmed as an interception issuer later in the stream, finalize()
  // un-counts it, so the Totals match what a stream in any order (or the
  // executor's whole-stream pre-pass) would produce.
  if (!prepared_ && server_leaf != nullptr && config().ct != nullptr) {
    Totals& pending = pending_by_issuer_[server_leaf->issuer_dn];
    ++pending.connections;
    ++pending.established;
    if (conn.mutual) ++pending.mutual;
    if (conn.direction == Direction::kInbound) {
      ++pending.inbound;
    } else {
      ++pending.outbound;
    }
    if (record.version == "TLSv13") ++pending.tls13;
  }

  // Usage accounting on both leaves.
  const auto update = [&](CertFacts* facts, bool as_server) {
    if (facts == nullptr) return;
    ++facts->connection_count;
    facts->used_as_server |= as_server;
    facts->used_as_client |= !as_server;
    facts->used_in_mutual |= conn.mutual;
    facts->seen_inbound |= conn.direction == Direction::kInbound;
    facts->seen_outbound |= conn.direction == Direction::kOutbound;
    facts->first_seen = std::min(facts->first_seen, conn.ts);
    facts->last_seen = std::max(facts->last_seen, conn.ts);
    if (!as_server && conn.ts > facts->validity.not_after) {
      facts->client_use_while_expired = true;
    }
    if (!as_server && conn.direction == Direction::kOutbound &&
        !conn.sni.empty()) {
      facts->seen_outbound_with_sni = true;
    }
    const AddrFacts& endpoint = enricher_->addr_facts(
        as_server ? record.resp_h : record.orig_h, cache_);
    if (endpoint.is_v4) {
      (as_server ? facts->server_subnets : facts->client_subnets)
          .insert(endpoint.subnet);
    }
    if (facts->context_sld.empty() && !conn.sld.empty()) {
      facts->context_sld = conn.sld;
    }
    if (facts->context_assoc == ServerAssociation::kNone &&
        conn.direction == Direction::kInbound) {
      facts->context_assoc = conn.assoc;
    }
  };
  update(server_leaf, true);
  update(client_leaf, false);

  conn.server_leaf = server_leaf;
  conn.client_leaf = client_leaf;
  for (const auto& observer : observers_) observer(conn);
}

void Pipeline::feed(const tls::TlsConnection& conn) {
  for (const auto& cert : conn.server_chain) {
    const std::string fuid = zeek::fuid_of(cert);
    if (!certs_.contains(std::string_view(fuid))) {
      add_certificate(zeek::to_x509_record(cert));
    }
  }
  for (const auto& cert : conn.client_chain) {
    const std::string fuid = zeek::fuid_of(cert);
    if (!certs_.contains(std::string_view(fuid))) {
      add_certificate(zeek::to_x509_record(cert));
    }
  }
  zeek::SslRecord record;
  record.ts = conn.timestamp;
  record.uid = conn.uid;
  record.orig_h = conn.client.addr.to_string();
  record.orig_p = conn.client.port;
  record.resp_h = conn.server.addr.to_string();
  record.resp_p = conn.server.port;
  record.version = std::string(tls::version_name(conn.version));
  record.server_name = conn.sni;
  record.established = conn.established;
  for (const auto& cert : conn.server_chain) {
    record.cert_chain_fuids.push_back(zeek::fuid_of(cert));
  }
  for (const auto& cert : conn.client_chain) {
    record.client_cert_chain_fuids.push_back(zeek::fuid_of(cert));
  }
  add_connection(record);
}

void Pipeline::finalize() {
  for (auto& [fuid, facts] : certs_) {
    if (interception_issuers_.contains(facts.issuer_dn)) {
      facts.flagged_interception = true;
    }
  }
  // Reconcile Totals (streaming mode): connections counted before their
  // issuer was confirmed move to the excluded tally. Erasing the ledger
  // entry makes finalize() idempotent.
  for (const auto& issuer : interception_issuers_) {
    const auto it = pending_by_issuer_.find(issuer);
    if (it == pending_by_issuer_.end()) continue;
    const Totals& pending = it->second;
    totals_.connections -= pending.connections;
    totals_.established -= pending.established;
    totals_.mutual -= pending.mutual;
    totals_.inbound -= pending.inbound;
    totals_.outbound -= pending.outbound;
    totals_.tls13 -= pending.tls13;
    excluded_connections_ += pending.connections;
    pending_by_issuer_.erase(it);
  }
}

void Pipeline::merge(Pipeline&& other) {
  for (auto& [fuid, facts] : other.certs_) {
    const auto it = certs_.find(fuid);
    if (it == certs_.end()) {
      certs_.emplace(fuid, std::move(facts));
    } else {
      it->second.merge(facts);
    }
  }
  other.certs_.clear();

  totals_.connections += other.totals_.connections;
  totals_.established += other.totals_.established;
  totals_.rejected_handshakes += other.totals_.rejected_handshakes;
  totals_.mutual += other.totals_.mutual;
  totals_.inbound += other.totals_.inbound;
  totals_.outbound += other.totals_.outbound;
  totals_.tls13 += other.totals_.tls13;
  excluded_connections_ += other.excluded_connections_;

  interception_issuers_.insert(other.interception_issuers_.begin(),
                               other.interception_issuers_.end());
  for (auto& [issuer, domains] : other.interception_candidates_) {
    interception_candidates_[issuer].insert(domains.begin(), domains.end());
  }
  for (const auto& [issuer, pending] : other.pending_by_issuer_) {
    Totals& mine = pending_by_issuer_[issuer];
    mine.connections += pending.connections;
    mine.established += pending.established;
    mine.mutual += pending.mutual;
    mine.inbound += pending.inbound;
    mine.outbound += pending.outbound;
    mine.tls13 += pending.tls13;
  }

  // Cache bookkeeping only — the entries themselves stay shard-local.
  cache_.hits += other.cache_.hits;
  cache_.misses += other.cache_.misses;
  cache_.retired_unique += other.cache_.unique();
}

void Pipeline::backfill_certificates(const CertMap& base) {
  for (const auto& [fuid, facts] : base) {
    if (!certs_.contains(fuid)) certs_.emplace(fuid, facts);
  }
}

std::vector<const CertFacts*> Pipeline::certificates_sorted() const {
  std::vector<const CertFacts*> sorted;
  sorted.reserve(certs_.size());
  for (const auto& [fuid, facts] : certs_) sorted.push_back(&facts);
  std::sort(sorted.begin(), sorted.end(),
            [](const CertFacts* a, const CertFacts* b) {
              return a->fuid < b->fuid;
            });
  return sorted;
}

std::size_t Pipeline::interception_flagged_certificates() const {
  std::size_t count = 0;
  for (const auto& [fuid, facts] : certs_) {
    if (facts.flagged_interception ||
        interception_issuers_.contains(facts.issuer_dn)) {
      ++count;
    }
  }
  return count;
}

}  // namespace mtlscope::core
