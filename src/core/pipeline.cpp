#include "mtlscope/core/pipeline.hpp"

#include <algorithm>

#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/textclass/domain.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::core {

PipelineConfig PipelineConfig::campus_defaults() {
  PipelineConfig config;
  config.university_subnets = {*net::Subnet::parse("128.143.0.0/16"),
                               *net::Subnet::parse("10.0.0.0/8")};
  config.campus_issuer_orgs = {"Blue Ridge University"};
  config.dummy_issuer_orgs = {"Internet Widgits Pty Ltd", "Default Company Ltd",
                              "Unspecified", "Acme Co"};
  config.association_rules = {
      {"brhealth.org", ServerAssociation::kUniversityHealth},
      {"vpn.brexample.edu", ServerAssociation::kUniversityVpn},
      {"brexample.edu", ServerAssociation::kUniversityServer},
      {"localmed.org", ServerAssociation::kLocalOrganization},
      {"globus.org", ServerAssociation::kGlobus},
      {"tablodash.com", ServerAssociation::kThirdPartyService},
      {"thirdparty-hosting.com", ServerAssociation::kThirdPartyService},
  };
  config.study_start = util::to_unix({2022, 5, 1, 0, 0, 0});
  config.study_end = util::to_unix({2024, 4, 1, 0, 0, 0});
  return config;
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(std::move(config)),
      trust_(trust::make_default_evaluator()),
      categorizer_(config_.dummy_issuer_orgs) {}

void Pipeline::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

IssuerCategory Pipeline::categorize_cached(
    const x509::DistinguishedName& issuer, const std::string& issuer_dn,
    bool is_public) const {
  // The public/private split is part of the key: Table 13's shared certs
  // can surface the same DN string under either classification.
  const std::string key = (is_public ? "P|" : "p|") + issuer_dn;
  const auto it = category_cache_.find(key);
  if (it != category_cache_.end()) return it->second;
  const auto category = categorizer_.categorize(issuer, is_public);
  category_cache_.emplace(key, category);
  return category;
}

CertFacts Pipeline::make_facts(const zeek::X509Record& record) const {
  CertFacts facts;
  facts.fuid = record.fuid;

  // Prefer re-parsing the DER (trust the bytes, not the log fields).
  bool parsed = false;
  if (!record.cert_der_base64.empty()) {
    if (const auto der = crypto::from_base64(record.cert_der_base64)) {
      const auto result = x509::parse_certificate(*der);
      if (const auto* cert = x509::get_certificate(result)) {
        facts.version = cert->version;
        facts.key_bits = static_cast<int>(cert->key_bits());
        facts.serial_hex = cert->serial_hex();
        if (const auto cn = cert->subject.common_name()) {
          facts.subject_cn = std::string(*cn);
        }
        if (const auto org = cert->issuer.organization()) {
          facts.issuer_org = std::string(*org);
        }
        if (const auto cn = cert->issuer.common_name()) {
          facts.issuer_cn = std::string(*cn);
        }
        facts.issuer_dn = cert->issuer.to_string();
        facts.validity = cert->validity;
        for (const auto& entry : cert->san) {
          switch (entry.type) {
            case x509::SanEntry::Type::kDns:
              facts.san_dns.push_back(entry.value);
              break;
            case x509::SanEntry::Type::kEmail:
              ++facts.san_email_count;
              break;
            case x509::SanEntry::Type::kUri:
              ++facts.san_uri_count;
              break;
            case x509::SanEntry::Type::kIp:
              ++facts.san_ip_count;
              break;
            case x509::SanEntry::Type::kOther:
              break;
          }
        }
        facts.issuer_class =
            trust_.classify(*cert) == trust::IssuerClass::kPublic
                ? trust::IssuerClass::kPublic
                : trust::IssuerClass::kPrivate;
        facts.issuer_category = categorize_cached(
            cert->issuer, facts.issuer_dn,
            facts.issuer_class == trust::IssuerClass::kPublic);
        parsed = true;
      }
    }
  }
  if (!parsed) {
    // Fall back to the logged fields (real Zeek deployments often do not
    // retain the DER).
    facts.version = record.version;
    facts.key_bits = record.key_length;
    facts.serial_hex = record.serial;
    const auto subject = x509::DistinguishedName::from_string(record.subject);
    const auto issuer = x509::DistinguishedName::from_string(record.issuer);
    if (subject) {
      if (const auto cn = subject->common_name()) {
        facts.subject_cn = std::string(*cn);
      }
    }
    if (issuer) {
      if (const auto org = issuer->organization()) {
        facts.issuer_org = std::string(*org);
      }
      if (const auto cn = issuer->common_name()) {
        facts.issuer_cn = std::string(*cn);
      }
      facts.issuer_dn = issuer->to_string();
      facts.issuer_class = trust_.is_trusted_issuer(*issuer)
                               ? trust::IssuerClass::kPublic
                               : trust::IssuerClass::kPrivate;
      facts.issuer_category = categorize_cached(
          *issuer, facts.issuer_dn,
          facts.issuer_class == trust::IssuerClass::kPublic);
    } else {
      facts.issuer_class = trust::IssuerClass::kPrivate;
      facts.issuer_category = IssuerCategory::kPrivateMissingIssuer;
    }
    facts.validity = {record.not_valid_before, record.not_valid_after};
    facts.san_dns = record.san_dns;
    facts.san_email_count = static_cast<int>(record.san_email.size());
    facts.san_uri_count = static_cast<int>(record.san_uri.size());
    facts.san_ip_count = static_cast<int>(record.san_ip.size());
  }

  for (const auto& org : config_.campus_issuer_orgs) {
    if (facts.issuer_org == org) facts.campus_issuer = true;
  }

  // CN / SAN information-type classification (§6.1).
  textclass::ClassifyContext ctx;
  ctx.issuer = facts.issuer_org.empty() ? facts.issuer_cn : facts.issuer_org;
  ctx.campus_issuer = facts.campus_issuer;
  if (!facts.subject_cn.empty()) {
    facts.cn_type = textclass::classify_value(facts.subject_cn, ctx);
  }
  facts.san_dns_types.reserve(facts.san_dns.size());
  for (const auto& value : facts.san_dns) {
    facts.san_dns_types.push_back(textclass::classify_value(value, ctx));
  }
  return facts;
}

void Pipeline::add_certificate(const zeek::X509Record& record) {
  if (certs_.contains(record.fuid)) return;
  certs_.emplace(record.fuid, make_facts(record));
}

bool Pipeline::is_university_address(const net::IpAddress& addr) const {
  for (const auto& subnet : config_.university_subnets) {
    if (subnet.contains(addr)) return true;
  }
  return false;
}

Direction Pipeline::infer_direction(const zeek::SslRecord& record) const {
  const auto resp = net::IpAddress::parse(record.resp_h);
  if (resp && is_university_address(*resp)) return Direction::kInbound;
  return Direction::kOutbound;
}

ServerAssociation Pipeline::associate(const std::string& host,
                                      const std::string& sld) const {
  const auto suffix_match = [](const std::string& value,
                               const std::string& suffix) {
    if (value.size() < suffix.size()) return false;
    if (value.size() == suffix.size()) return value == suffix;
    return value.compare(value.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
           value[value.size() - suffix.size() - 1] == '.';
  };
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!host.empty() && suffix_match(host, suffix)) return assoc;
  }
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!sld.empty() && suffix_match(sld, suffix)) return assoc;
  }
  return ServerAssociation::kUnknown;
}

void Pipeline::add_connection(const zeek::SslRecord& record) {
  // §3.2.1: "our analysis is conducted using established TLS connections".
  // Failed handshakes (e.g. a strict server rejecting an expired client
  // certificate) are tallied and dropped.
  if (!record.established) {
    ++totals_.rejected_handshakes;
    return;
  }
  EnrichedConnection conn;
  conn.ssl = &record;
  conn.ts = record.ts;
  conn.established = record.established;
  conn.direction = infer_direction(record);
  conn.sni = record.server_name;

  const auto find_cert = [this](const std::vector<std::string>& fuids)
      -> CertFacts* {
    if (fuids.empty()) return nullptr;
    const auto it = certs_.find(fuids.front());
    return it == certs_.end() ? nullptr : &it->second;
  };
  CertFacts* server_leaf = find_cert(record.cert_chain_fuids);
  CertFacts* client_leaf = find_cert(record.client_cert_chain_fuids);

  // Chain-level classification (§3.2.1): a leaf is public-CA-issued when
  // its root OR INTERMEDIATE is in a trust store. The leaf's own facts are
  // computed in isolation; upgrade it when a chain member is public.
  const auto upgrade_by_chain = [this](CertFacts* leaf,
                                       const std::vector<std::string>& fuids) {
    if (leaf == nullptr || leaf->issuer_class == trust::IssuerClass::kPublic) {
      return;
    }
    for (std::size_t i = 1; i < fuids.size(); ++i) {
      const auto it = certs_.find(fuids[i]);
      if (it != certs_.end() &&
          it->second.issuer_class == trust::IssuerClass::kPublic) {
        leaf->issuer_class = trust::IssuerClass::kPublic;
        leaf->issuer_category = IssuerCategory::kPublic;
        return;
      }
    }
  };
  upgrade_by_chain(server_leaf, record.cert_chain_fuids);
  upgrade_by_chain(client_leaf, record.client_cert_chain_fuids);

  conn.mutual = server_leaf != nullptr && client_leaf != nullptr;

  // Host resolution (§4.2): SNI first, then SAN DNS / CN of the leaves.
  conn.resolved_host = conn.sni;
  if (conn.resolved_host.empty()) {
    for (const CertFacts* leaf : {server_leaf, client_leaf}) {
      if (leaf == nullptr) continue;
      if (!leaf->san_dns.empty()) {
        conn.resolved_host = leaf->san_dns.front();
        break;
      }
      if (leaf->cn_type == textclass::InfoType::kDomain) {
        conn.resolved_host = leaf->subject_cn;
        break;
      }
    }
  }
  conn.sld = textclass::sld_of(conn.resolved_host);
  conn.tld = textclass::tld_of(conn.resolved_host);
  conn.assoc = conn.direction == Direction::kInbound
                   ? associate(conn.resolved_host, conn.sld)
                   : ServerAssociation::kNone;

  // Interception filter (§3.2.1): server leaf with an untrusted issuer
  // whose SNI domain has a *different* issuer on record in CT.
  if (server_leaf != nullptr && config_.ct != nullptr) {
    bool exclude = interception_issuers_.contains(server_leaf->issuer_dn);
    if (!exclude &&
        server_leaf->issuer_class == trust::IssuerClass::kPrivate &&
        !conn.sld.empty() && config_.ct->has_domain(conn.sld)) {
      const auto* issuers = config_.ct->issuers_for(conn.sld);
      if (issuers != nullptr && !issuers->contains(server_leaf->issuer_dn)) {
        // CT disagrees about this domain's issuer. One-off disagreements
        // happen legitimately (shared or misconfigured certs on popular
        // domains); an issuer re-signing several *different* CT-logged
        // domains is an interception proxy. This threshold stands in for
        // the paper's manual investigation of mismatches (§3.2.1).
        auto& domains = interception_candidates_[server_leaf->issuer_dn];
        domains.insert(conn.sld);
        if (domains.size() >= config_.interception_domain_threshold) {
          interception_issuers_.insert(server_leaf->issuer_dn);
          exclude = true;
        }
      }
    }
    if (exclude) {
      server_leaf->flagged_interception = true;
      ++excluded_connections_;
      return;  // excluded from all analyses
    }
  }

  ++totals_.connections;
  if (record.established) ++totals_.established;
  if (conn.mutual) ++totals_.mutual;
  if (conn.direction == Direction::kInbound) {
    ++totals_.inbound;
  } else {
    ++totals_.outbound;
  }
  if (record.version == "TLSv13") ++totals_.tls13;

  // Usage accounting on both leaves.
  const auto update = [&](CertFacts* facts, bool as_server) {
    if (facts == nullptr) return;
    ++facts->connection_count;
    facts->used_as_server |= as_server;
    facts->used_as_client |= !as_server;
    facts->used_in_mutual |= conn.mutual;
    facts->seen_inbound |= conn.direction == Direction::kInbound;
    facts->seen_outbound |= conn.direction == Direction::kOutbound;
    facts->first_seen = std::min(facts->first_seen, conn.ts);
    facts->last_seen = std::max(facts->last_seen, conn.ts);
    if (!as_server && conn.ts > facts->validity.not_after) {
      facts->client_use_while_expired = true;
    }
    if (!as_server && conn.direction == Direction::kOutbound &&
        !conn.sni.empty()) {
      facts->seen_outbound_with_sni = true;
    }
    const auto endpoint = net::IpAddress::parse(
        as_server ? record.resp_h : record.orig_h);
    if (endpoint && endpoint->is_v4()) {
      const std::uint32_t key = endpoint->v4_value() & 0xffffff00u;
      (as_server ? facts->server_subnets : facts->client_subnets).insert(key);
    }
    if (facts->context_sld.empty() && !conn.sld.empty()) {
      facts->context_sld = conn.sld;
    }
    if (facts->context_assoc == ServerAssociation::kNone &&
        conn.direction == Direction::kInbound) {
      facts->context_assoc = conn.assoc;
    }
  };
  update(server_leaf, true);
  update(client_leaf, false);

  conn.server_leaf = server_leaf;
  conn.client_leaf = client_leaf;
  for (const auto& observer : observers_) observer(conn);
}

void Pipeline::feed(const tls::TlsConnection& conn) {
  for (const auto& cert : conn.server_chain) {
    const std::string fuid = zeek::fuid_of(cert);
    if (!certs_.contains(fuid)) add_certificate(zeek::to_x509_record(cert));
  }
  for (const auto& cert : conn.client_chain) {
    const std::string fuid = zeek::fuid_of(cert);
    if (!certs_.contains(fuid)) add_certificate(zeek::to_x509_record(cert));
  }
  zeek::SslRecord record;
  record.ts = conn.timestamp;
  record.uid = conn.uid;
  record.orig_h = conn.client.addr.to_string();
  record.orig_p = conn.client.port;
  record.resp_h = conn.server.addr.to_string();
  record.resp_p = conn.server.port;
  record.version = std::string(tls::version_name(conn.version));
  record.server_name = conn.sni;
  record.established = conn.established;
  for (const auto& cert : conn.server_chain) {
    record.cert_chain_fuids.push_back(zeek::fuid_of(cert));
  }
  for (const auto& cert : conn.client_chain) {
    record.client_cert_chain_fuids.push_back(zeek::fuid_of(cert));
  }
  add_connection(record);
}

void Pipeline::finalize() {
  for (auto& [fuid, facts] : certs_) {
    if (interception_issuers_.contains(facts.issuer_dn)) {
      facts.flagged_interception = true;
    }
  }
}

std::size_t Pipeline::interception_flagged_certificates() const {
  std::size_t count = 0;
  for (const auto& [fuid, facts] : certs_) {
    if (facts.flagged_interception ||
        interception_issuers_.contains(facts.issuer_dn)) {
      ++count;
    }
  }
  return count;
}

}  // namespace mtlscope::core
