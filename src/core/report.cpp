#include "mtlscope/core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mtlscope::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    // Silently resizing here used to drop the overflow cells; refuse
    // instead so a mismatched row is a bug at the call site, not a
    // truncated table in the output.
    throw std::invalid_argument(
        "TextTable::add_row: " + std::to_string(cells.size()) +
        " cells exceed " + std::to_string(headers_.size()) + " headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) line += "  ";
      line += cells[i];
      line.append(widths[i] - cells[i].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : 0, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_percent(double numerator, double denominator,
                           int decimals) {
  if (denominator == 0) return "-";
  return format_double(100.0 * numerator / denominator, decimals) + "%";
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace mtlscope::core
