#include "mtlscope/core/redaction.hpp"

#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/x509/builder.hpp"

namespace mtlscope::core {

bool is_sensitive_info(textclass::InfoType type) {
  switch (type) {
    case textclass::InfoType::kPersonalName:
    case textclass::InfoType::kUserAccount:
    case textclass::InfoType::kEmail:
    case textclass::InfoType::kMac:
      return true;
    default:
      return false;
  }
}

std::vector<PrivacyFinding> audit_certificate(
    const x509::Certificate& cert,
    const textclass::ClassifyContext& context) {
  std::vector<PrivacyFinding> findings;
  if (const auto cn = cert.subject.common_name(); cn && !cn->empty()) {
    const auto type = textclass::classify_value(*cn, context);
    if (is_sensitive_info(type)) {
      findings.push_back({PrivacyFinding::Field::kSubjectCn,
                          std::string(*cn), type});
    }
  }
  for (const auto& entry : cert.san) {
    switch (entry.type) {
      case x509::SanEntry::Type::kDns: {
        const auto type = textclass::classify_value(entry.value, context);
        if (is_sensitive_info(type)) {
          findings.push_back({PrivacyFinding::Field::kSanDns, entry.value,
                              type});
        }
        break;
      }
      case x509::SanEntry::Type::kEmail:
        // Email SANs identify the holder by definition.
        findings.push_back({PrivacyFinding::Field::kSanEmail, entry.value,
                            textclass::InfoType::kEmail});
        break;
      default:
        break;
    }
  }
  return findings;
}

std::string pseudonym_for(const crypto::TsigKey& pseudonym_key,
                          std::string_view value) {
  const auto mac = crypto::hmac_sha256(
      pseudonym_key.key,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(value.data()), value.size()));
  return "anon-" +
         crypto::to_hex(std::span<const std::uint8_t>(mac.data(), 8));
}

x509::Certificate redact_certificate(
    const x509::Certificate& cert,
    const trust::CertificateAuthority& issuer,
    const crypto::TsigKey& pseudonym_key,
    const textclass::ClassifyContext& context) {
  x509::CertificateBuilder builder;
  builder.version(cert.version)
      .serial(cert.serial)
      .validity(cert.validity.not_before, cert.validity.not_after)
      .public_key(cert.public_key)
      .spki_algorithm(cert.spki_algorithm);

  // Subject: keep non-sensitive attributes, pseudonymize the rest.
  x509::DistinguishedName subject;
  for (const auto& attr : cert.subject.attributes()) {
    if (attr.type == asn1::oids::common_name() ||
        attr.type == asn1::oids::email_address()) {
      const auto type = textclass::classify_value(attr.value, context);
      if (is_sensitive_info(type) ||
          attr.type == asn1::oids::email_address()) {
        subject.add(asn1::oids::common_name(),
                    pseudonym_for(pseudonym_key, attr.value));
        continue;
      }
    }
    subject.add(attr.type, attr.value);
  }
  builder.subject(subject);

  for (const auto& entry : cert.san) {
    switch (entry.type) {
      case x509::SanEntry::Type::kDns: {
        const auto type = textclass::classify_value(entry.value, context);
        builder.add_san_dns(is_sensitive_info(type)
                                ? pseudonym_for(pseudonym_key, entry.value)
                                : entry.value);
        break;
      }
      case x509::SanEntry::Type::kEmail:
        // Dropped entirely: an email address has no anonymous form that
        // still satisfies the SAN rfc822Name type.
        break;
      case x509::SanEntry::Type::kUri:
        builder.add_san_uri(entry.value);
        break;
      case x509::SanEntry::Type::kIp:
        if (const auto addr = net::IpAddress::parse(entry.value)) {
          builder.add_san_ip(*addr);
        }
        break;
      case x509::SanEntry::Type::kOther:
        break;
    }
  }

  if (cert.basic_constraints) {
    builder.ca(cert.basic_constraints->is_ca, cert.basic_constraints->path_len);
  }
  if (cert.key_usage_bits) builder.key_usage(*cert.key_usage_bits);
  for (const auto& oid : cert.ext_key_usage) builder.add_eku(oid);

  return issuer.issue(builder);
}

}  // namespace mtlscope::core
