#include "mtlscope/core/executor.hpp"

#include <sstream>
#include <thread>
#include <utility>

#include "mtlscope/core/enrich.hpp"

namespace mtlscope::core {
namespace {

/// Runs fn(shard, begin, end) over K contiguous, balanced ranges of [0, n).
/// K == 1 stays inline on the caller's thread (the exact serial path).
template <typename Fn>
void parallel_ranges(std::size_t n, std::size_t k, const Fn& fn) {
  if (k <= 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(k);
  for (std::size_t t = 0; t < k; ++t) {
    const std::size_t begin = n * t / k;
    const std::size_t end = n * (t + 1) / k;
    workers.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

const CertFacts* find_facts(const Pipeline::CertMap& certs,
                            const std::vector<std::string>& fuids) {
  if (fuids.empty()) return nullptr;
  const auto it = certs.find(fuids.front());
  return it == certs.end() ? nullptr : &it->second;
}

}  // namespace

PipelineExecutor::PipelineExecutor(PipelineConfig config, std::size_t threads)
    : config_(std::move(config)), threads_(resolve_threads(threads)) {}

std::size_t PipelineExecutor::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void PipelineExecutor::add_observer_factory(ObserverFactory factory) {
  factories_.push_back(std::move(factory));
}

void PipelineExecutor::add_shared_observer(Observer observer) {
  shared_observers_.push_back(std::move(observer));
}

const PipelineConfig& PipelineExecutor::config() const { return config_; }

Pipeline PipelineExecutor::run(const zeek::Dataset& dataset) {
  return run(dataset.ssl(), dataset.x509());
}

Pipeline PipelineExecutor::run(
    const std::vector<zeek::SslRecord>& ssl,
    const std::map<std::string, zeek::X509Record>& x509) {
  const auto enricher = std::make_shared<const Enricher>(config_);
  const std::size_t k = threads_;

  // --- Phase A: certificate registry, built in parallel row ranges. ---
  std::vector<const zeek::X509Record*> rows;
  rows.reserve(x509.size());
  for (const auto& [fuid, record] : x509) rows.push_back(&record);

  auto base = std::make_shared<Pipeline::CertMap>();
  base->reserve(rows.size());
  {
    std::vector<std::vector<CertFacts>> built(k);
    parallel_ranges(rows.size(), k,
                    [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
                      auto& out = built[shard];
                      out.reserve(end - begin);
                      for (std::size_t i = begin; i < end; ++i) {
                        out.push_back(enricher->make_facts(*rows[i]));
                      }
                    });
    for (auto& chunk : built) {
      for (auto& facts : chunk) {
        std::string fuid = facts.fuid;
        base->emplace(std::move(fuid), std::move(facts));
      }
    }
  }

  // --- Phase B: chain-level public upgrades (§3.2.1), whole stream. ---
  // Upgrading is monotonic (private → public, never back), so one pass
  // over every established connection's chains reaches the same fixpoint
  // the streaming pipeline converges to — without the stream-position
  // dependence of upgrading mid-run.
  {
    const auto upgrade = [&base](const std::vector<std::string>& fuids) {
      if (fuids.size() < 2) return;  // no intermediates to inherit from
      const auto leaf_it = base->find(fuids.front());
      if (leaf_it == base->end() ||
          leaf_it->second.issuer_class == trust::IssuerClass::kPublic) {
        return;
      }
      for (std::size_t i = 1; i < fuids.size(); ++i) {
        const auto it = base->find(fuids[i]);
        if (it != base->end() &&
            it->second.issuer_class == trust::IssuerClass::kPublic) {
          leaf_it->second.issuer_class = trust::IssuerClass::kPublic;
          leaf_it->second.issuer_category = IssuerCategory::kPublic;
          return;
        }
      }
    };
    for (const auto& record : ssl) {
      if (!record.established) continue;
      upgrade(record.cert_chain_fuids);
      upgrade(record.client_cert_chain_fuids);
    }
  }

  // --- Phase C: interception pre-pass (when CT is configured). ---
  // Shard-local candidate maps merge by set union; confirmation compares
  // the union against the threshold, so the confirmed set is exactly the
  // set a serial stream (in any order) would eventually confirm.
  auto confirmed = std::make_shared<std::set<std::string>>();
  if (config_.ct != nullptr) {
    std::vector<std::map<std::string, std::set<std::string>>> local(k);
    parallel_ranges(
        ssl.size(), k,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          auto& candidates = local[shard];
          for (std::size_t i = begin; i < end; ++i) {
            const zeek::SslRecord& record = ssl[i];
            if (!record.established) continue;
            const CertFacts* server_leaf =
                find_facts(*base, record.cert_chain_fuids);
            if (server_leaf == nullptr ||
                server_leaf->issuer_class != trust::IssuerClass::kPrivate) {
              continue;
            }
            const CertFacts* client_leaf =
                find_facts(*base, record.client_cert_chain_fuids);
            const EnrichedConnection conn =
                enricher->enrich(record, server_leaf, client_leaf);
            if (conn.sld.empty() || !config_.ct->has_domain(conn.sld)) {
              continue;
            }
            const auto* issuers = config_.ct->issuers_for(conn.sld);
            if (issuers != nullptr &&
                !issuers->contains(server_leaf->issuer_dn)) {
              candidates[server_leaf->issuer_dn].insert(conn.sld);
            }
          }
        });
    std::map<std::string, std::set<std::string>> merged;
    for (auto& candidates : local) {
      for (auto& [issuer, domains] : candidates) {
        merged[issuer].insert(domains.begin(), domains.end());
      }
    }
    for (const auto& [issuer, domains] : merged) {
      if (domains.size() >= config_.interception_domain_threshold) {
        confirmed->insert(issuer);
      }
    }
  }

  // --- Phase D: one prepared-mode pipeline per shard. ---
  const Pipeline::Prepared prepared{enricher, base, confirmed};
  std::vector<Pipeline> shards;
  shards.reserve(k);
  for (std::size_t t = 0; t < k; ++t) {
    shards.emplace_back(prepared);
    for (const auto& factory : factories_) {
      shards[t].add_observer(factory(t));
    }
    for (auto& observer : shared_observers_) {
      shards[t].add_observer([this, &observer](const EnrichedConnection& c) {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        observer(c);
      });
    }
  }
  parallel_ranges(ssl.size(), k,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    Pipeline& pipeline = shards[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      pipeline.add_connection(ssl[i]);
                    }
                  });

  // --- Phase E: deterministic merge in shard order. ---
  Pipeline result(prepared);
  for (auto& shard : shards) result.merge(std::move(shard));
  result.set_interception_issuers(*confirmed);
  result.backfill_certificates(*base);
  result.finalize();
  return result;
}

std::optional<Pipeline> PipelineExecutor::run_logs(
    const std::string& ssl_text, const std::string& x509_text,
    zeek::LogParseError* error) {
  const std::size_t k = threads_;
  const auto ssl_chunks = zeek::split_log_text(ssl_text, k);
  const auto x509_chunks = zeek::split_log_text(x509_text, k);

  std::vector<std::optional<std::vector<zeek::SslRecord>>> ssl_parsed(k);
  std::vector<std::optional<std::vector<zeek::X509Record>>> x509_parsed(k);
  std::vector<zeek::LogParseError> errors(2 * k);
  parallel_ranges(k, k, [&](std::size_t shard, std::size_t begin,
                            std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::istringstream ssl_in(ssl_chunks[i]);
      ssl_parsed[i] = zeek::parse_ssl_log(ssl_in, &errors[2 * i]);
      std::istringstream x509_in(x509_chunks[i]);
      x509_parsed[i] = zeek::parse_x509_log(x509_in, &errors[2 * i + 1]);
    }
  });
  for (std::size_t i = 0; i < k; ++i) {
    if (!ssl_parsed[i] || !x509_parsed[i]) {
      // Line numbers are chunk-relative once k > 1; say so.
      if (error != nullptr) {
        *error = !ssl_parsed[i] ? errors[2 * i] : errors[2 * i + 1];
        if (k > 1) {
          error->message += " (in parallel chunk " + std::to_string(i + 1) +
                            " of " + std::to_string(k) +
                            "; line number is chunk-relative)";
        }
      }
      return std::nullopt;
    }
  }

  std::vector<zeek::SslRecord> ssl;
  std::map<std::string, zeek::X509Record> x509;
  for (auto& chunk : ssl_parsed) {
    for (auto& record : *chunk) ssl.push_back(std::move(record));
  }
  for (auto& chunk : x509_parsed) {
    for (auto& record : *chunk) {
      std::string fuid = record.fuid;
      x509.emplace(std::move(fuid), std::move(record));
    }
  }
  return run(ssl, x509);
}

}  // namespace mtlscope::core
