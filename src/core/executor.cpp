#include "mtlscope/core/executor.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "mtlscope/colfmt/container.hpp"
#include "mtlscope/colfmt/scan.hpp"
#include "mtlscope/core/enrich.hpp"
#include "mtlscope/ingest/chunk_queue.hpp"
#include "mtlscope/zeek/parse_plan.hpp"

namespace mtlscope::core {
namespace {

/// Runs fn(shard, begin, end) over K contiguous, balanced ranges of [0, n).
/// K == 1 stays inline on the caller's thread (the exact serial path).
template <typename Fn>
void parallel_ranges(std::size_t n, std::size_t k, const Fn& fn) {
  if (k <= 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(k);
  for (std::size_t t = 0; t < k; ++t) {
    const std::size_t begin = n * t / k;
    const std::size_t end = n * (t + 1) / k;
    workers.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

const CertFacts* find_facts(const Pipeline::CertMap& certs,
                            const colfmt::StrVec& fuids) {
  if (fuids.empty()) return nullptr;
  const auto it = certs.find(fuids.front());
  return it == certs.end() ? nullptr : &it->second;
}

/// Phase B's chain-level public upgrade (§3.2.1): the leaf goes public
/// when any intermediate on the chain already is. Upgrades can chain
/// through later connections, so callers apply this serially in stream
/// order.
void upgrade_chain(Pipeline::CertMap& base,
                   const colfmt::StrVec& fuids) {
  if (fuids.size() < 2) return;  // no intermediates to inherit from
  const auto leaf_it = base.find(fuids.front());
  if (leaf_it == base.end() ||
      leaf_it->second.issuer_class == trust::IssuerClass::kPublic) {
    return;
  }
  for (std::size_t i = 1; i < fuids.size(); ++i) {
    const auto it = base.find(fuids[i]);
    if (it != base.end() &&
        it->second.issuer_class == trust::IssuerClass::kPublic) {
      leaf_it->second.issuer_class = trust::IssuerClass::kPublic;
      leaf_it->second.issuer_category = IssuerCategory::kPublic;
      return;
    }
  }
}

void apply_upgrades(Pipeline::CertMap& base, const zeek::SslRecord& record) {
  if (!record.established) return;
  upgrade_chain(base, record.cert_chain_fuids);
  upgrade_chain(base, record.client_cert_chain_fuids);
}

/// Phase C candidate collection: issuer DN → distinct CT-mismatching SLDs.
/// Byte-ordered on interned keys, so merge folds iterate identically to
/// the old string-keyed map.
using CandidateMap =
    std::map<colfmt::Str, Pipeline::StrSet, colfmt::StrLess>;

void note_interception_candidate(const PipelineConfig& config,
                                 const Enricher& enricher,
                                 const Pipeline::CertMap& base,
                                 const zeek::SslRecord& record,
                                 CandidateMap& candidates) {
  if (!record.established) return;
  const CertFacts* server_leaf = find_facts(base, record.cert_chain_fuids);
  if (server_leaf == nullptr ||
      server_leaf->issuer_class != trust::IssuerClass::kPrivate) {
    return;
  }
  const CertFacts* client_leaf =
      find_facts(base, record.client_cert_chain_fuids);
  const EnrichedConnection conn =
      enricher.enrich(record, server_leaf, client_leaf);
  if (conn.sld.empty() || !config.ct->has_domain(conn.sld)) return;
  const auto* issuers = config.ct->issuers_for(conn.sld);
  if (issuers != nullptr &&
      !issuers->contains(server_leaf->issuer_dn.view())) {
    candidates[server_leaf->issuer_dn].insert(conn.sld);
  }
}

Pipeline::StrSet confirm_issuers(const CandidateMap& merged,
                                 std::size_t threshold) {
  Pipeline::StrSet confirmed;
  for (const auto& [issuer, domains] : merged) {
    if (domains.size() >= threshold) confirmed.insert(issuer);
  }
  return confirmed;
}

/// Failure slot shared by the streaming workers. The smallest byte offset
/// wins, so the reported error does not depend on worker scheduling.
struct EngineError {
  std::mutex mutex;
  bool set = false;
  ingest::IngestError error;

  void record(const std::string& file, std::size_t offset,
              std::string reason) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (set && error.byte_offset <= offset) return;
    set = true;
    error = {file, offset, std::move(reason)};
  }

  bool failed() {
    const std::lock_guard<std::mutex> lock(mutex);
    return set;
  }
};

std::string describe_parse_error(const zeek::LogParseError& error) {
  if (error.line == 0) return error.message;
  return error.message + " (line " + std::to_string(error.line) +
         " of the chunk at this offset, header included)";
}

std::size_t header_line_count(const ingest::LogLayout& layout) {
  std::size_t lines = 0;
  for (const char c : layout.header) lines += (c == '\n');
  return lines;
}

/// One queue-fed streaming pass over a log body. A reader thread cuts
/// [layout.body_begin, size) into record-aligned chunks and pushes them
/// into a bounded queue (backpressure); `k` workers pop, run `map_chunk`
/// (parse + shard-local work) and hand the result to a bounded reorder
/// window; the caller's thread folds results back in exact stream order.
/// Peak memory: O(chunk_bytes × (queue_depth + k)) regardless of file
/// size. Returns false if any chunk failed (EngineError filled).
template <typename Result, typename MapFn, typename FoldFn>
bool stream_pass(const ingest::Source& source,
                 const ingest::LogLayout& layout, std::size_t k,
                 const ingest::IngestOptions& options, EngineError& error,
                 const MapFn& map_chunk, const FoldFn& fold) {
  const std::size_t depth =
      options.queue_depth != 0 ? options.queue_depth : 2 * k;
  ingest::ChunkQueue<ingest::Chunk> queue(depth);
  // Window ≥ queue + in-flight chunks: the worker holding the next-needed
  // sequence can always put() without blocking, so the pass cannot wedge.
  ingest::OrderedCollector<Result> collector(depth + k);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    ingest::RecordChunker chunker(source, options.chunk_bytes,
                                  layout.body_begin, source.size());
    ingest::Chunk chunk;
    std::size_t produced = 0;
    while (!stop.load(std::memory_order_relaxed) && chunker.next(chunk)) {
      if (!queue.push(std::move(chunk))) break;
      ++produced;
      chunk = ingest::Chunk{};  // scratch was moved into the queue
    }
    queue.close();
    collector.finish(produced);
  });

  std::vector<std::thread> workers;
  workers.reserve(k);
  for (std::size_t t = 0; t < k; ++t) {
    workers.emplace_back([&] {
      while (auto chunk = queue.pop()) {
        chunk->rebind();
        Result result{};
        if (!map_chunk(*chunk, result)) {
          // Later chunks already queued still flow through (as empty
          // results) so the reorder window drains; the run aborts after
          // the pass with the smallest failing offset.
          stop.store(true, std::memory_order_relaxed);
        }
        source.release(chunk->offset, chunk->data.size());
        if (!collector.put(chunk->seq, std::move(result))) break;
      }
    });
  }

  while (auto result = collector.take()) {
    fold(std::move(*result));
  }

  reader.join();
  for (auto& worker : workers) worker.join();
  return !error.failed();
}

}  // namespace

PipelineExecutor::PipelineExecutor(PipelineConfig config, std::size_t threads)
    : config_(std::move(config)), threads_(resolve_threads(threads)) {}

std::size_t PipelineExecutor::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void PipelineExecutor::add_observer_factory(ObserverFactory factory) {
  factories_.push_back(std::move(factory));
}

void PipelineExecutor::add_shared_observer(Observer observer) {
  shared_observers_.push_back(std::move(observer));
}

const PipelineConfig& PipelineExecutor::config() const { return config_; }

void PipelineExecutor::note_run_stats(const Enricher& enricher,
                                      const Pipeline& merged,
                                      const char* scan) {
  const auto facts = enricher.facts_cache_stats();
  const EnrichCache& cache = merged.enrich_cache();
  stats_ = RunStats{scan,        facts.hits,   facts.misses, facts.unique,
                    cache.hits,  cache.misses, cache.unique()};
}

std::vector<Pipeline> PipelineExecutor::make_shards(
    const Pipeline::Prepared& prepared) {
  std::vector<Pipeline> shards;
  shards.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    shards.emplace_back(prepared);
    for (const auto& factory : factories_) {
      shards[t].add_observer(factory(t));
    }
    for (auto& observer : shared_observers_) {
      shards[t].add_observer([this, &observer](const EnrichedConnection& c) {
        const std::lock_guard<std::mutex> lock(shared_mutex_);
        observer(c);
      });
    }
  }
  return shards;
}

Pipeline PipelineExecutor::run(const zeek::Dataset& dataset) {
  return run(dataset.ssl(), dataset.x509());
}

Pipeline PipelineExecutor::run(const std::vector<zeek::SslRecord>& ssl,
                               const zeek::Dataset::X509Map& x509) {
  const auto enricher = std::make_shared<const Enricher>(config_);
  const std::size_t k = threads_;

  // --- Phase A: certificate registry, built in parallel row ranges. ---
  std::vector<const zeek::X509Record*> rows;
  rows.reserve(x509.size());
  for (const auto& [fuid, record] : x509) rows.push_back(&record);

  auto base = std::make_shared<Pipeline::CertMap>();
  base->reserve(rows.size());
  {
    std::vector<std::vector<CertFacts>> built(k);
    parallel_ranges(rows.size(), k,
                    [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
                      auto& out = built[shard];
                      out.reserve(end - begin);
                      for (std::size_t i = begin; i < end; ++i) {
                        out.push_back(enricher->make_facts(*rows[i]));
                      }
                    });
    for (auto& chunk : built) {
      for (auto& facts : chunk) {
        const colfmt::Str fuid = facts.fuid;
        base->emplace(fuid, std::move(facts));
      }
    }
  }

  // --- Phase B: chain-level public upgrades (§3.2.1), whole stream. ---
  // Upgrading is monotonic (private → public, never back), so one pass
  // over every established connection's chains reaches the same fixpoint
  // the streaming pipeline converges to — without the stream-position
  // dependence of upgrading mid-run.
  for (const auto& record : ssl) apply_upgrades(*base, record);

  // --- Phase C: interception pre-pass (when CT is configured). ---
  // Shard-local candidate maps merge by set union; confirmation compares
  // the union against the threshold, so the confirmed set is exactly the
  // set a serial stream (in any order) would eventually confirm.
  auto confirmed = std::make_shared<Pipeline::StrSet>();
  if (config_.ct != nullptr) {
    std::vector<CandidateMap> local(k);
    parallel_ranges(ssl.size(), k,
                    [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
                      auto& candidates = local[shard];
                      for (std::size_t i = begin; i < end; ++i) {
                        note_interception_candidate(config_, *enricher, *base,
                                                    ssl[i], candidates);
                      }
                    });
    CandidateMap merged;
    for (auto& candidates : local) {
      for (auto& [issuer, domains] : candidates) {
        merged[issuer].insert(domains.begin(), domains.end());
      }
    }
    *confirmed = confirm_issuers(merged, config_.interception_domain_threshold);
  }

  // --- Phase D: one prepared-mode pipeline per shard. ---
  const Pipeline::Prepared prepared{enricher, base, confirmed};
  std::vector<Pipeline> shards = make_shards(prepared);
  parallel_ranges(ssl.size(), k,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    Pipeline& pipeline = shards[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      pipeline.add_connection(ssl[i]);
                    }
                  });

  // --- Phase E: deterministic merge in shard order. ---
  Pipeline result(prepared);
  for (auto& shard : shards) result.merge(std::move(shard));
  result.set_interception_issuers(*confirmed);
  result.backfill_certificates(*base);
  result.finalize();
  note_run_stats(*enricher, result, "rows");
  return result;
}

std::optional<Pipeline> PipelineExecutor::run_sources(
    const ingest::Source& ssl, const ingest::Source& x509,
    ingest::IngestError* error, const ingest::IngestOptions& options,
    ErrorLedger* ledger) {
  const auto enricher = std::make_shared<const Enricher>(config_);
  const std::size_t k = threads_;
  EngineError engine_error;
  const bool skip = options.errors.skip();
  // Skip mode always accounts through a ledger: budget enforcement needs
  // the counts even when the caller did not ask for the samples.
  ErrorLedger local_ledger;
  ErrorLedger* const led = ledger != nullptr ? ledger : &local_ledger;

  const ingest::LogLayout x509_layout = ingest::detect_log_layout(x509);
  const ingest::LogLayout ssl_layout = ingest::detect_log_layout(ssl);

  // The column plans are compiled ONCE per source; every chunk then
  // tokenizes its record-aligned bytes in place (no ChunkStream, no
  // per-row string materialization). Error line numbers still count the
  // header lines so reports match the historical chunk-relative numbers.
  const zeek::X509Plan x509_plan =
      zeek::X509Plan::compile(zeek::ColumnPlan::from_header(x509_layout.header));
  const zeek::SslPlan ssl_plan =
      zeek::SslPlan::compile(zeek::ColumnPlan::from_header(ssl_layout.header));
  const std::size_t x509_header_lines = header_line_count(x509_layout);
  const std::size_t ssl_header_lines = header_line_count(ssl_layout);

  // --- Phase A (streaming): parse x509 chunks in parallel, build facts
  // shard-locally, fold into the registry in stream order (duplicate
  // fuids: first record wins, exactly as the in-memory path). This is the
  // authoritative x509 pass: in skip mode its fold is the ONLY place x509
  // quarantine entries are recorded, with chunk-relative issue lines
  // rewritten to absolute file lines via the running line count. ---
  auto base = std::make_shared<Pipeline::CertMap>();
  struct FactsChunk {
    std::vector<CertFacts> facts;
    std::vector<zeek::RowIssue> issues;
    zeek::TolerantStats stats;
  };
  std::size_t x509_lines_before = 0;
  bool ok = stream_pass<FactsChunk>(
      x509, x509_layout, k, options, engine_error,
      [&](const ingest::Chunk& chunk, FactsChunk& out) {
        std::vector<zeek::X509Record> records;
        if (skip) {
          out.stats = zeek::parse_x509_records_tolerant(
              chunk.view(), x509_plan, records, &out.issues,
              x509_header_lines, chunk.offset);
        } else {
          zeek::LogParseError parse_error;
          if (!zeek::parse_x509_records(chunk.view(), x509_plan, records,
                                        &parse_error, x509_header_lines)) {
            engine_error.record(x509.name(), chunk.offset,
                                describe_parse_error(parse_error));
            return false;
          }
        }
        out.facts.reserve(records.size());
        for (const auto& record : records) {
          try {
            out.facts.push_back(enricher->make_facts(record));
          } catch (const std::exception& e) {
            // make_facts degrades hostile DER to the logged fields and
            // should never throw; this guard keeps any regression from
            // crossing the worker-thread boundary as std::terminate.
            engine_error.record(
                x509.name(), chunk.offset,
                std::string("exception while building certificate facts: ") +
                    e.what());
            return false;
          }
        }
        return true;
      },
      [&](FactsChunk&& r) {
        for (auto& f : r.facts) {
          const colfmt::Str fuid = f.fuid;
          base->emplace(fuid, std::move(f));
        }
        if (skip) {
          led->count_rows_ok(InputRole::kX509, r.stats.rows_ok);
          for (auto& issue : r.issues) {
            led->quarantine(
                LedgerPhase::kRegistry,
                {InputRole::kX509, issue.byte_offset,
                 issue.line == 0 ? 0 : issue.line + x509_lines_before,
                 issue.raw_length, std::move(issue.reason),
                 std::move(issue.digest)});
          }
        }
        x509_lines_before += r.stats.lines;
      });
  if (x509.truncation_detected()) {
    led->note_io(InputRole::kX509,
                 "file truncated while streaming; complete records salvaged "
                 "up to byte " +
                     std::to_string(x509.truncated_size()));
  }
  if (ok && skip) {
    if (auto violation = led->budget_violation(options.errors)) {
      engine_error.record(x509.name(), 0, *violation);
      ok = false;
    }
  }

  // --- Phase B (streaming): parse ssl chunks in parallel, apply chain
  // upgrades serially in stream order on the folding thread. This is the
  // authoritative ssl pass: skip-mode quarantine entries for ssl rows are
  // recorded here and nowhere else (phases C/D re-parse the same bytes
  // tolerantly and only bump per-phase counters). ---
  struct SslChunk {
    std::vector<zeek::SslRecord> records;
    std::vector<zeek::RowIssue> issues;
    zeek::TolerantStats stats;
  };
  std::size_t ssl_lines_before = 0;
  ok = ok && stream_pass<SslChunk>(
                 ssl, ssl_layout, k, options, engine_error,
                 [&](const ingest::Chunk& chunk, SslChunk& out) {
                   if (skip) {
                     out.stats = zeek::parse_ssl_records_tolerant(
                         chunk.view(), ssl_plan, out.records, &out.issues,
                         ssl_header_lines, chunk.offset);
                     return true;
                   }
                   zeek::LogParseError parse_error;
                   if (!zeek::parse_ssl_records(chunk.view(), ssl_plan,
                                                out.records, &parse_error,
                                                ssl_header_lines)) {
                     out.records.clear();  // failed chunks fold as empty
                     engine_error.record(ssl.name(), chunk.offset,
                                         describe_parse_error(parse_error));
                     return false;
                   }
                   return true;
                 },
                 [&](SslChunk&& r) {
                   for (const auto& record : r.records) {
                     apply_upgrades(*base, record);
                   }
                   if (skip) {
                     led->count_rows_ok(InputRole::kSsl, r.stats.rows_ok);
                     for (auto& issue : r.issues) {
                       led->quarantine(
                           LedgerPhase::kUpgrades,
                           {InputRole::kSsl, issue.byte_offset,
                            issue.line == 0 ? 0
                                            : issue.line + ssl_lines_before,
                            issue.raw_length, std::move(issue.reason),
                            std::move(issue.digest)});
                     }
                   }
                   ssl_lines_before += r.stats.lines;
                 });
  if (ssl.truncation_detected()) {
    led->note_io(InputRole::kSsl,
                 "file truncated while streaming; complete records salvaged "
                 "up to byte " +
                     std::to_string(ssl.truncated_size()));
  }
  if (ok && skip) {
    if (auto violation = led->budget_violation(options.errors)) {
      engine_error.record(ssl.name(), 0, *violation);
      ok = false;
    }
  }

  // --- Phase C (streaming): chunk-local candidate maps, set-union fold
  // (order-independent), threshold once at the end. Re-streams ssl; the
  // registry is complete and read-only from here on. ---
  auto confirmed = std::make_shared<Pipeline::StrSet>();
  if (ok && config_.ct != nullptr) {
    struct CandidateChunk {
      CandidateMap candidates;
      std::size_t rows_bad = 0;
    };
    CandidateMap merged;
    ok = stream_pass<CandidateChunk>(
        ssl, ssl_layout, k, options, engine_error,
        [&](const ingest::Chunk& chunk, CandidateChunk& out) {
          std::vector<zeek::SslRecord> records;
          if (skip) {
            // Non-authoritative re-parse: tolerate the same rows phase B
            // quarantined (count only — no new ledger entries).
            const auto stats = zeek::parse_ssl_records_tolerant(
                chunk.view(), ssl_plan, records, nullptr, ssl_header_lines,
                chunk.offset);
            out.rows_bad = stats.rows_bad;
          } else {
            zeek::LogParseError parse_error;
            if (!zeek::parse_ssl_records(chunk.view(), ssl_plan, records,
                                         &parse_error, ssl_header_lines)) {
              engine_error.record(ssl.name(), chunk.offset,
                                  describe_parse_error(parse_error));
              return false;
            }
          }
          for (const auto& record : records) {
            note_interception_candidate(config_, *enricher, *base, record,
                                        out.candidates);
          }
          return true;
        },
        [&](CandidateChunk&& local) {
          for (auto& [issuer, domains] : local.candidates) {
            merged[issuer].insert(domains.begin(), domains.end());
          }
          if (skip) {
            led->count_phase(LedgerPhase::kInterception, local.rows_bad);
          }
        });
    *confirmed = confirm_issuers(merged, config_.interception_domain_threshold);
  }

  // --- Phase D (streaming): static record-aligned byte ranges, one
  // contiguous range per shard; each worker re-chunks its own range and
  // feeds its shard pipeline in order. Shard boundaries differ from the
  // in-memory row split, which is immaterial: the merge is shard-order
  // deterministic for ANY contiguous partition. ---
  std::optional<Pipeline> result;
  if (ok) {
    const Pipeline::Prepared prepared{enricher, base, confirmed};
    std::vector<Pipeline> shards = make_shards(prepared);
    const auto ranges =
        ingest::shard_record_ranges(ssl, ssl_layout.body_begin, ssl.size(), k);
    std::vector<std::uint64_t> shard_rows_bad(k, 0);
    parallel_ranges(
        k, k, [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            ingest::RecordChunker chunker(ssl, options.chunk_bytes,
                                          ranges[s].first, ranges[s].second);
            ingest::Chunk chunk;
            std::vector<zeek::SslRecord> records;  // capacity reused
            while (chunker.next(chunk)) {
              records.clear();
              if (skip) {
                // Non-authoritative re-parse: skip exactly the rows phase
                // B quarantined; per-shard counts merge deterministically
                // below.
                const auto stats = zeek::parse_ssl_records_tolerant(
                    chunk.view(), ssl_plan, records, nullptr,
                    ssl_header_lines, chunk.offset);
                shard_rows_bad[s] += stats.rows_bad;
              } else {
                zeek::LogParseError parse_error;
                if (!zeek::parse_ssl_records(chunk.view(), ssl_plan, records,
                                             &parse_error, ssl_header_lines)) {
                  // Unreachable when phases B/C parsed the same bytes, but
                  // an input changing mid-run must not silently drop rows.
                  engine_error.record(ssl.name(), chunk.offset,
                                      describe_parse_error(parse_error));
                  return;
                }
              }
              Pipeline& pipeline = shards[s];
              for (const auto& record : records) {
                pipeline.add_connection(record);
              }
              ssl.release(chunk.offset, chunk.data.size());
            }
          }
        });
    if (skip) {
      for (const auto bad : shard_rows_bad) {
        led->count_phase(LedgerPhase::kShardRun, bad);
      }
    }

    if (!engine_error.failed()) {
      // --- Phase E: deterministic merge in shard order. ---
      Pipeline merged(prepared);
      for (auto& shard : shards) merged.merge(std::move(shard));
      merged.set_interception_issuers(*confirmed);
      merged.backfill_certificates(*base);
      merged.finalize();
      note_run_stats(*enricher, merged, "rows");
      result.emplace(std::move(merged));
    }
  }

  led->finalize();
  if (!result && error != nullptr) {
    const std::lock_guard<std::mutex> lock(engine_error.mutex);
    *error = engine_error.error;
  }
  return result;
}

std::optional<Pipeline> PipelineExecutor::run_log_files(
    const std::string& ssl_path, const std::string& x509_path,
    ingest::IngestError* error, const ingest::IngestOptions& options,
    ErrorLedger* ledger) {
  ingest::SourceOptions source_options;
  source_options.force_buffered = options.force_buffered;
  ingest::IngestError open_error;
  const auto ssl = ingest::open_source(ssl_path, &open_error, source_options);
  if (ssl == nullptr) {
    if (error != nullptr) *error = open_error;
    return std::nullopt;
  }
  const auto x509 =
      ingest::open_source(x509_path, &open_error, source_options);
  if (x509 == nullptr) {
    if (error != nullptr) *error = open_error;
    return std::nullopt;
  }
  return run_sources(*ssl, *x509, error, options, ledger);
}

namespace {

/// Decodes every block of the container into the record shapes the
/// in-memory entries take: the ssl stream concatenated in block order,
/// and the x509 rows folded into a first-fuid-wins map in stream order
/// (exactly what Dataset::add_x509 produces from the TSV parse).
/// Blocks decode in parallel — each carries its own dictionary — and a
/// decode failure reports the smallest-index failing block.
bool decode_container_records(const colfmt::ContainerReader& reader,
                              std::size_t k,
                              std::vector<zeek::SslRecord>& ssl,
                              zeek::Dataset::X509Map& x509,
                              ingest::IngestError* error) {
  std::mutex error_mutex;
  std::size_t error_block = SIZE_MAX;
  std::string error_reason;
  const auto note_error = [&](std::size_t block, const char* what) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (block < error_block) {
      error_block = block;
      error_reason = what;
    }
  };

  const auto& x509_blocks = reader.x509_blocks();
  const auto& ssl_blocks = reader.ssl_blocks();
  std::vector<std::vector<zeek::X509Record>> x509_rows(x509_blocks.size());
  std::vector<std::vector<zeek::SslRecord>> ssl_rows(ssl_blocks.size());
  const std::size_t total = x509_blocks.size() + ssl_blocks.size();
  parallel_ranges(total, k,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      try {
                        if (i < x509_blocks.size()) {
                          x509_rows[i] =
                              reader.decode_x509_block(x509_blocks[i]);
                        } else {
                          const std::size_t j = i - x509_blocks.size();
                          ssl_rows[j] = reader.decode_ssl_block(ssl_blocks[j]);
                        }
                      } catch (const StateError& e) {
                        note_error(i, e.what());
                      }
                    }
                  });
  if (error_block != SIZE_MAX) {
    if (error != nullptr) {
      error->file = reader.path();
      error->byte_offset = 0;
      error->reason = "container block decode failed: " + error_reason;
    }
    return false;
  }

  for (auto& rows : x509_rows) {
    for (auto& record : rows) {
      const colfmt::Str fuid = record.fuid;
      x509.emplace(fuid, std::move(record));
    }
  }
  std::size_t ssl_total = 0;
  for (const auto& rows : ssl_rows) ssl_total += rows.size();
  ssl.reserve(ssl_total);
  for (auto& rows : ssl_rows) {
    for (auto& record : rows) ssl.push_back(std::move(record));
  }
  return true;
}

}  // namespace

std::optional<Pipeline> PipelineExecutor::run_container(
    const colfmt::ContainerReader& reader, ingest::IngestError* error,
    const ingest::IngestOptions& options, ErrorLedger* ledger) {
  // Policy gate on the conversion-time ledger, mirroring what a TSV run
  // over the original logs would do with the same rows.
  ErrorLedger restored = reader.ledger();
  if (!restored.pristine()) {
    if (!options.errors.skip()) {
      // Abort mode fails on the first quarantined row of the
      // first-parsed input (x509 — phase A — before ssl), with the
      // row's original TSV coordinates.
      const QuarantinedRecord* first = nullptr;
      for (const auto& entry : restored.entries()) {
        if (entry.input == InputRole::kX509) {
          first = &entry;
          break;
        }
      }
      if (first == nullptr && !restored.entries().empty()) {
        first = &restored.entries().front();
      }
      if (error != nullptr) {
        if (first != nullptr) {
          error->file = first->input == InputRole::kX509
                            ? reader.meta().x509_path
                            : reader.meta().ssl_path;
          error->byte_offset = first->byte_offset;
          error->reason = first->reason;
        } else {
          error->file = reader.path();
          error->reason = "container records I/O degradation events";
        }
      }
      return std::nullopt;
    }
    if (const auto violation = restored.budget_violation(options.errors)) {
      if (error != nullptr) {
        error->file = reader.path();
        error->reason = *violation;
      }
      return std::nullopt;
    }
  }

  // Scan-mode dispatch: auto takes the columnar path whenever it is
  // eligible (no CT database — phase C needs full records); an explicit
  // kColumnar with CT configured falls back to rows rather than running
  // a different phase C.
  const bool columnar = config_.ct == nullptr &&
                        (scan_mode_ == ScanMode::kColumnar ||
                         scan_mode_ == ScanMode::kAuto);
  std::optional<Pipeline> result;
  if (columnar) {
    result = run_container_columnar(reader, error);
    if (!result) return std::nullopt;
  } else {
    std::vector<zeek::SslRecord> ssl;
    zeek::Dataset::X509Map x509;
    if (!decode_container_records(reader, threads_, ssl, x509, error)) {
      return std::nullopt;
    }
    result = run(ssl, x509);
  }
  if (ledger != nullptr) {
    // Hand out exactly the ledger a TSV run over the original logs would
    // have produced (shard state serializes every field, so map states
    // from compact and TSV inputs must match byte-for-byte). Abort mode
    // never accounts — run_sources only counts under skip — so a clean
    // abort run carries an empty ledger. Skip mode carries the
    // conversion counts (phases A/B: rows_ok + quarantine) plus the
    // re-parse tolerations phases C/D would have counted over the same
    // bad rows.
    ErrorLedger out;
    if (options.errors.skip()) {
      const std::uint64_t ssl_bad = restored.quarantined(InputRole::kSsl);
      out = std::move(restored);
      if (config_.ct != nullptr) {
        out.count_phase(LedgerPhase::kInterception, ssl_bad);
      }
      out.count_phase(LedgerPhase::kShardRun, ssl_bad);
    }
    out.finalize();
    *ledger = std::move(out);
  }
  return result;
}

std::optional<Pipeline> PipelineExecutor::run_container_columnar(
    const colfmt::ContainerReader& reader, ingest::IngestError* error) {
  const auto enricher = std::make_shared<const Enricher>(config_);
  const std::size_t k = threads_;
  const auto& x509_blocks = reader.x509_blocks();
  const auto& ssl_blocks = reader.ssl_blocks();

  // Smallest-index failing block wins, as in decode_container_records.
  std::mutex error_mutex;
  std::size_t error_block = SIZE_MAX;
  std::string error_reason;
  const auto note_error = [&](std::size_t block, const char* what) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (block < error_block) {
      error_block = block;
      error_reason = what;
    }
  };
  const auto failed = [&] {
    const std::lock_guard<std::mutex> lock(error_mutex);
    return error_block != SIZE_MAX;
  };

  // --- Phase A: x509 blocks decode + facts in parallel, then fold
  // first-fuid-wins in block (= stream) order. Certificates are the
  // deduplicated side of the join, so this side keeps the materializing
  // decoder; the Enricher's DER-keyed memo already collapses the work
  // per distinct certificate. ---
  auto base = std::make_shared<Pipeline::CertMap>();
  {
    std::vector<std::vector<CertFacts>> built(x509_blocks.size());
    parallel_ranges(
        x509_blocks.size(), k,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            try {
              const auto rows = reader.decode_x509_block(x509_blocks[i]);
              auto& out = built[i];
              out.reserve(rows.size());
              for (const auto& record : rows) {
                out.push_back(enricher->make_facts(record));
              }
            } catch (const std::exception& e) {
              note_error(i, e.what());
            }
          }
        });
    if (!failed()) {
      std::size_t total = 0;
      for (const auto& chunk : built) total += chunk.size();
      base->reserve(total);
      for (auto& chunk : built) {
        for (auto& facts : chunk) {
          const colfmt::Str fuid = facts.fuid;
          base->emplace(fuid, std::move(facts));
        }
      }
    }
  }

  // --- Phase B: serial column scan in stream order. Chain upgrades only
  // read the established flag and the chain fuids, so every other column
  // is pruned (kind-6 blocks skip the ts/uid spans in O(1)). ---
  if (!failed()) {
    colfmt::SslScanColumns needs;
    needs.ts = false;
    needs.uid = false;
    needs.endpoints = false;
    needs.version = false;
    needs.server_name = false;
    zeek::SslRecord rec;
    for (std::size_t i = 0; i < ssl_blocks.size(); ++i) {
      try {
        auto scan = reader.scan_ssl_block(ssl_blocks[i], needs);
        while (!scan.done()) {
          scan.next(rec);
          apply_upgrades(*base, rec);
        }
      } catch (const StateError& e) {
        note_error(x509_blocks.size() + i, e.what());
        break;
      }
    }
  }

  // --- Phases D + E: contiguous block ranges, one per shard; each row
  // is served into ONE reused record (uid pruned and left empty — no
  // enrichment rule or analyzer reads it) and fed straight to the shard
  // pipeline, whose EnrichCache folds the per-row host/address work down
  // to pointer-keyed lookups. Block boundaries are a contiguous stream
  // partition, so the shard-order merge is byte-identical to the row
  // path for any thread count. ---
  std::optional<Pipeline> result;
  if (!failed()) {
    auto confirmed = std::make_shared<Pipeline::StrSet>();
    const Pipeline::Prepared prepared{enricher, base, confirmed};
    std::vector<Pipeline> shards = make_shards(prepared);
    parallel_ranges(
        ssl_blocks.size(), k,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          Pipeline& pipeline = shards[shard];
          zeek::SslRecord rec;
          for (std::size_t i = begin; i < end; ++i) {
            try {
              auto scan = reader.scan_ssl_block(
                  ssl_blocks[i], colfmt::SslScanColumns::pipeline());
              while (!scan.done()) {
                scan.next(rec);
                pipeline.add_connection(rec);
              }
            } catch (const StateError& e) {
              note_error(x509_blocks.size() + i, e.what());
              return;
            }
          }
        });
    if (!failed()) {
      Pipeline merged(prepared);
      for (auto& shard : shards) merged.merge(std::move(shard));
      merged.set_interception_issuers(*confirmed);
      merged.backfill_certificates(*base);
      merged.finalize();
      note_run_stats(*enricher, merged, "columnar");
      result.emplace(std::move(merged));
    }
  }

  if (!result && error != nullptr) {
    error->file = reader.path();
    error->byte_offset = 0;
    error->reason = "container block decode failed: " + error_reason;
  }
  return result;
}

std::optional<Pipeline> PipelineExecutor::run_logs(
    const std::string& ssl_text, const std::string& x509_text,
    zeek::LogParseError* error, const ingest::IngestOptions& options,
    ErrorLedger* ledger) {
  const ingest::MemorySource ssl(ssl_text, "<ssl log text>");
  const ingest::MemorySource x509(x509_text, "<x509 log text>");
  ingest::IngestError ingest_error;
  auto result = run_sources(ssl, x509, &ingest_error, options, ledger);
  if (!result && error != nullptr) {
    error->line = 0;
    error->message = ingest_error.to_string();
  }
  return result;
}

}  // namespace mtlscope::core
