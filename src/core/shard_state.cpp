// Shard-state serialization (DESIGN §12). Every serialize/deserialize
// member declared across analyzers.hpp / pipeline.hpp / error_ledger.hpp
// is defined here, next to the container framing, so the full on-disk
// layout is reviewable in one translation unit.
#include "mtlscope/core/shard_state.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mtlscope/core/executor.hpp"
#include "mtlscope/core/state_io.hpp"
#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/crypto/sha256.hpp"
#include "mtlscope/ingest/durable_io.hpp"

namespace mtlscope::core {

namespace {

// Section ids, in file order. The section table is part of the format:
// renumbering or reordering requires a kStateFormatVersion bump.
enum SectionId : std::uint32_t {
  kSecMeta = 1,
  kSecPipeline = 2,
  kSecPrevalence = 3,
  kSecServicePorts = 4,
  kSecInboundAssoc = 5,
  kSecOutboundFlows = 6,
  kSecDummyIssuer = 7,
  kSecSerialCollision = 8,
  kSecSharedCert = 9,
  kSecIncorrectDate = 10,
  kSecLedger = 11,
};
constexpr std::uint32_t kSectionCount = 11;

constexpr char kMagic[8] = {'M', 'T', 'L', 'S', 'S', 'T', 'A', 'T'};
/// Stored little-endian; a big-endian writer would emit 0x04030201.
constexpr std::uint32_t kEndianSentinel = 0x01020304;

void write_str_set(StateWriter& w, const std::set<std::string>& s) {
  w.u64(s.size());
  for (const auto& v : s) w.str(v);
}

void read_str_set(StateReader& r, std::set<std::string>& s) {
  s.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) s.insert(s.end(), r.str());
}

// Interned-string sets serialize byte-identically to std::string sets:
// same byte order (StrLess), same length-prefixed values. Reading
// re-interns into the arena of the running process.
void write_str_set(StateWriter& w, const Pipeline::StrSet& s) {
  w.u64(s.size());
  for (const auto& v : s) w.str(v);
}

void read_str_set(StateReader& r, Pipeline::StrSet& s) {
  s.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    s.insert(s.end(), colfmt::Str(r.str()));
  }
}

void write_u32_set(StateWriter& w, const std::set<std::uint32_t>& s) {
  w.u64(s.size());
  for (const std::uint32_t v : s) w.u32(v);
}

void read_u32_set(StateReader& r, std::set<std::uint32_t>& s) {
  s.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) s.insert(s.end(), r.u32());
}

void write_totals(StateWriter& w, const Pipeline::Totals& t) {
  w.u64(t.connections);
  w.u64(t.established);
  w.u64(t.rejected_handshakes);
  w.u64(t.mutual);
  w.u64(t.inbound);
  w.u64(t.outbound);
  w.u64(t.tls13);
}

void read_totals(StateReader& r, Pipeline::Totals& t) {
  t.connections = r.u64();
  t.established = r.u64();
  t.rejected_handshakes = r.u64();
  t.mutual = r.u64();
  t.inbound = r.u64();
  t.outbound = r.u64();
  t.tls13 = r.u64();
}

}  // namespace

// ---------------------------------------------------------------------------
// CertFacts / Pipeline

void CertFacts::serialize(StateWriter& w) const {
  w.str(fuid);
  w.i64(version);
  w.i64(key_bits);
  w.str(serial_hex);
  w.str(subject_cn);
  w.str(issuer_org);
  w.str(issuer_cn);
  w.str(issuer_dn);
  w.i64(validity.not_before);
  w.i64(validity.not_after);
  w.u64(san_dns.size());
  for (const auto& name : san_dns) w.str(name);
  w.i64(san_email_count);
  w.i64(san_uri_count);
  w.i64(san_ip_count);
  w.u8(static_cast<std::uint8_t>(issuer_class));
  w.u8(static_cast<std::uint8_t>(issuer_category));
  w.u8(campus_issuer ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(cn_type));
  w.u64(san_dns_types.size());
  for (const auto type : san_dns_types) {
    w.u8(static_cast<std::uint8_t>(type));
  }
  w.u8(flagged_interception ? 1 : 0);
  w.u8(used_as_server ? 1 : 0);
  w.u8(used_as_client ? 1 : 0);
  w.u8(used_in_mutual ? 1 : 0);
  w.u8(seen_inbound ? 1 : 0);
  w.u8(seen_outbound ? 1 : 0);
  w.u8(seen_outbound_with_sni ? 1 : 0);
  w.u8(client_use_while_expired ? 1 : 0);
  w.u64(connection_count);
  w.i64(first_seen);
  w.i64(last_seen);
  write_u32_set(w, server_subnets);
  write_u32_set(w, client_subnets);
  w.str(context_sld);
  w.u8(static_cast<std::uint8_t>(context_assoc));
}

void CertFacts::deserialize(StateReader& r) {
  fuid = r.str();
  version = static_cast<int>(r.i64());
  key_bits = static_cast<int>(r.i64());
  serial_hex = r.str();
  subject_cn = r.str();
  issuer_org = r.str();
  issuer_cn = r.str();
  issuer_dn = r.str();
  validity.not_before = r.i64();
  validity.not_after = r.i64();
  san_dns.clear();
  const std::uint64_t n_san = r.u64();
  san_dns.reserve(static_cast<std::size_t>(n_san));
  for (std::uint64_t i = 0; i < n_san; ++i) san_dns.push_back(r.str());
  san_email_count = static_cast<int>(r.i64());
  san_uri_count = static_cast<int>(r.i64());
  san_ip_count = static_cast<int>(r.i64());
  issuer_class = static_cast<trust::IssuerClass>(r.u8());
  issuer_category = static_cast<IssuerCategory>(r.u8());
  campus_issuer = r.u8() != 0;
  cn_type = static_cast<textclass::InfoType>(r.u8());
  san_dns_types.clear();
  const std::uint64_t n_types = r.u64();
  san_dns_types.reserve(static_cast<std::size_t>(n_types));
  for (std::uint64_t i = 0; i < n_types; ++i) {
    san_dns_types.push_back(static_cast<textclass::InfoType>(r.u8()));
  }
  flagged_interception = r.u8() != 0;
  used_as_server = r.u8() != 0;
  used_as_client = r.u8() != 0;
  used_in_mutual = r.u8() != 0;
  seen_inbound = r.u8() != 0;
  seen_outbound = r.u8() != 0;
  seen_outbound_with_sni = r.u8() != 0;
  client_use_while_expired = r.u8() != 0;
  connection_count = r.u64();
  first_seen = r.i64();
  last_seen = r.i64();
  read_u32_set(r, server_subnets);
  read_u32_set(r, client_subnets);
  context_sld = r.str();
  context_assoc = static_cast<ServerAssociation>(r.u8());
}

void Pipeline::serialize(StateWriter& w) const {
  write_totals(w, totals_);
  w.u64(excluded_connections_);
  // The registry is an unordered map: emit sorted by fuid so the bytes
  // are independent of hash-table iteration order.
  std::vector<const CertFacts*> sorted = certificates_sorted();
  w.u64(sorted.size());
  for (const CertFacts* facts : sorted) facts->serialize(w);
  write_str_set(w, interception_issuers_);
  w.u64(interception_candidates_.size());
  for (const auto& [issuer, domains] : interception_candidates_) {
    w.str(issuer);
    write_str_set(w, domains);
  }
  std::vector<std::pair<colfmt::Str, const Totals*>> pending;
  pending.reserve(pending_by_issuer_.size());
  for (const auto& [issuer, totals] : pending_by_issuer_) {
    pending.emplace_back(issuer, &totals);
  }
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(pending.size());
  for (const auto& [issuer, totals] : pending) {
    w.str(issuer);
    write_totals(w, *totals);
  }
}

void Pipeline::deserialize(StateReader& r) {
  read_totals(r, totals_);
  excluded_connections_ = static_cast<std::size_t>(r.u64());
  certs_.clear();
  const std::uint64_t n_certs = r.u64();
  certs_.reserve(static_cast<std::size_t>(n_certs));
  for (std::uint64_t i = 0; i < n_certs; ++i) {
    CertFacts facts;
    facts.deserialize(r);
    const colfmt::Str fuid = facts.fuid;
    certs_.emplace(fuid, std::move(facts));
  }
  read_str_set(r, interception_issuers_);
  interception_candidates_.clear();
  const std::uint64_t n_candidates = r.u64();
  for (std::uint64_t i = 0; i < n_candidates; ++i) {
    const colfmt::Str issuer(r.str());
    read_str_set(r, interception_candidates_[issuer]);
  }
  pending_by_issuer_.clear();
  const std::uint64_t n_pending = r.u64();
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const colfmt::Str issuer(r.str());
    read_totals(r, pending_by_issuer_[issuer]);
  }
}

// ---------------------------------------------------------------------------
// ErrorLedger

void ErrorLedger::serialize(StateWriter& w) const {
  w.u64(entries_.size());
  for (const auto& e : entries_) {
    w.u8(static_cast<std::uint8_t>(e.input));
    w.u64(e.byte_offset);
    w.u64(e.line);
    w.u64(e.raw_length);
    w.str(e.reason);
    w.str(e.digest);
  }
  w.u64(io_notes_.size());
  for (const auto& note : io_notes_) w.str(note);
  for (std::size_t i = 0; i < kInputRoles; ++i) w.u64(quarantined_[i]);
  for (std::size_t i = 0; i < kInputRoles; ++i) {
    w.u64(reason_counts_[i].size());
    for (const auto& [reason, n] : reason_counts_[i]) {
      w.str(reason);
      w.u64(n);
    }
  }
  for (std::size_t i = 0; i < kInputRoles; ++i) w.u64(rows_ok_[i]);
  for (std::size_t i = 0; i < kLedgerPhases; ++i) w.u64(phase_counts_[i]);
  w.u64(io_events_);
  w.u8(samples_truncated_ ? 1 : 0);
}

void ErrorLedger::deserialize(StateReader& r) {
  clear();
  const std::uint64_t n_entries = r.u64();
  entries_.reserve(static_cast<std::size_t>(n_entries));
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    QuarantinedRecord e;
    e.input = static_cast<InputRole>(r.u8());
    e.byte_offset = static_cast<std::size_t>(r.u64());
    e.line = static_cast<std::size_t>(r.u64());
    e.raw_length = static_cast<std::size_t>(r.u64());
    e.reason = r.str();
    e.digest = r.str();
    entries_.push_back(std::move(e));
  }
  const std::uint64_t n_notes = r.u64();
  io_notes_.reserve(static_cast<std::size_t>(n_notes));
  for (std::uint64_t i = 0; i < n_notes; ++i) io_notes_.push_back(r.str());
  for (std::size_t i = 0; i < kInputRoles; ++i) quarantined_[i] = r.u64();
  for (std::size_t i = 0; i < kInputRoles; ++i) {
    const std::uint64_t n = r.u64();
    for (std::uint64_t j = 0; j < n; ++j) {
      std::string reason = r.str();
      reason_counts_[i][std::move(reason)] = r.u64();
    }
  }
  for (std::size_t i = 0; i < kInputRoles; ++i) rows_ok_[i] = r.u64();
  for (std::size_t i = 0; i < kLedgerPhases; ++i) phase_counts_[i] = r.u64();
  io_events_ = r.u64();
  samples_truncated_ = r.u8() != 0;
}

// ---------------------------------------------------------------------------
// Connection analyzers

void PrevalenceAnalyzer::serialize(StateWriter& w) const {
  w.u64(months_.size());
  for (const auto& [month, point] : months_) {
    w.i64(month);
    w.i64(point.month_index);
    w.u64(point.total);
    w.u64(point.mutual);
    w.u64(point.mutual_inbound);
    w.u64(point.mutual_outbound);
  }
}

void PrevalenceAnalyzer::deserialize(StateReader& r) {
  months_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int month = static_cast<int>(r.i64());
    MonthPoint& point = months_[month];
    point.month_index = static_cast<int>(r.i64());
    point.total = r.u64();
    point.mutual = r.u64();
    point.mutual_inbound = r.u64();
    point.mutual_outbound = r.u64();
  }
}

void ServicePortAnalyzer::serialize(StateWriter& w) const {
  for (const auto& quadrant : counts_) {
    w.u64(quadrant.size());
    for (const auto& [label, n] : quadrant) {
      w.str(label);
      w.u64(n);
    }
  }
  for (const std::uint64_t total : totals_) w.u64(total);
}

void ServicePortAnalyzer::deserialize(StateReader& r) {
  for (auto& quadrant : counts_) {
    quadrant.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string label = r.str();
      quadrant[std::move(label)] = r.u64();
    }
  }
  for (auto& total : totals_) total = r.u64();
}

void InboundAssociationAnalyzer::serialize(StateWriter& w) const {
  w.u64(acc_.size());
  for (const auto& [assoc, acc] : acc_) {
    w.u8(static_cast<std::uint8_t>(assoc));
    w.u64(acc.connections);
    write_u32_set(w, acc.clients);
    w.u64(acc.clients_by_category.size());
    for (const auto& [category, clients] : acc.clients_by_category) {
      w.u8(static_cast<std::uint8_t>(category));
      write_u32_set(w, clients);
    }
  }
  w.u64(total_conns_);
}

void InboundAssociationAnalyzer::deserialize(StateReader& r) {
  acc_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto assoc = static_cast<ServerAssociation>(r.u8());
    Acc& acc = acc_[assoc];
    acc.connections = r.u64();
    read_u32_set(r, acc.clients);
    const std::uint64_t n_cat = r.u64();
    for (std::uint64_t j = 0; j < n_cat; ++j) {
      const auto category = static_cast<IssuerCategory>(r.u8());
      read_u32_set(r, acc.clients_by_category[category]);
    }
  }
  total_conns_ = r.u64();
}

void OutboundFlowAnalyzer::serialize(StateWriter& w) const {
  w.u64(sld_counts_.size());
  for (const auto& [sld, n] : sld_counts_) {
    w.str(sld);
    w.u64(n);
  }
  w.u64(flows_.size());
  for (const auto& [key, n] : flows_) {
    w.str(std::get<0>(key));
    w.i64(std::get<1>(key));
    w.i64(std::get<2>(key));
    w.u64(n);
  }
  w.u64(with_sni_);
  w.u64(public_server_conns_);
  w.u64(public_server_missing_client_);
}

void OutboundFlowAnalyzer::deserialize(StateReader& r) {
  sld_counts_.clear();
  const std::uint64_t n_slds = r.u64();
  for (std::uint64_t i = 0; i < n_slds; ++i) {
    std::string sld = r.str();
    sld_counts_[std::move(sld)] = r.u64();
  }
  flows_.clear();
  const std::uint64_t n_flows = r.u64();
  for (std::uint64_t i = 0; i < n_flows; ++i) {
    std::string tld = r.str();
    const int server_class = static_cast<int>(r.i64());
    const int client_category = static_cast<int>(r.i64());
    flows_[std::make_tuple(std::move(tld), server_class, client_category)] =
        r.u64();
  }
  with_sni_ = r.u64();
  public_server_conns_ = r.u64();
  public_server_missing_client_ = r.u64();
}

void DummyIssuerAnalyzer::serialize(StateWriter& w) const {
  w.u64(rows_.size());
  for (const auto& [key, row] : rows_) {
    w.u8(static_cast<std::uint8_t>(key.direction));
    w.u8(key.client_side ? 1 : 0);
    w.str(key.dummy_org);
    w.u8(static_cast<std::uint8_t>(row.direction));
    w.u8(row.client_side ? 1 : 0);
    w.str(row.dummy_org);
    write_str_set(w, row.server_groups);
    write_u32_set(w, row.clients);
    w.u64(row.connections);
  }
  w.u64(both_.size());
  for (const auto& [key, row] : both_) {
    w.str(key);
    w.str(row.sld);
    w.str(row.client_org);
    w.str(row.server_org);
    write_u32_set(w, row.clients);
    w.i64(row.first);
    w.i64(row.last);
  }
  write_str_set(w, weak_.v1_certs);
  w.u64(weak_.v1_tuples);
  write_str_set(w, weak_.weak_key_certs);
  w.u64(weak_.weak_key_tuples);
  write_str_set(w, v1_tuple_set_);
  write_str_set(w, weak_tuple_set_);
}

void DummyIssuerAnalyzer::deserialize(StateReader& r) {
  rows_.clear();
  const std::uint64_t n_rows = r.u64();
  for (std::uint64_t i = 0; i < n_rows; ++i) {
    Key key;
    key.direction = static_cast<Direction>(r.u8());
    key.client_side = r.u8() != 0;
    key.dummy_org = r.str();
    Row& row = rows_[key];
    row.direction = static_cast<Direction>(r.u8());
    row.client_side = r.u8() != 0;
    row.dummy_org = r.str();
    read_str_set(r, row.server_groups);
    read_u32_set(r, row.clients);
    row.connections = r.u64();
  }
  both_.clear();
  const std::uint64_t n_both = r.u64();
  for (std::uint64_t i = 0; i < n_both; ++i) {
    std::string key = r.str();
    BothEndsRow& row = both_[std::move(key)];
    row.sld = r.str();
    row.client_org = r.str();
    row.server_org = r.str();
    read_u32_set(r, row.clients);
    row.first = r.i64();
    row.last = r.i64();
  }
  read_str_set(r, weak_.v1_certs);
  weak_.v1_tuples = r.u64();
  read_str_set(r, weak_.weak_key_certs);
  weak_.weak_key_tuples = r.u64();
  read_str_set(r, v1_tuple_set_);
  read_str_set(r, weak_tuple_set_);
}

void SerialCollisionAnalyzer::serialize(StateWriter& w) const {
  w.u64(groups_.size());
  for (const auto& [key, group] : groups_) {
    w.str(std::get<0>(key));
    w.str(std::get<1>(key));
    w.i64(std::get<2>(key));
    w.str(group.issuer_org);
    w.str(group.serial);
    w.u8(static_cast<std::uint8_t>(group.direction));
    write_str_set(w, group.server_certs);
    write_str_set(w, group.client_certs);
    write_u32_set(w, group.clients);
    w.u64(group.connections);
    w.u64(group.both_endpoint_connections);
  }
  for (const auto& clients : involved_clients_) write_u32_set(w, clients);
}

void SerialCollisionAnalyzer::deserialize(StateReader& r) {
  groups_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string issuer = r.str();
    std::string serial = r.str();
    const int direction = static_cast<int>(r.i64());
    Group& group =
        groups_[std::make_tuple(std::move(issuer), std::move(serial),
                                direction)];
    group.issuer_org = r.str();
    group.serial = r.str();
    group.direction = static_cast<Direction>(r.u8());
    read_str_set(r, group.server_certs);
    read_str_set(r, group.client_certs);
    read_u32_set(r, group.clients);
    group.connections = r.u64();
    group.both_endpoint_connections = r.u64();
  }
  for (auto& clients : involved_clients_) read_u32_set(r, clients);
}

void SharedCertAnalyzer::serialize(StateWriter& w) const {
  w.u64(same_conn_.size());
  for (const auto& [key, row] : same_conn_) {
    w.str(key);
    w.str(row.sld);
    w.str(row.issuer);
    w.u8(row.public_issuer ? 1 : 0);
    write_u32_set(w, row.clients);
    w.i64(row.first);
    w.i64(row.last);
    w.u64(row.connections);
  }
  for (const std::uint64_t conns : same_conn_conns_) w.u64(conns);
  write_str_set(w, same_conn_fuids_);
}

void SharedCertAnalyzer::deserialize(StateReader& r) {
  same_conn_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    SameConnRow& row = same_conn_[std::move(key)];
    row.sld = r.str();
    row.issuer = r.str();
    row.public_issuer = r.u8() != 0;
    read_u32_set(r, row.clients);
    row.first = r.i64();
    row.last = r.i64();
    row.connections = r.u64();
  }
  for (auto& conns : same_conn_conns_) conns = r.u64();
  read_str_set(r, same_conn_fuids_);
}

namespace {

void write_date_row(StateWriter& w, const IncorrectDateAnalyzer::Row& row) {
  w.str(row.sld);
  w.u8(row.client_side ? 1 : 0);
  w.str(row.issuer);
  w.i64(row.not_before);
  w.i64(row.not_after);
  write_u32_set(w, row.clients);
  w.i64(row.first);
  w.i64(row.last);
  write_str_set(w, row.certs);
}

void read_date_row(StateReader& r, IncorrectDateAnalyzer::Row& row) {
  row.sld = r.str();
  row.client_side = r.u8() != 0;
  row.issuer = r.str();
  row.not_before = r.i64();
  row.not_after = r.i64();
  read_u32_set(r, row.clients);
  row.first = r.i64();
  row.last = r.i64();
  read_str_set(r, row.certs);
}

void write_date_map(StateWriter& w,
                    const std::map<std::string, IncorrectDateAnalyzer::Row>& m) {
  w.u64(m.size());
  for (const auto& [key, row] : m) {
    w.str(key);
    write_date_row(w, row);
  }
}

void read_date_map(StateReader& r,
                   std::map<std::string, IncorrectDateAnalyzer::Row>& m) {
  m.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    read_date_row(r, m[std::move(key)]);
  }
}

}  // namespace

void IncorrectDateAnalyzer::serialize(StateWriter& w) const {
  write_date_map(w, rows_);
  write_date_map(w, both_);
}

void IncorrectDateAnalyzer::deserialize(StateReader& r) {
  read_date_map(r, rows_);
  read_date_map(r, both_);
}

// ---------------------------------------------------------------------------
// AnalyzerSet / ShardState

void AnalyzerSet::merge(AnalyzerSet&& other) {
  prevalence.merge(std::move(other.prevalence));
  service_ports.merge(std::move(other.service_ports));
  inbound_assoc.merge(std::move(other.inbound_assoc));
  outbound_flows.merge(std::move(other.outbound_flows));
  dummy_issuers.merge(std::move(other.dummy_issuers));
  serial_collisions.merge(std::move(other.serial_collisions));
  shared_certs.merge(std::move(other.shared_certs));
  incorrect_dates.merge(std::move(other.incorrect_dates));
}

std::string describe_meta(const ShardStateMeta& meta) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mode=%s seed=%llu cert_scale=%g conn_scale=%g",
                meta.file_mode ? "file" : "synthetic",
                static_cast<unsigned long long>(meta.seed), meta.cert_scale,
                meta.conn_scale);
  return buf;
}

bool compatible_meta(const ShardStateMeta& a, const ShardStateMeta& b) {
  return a.file_mode == b.file_mode && a.seed == b.seed &&
         a.cert_scale == b.cert_scale && a.conn_scale == b.conn_scale;
}

void ShardState::merge(ShardState&& other) {
  meta.parse_bytes += other.meta.parse_bytes;
  const auto append_path = [](std::string& mine, std::string&& theirs) {
    if (theirs.empty()) return;
    if (!mine.empty()) mine += ",";
    mine += std::move(theirs);
  };
  append_path(meta.ssl_log, std::move(other.meta.ssl_log));
  append_path(meta.x509_log, std::move(other.meta.x509_log));
  if (other.pipeline) {
    if (pipeline) {
      pipeline->merge(std::move(*other.pipeline));
    } else {
      pipeline = std::move(other.pipeline);
    }
  }
  analyzers.merge(std::move(other.analyzers));
  ledger.merge(std::move(other.ledger));
}

// ---------------------------------------------------------------------------
// Container framing

namespace {

void serialize_meta(StateWriter& w, const ShardStateMeta& meta) {
  w.u8(meta.file_mode ? 1 : 0);
  w.u64(meta.seed);
  w.f64(meta.cert_scale);
  w.f64(meta.conn_scale);
  w.str(meta.ssl_log);
  w.str(meta.x509_log);
  w.u64(meta.parse_bytes);
}

void deserialize_meta(StateReader& r, ShardStateMeta& meta) {
  meta.file_mode = r.u8() != 0;
  meta.seed = r.u64();
  meta.cert_scale = r.f64();
  meta.conn_scale = r.f64();
  meta.ssl_log = r.str();
  meta.x509_log = r.str();
  meta.parse_bytes = r.u64();
}

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecMeta: return "meta";
    case kSecPipeline: return "pipeline";
    case kSecPrevalence: return "prevalence";
    case kSecServicePorts: return "service_ports";
    case kSecInboundAssoc: return "inbound_assoc";
    case kSecOutboundFlows: return "outbound_flows";
    case kSecDummyIssuer: return "dummy_issuer";
    case kSecSerialCollision: return "serial_collision";
    case kSecSharedCert: return "shared_cert";
    case kSecIncorrectDate: return "incorrect_date";
    case kSecLedger: return "ledger";
  }
  return "unknown";
}

}  // namespace

std::string serialize_shard_state(const ShardState& state) {
  if (!state.pipeline) {
    throw StateError("shard state has no pipeline to serialize");
  }
  StateWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kStateFormatVersion);
  w.u32(kEndianSentinel);
  w.u32(kSectionCount);

  const auto section = [&w](std::uint32_t id, const auto& serializer) {
    StateWriter payload;
    serializer(payload);
    w.u32(id);
    w.u64(payload.buffer().size());
    w.raw(payload.buffer().data(), payload.buffer().size());
  };
  section(kSecMeta,
          [&](StateWriter& p) { serialize_meta(p, state.meta); });
  section(kSecPipeline,
          [&](StateWriter& p) { state.pipeline->serialize(p); });
  section(kSecPrevalence,
          [&](StateWriter& p) { state.analyzers.prevalence.serialize(p); });
  section(kSecServicePorts,
          [&](StateWriter& p) { state.analyzers.service_ports.serialize(p); });
  section(kSecInboundAssoc,
          [&](StateWriter& p) { state.analyzers.inbound_assoc.serialize(p); });
  section(kSecOutboundFlows, [&](StateWriter& p) {
    state.analyzers.outbound_flows.serialize(p);
  });
  section(kSecDummyIssuer,
          [&](StateWriter& p) { state.analyzers.dummy_issuers.serialize(p); });
  section(kSecSerialCollision, [&](StateWriter& p) {
    state.analyzers.serial_collisions.serialize(p);
  });
  section(kSecSharedCert,
          [&](StateWriter& p) { state.analyzers.shared_certs.serialize(p); });
  section(kSecIncorrectDate, [&](StateWriter& p) {
    state.analyzers.incorrect_dates.serialize(p);
  });
  section(kSecLedger,
          [&](StateWriter& p) { state.ledger.serialize(p); });

  std::string out = std::move(w).take();
  const auto digest = crypto::Sha256::hash(out);
  out.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  return out;
}

std::optional<ShardState> parse_shard_state(std::string_view data,
                                            StateFileInfo* info,
                                            std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
  };
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;  // magic + version
  if (data.size() < kHeaderBytes) {
    fail("truncated state file: " + std::to_string(data.size()) + " bytes");
    return std::nullopt;
  }
  if (std::string_view(data.data(), sizeof(kMagic)) !=
      std::string_view(kMagic, sizeof(kMagic))) {
    fail("bad magic: not a mtlscope state file");
    return std::nullopt;
  }
  // Version gates everything else: a future-format file reports its
  // version even when the rest of its layout is unreadable to us.
  std::uint32_t version = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data[sizeof(kMagic) + i]))
               << (8 * i);
  }
  if (version != kStateFormatVersion) {
    fail("unsupported state format version " + std::to_string(version) +
         " (expected " + std::to_string(kStateFormatVersion) + ")");
    return std::nullopt;
  }
  if (data.size() < kHeaderBytes + crypto::Sha256::kDigestSize) {
    fail("truncated state file: no room for the digest trailer");
    return std::nullopt;
  }
  const std::size_t payload_size = data.size() - crypto::Sha256::kDigestSize;
  const auto digest =
      crypto::Sha256::hash(std::string_view(data.data(), payload_size));
  if (std::string_view(reinterpret_cast<const char*>(digest.data()),
                       digest.size()) !=
      std::string_view(data.data() + payload_size,
                       crypto::Sha256::kDigestSize)) {
    fail("state digest mismatch: file corrupted or truncated");
    return std::nullopt;
  }

  try {
    StateReader r(std::string_view(data.data(), payload_size));
    r.bytes(sizeof(kMagic));  // magic, verified above
    r.u32();                  // version, verified above
    if (r.u32() != kEndianSentinel) {
      fail("bad endianness sentinel in state file");
      return std::nullopt;
    }
    const std::uint32_t sections = r.u32();
    ShardState state;
    state.pipeline.emplace(PipelineConfig::campus_defaults());
    bool seen[kSectionCount + 1] = {};
    for (std::uint32_t i = 0; i < sections; ++i) {
      const std::uint32_t id = r.u32();
      const std::uint64_t len = r.u64();
      StateReader section(r.bytes(static_cast<std::size_t>(len)));
      if (id == 0 || id > kSectionCount) {
        fail("unknown state section id " + std::to_string(id));
        return std::nullopt;
      }
      if (seen[id]) {
        fail(std::string("duplicate state section '") + section_name(id) +
             "'");
        return std::nullopt;
      }
      seen[id] = true;
      switch (id) {
        case kSecMeta:
          deserialize_meta(section, state.meta);
          break;
        case kSecPipeline:
          state.pipeline->deserialize(section);
          break;
        case kSecPrevalence:
          state.analyzers.prevalence.deserialize(section);
          break;
        case kSecServicePorts:
          state.analyzers.service_ports.deserialize(section);
          break;
        case kSecInboundAssoc:
          state.analyzers.inbound_assoc.deserialize(section);
          break;
        case kSecOutboundFlows:
          state.analyzers.outbound_flows.deserialize(section);
          break;
        case kSecDummyIssuer:
          state.analyzers.dummy_issuers.deserialize(section);
          break;
        case kSecSerialCollision:
          state.analyzers.serial_collisions.deserialize(section);
          break;
        case kSecSharedCert:
          state.analyzers.shared_certs.deserialize(section);
          break;
        case kSecIncorrectDate:
          state.analyzers.incorrect_dates.deserialize(section);
          break;
        case kSecLedger:
          state.ledger.deserialize(section);
          break;
      }
      section.expect_done(section_name(id));
    }
    for (std::uint32_t id = 1; id <= kSectionCount; ++id) {
      if (!seen[id]) {
        fail(std::string("missing state section '") + section_name(id) + "'");
        return std::nullopt;
      }
    }
    r.expect_done("container");
    if (info != nullptr) {
      info->format_version = version;
      info->digest_hex = crypto::to_hex(digest);
      info->bytes = data.size();
    }
    return state;
  } catch (const StateError& e) {
    fail(e.what());
    return std::nullopt;
  }
}

bool save_shard_state(const std::string& path, const ShardState& state,
                      StateFileInfo* info, std::string* error) {
  std::string bytes;
  try {
    bytes = serialize_shard_state(state);
  } catch (const StateError& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  // Atomic, durable publication (DESIGN §16): tmp + fsync + rename +
  // parent-directory fsync, so a reduce never opens a torn state file
  // and a completed map survives power loss.
  const auto published = ingest::atomic_publish_file(path, bytes, "state.save");
  if (!published.ok) {
    if (error != nullptr) *error = published.message;
    return false;
  }
  if (info != nullptr) {
    info->format_version = kStateFormatVersion;
    info->digest_hex = crypto::to_hex(crypto::Sha256::hash(std::string_view(
        bytes.data(), bytes.size() - crypto::Sha256::kDigestSize)));
    info->bytes = bytes.size();
  }
  return true;
}

std::optional<ShardState> load_shard_state(const std::string& path,
                                           StateFileInfo* info,
                                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();
  return parse_shard_state(bytes, info, error);
}

// ---------------------------------------------------------------------------
// Executor fold entries

namespace {

/// One Sharded wrapper per standard analyzer, attached together and
/// merged together — the executor-side counterpart of AnalyzerSet.
struct ShardedSet {
  explicit ShardedSet(std::size_t shards)
      : prevalence(shards),
        service_ports(shards),
        inbound_assoc(shards),
        outbound_flows(shards),
        dummy_issuers(shards),
        serial_collisions(shards),
        shared_certs(shards),
        incorrect_dates(shards) {}

  void attach(PipelineExecutor& executor) {
    executor.attach(prevalence);
    executor.attach(service_ports);
    executor.attach(inbound_assoc);
    executor.attach(outbound_flows);
    executor.attach(dummy_issuers);
    executor.attach(serial_collisions);
    executor.attach(shared_certs);
    executor.attach(incorrect_dates);
  }

  AnalyzerSet merged() && {
    AnalyzerSet out;
    out.prevalence = std::move(prevalence).merged();
    out.service_ports = std::move(service_ports).merged();
    out.inbound_assoc = std::move(inbound_assoc).merged();
    out.outbound_flows = std::move(outbound_flows).merged();
    out.dummy_issuers = std::move(dummy_issuers).merged();
    out.serial_collisions = std::move(serial_collisions).merged();
    out.shared_certs = std::move(shared_certs).merged();
    out.incorrect_dates = std::move(incorrect_dates).merged();
    return out;
  }

  Sharded<PrevalenceAnalyzer> prevalence;
  Sharded<ServicePortAnalyzer> service_ports;
  Sharded<InboundAssociationAnalyzer> inbound_assoc;
  Sharded<OutboundFlowAnalyzer> outbound_flows;
  Sharded<DummyIssuerAnalyzer> dummy_issuers;
  Sharded<SerialCollisionAnalyzer> serial_collisions;
  Sharded<SharedCertAnalyzer> shared_certs;
  Sharded<IncorrectDateAnalyzer> incorrect_dates;
};

}  // namespace

ShardState PipelineExecutor::fold(const zeek::Dataset& dataset) {
  ShardedSet sharded(shard_count());
  sharded.attach(*this);
  ShardState state;
  state.pipeline.emplace(run(dataset));
  state.analyzers = std::move(sharded).merged();
  factories_.clear();  // they reference the local ShardedSet
  return state;
}

ShardState PipelineExecutor::fold(const std::vector<zeek::SslRecord>& ssl,
                                  const zeek::Dataset::X509Map& x509) {
  ShardedSet sharded(shard_count());
  sharded.attach(*this);
  ShardState state;
  state.pipeline.emplace(run(ssl, x509));
  state.analyzers = std::move(sharded).merged();
  factories_.clear();  // they reference the local ShardedSet
  return state;
}

std::optional<ShardState> PipelineExecutor::fold_log_files(
    const std::string& ssl_path, const std::string& x509_path,
    ingest::IngestError* error, const ingest::IngestOptions& options) {
  ShardedSet sharded(shard_count());
  sharded.attach(*this);
  ShardState state;
  auto pipeline =
      run_log_files(ssl_path, x509_path, error, options, &state.ledger);
  factories_.clear();  // they reference the local ShardedSet
  if (!pipeline) return std::nullopt;
  state.pipeline = std::move(pipeline);
  state.analyzers = std::move(sharded).merged();
  return state;
}

std::optional<ShardState> PipelineExecutor::fold_container(
    const colfmt::ContainerReader& reader, ingest::IngestError* error,
    const ingest::IngestOptions& options) {
  ShardedSet sharded(shard_count());
  sharded.attach(*this);
  ShardState state;
  auto pipeline = run_container(reader, error, options, &state.ledger);
  factories_.clear();  // they reference the local ShardedSet
  if (!pipeline) return std::nullopt;
  state.pipeline = std::move(pipeline);
  state.analyzers = std::move(sharded).merged();
  return state;
}

}  // namespace mtlscope::core
