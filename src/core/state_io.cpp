#include "mtlscope/core/state_io.hpp"

#include <bit>
#include <cstring>

namespace mtlscope::core {

namespace {

template <typename T>
void append_le(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

template <typename T>
T read_le(const std::uint8_t* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void StateWriter::u8(std::uint8_t v) { buffer_ += static_cast<char>(v); }
void StateWriter::u32(std::uint32_t v) { append_le(buffer_, v); }
void StateWriter::u64(std::uint64_t v) { append_le(buffer_, v); }
void StateWriter::i64(std::int64_t v) {
  append_le(buffer_, static_cast<std::uint64_t>(v));
}
void StateWriter::f64(double v) {
  append_le(buffer_, std::bit_cast<std::uint64_t>(v));
}

void StateWriter::str(std::string_view v) {
  u64(v.size());
  buffer_.append(v.data(), v.size());
}

void StateWriter::raw(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

const std::uint8_t* StateReader::need(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw StateError("truncated state buffer: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_) + ", have " +
                     std::to_string(data_.size() - pos_));
  }
  const auto* p = reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t StateReader::u8() { return *need(1); }
std::uint32_t StateReader::u32() { return read_le<std::uint32_t>(need(4)); }
std::uint64_t StateReader::u64() { return read_le<std::uint64_t>(need(8)); }
std::int64_t StateReader::i64() {
  return static_cast<std::int64_t>(u64());
}
double StateReader::f64() { return std::bit_cast<double>(u64()); }

std::string StateReader::str() {
  const std::uint64_t len = u64();
  const auto* p = need(static_cast<std::size_t>(len));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(len));
}

std::string_view StateReader::bytes(std::size_t n) {
  const auto* p = need(n);
  return std::string_view(reinterpret_cast<const char*>(p), n);
}

void StateReader::expect_done(const char* section) const {
  if (!done()) {
    throw StateError(std::string("trailing bytes in state section '") +
                     section + "': " + std::to_string(remaining()) +
                     " unread");
  }
}

}  // namespace mtlscope::core
