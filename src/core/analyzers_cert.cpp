// Certificate-population analyzers (Table 1, Figures 4-5, Tables 7-9,
// 13-14). These run over Pipeline::certificates() after the stream ends.
#include <algorithm>
#include <cmath>

#include "mtlscope/core/analyzers.hpp"
#include "mtlscope/textclass/domain.hpp"

namespace mtlscope::core {
namespace {

}  // namespace

// --- Table 1 ---------------------------------------------------------------------

CertInventoryResult analyze_cert_inventory(const Pipeline& pipeline) {
  CertInventoryResult r;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (facts.flagged_interception) continue;
    if (facts.connection_count == 0) continue;
    const bool is_public = facts.issuer_class == trust::IssuerClass::kPublic;
    ++r.total.total;
    if (facts.used_in_mutual) ++r.total.mutual;
    if (facts.used_as_server) {
      ++r.server.total;
      auto& sub = is_public ? r.server_public : r.server_private;
      ++sub.total;
      if (facts.used_in_mutual) {
        ++r.server.mutual;
        ++sub.mutual;
      }
    }
    if (facts.used_as_client) {
      ++r.client.total;
      auto& sub = is_public ? r.client_public : r.client_private;
      ++sub.total;
      if (facts.used_in_mutual) {
        ++r.client.mutual;
        ++sub.mutual;
      }
    }
  }
  return r;
}

// --- Figure 4 ----------------------------------------------------------------------

ValidityResult analyze_validity(const Pipeline& pipeline) {
  ValidityResult r;
  static constexpr struct {
    const char* label;
    std::int64_t lo, hi;
  } kBuckets[] = {
      {"< 30 d", 0, 30},          {"30-90 d", 30, 90},
      {"90-398 d", 90, 398},      {"398-825 d", 398, 825},
      {"825-3650 d", 825, 3650},  {"3650-10000 d", 3650, 10'000},
      {"10000-40000 d", 10'000, 40'000},
      {"> 40000 d", 40'000, 10'000'000},
  };
  r.histogram.resize(std::size(kBuckets));
  for (std::size_t i = 0; i < std::size(kBuckets); ++i) {
    r.histogram[i].label = kBuckets[i].label;
  }

  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.used_as_client || !facts.used_in_mutual) continue;
    if (facts.validity.dates_incorrect()) continue;  // §5.3.2 exclusion
    const std::int64_t days = facts.validity.period_days();
    for (std::size_t i = 0; i < std::size(kBuckets); ++i) {
      if (days >= kBuckets[i].lo && days < kBuckets[i].hi) {
        ++r.histogram[i].count;
        break;
      }
    }
    if (days >= 10'000 && days <= 40'000) {
      ++r.long_valid_total;
      switch (facts.issuer_category) {
        case IssuerCategory::kPublic:
          ++r.long_valid_public;
          break;
        case IssuerCategory::kPrivateMissingIssuer:
          ++r.long_valid_missing;
          break;
        case IssuerCategory::kPrivateCorporation:
          ++r.long_valid_corporate;
          break;
        case IssuerCategory::kPrivateDummy:
          ++r.long_valid_dummy;
          break;
        default:
          break;
      }
      const std::string tld = facts.context_sld.empty()
                                  ? "(missing SNI)"
                                  : textclass::tld_of(facts.context_sld);
      ++r.long_valid_tlds[tld.empty() ? "(missing SNI)" : tld];
    }
    if (days > r.max_validity_days) {
      r.max_validity_days = days;
      r.max_validity_sld = facts.context_sld;
    }
  }
  return r;
}

// --- Figure 5 -----------------------------------------------------------------------

ExpiredCertResult analyze_expired(const Pipeline& pipeline) {
  ExpiredCertResult r;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.used_as_client || !facts.client_use_while_expired) continue;
    if (facts.validity.dates_incorrect()) continue;
    ExpiredCertResult::CertPoint point;
    point.days_expired_at_first_use =
        static_cast<double>(facts.first_seen - facts.validity.not_after) /
        86'400.0;
    if (point.days_expired_at_first_use < 0) {
      point.days_expired_at_first_use = 0;  // expired mid-study
    }
    point.activity_days = facts.activity_days();
    point.public_issuer =
        facts.issuer_class == trust::IssuerClass::kPublic;
    if (facts.seen_inbound) {
      r.inbound.push_back(point);
      if (facts.context_assoc != ServerAssociation::kNone) {
        r.inbound_assoc_conns[facts.context_assoc] += facts.connection_count;
      }
    }
    if (facts.seen_outbound) {
      r.outbound.push_back(point);
      if (point.days_expired_at_first_use >= 700) {
        ++r.outbound_over_1000d;
        if (facts.issuer_org.view().find("Apple") != std::string_view::npos ||
            facts.issuer_org.view().find("Microsoft") !=
                std::string_view::npos) {
          ++r.outbound_over_1000d_apple_ms;
        }
      }
    }
  }
  return r;
}

// --- Tables 7 / 13a / 14a -------------------------------------------------------------

UtilizationResult analyze_utilization(const Pipeline& pipeline,
                                      CertScope scope) {
  UtilizationResult r;
  const auto tally = [](UtilizationResult::Row& row, const CertFacts& facts) {
    ++row.total;
    if (facts.has_cn()) ++row.cn;
    if (facts.has_san_dns()) ++row.san_dns;
  };
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (facts.flagged_interception || facts.connection_count == 0) continue;
    const bool is_public = facts.issuer_class == trust::IssuerClass::kPublic;
    const bool shared = facts.used_as_server && facts.used_as_client;

    if (scope == CertScope::kShared) {
      if (!shared || !facts.used_in_mutual) continue;
      tally(r.all, facts);
      tally(is_public ? r.pub : r.priv, facts);
      continue;
    }
    if (scope == CertScope::kNonMutual) {
      if (facts.used_in_mutual || !facts.used_as_server) continue;
      tally(r.all, facts);
      tally(is_public ? r.pub : r.priv, facts);
      continue;
    }
    // kMutual — Table 7's split by role.
    if (!facts.used_in_mutual) continue;
    tally(r.all, facts);
    tally(is_public ? r.pub : r.priv, facts);
    if (facts.used_as_server) {
      tally(r.server, facts);
      tally(is_public ? r.server_pub : r.server_priv, facts);
    }
    if (facts.used_as_client) {
      tally(r.client, facts);
      tally(is_public ? r.client_pub : r.client_priv, facts);
    }
  }
  return r;
}

// --- Tables 8 / 13b / 14b ----------------------------------------------------------------

InfoTypeResult analyze_info_types(const Pipeline& pipeline, CertScope scope) {
  InfoTypeResult r;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (facts.flagged_interception || facts.connection_count == 0) continue;
    const bool shared = facts.used_as_server && facts.used_as_client;
    const std::size_t cls =
        facts.issuer_class == trust::IssuerClass::kPublic ? 0u : 1u;

    std::vector<std::size_t> roles;  // 0 server, 1 client
    switch (scope) {
      case CertScope::kMutual:
        if (!facts.used_in_mutual || shared) break;  // §6.3: shared excluded
        if (facts.used_as_server) roles.push_back(0);
        if (facts.used_as_client) roles.push_back(1);
        break;
      case CertScope::kShared:
        if (shared && facts.used_in_mutual) roles.push_back(0);
        break;
      case CertScope::kNonMutual:
        if (!facts.used_in_mutual && facts.used_as_server) roles.push_back(0);
        break;
    }
    for (const std::size_t role : roles) {
      auto& cell = r.cells[role][cls];
      if (facts.has_cn()) {
        ++cell.cn_total;
        ++cell.cn[static_cast<std::size_t>(facts.cn_type)];
      }
      if (facts.has_san_dns()) {
        ++cell.san_total;
        // A SAN can contain multiple types; count each type once per cert
        // (Table 8 note: percentages may exceed 100%).
        std::array<bool, textclass::kInfoTypeCount> seen{};
        for (const auto type : facts.san_dns_types) {
          const auto idx = static_cast<std::size_t>(type);
          if (!seen[idx]) {
            seen[idx] = true;
            ++cell.san[idx];
          }
        }
      }
    }
  }
  return r;
}

// --- Extension: renewal hygiene -----------------------------------------------------------

RenewalResult analyze_renewals(const Pipeline& pipeline) {
  // Renewal chain key: issuer DN + subject CN. Certificates without a CN
  // cannot be chained this way.
  struct Entry {
    util::UnixSeconds not_before;
    util::UnixSeconds not_after;
  };
  std::map<std::string, std::vector<Entry>> chains;
  std::map<std::string, std::pair<std::uint64_t, std::vector<double>>>
      issuer_stats;  // issuer → (chains, cadences)
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.has_cn() || facts.flagged_interception) continue;
    if (facts.connection_count == 0) continue;
    if (facts.validity.dates_incorrect()) continue;
    std::string chain_key;
    chain_key.reserve(facts.issuer_dn.size() + 1 + facts.subject_cn.size());
    chain_key += facts.issuer_dn.view();
    chain_key += '|';
    chain_key += facts.subject_cn.view();
    chains[std::move(chain_key)].push_back(
        {facts.validity.not_before, facts.validity.not_after});
  }

  RenewalResult r;
  for (auto& [key, entries] : chains) {
    if (entries.size() < 2) continue;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.not_before < b.not_before;
              });
    // Identities that were re-issued in the same batch collapse to one
    // entry; what remains is the temporal renewal sequence.
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const Entry& a, const Entry& b) {
                                return a.not_before == b.not_before;
                              }),
                  entries.end());
    if (entries.size() < 2) {
      ++r.cn_reuse_groups;
      continue;
    }

    // A renewal chain is *sequential*: each certificate takes over from
    // the previous one. Groups dominated by overlapping windows are CN
    // reuse (generic names shared by unrelated certificates).
    std::uint64_t seamless = 0, overlap = 0, gap = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const double meet =
          static_cast<double>(entries[i].not_before -
                              entries[i - 1].not_after) /
          86'400.0;
      if (meet > 1.0) {
        ++gap;
      } else if (meet < -1.0) {
        ++overlap;
      } else {
        ++seamless;
      }
    }
    if (overlap > seamless + gap) {
      ++r.cn_reuse_groups;
      continue;
    }

    ++r.chains;
    r.certificates_in_chains += entries.size();
    r.longest_chain = std::max(r.longest_chain, entries.size());
    r.seamless += seamless;
    r.overlap += overlap;
    r.gap += gap;

    const std::string issuer = key.substr(0, key.find('|'));
    auto& [issuer_chains, cadences] = issuer_stats[issuer];
    ++issuer_chains;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      cadences.push_back(
          static_cast<double>(entries[i].not_before -
                              entries[i - 1].not_before) /
          86'400.0);
    }
  }

  for (auto& [issuer, stats] : issuer_stats) {
    auto& [chain_count, cadences] = stats;
    RenewalResult::IssuerRow row;
    // Strip the DN back to its organization (or CN) for display.
    const auto dn = x509::DistinguishedName::from_string(issuer);
    if (dn) {
      if (const auto org = dn->organization()) {
        row.issuer = std::string(*org);
      } else if (const auto cn = dn->common_name()) {
        row.issuer = std::string(*cn);
      }
    }
    if (row.issuer.empty()) row.issuer = issuer;
    row.chains = chain_count;
    if (!cadences.empty()) {
      std::sort(cadences.begin(), cadences.end());
      row.median_cadence_days = cadences[cadences.size() / 2];
    }
    r.top_issuers.push_back(std::move(row));
  }
  std::sort(r.top_issuers.begin(), r.top_issuers.end(),
            [](const RenewalResult::IssuerRow& a,
               const RenewalResult::IssuerRow& b) {
              return a.chains > b.chains;
            });
  return r;
}

// --- Extension: client-certificate trackability -----------------------------------------

TrackingResult analyze_tracking(const Pipeline& pipeline) {
  TrackingResult r;
  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (!facts.used_as_client || facts.flagged_interception) continue;
    ++r.client_certs;
    if (facts.connection_count > 1) ++r.reused;
    if (facts.client_subnets.size() >= 2) ++r.cross_network;
    const double days = facts.activity_days();
    if (days >= 7) ++r.week_plus;
    if (days >= 30) ++r.month_plus;
    if (days >= 180) {
      ++r.half_year_plus;
      const bool pii = facts.cn_type == textclass::InfoType::kPersonalName ||
                       facts.cn_type == textclass::InfoType::kUserAccount ||
                       facts.cn_type == textclass::InfoType::kEmail ||
                       facts.cn_type == textclass::InfoType::kMac;
      if (pii) ++r.long_lived_with_pii;
    }
    TrackingResult::Top top;
    top.fuid = facts.fuid;
    top.issuer = facts.issuer_org.empty() ? facts.issuer_cn : facts.issuer_org;
    top.activity_days = days;
    top.subnets = facts.client_subnets.size();
    top.connections = facts.connection_count;
    r.most_trackable.push_back(std::move(top));
  }
  std::sort(r.most_trackable.begin(), r.most_trackable.end(),
            [](const TrackingResult::Top& a, const TrackingResult::Top& b) {
              return a.activity_days * static_cast<double>(a.subnets + 1) >
                     b.activity_days * static_cast<double>(b.subnets + 1);
            });
  if (r.most_trackable.size() > 10) r.most_trackable.resize(10);
  return r;
}

// --- Table 9 ---------------------------------------------------------------------------

UnidentifiedResult analyze_unidentified(const Pipeline& pipeline) {
  UnidentifiedResult r;
  const auto recognizable_issuer = [](const CertFacts& facts) {
    // Table 9 "by issuer": the random string is attributable through a
    // distinctive issuer (Azure Sphere, Apple device CA, campus CAs, or
    // any issuer CN carrying a random-looking discriminator).
    if (facts.campus_issuer) return true;
    if (facts.issuer_cn.view().find("Azure Sphere") !=
        std::string_view::npos) {
      return true;
    }
    if (facts.issuer_cn.view().find("Apple iPhone Device") !=
        std::string_view::npos) {
      return true;
    }
    return false;
  };
  const auto tally = [&](UnidentifiedResult::Column& col,
                         const CertFacts& facts, std::string_view value) {
    ++col.total;
    const auto shape = textclass::classify_shape(value);
    if (shape == textclass::StringShape::kNonRandom) {
      ++col.non_random;
      return;
    }
    if (recognizable_issuer(facts)) ++col.by_issuer;
    switch (shape) {
      case textclass::StringShape::kRandomLen8:
        ++col.len8;
        break;
      case textclass::StringShape::kRandomLen32:
        ++col.len32;
        break;
      case textclass::StringShape::kRandomLen36:
        ++col.len36;
        break;
      default:
        ++col.other_random;
        break;
    }
  };

  for (const CertFacts* cert : pipeline.certificates_sorted()) {
    const CertFacts& facts = *cert;
    if (facts.flagged_interception || !facts.used_in_mutual) continue;
    const bool shared = facts.used_as_server && facts.used_as_client;
    if (shared) continue;
    const bool is_public = facts.issuer_class == trust::IssuerClass::kPublic;

    if (facts.has_cn() &&
        facts.cn_type == textclass::InfoType::kUnidentified) {
      if (facts.used_as_server && !is_public) {
        tally(r.server_private_cn, facts, facts.subject_cn);
      }
      if (facts.used_as_client) {
        tally(is_public ? r.client_public_cn : r.client_private_cn, facts,
              facts.subject_cn);
      }
    }
    if (facts.used_as_client && !is_public) {
      for (std::size_t i = 0; i < facts.san_dns.size(); ++i) {
        if (facts.san_dns_types[i] == textclass::InfoType::kUnidentified) {
          tally(r.client_private_san, facts, facts.san_dns[i]);
          break;  // one tally per certificate
        }
      }
    }
  }
  return r;
}

}  // namespace mtlscope::core
