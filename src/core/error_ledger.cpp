#include "mtlscope/core/error_ledger.hpp"

#include <algorithm>
#include <cstdio>

namespace mtlscope::core {
namespace {

/// Fixed-precision rate formatting so budget-abort messages are
/// byte-stable (operator<< for doubles is locale/precision dependent).
std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", rate);
  return buf;
}

std::size_t stored_for_role(const std::vector<QuarantinedRecord>& entries,
                            InputRole role) {
  std::size_t n = 0;
  for (const auto& e : entries) n += (e.input == role);
  return n;
}

}  // namespace

const char* input_role_name(InputRole role) {
  return role == InputRole::kSsl ? "ssl" : "x509";
}

const char* ledger_phase_name(LedgerPhase phase) {
  switch (phase) {
    case LedgerPhase::kRegistry:
      return "registry";
    case LedgerPhase::kUpgrades:
      return "upgrades";
    case LedgerPhase::kInterception:
      return "interception";
    case LedgerPhase::kShardRun:
      return "shard_run";
    case LedgerPhase::kIo:
      return "io";
  }
  return "unknown";
}

void ErrorLedger::quarantine(LedgerPhase phase, QuarantinedRecord record) {
  ++quarantined_[static_cast<unsigned>(record.input)];
  ++reason_counts_[static_cast<unsigned>(record.input)][record.reason];
  ++phase_counts_[static_cast<unsigned>(phase)];
  if (stored_for_role(entries_, record.input) < kMaxStoredPerRole) {
    entries_.push_back(std::move(record));
  } else {
    samples_truncated_ = true;
  }
}

void ErrorLedger::count_rows_ok(InputRole role, std::uint64_t n) {
  rows_ok_[static_cast<unsigned>(role)] += n;
}

void ErrorLedger::count_phase(LedgerPhase phase, std::uint64_t n) {
  phase_counts_[static_cast<unsigned>(phase)] += n;
}

void ErrorLedger::note_io(InputRole role, std::string event) {
  ++io_events_;
  ++phase_counts_[static_cast<unsigned>(LedgerPhase::kIo)];
  if (io_notes_.size() < kMaxIoNotes) {
    io_notes_.push_back(std::string(input_role_name(role)) + ": " +
                        std::move(event));
  }
}

void ErrorLedger::merge(ErrorLedger&& other) {
  entries_.insert(entries_.end(),
                  std::make_move_iterator(other.entries_.begin()),
                  std::make_move_iterator(other.entries_.end()));
  for (auto& note : other.io_notes_) {
    if (io_notes_.size() < kMaxIoNotes) io_notes_.push_back(std::move(note));
  }
  for (std::size_t i = 0; i < kInputRoles; ++i) {
    quarantined_[i] += other.quarantined_[i];
    for (const auto& [reason, n] : other.reason_counts_[i]) {
      reason_counts_[i][reason] += n;
    }
    rows_ok_[i] += other.rows_ok_[i];
  }
  for (std::size_t i = 0; i < kLedgerPhases; ++i) {
    phase_counts_[i] += other.phase_counts_[i];
  }
  io_events_ += other.io_events_;
  samples_truncated_ = samples_truncated_ || other.samples_truncated_;
  other.clear();
}

void ErrorLedger::finalize() {
  const auto order = [](const QuarantinedRecord& a,
                        const QuarantinedRecord& b) {
    if (a.input != b.input) {
      return static_cast<unsigned>(a.input) < static_cast<unsigned>(b.input);
    }
    return a.byte_offset < b.byte_offset;
  };
  std::stable_sort(entries_.begin(), entries_.end(), order);
  entries_.erase(
      std::unique(entries_.begin(), entries_.end(),
                  [](const QuarantinedRecord& a, const QuarantinedRecord& b) {
                    return a.input == b.input &&
                           a.byte_offset == b.byte_offset &&
                           a.reason == b.reason && a.digest == b.digest;
                  }),
      entries_.end());
  // Re-apply the per-role cap post-merge: keep the smallest offsets.
  std::vector<QuarantinedRecord> capped;
  capped.reserve(std::min(entries_.size(), kMaxStoredPerRole * kInputRoles));
  std::size_t kept[kInputRoles] = {};
  for (auto& entry : entries_) {
    auto& n = kept[static_cast<unsigned>(entry.input)];
    if (n < kMaxStoredPerRole) {
      ++n;
      capped.push_back(std::move(entry));
    } else {
      samples_truncated_ = true;
    }
  }
  entries_ = std::move(capped);
}

void ErrorLedger::clear() {
  entries_.clear();
  io_notes_.clear();
  for (auto& c : quarantined_) c = 0;
  for (auto& m : reason_counts_) m.clear();
  for (auto& c : rows_ok_) c = 0;
  for (auto& c : phase_counts_) c = 0;
  io_events_ = 0;
  samples_truncated_ = false;
}

std::optional<std::string> ErrorLedger::budget_violation(
    const ingest::ErrorPolicy& policy) const {
  const std::uint64_t quarantined = quarantined_total();
  if (quarantined == 0) return std::nullopt;
  if (quarantined > policy.max_errors) {
    return "error budget exceeded: " + std::to_string(quarantined) +
           " records quarantined, --max-errors=" +
           std::to_string(policy.max_errors);
  }
  if (policy.max_error_rate < 1.0) {
    const std::uint64_t seen = quarantined + rows_ok_total();
    const double rate =
        seen == 0 ? 0.0
                  : static_cast<double>(quarantined) / static_cast<double>(seen);
    if (rate > policy.max_error_rate) {
      return "error rate " + format_rate(rate) + " exceeds --max-error-rate=" +
             format_rate(policy.max_error_rate);
    }
  }
  return std::nullopt;
}

}  // namespace mtlscope::core
