#include "mtlscope/core/enrich.hpp"

#include <exception>
#include <mutex>
#include <span>

#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/textclass/domain.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::core {

Enricher::Enricher(PipelineConfig config)
    : config_(std::move(config)),
      trust_(trust::make_default_evaluator()),
      categorizer_(config_.dummy_issuer_orgs) {}

IssuerCategory Enricher::categorize_cached(
    const x509::DistinguishedName& issuer, std::string_view issuer_dn,
    bool is_public) const {
  // The public/private split is part of the key: Table 13's shared certs
  // can surface the same DN string under either classification.
  std::string key;
  key.reserve(2 + issuer_dn.size());
  key += is_public ? "P|" : "p|";
  key += issuer_dn;
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = category_cache_.find(key);
    if (it != category_cache_.end()) return it->second;
  }
  const auto category = categorizer_.categorize(issuer, is_public);
  std::unique_lock lock(cache_mutex_);
  category_cache_.emplace(key, category);
  return category;
}

CertFacts Enricher::make_facts(const zeek::X509Record& record) const {
  CertFacts facts;
  facts.fuid = record.fuid;

  // Prefer re-parsing the DER (trust the bytes, not the log fields). A
  // hostile cert body must degrade to the logged-fields fallback, never
  // throw out of here: make_facts runs on executor worker threads, where
  // an escaped exception is std::terminate.
  bool parsed = false;
  if (!record.cert_der.empty()) try {
    const std::span<const std::uint8_t> der(
        reinterpret_cast<const std::uint8_t*>(record.cert_der.data()),
        record.cert_der.size());
    {
      const auto result = x509::parse_certificate(der);
      if (const auto* cert = x509::get_certificate(result)) {
        facts.version = cert->version;
        facts.key_bits = static_cast<int>(cert->key_bits());
        facts.serial_hex = cert->serial_hex();
        if (const auto cn = cert->subject.common_name()) {
          facts.subject_cn = *cn;
        }
        if (const auto org = cert->issuer.organization()) {
          facts.issuer_org = *org;
        }
        if (const auto cn = cert->issuer.common_name()) {
          facts.issuer_cn = *cn;
        }
        facts.issuer_dn = cert->issuer.to_string();
        facts.validity = cert->validity;
        for (const auto& entry : cert->san) {
          switch (entry.type) {
            case x509::SanEntry::Type::kDns:
              facts.san_dns.push_back(entry.value);
              break;
            case x509::SanEntry::Type::kEmail:
              ++facts.san_email_count;
              break;
            case x509::SanEntry::Type::kUri:
              ++facts.san_uri_count;
              break;
            case x509::SanEntry::Type::kIp:
              ++facts.san_ip_count;
              break;
            case x509::SanEntry::Type::kOther:
              break;
          }
        }
        facts.issuer_class =
            trust_.classify(*cert) == trust::IssuerClass::kPublic
                ? trust::IssuerClass::kPublic
                : trust::IssuerClass::kPrivate;
        facts.issuer_category = categorize_cached(
            cert->issuer, facts.issuer_dn,
            facts.issuer_class == trust::IssuerClass::kPublic);
        parsed = true;
      }
    }
  } catch (const std::exception&) {
    // Discard whatever the partial parse wrote and take the fallback.
    facts = CertFacts{};
    facts.fuid = record.fuid;
    parsed = false;
  }
  if (!parsed) {
    // Fall back to the logged fields (real Zeek deployments often do not
    // retain the DER).
    facts.version = record.version;
    facts.key_bits = record.key_length;
    facts.serial_hex = record.serial;
    const auto subject = x509::DistinguishedName::from_string(record.subject);
    const auto issuer = x509::DistinguishedName::from_string(record.issuer);
    if (subject) {
      if (const auto cn = subject->common_name()) {
        facts.subject_cn = *cn;
      }
    }
    if (issuer) {
      if (const auto org = issuer->organization()) {
        facts.issuer_org = *org;
      }
      if (const auto cn = issuer->common_name()) {
        facts.issuer_cn = *cn;
      }
      facts.issuer_dn = issuer->to_string();
      facts.issuer_class = trust_.is_trusted_issuer(*issuer)
                               ? trust::IssuerClass::kPublic
                               : trust::IssuerClass::kPrivate;
      facts.issuer_category = categorize_cached(
          *issuer, facts.issuer_dn,
          facts.issuer_class == trust::IssuerClass::kPublic);
    } else {
      facts.issuer_class = trust::IssuerClass::kPrivate;
      facts.issuer_category = IssuerCategory::kPrivateMissingIssuer;
    }
    facts.validity = {record.not_valid_before, record.not_valid_after};
    facts.san_dns.assign(record.san_dns.begin(), record.san_dns.end());
    facts.san_email_count = static_cast<int>(record.san_email.size());
    facts.san_uri_count = static_cast<int>(record.san_uri.size());
    facts.san_ip_count = static_cast<int>(record.san_ip.size());
  }

  for (const auto& org : config_.campus_issuer_orgs) {
    if (facts.issuer_org == org) facts.campus_issuer = true;
  }

  // CN / SAN information-type classification (§6.1).
  textclass::ClassifyContext ctx;
  ctx.issuer = facts.issuer_org.empty() ? facts.issuer_cn : facts.issuer_org;
  ctx.campus_issuer = facts.campus_issuer;
  if (!facts.subject_cn.empty()) {
    facts.cn_type = textclass::classify_value(facts.subject_cn, ctx);
  }
  facts.san_dns_types.reserve(facts.san_dns.size());
  for (const auto& value : facts.san_dns) {
    facts.san_dns_types.push_back(textclass::classify_value(value, ctx));
  }
  return facts;
}

bool Enricher::is_university_address(const net::IpAddress& addr) const {
  for (const auto& subnet : config_.university_subnets) {
    if (subnet.contains(addr)) return true;
  }
  return false;
}

Direction Enricher::infer_direction(const zeek::SslRecord& record) const {
  const auto resp = net::IpAddress::parse(record.resp_h);
  if (resp && is_university_address(*resp)) return Direction::kInbound;
  return Direction::kOutbound;
}

ServerAssociation Enricher::associate(const std::string& host,
                                      const std::string& sld) const {
  const auto suffix_match = [](const std::string& value,
                               const std::string& suffix) {
    if (value.size() < suffix.size()) return false;
    if (value.size() == suffix.size()) return value == suffix;
    return value.compare(value.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
           value[value.size() - suffix.size() - 1] == '.';
  };
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!host.empty() && suffix_match(host, suffix)) return assoc;
  }
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!sld.empty() && suffix_match(sld, suffix)) return assoc;
  }
  return ServerAssociation::kUnknown;
}

EnrichedConnection Enricher::enrich(const zeek::SslRecord& record,
                                    const CertFacts* server_leaf,
                                    const CertFacts* client_leaf) const {
  EnrichedConnection conn;
  conn.ssl = &record;
  conn.ts = record.ts;
  conn.established = record.established;
  conn.direction = infer_direction(record);
  conn.sni = record.server_name.str();
  conn.server_leaf = server_leaf;
  conn.client_leaf = client_leaf;
  conn.mutual = server_leaf != nullptr && client_leaf != nullptr;

  // Host resolution (§4.2): SNI first, then SAN DNS / CN of the leaves.
  conn.resolved_host = conn.sni;
  if (conn.resolved_host.empty()) {
    for (const CertFacts* leaf : {server_leaf, client_leaf}) {
      if (leaf == nullptr) continue;
      if (!leaf->san_dns.empty()) {
        conn.resolved_host = leaf->san_dns.front().str();
        break;
      }
      if (leaf->cn_type == textclass::InfoType::kDomain) {
        conn.resolved_host = leaf->subject_cn.str();
        break;
      }
    }
  }
  conn.sld = textclass::sld_of(conn.resolved_host);
  conn.tld = textclass::tld_of(conn.resolved_host);
  conn.assoc = conn.direction == Direction::kInbound
                   ? associate(conn.resolved_host, conn.sld)
                   : ServerAssociation::kNone;
  return conn;
}

}  // namespace mtlscope::core
