#include "mtlscope/core/enrich.hpp"

#include <exception>
#include <mutex>
#include <span>

#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/textclass/domain.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::core {

Enricher::Enricher(PipelineConfig config)
    : config_(std::move(config)),
      trust_(trust::make_default_evaluator()),
      categorizer_(config_.dummy_issuer_orgs) {}

IssuerCategory Enricher::categorize_cached(
    const x509::DistinguishedName& issuer, std::string_view issuer_dn,
    bool is_public) const {
  // The public/private split is part of the key: Table 13's shared certs
  // can surface the same DN string under either classification.
  std::string key;
  key.reserve(2 + issuer_dn.size());
  key += is_public ? "P|" : "p|";
  key += issuer_dn;
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = category_cache_.find(key);
    if (it != category_cache_.end()) return it->second;
  }
  const auto category = categorizer_.categorize(issuer, is_public);
  std::unique_lock lock(cache_mutex_);
  category_cache_.emplace(key, category);
  return category;
}

CertFacts Enricher::make_facts(const zeek::X509Record& record) const {
  if (record.cert_der.empty()) {
    return compute_facts(record, nullptr);
  }
  // The DER handle is interned (CertArena): equal bytes share one stable
  // pointer, so the pointer is the cache key. Values are pure functions
  // of the DER bytes + configuration — racing shards compute identical
  // entries, keeping results byte-identical for any thread count.
  const char* key = record.cert_der.data();
  FactsShard& shard = facts_cache_[
      (reinterpret_cast<std::uintptr_t>(key) >> 4) % kFactsShards];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      facts_hits_.fetch_add(1, std::memory_order_relaxed);
      CertFacts facts = it->second;
      facts.fuid = record.fuid;  // the only per-row field
      return facts;
    }
  }
  facts_misses_.fetch_add(1, std::memory_order_relaxed);
  bool parsed_from_der = false;
  CertFacts facts = compute_facts(record, &parsed_from_der);
  if (parsed_from_der) {
    // Only DER-derived results are cacheable; the logged-fields fallback
    // depends on per-row fields beyond the key bytes.
    CertFacts cached = facts;
    cached.fuid = colfmt::Str();
    std::unique_lock lock(shard.mutex);
    shard.map.emplace(key, std::move(cached));
  }
  return facts;
}

Enricher::FactsCacheStats Enricher::facts_cache_stats() const {
  FactsCacheStats stats;
  stats.hits = facts_hits_.load(std::memory_order_relaxed);
  stats.misses = facts_misses_.load(std::memory_order_relaxed);
  for (const FactsShard& shard : facts_cache_) {
    std::shared_lock lock(shard.mutex);
    stats.unique += shard.map.size();
  }
  return stats;
}

CertFacts Enricher::compute_facts(const zeek::X509Record& record,
                                  bool* parsed_from_der) const {
  CertFacts facts;
  facts.fuid = record.fuid;

  // Prefer re-parsing the DER (trust the bytes, not the log fields). A
  // hostile cert body must degrade to the logged-fields fallback, never
  // throw out of here: make_facts runs on executor worker threads, where
  // an escaped exception is std::terminate.
  bool parsed = false;
  if (!record.cert_der.empty()) try {
    const std::span<const std::uint8_t> der(
        reinterpret_cast<const std::uint8_t*>(record.cert_der.data()),
        record.cert_der.size());
    {
      const auto result = x509::parse_certificate(der);
      if (const auto* cert = x509::get_certificate(result)) {
        facts.version = cert->version;
        facts.key_bits = static_cast<int>(cert->key_bits());
        facts.serial_hex = cert->serial_hex();
        if (const auto cn = cert->subject.common_name()) {
          facts.subject_cn = *cn;
        }
        if (const auto org = cert->issuer.organization()) {
          facts.issuer_org = *org;
        }
        if (const auto cn = cert->issuer.common_name()) {
          facts.issuer_cn = *cn;
        }
        facts.issuer_dn = cert->issuer.to_string();
        facts.validity = cert->validity;
        for (const auto& entry : cert->san) {
          switch (entry.type) {
            case x509::SanEntry::Type::kDns:
              facts.san_dns.push_back(entry.value);
              break;
            case x509::SanEntry::Type::kEmail:
              ++facts.san_email_count;
              break;
            case x509::SanEntry::Type::kUri:
              ++facts.san_uri_count;
              break;
            case x509::SanEntry::Type::kIp:
              ++facts.san_ip_count;
              break;
            case x509::SanEntry::Type::kOther:
              break;
          }
        }
        facts.issuer_class =
            trust_.classify(*cert) == trust::IssuerClass::kPublic
                ? trust::IssuerClass::kPublic
                : trust::IssuerClass::kPrivate;
        facts.issuer_category = categorize_cached(
            cert->issuer, facts.issuer_dn,
            facts.issuer_class == trust::IssuerClass::kPublic);
        parsed = true;
      }
    }
  } catch (const std::exception&) {
    // Discard whatever the partial parse wrote and take the fallback.
    facts = CertFacts{};
    facts.fuid = record.fuid;
    parsed = false;
  }
  if (!parsed) {
    // Fall back to the logged fields (real Zeek deployments often do not
    // retain the DER).
    facts.version = record.version;
    facts.key_bits = record.key_length;
    facts.serial_hex = record.serial;
    const auto subject = x509::DistinguishedName::from_string(record.subject);
    const auto issuer = x509::DistinguishedName::from_string(record.issuer);
    if (subject) {
      if (const auto cn = subject->common_name()) {
        facts.subject_cn = *cn;
      }
    }
    if (issuer) {
      if (const auto org = issuer->organization()) {
        facts.issuer_org = *org;
      }
      if (const auto cn = issuer->common_name()) {
        facts.issuer_cn = *cn;
      }
      facts.issuer_dn = issuer->to_string();
      facts.issuer_class = trust_.is_trusted_issuer(*issuer)
                               ? trust::IssuerClass::kPublic
                               : trust::IssuerClass::kPrivate;
      facts.issuer_category = categorize_cached(
          *issuer, facts.issuer_dn,
          facts.issuer_class == trust::IssuerClass::kPublic);
    } else {
      facts.issuer_class = trust::IssuerClass::kPrivate;
      facts.issuer_category = IssuerCategory::kPrivateMissingIssuer;
    }
    facts.validity = {record.not_valid_before, record.not_valid_after};
    facts.san_dns.assign(record.san_dns.begin(), record.san_dns.end());
    facts.san_email_count = static_cast<int>(record.san_email.size());
    facts.san_uri_count = static_cast<int>(record.san_uri.size());
    facts.san_ip_count = static_cast<int>(record.san_ip.size());
  }

  for (const auto& org : config_.campus_issuer_orgs) {
    if (facts.issuer_org == org) facts.campus_issuer = true;
  }

  // CN / SAN information-type classification (§6.1).
  textclass::ClassifyContext ctx;
  ctx.issuer = facts.issuer_org.empty() ? facts.issuer_cn : facts.issuer_org;
  ctx.campus_issuer = facts.campus_issuer;
  if (!facts.subject_cn.empty()) {
    facts.cn_type = textclass::classify_value(facts.subject_cn, ctx);
  }
  facts.san_dns_types.reserve(facts.san_dns.size());
  for (const auto& value : facts.san_dns) {
    facts.san_dns_types.push_back(textclass::classify_value(value, ctx));
  }
  if (parsed_from_der != nullptr) *parsed_from_der = parsed;
  return facts;
}

bool Enricher::is_university_address(const net::IpAddress& addr) const {
  for (const auto& subnet : config_.university_subnets) {
    if (subnet.contains(addr)) return true;
  }
  return false;
}

Direction Enricher::infer_direction(const zeek::SslRecord& record) const {
  const auto resp = net::IpAddress::parse(record.resp_h);
  if (resp && is_university_address(*resp)) return Direction::kInbound;
  return Direction::kOutbound;
}

ServerAssociation Enricher::associate(const std::string& host,
                                      const std::string& sld) const {
  const auto suffix_match = [](const std::string& value,
                               const std::string& suffix) {
    if (value.size() < suffix.size()) return false;
    if (value.size() == suffix.size()) return value == suffix;
    return value.compare(value.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
           value[value.size() - suffix.size() - 1] == '.';
  };
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!host.empty() && suffix_match(host, suffix)) return assoc;
  }
  for (const auto& [suffix, assoc] : config_.association_rules) {
    if (!sld.empty() && suffix_match(sld, suffix)) return assoc;
  }
  return ServerAssociation::kUnknown;
}

namespace {

/// Analyzer client identity key: the IPv4 value, or an FNV-1a hash of
/// the IPv6 bytes — must match the parse fallback in analyzers_conn.cpp
/// so memoized and unmemoized paths agree byte for byte.
std::uint32_t client_key_of(const net::IpAddress& addr) {
  if (addr.is_v4()) return addr.v4_value();
  std::uint32_t h = 0x811c9dc5;
  for (const auto b : addr.v6_bytes()) h = (h ^ b) * 0x01000193;
  return h;
}

/// Host resolution (§4.2): SNI first, then SAN DNS / CN of the leaves.
colfmt::Str resolve_host(const zeek::SslRecord& record,
                         const CertFacts* server_leaf,
                         const CertFacts* client_leaf) {
  if (!record.server_name.empty()) return record.server_name;
  for (const CertFacts* leaf : {server_leaf, client_leaf}) {
    if (leaf == nullptr) continue;
    if (!leaf->san_dns.empty()) return leaf->san_dns.front();
    if (leaf->cn_type == textclass::InfoType::kDomain) {
      return leaf->subject_cn;
    }
  }
  return colfmt::Str();
}

}  // namespace

const HostFacts& Enricher::host_facts(colfmt::Str host,
                                      EnrichCache& cache) const {
  const auto [it, inserted] = cache.hosts.try_emplace(host.data());
  if (!inserted) {
    ++cache.hits;
    return it->second;
  }
  ++cache.misses;
  HostFacts& facts = it->second;
  const std::string host_str = host.str();
  const std::string sld = textclass::sld_of(host_str);
  facts.sld = colfmt::Str(sld);
  facts.tld = colfmt::Str(textclass::tld_of(host_str));
  facts.assoc = associate(host_str, sld);
  return facts;
}

const AddrFacts& Enricher::addr_facts(colfmt::Str addr,
                                      EnrichCache& cache) const {
  const auto [it, inserted] = cache.addrs.try_emplace(addr.data());
  if (!inserted) {
    ++cache.hits;
    return it->second;
  }
  ++cache.misses;
  AddrFacts& facts = it->second;
  const auto parsed = net::IpAddress::parse(addr);
  if (!parsed) return facts;
  facts.university = is_university_address(*parsed);
  if (parsed->is_v4()) {
    facts.is_v4 = true;
    facts.subnet = parsed->v4_value() & 0xffffff00u;
  }
  facts.client_key = client_key_of(*parsed);
  return facts;
}

EnrichedConnection Enricher::enrich(const zeek::SslRecord& record,
                                    const CertFacts* server_leaf,
                                    const CertFacts* client_leaf) const {
  EnrichedConnection conn;
  conn.ssl = &record;
  conn.ts = record.ts;
  conn.established = record.established;
  conn.direction = infer_direction(record);
  if (const auto orig = net::IpAddress::parse(record.orig_h)) {
    conn.client_key = client_key_of(*orig);
  }
  conn.sni = record.server_name;
  conn.server_leaf = server_leaf;
  conn.client_leaf = client_leaf;
  conn.mutual = server_leaf != nullptr && client_leaf != nullptr;

  conn.resolved_host = resolve_host(record, server_leaf, client_leaf);
  conn.sld = colfmt::Str(textclass::sld_of(conn.resolved_host));
  conn.tld = colfmt::Str(textclass::tld_of(conn.resolved_host));
  conn.assoc = conn.direction == Direction::kInbound
                   ? associate(conn.resolved_host.str(), conn.sld.str())
                   : ServerAssociation::kNone;
  return conn;
}

EnrichedConnection Enricher::enrich(const zeek::SslRecord& record,
                                    const CertFacts* server_leaf,
                                    const CertFacts* client_leaf,
                                    EnrichCache& cache) const {
  EnrichedConnection conn;
  conn.ssl = &record;
  conn.ts = record.ts;
  conn.established = record.established;
  conn.direction = addr_facts(record.resp_h, cache).university
                       ? Direction::kInbound
                       : Direction::kOutbound;
  conn.client_key = addr_facts(record.orig_h, cache).client_key;
  conn.sni = record.server_name;
  conn.server_leaf = server_leaf;
  conn.client_leaf = client_leaf;
  conn.mutual = server_leaf != nullptr && client_leaf != nullptr;

  conn.resolved_host = resolve_host(record, server_leaf, client_leaf);
  const HostFacts& host = host_facts(conn.resolved_host, cache);
  conn.sld = host.sld;
  conn.tld = host.tld;
  conn.assoc = conn.direction == Direction::kInbound
                   ? host.assoc
                   : ServerAssociation::kNone;
  return conn;
}

}  // namespace mtlscope::core
