#include "mtlscope/util/time.hpp"

#include <array>
#include <cstdio>

namespace mtlscope::util {

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);        // [0,399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;                                 // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;       // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilTime civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  CivilTime ct;
  ct.year = static_cast<int>(y + (m <= 2));
  ct.month = static_cast<int>(m);
  ct.day = static_cast<int>(d);
  return ct;
}

UnixSeconds to_unix(const CivilTime& ct) {
  return days_from_civil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * 3600 + ct.minute * 60 + ct.second;
}

CivilTime from_unix(UnixSeconds ts) {
  std::int64_t days = ts / kSecondsPerDay;
  std::int64_t rem = ts % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  CivilTime ct = civil_from_days(days);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  return ct;
}

bool is_leap_year(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(int y, int m) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap_year(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

std::string format_iso8601(UnixSeconds ts) {
  const CivilTime ct = from_unix(ts);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string format_date(UnixSeconds ts) {
  const CivilTime ct = from_unix(ts);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.year, ct.month, ct.day);
  return buf;
}

namespace {

bool parse_int(std::string_view s, std::size_t pos, std::size_t len,
               int& out) {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (std::size_t i = pos; i < pos + len; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

}  // namespace

std::optional<UnixSeconds> parse_iso8601(std::string_view s) {
  CivilTime ct;
  if (!parse_int(s, 0, 4, ct.year) || s.size() < 10 || s[4] != '-' ||
      s[7] != '-' || !parse_int(s, 5, 2, ct.month) ||
      !parse_int(s, 8, 2, ct.day)) {
    return std::nullopt;
  }
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 ||
      ct.day > days_in_month(ct.year, ct.month)) {
    return std::nullopt;
  }
  if (s.size() == 10) return to_unix(ct);
  if (s.size() < 19 || s[10] != 'T' || s[13] != ':' || s[16] != ':' ||
      !parse_int(s, 11, 2, ct.hour) || !parse_int(s, 14, 2, ct.minute) ||
      !parse_int(s, 17, 2, ct.second)) {
    return std::nullopt;
  }
  if (ct.hour > 23 || ct.minute > 59 || ct.second > 59) return std::nullopt;
  if (s.size() == 20 && s[19] != 'Z') return std::nullopt;
  if (s.size() > 20) return std::nullopt;
  return to_unix(ct);
}

int month_index(UnixSeconds ts) {
  const CivilTime ct = from_unix(ts);
  return ct.year * 12 + (ct.month - 1);
}

std::string month_label(int month_idx) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", month_idx / 12,
                month_idx % 12 + 1);
  return buf;
}

}  // namespace mtlscope::util
