#include "mtlscope/crypto/tsig.hpp"

#include <algorithm>
#include <string>

namespace mtlscope::crypto {

TsigKey TsigKey::derive(std::string_view label, std::size_t key_bits) {
  TsigKey out;
  const std::size_t n = key_bits / 8;
  out.key.reserve(n);
  std::uint32_t counter = 0;
  while (out.key.size() < n) {
    Sha256 h;
    h.update(label);
    const std::string suffix = "#" + std::to_string(counter++);
    h.update(suffix);
    const auto d = h.finish();
    const std::size_t take = std::min(d.size(), n - out.key.size());
    out.key.insert(out.key.end(), d.begin(), d.begin() + take);
  }
  return out;
}

std::vector<std::uint8_t> tsig_sign(const TsigKey& key,
                                    std::span<const std::uint8_t> tbs) {
  const auto mac = hmac_sha256(key.key, tbs);
  return {mac.begin(), mac.end()};
}

bool tsig_verify(std::span<const std::uint8_t> public_key,
                 std::span<const std::uint8_t> tbs,
                 std::span<const std::uint8_t> signature) {
  const auto mac = hmac_sha256(public_key, tbs);
  return signature.size() == mac.size() &&
         std::equal(mac.begin(), mac.end(), signature.begin());
}

}  // namespace mtlscope::crypto
