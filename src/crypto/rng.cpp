#include "mtlscope/crypto/rng.hpp"

#include <bit>
#include <cmath>

namespace mtlscope::crypto {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(range));
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0;
  for (const double w : weights) total += w;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::string Rng::alnum(std::size_t n) {
  static constexpr std::string_view kChars =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(n, '\0');
  for (auto& c : out) c = kChars[below(kChars.size())];
  return out;
}

std::string Rng::hex(std::size_t n) {
  static constexpr std::string_view kChars = "0123456789abcdef";
  std::string out(n, '\0');
  for (auto& c : out) c = kChars[below(kChars.size())];
  return out;
}

std::string Rng::uuid() {
  return hex(8) + "-" + hex(4) + "-" + hex(4) + "-" + hex(4) + "-" + hex(12);
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

}  // namespace mtlscope::crypto
