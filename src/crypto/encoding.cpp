#include "mtlscope/crypto/encoding.hpp"

#include <array>

namespace mtlscope::crypto {
namespace {

std::string hex_impl(std::span<const std::uint8_t> data, const char* digits) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr std::string_view kB64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  return hex_impl(data, "0123456789abcdef");
}

std::string to_hex_upper(std::span<const std::uint8_t> data) {
  return hex_impl(data, "0123456789ABCDEF");
}

std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string to_base64(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8) |
                            std::uint32_t{data[i + 2]};
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 6) & 0x3f]);
    out.push_back(kB64Alphabet[n & 0x3f]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = std::uint32_t{data[i]} << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n =
        (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> from_base64(std::string_view b64) {
  // Strip trailing padding.
  while (!b64.empty() && b64.back() == '=') b64.remove_suffix(1);
  std::vector<std::uint8_t> out;
  out.reserve(b64.size() * 3 / 4);
  std::uint32_t acc = 0;
  int bits = 0;
  for (const char c : b64) {
    const int v = b64_value(c);
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> bits));
    }
  }
  return out;
}

}  // namespace mtlscope::crypto
