#include "mtlscope/x509/builder.hpp"

#include <stdexcept>

#include "mtlscope/asn1/der.hpp"
#include "mtlscope/crypto/encoding.hpp"
#include "mtlscope/x509/parser.hpp"

namespace mtlscope::x509 {

using asn1::DerWriter;
using asn1::Tag;
namespace tags = asn1::tags;

CertificateBuilder::CertificateBuilder()
    : spki_algorithm_(asn1::oids::alg_tsig()) {}

CertificateBuilder& CertificateBuilder::version(int v) {
  version_ = v;
  return *this;
}

CertificateBuilder& CertificateBuilder::serial(
    std::vector<std::uint8_t> bytes) {
  serial_ = std::move(bytes);
  if (serial_.empty()) serial_.push_back(0);
  return *this;
}

CertificateBuilder& CertificateBuilder::serial_hex(std::string_view hex) {
  auto bytes = crypto::from_hex(hex);
  if (!bytes) throw std::invalid_argument("serial_hex: invalid hex");
  return serial(std::move(*bytes));
}

CertificateBuilder& CertificateBuilder::serial_from_label(
    std::string_view label) {
  const auto digest = crypto::Sha256::hash(label);
  // 16-byte positive serial, conventional for modern CAs.
  std::vector<std::uint8_t> bytes(digest.begin(), digest.begin() + 16);
  bytes[0] &= 0x7f;
  if (bytes[0] == 0) bytes[0] = 0x4a;
  return serial(std::move(bytes));
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName dn) {
  subject_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(util::UnixSeconds not_before,
                                                 util::UnixSeconds not_after) {
  validity_ = {not_before, not_after};
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(
    std::vector<std::uint8_t> key) {
  public_key_ = std::move(key);
  return *this;
}

CertificateBuilder& CertificateBuilder::spki_algorithm(asn1::Oid oid) {
  spki_algorithm_ = std::move(oid);
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san_dns(std::string value) {
  san_.push_back({SanEntry::Type::kDns, std::move(value)});
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san_email(std::string value) {
  san_.push_back({SanEntry::Type::kEmail, std::move(value)});
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san_uri(std::string value) {
  san_.push_back({SanEntry::Type::kUri, std::move(value)});
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san_ip(
    const net::IpAddress& addr) {
  san_.push_back({SanEntry::Type::kIp, addr.to_string()});
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(bool is_ca,
                                           std::optional<int> path_len) {
  basic_constraints_ = BasicConstraints{is_ca, path_len};
  return *this;
}

CertificateBuilder& CertificateBuilder::key_usage(std::uint16_t bits) {
  key_usage_ = bits;
  return *this;
}

CertificateBuilder& CertificateBuilder::add_eku(asn1::Oid oid) {
  eku_.push_back(std::move(oid));
  return *this;
}

namespace {

void write_name(DerWriter& w, const DistinguishedName& dn) {
  w.sequence([&dn](DerWriter& name) {
    for (const auto& attr : dn.attributes()) {
      name.set([&attr](DerWriter& rdn) {
        rdn.sequence([&attr](DerWriter& atv) {
          atv.oid(attr.type);
          atv.utf8_string(attr.value);
        });
      });
    }
  });
}

void write_algorithm(DerWriter& w, const asn1::Oid& alg) {
  w.sequence([&alg](DerWriter& seq) {
    seq.oid(alg);
    seq.null();
  });
}

void write_extension(DerWriter& exts, const asn1::Oid& id, bool critical,
                     const DerWriter::BuildFn& payload) {
  exts.sequence([&](DerWriter& ext) {
    ext.oid(id);
    if (critical) ext.boolean(true);
    DerWriter inner;
    payload(inner);
    ext.octet_string(inner.bytes());
  });
}

void write_san(DerWriter& exts, const std::vector<SanEntry>& san) {
  write_extension(
      exts, asn1::oids::subject_alt_name(), false, [&san](DerWriter& v) {
        v.sequence([&san](DerWriter& names) {
          for (const auto& entry : san) {
            switch (entry.type) {
              case SanEntry::Type::kEmail:
                names.context_primitive(1, entry.value);
                break;
              case SanEntry::Type::kDns:
                names.context_primitive(2, entry.value);
                break;
              case SanEntry::Type::kUri:
                names.context_primitive(6, entry.value);
                break;
              case SanEntry::Type::kIp: {
                const auto addr = net::IpAddress::parse(entry.value);
                if (!addr) {
                  throw std::invalid_argument("SAN IP not parseable: " +
                                              entry.value);
                }
                if (addr->is_v4()) {
                  const std::uint32_t v = addr->v4_value();
                  const std::uint8_t bytes[4] = {
                      static_cast<std::uint8_t>(v >> 24),
                      static_cast<std::uint8_t>(v >> 16),
                      static_cast<std::uint8_t>(v >> 8),
                      static_cast<std::uint8_t>(v)};
                  names.context_primitive(7, std::span(bytes, 4));
                } else {
                  names.context_primitive(
                      7, std::span(addr->v6_bytes().data(), 16));
                }
                break;
              }
              case SanEntry::Type::kOther:
                names.context_primitive(0, entry.value);
                break;
            }
          }
        });
      });
}

}  // namespace

std::vector<std::uint8_t> CertificateBuilder::encode_tbs(
    const DistinguishedName& issuer_dn) const {
  DerWriter w;
  w.sequence([&, this](DerWriter& tbs) {
    if (version_ >= 3) {
      tbs.constructed(Tag::context(0, true),
                      [this](DerWriter& v) { v.integer(version_ - 1); });
    }
    tbs.integer_unsigned(serial_);
    write_algorithm(tbs, asn1::oids::alg_tsig());
    write_name(tbs, issuer_dn);
    tbs.sequence([this](DerWriter& validity) {
      validity.time(validity_.not_before);
      validity.time(validity_.not_after);
    });
    write_name(tbs, subject_);
    tbs.sequence([this](DerWriter& spki) {
      write_algorithm(spki, spki_algorithm_);
      spki.bit_string(public_key_);
    });
    if (version_ >= 3 &&
        (basic_constraints_ || key_usage_ || !eku_.empty() || !san_.empty())) {
      tbs.constructed(Tag::context(3, true), [this](DerWriter& wrap) {
        wrap.sequence([this](DerWriter& exts) {
          if (basic_constraints_) {
            write_extension(exts, asn1::oids::basic_constraints(), true,
                            [this](DerWriter& v) {
                              v.sequence([this](DerWriter& bc) {
                                if (basic_constraints_->is_ca) {
                                  bc.boolean(true);
                                }
                                if (basic_constraints_->path_len) {
                                  bc.integer(*basic_constraints_->path_len);
                                }
                              });
                            });
          }
          if (key_usage_) {
            write_extension(exts, asn1::oids::key_usage(), true,
                            [this](DerWriter& v) {
                              // Two octets, bit 0 = MSB of first octet.
                              std::uint8_t bytes[2] = {0, 0};
                              for (int bit = 0; bit < 16; ++bit) {
                                if (*key_usage_ & (1u << bit)) {
                                  bytes[bit / 8] |= static_cast<std::uint8_t>(
                                      0x80 >> (bit % 8));
                                }
                              }
                              const std::size_t len =
                                  bytes[1] != 0 ? 2 : 1;
                              v.bit_string(std::span(bytes, len));
                            });
          }
          if (!eku_.empty()) {
            write_extension(exts, asn1::oids::ext_key_usage(), false,
                            [this](DerWriter& v) {
                              v.sequence([this](DerWriter& list) {
                                for (const auto& oid : eku_) list.oid(oid);
                              });
                            });
          }
          if (!san_.empty()) write_san(exts, san_);
        });
      });
    }
  });
  return w.take();
}

Certificate CertificateBuilder::sign(const DistinguishedName& issuer_dn,
                                     const crypto::TsigKey& issuer_key) const {
  const std::vector<std::uint8_t> tbs = encode_tbs(issuer_dn);
  const std::vector<std::uint8_t> sig = crypto::tsig_sign(issuer_key, tbs);

  DerWriter w;
  w.sequence([&](DerWriter& cert) {
    cert.raw(tbs);
    write_algorithm(cert, asn1::oids::alg_tsig());
    cert.bit_string(sig);
  });

  auto result = parse_certificate(w.bytes());
  const Certificate* cert = get_certificate(result);
  if (cert == nullptr) {
    // A builder-produced encoding failing our own parser is a programming
    // error, not an input error.
    throw std::logic_error("builder produced unparseable certificate: " +
                           std::get<ParseError>(result).message);
  }
  return *cert;
}

Certificate CertificateBuilder::self_sign(const crypto::TsigKey& key) const {
  return sign(subject_, key);
}

}  // namespace mtlscope::x509
