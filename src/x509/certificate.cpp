#include "mtlscope/x509/certificate.hpp"

#include "mtlscope/crypto/encoding.hpp"

namespace mtlscope::x509 {

std::string Certificate::serial_hex() const {
  if (serial.empty()) return "00";
  return crypto::to_hex_upper(serial);
}

crypto::Sha256::Digest Certificate::fingerprint() const {
  return crypto::Sha256::hash(der);
}

std::string Certificate::fingerprint_hex() const {
  const auto d = fingerprint();
  return crypto::to_hex(d);
}

std::vector<std::string> Certificate::san_dns() const {
  std::vector<std::string> out;
  for (const auto& entry : san) {
    if (entry.type == SanEntry::Type::kDns) out.push_back(entry.value);
  }
  return out;
}

bool Certificate::allows_server_auth() const {
  if (ext_key_usage.empty()) return true;  // no EKU → unrestricted
  for (const auto& oid : ext_key_usage) {
    if (oid == asn1::oids::eku_server_auth()) return true;
  }
  return false;
}

bool Certificate::allows_client_auth() const {
  if (ext_key_usage.empty()) return true;
  for (const auto& oid : ext_key_usage) {
    if (oid == asn1::oids::eku_client_auth()) return true;
  }
  return false;
}

}  // namespace mtlscope::x509
