#include "mtlscope/x509/name.hpp"

namespace mtlscope::x509 {
namespace {

struct ShortName {
  const asn1::Oid& (*oid)();
  std::string_view label;
};

const ShortName kShortNames[] = {
    {asn1::oids::common_name, "CN"},
    {asn1::oids::organization_name, "O"},
    {asn1::oids::organizational_unit, "OU"},
    {asn1::oids::country_name, "C"},
    {asn1::oids::locality_name, "L"},
    {asn1::oids::state_or_province_name, "ST"},
    {asn1::oids::email_address, "emailAddress"},
    {asn1::oids::serial_number_attr, "serialNumber"},
};

std::string type_label(const asn1::Oid& type) {
  for (const auto& s : kShortNames) {
    if (s.oid() == type) return std::string(s.label);
  }
  return type.to_string();
}

std::optional<asn1::Oid> label_type(std::string_view label) {
  for (const auto& s : kShortNames) {
    if (s.label == label) return s.oid();
  }
  return asn1::Oid::parse(label);
}

}  // namespace

DistinguishedName& DistinguishedName::add(const asn1::Oid& type,
                                          std::string value) {
  attrs_.push_back({type, std::move(value)});
  return *this;
}

DistinguishedName& DistinguishedName::add_cn(std::string value) {
  return add(asn1::oids::common_name(), std::move(value));
}

DistinguishedName& DistinguishedName::add_org(std::string value) {
  return add(asn1::oids::organization_name(), std::move(value));
}

DistinguishedName& DistinguishedName::add_org_unit(std::string value) {
  return add(asn1::oids::organizational_unit(), std::move(value));
}

DistinguishedName& DistinguishedName::add_country(std::string value) {
  return add(asn1::oids::country_name(), std::move(value));
}

std::optional<std::string_view> DistinguishedName::find(
    const asn1::Oid& type) const {
  for (const auto& attr : attrs_) {
    if (attr.type == type) return attr.value;
  }
  return std::nullopt;
}

std::optional<std::string_view> DistinguishedName::common_name() const {
  return find(asn1::oids::common_name());
}

std::optional<std::string_view> DistinguishedName::organization() const {
  return find(asn1::oids::organization_name());
}

std::string DistinguishedName::to_string() const {
  std::string out;
  for (const auto& attr : attrs_) {
    if (!out.empty()) out.push_back(',');
    out += type_label(attr.type);
    out.push_back('=');
    for (const char c : attr.value) {
      if (c == ',' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
  }
  return out;
}

std::optional<DistinguishedName> DistinguishedName::from_string(
    std::string_view s) {
  DistinguishedName dn;
  if (s.empty()) return dn;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t eq = s.find('=', pos);
    if (eq == std::string_view::npos) return std::nullopt;
    const auto type = label_type(s.substr(pos, eq - pos));
    if (!type) return std::nullopt;
    std::string value;
    std::size_t i = eq + 1;
    for (; i < s.size(); ++i) {
      if (s[i] == '\\' && i + 1 < s.size()) {
        value.push_back(s[++i]);
      } else if (s[i] == ',') {
        break;
      } else {
        value.push_back(s[i]);
      }
    }
    dn.add(*type, std::move(value));
    if (i >= s.size()) break;
    pos = i + 1;
  }
  return dn;
}

}  // namespace mtlscope::x509
