#include "mtlscope/x509/parser.hpp"

#include <array>

#include "mtlscope/asn1/der.hpp"

namespace mtlscope::x509 {
namespace {

using asn1::DerError;
using asn1::DerReader;
using asn1::DerValue;
using asn1::Tag;
namespace tags = asn1::tags;

bool is_string_tag(const Tag& t) {
  return t.is_universal(tags::kUtf8String) ||
         t.is_universal(tags::kPrintableString) ||
         t.is_universal(tags::kIa5String) ||
         t.is_universal(tags::kTeletexString);
}

DistinguishedName parse_name(const DerValue& name_seq) {
  DistinguishedName dn;
  DerReader rdns(name_seq);
  while (!rdns.empty()) {
    const DerValue rdn = rdns.read(Tag::set(), "RDN");
    DerReader atvs(rdn);
    while (!atvs.empty()) {
      const DerValue atv = atvs.read(Tag::sequence(), "AttributeTypeAndValue");
      DerReader fields(atv);
      const asn1::Oid type = fields.read().as_oid();
      const DerValue value = fields.read();
      if (!is_string_tag(value.tag)) {
        throw DerError("unsupported attribute value type");
      }
      dn.add(type, std::string(value.text()));
    }
  }
  return dn;
}

std::string format_san_ip(std::span<const std::uint8_t> bytes) {
  if (bytes.size() == 4) {
    return net::IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3])
        .to_string();
  }
  if (bytes.size() == 16) {
    std::array<std::uint8_t, 16> arr;
    std::copy(bytes.begin(), bytes.end(), arr.begin());
    return net::IpAddress::v6(arr).to_string();
  }
  throw DerError("SAN iPAddress with invalid length");
}

std::vector<SanEntry> parse_san(const DerValue& extn_value) {
  std::vector<SanEntry> out;
  DerReader outer(extn_value);
  const DerValue names = outer.read(Tag::sequence(), "GeneralNames");
  DerReader items(names);
  while (!items.empty()) {
    const DerValue gn = items.read();
    if (gn.tag.cls != asn1::TagClass::kContextSpecific) {
      throw DerError("GeneralName with non-context tag");
    }
    SanEntry entry;
    switch (gn.tag.number) {
      case 1:
        entry.type = SanEntry::Type::kEmail;
        entry.value = std::string(gn.text());
        break;
      case 2:
        entry.type = SanEntry::Type::kDns;
        entry.value = std::string(gn.text());
        break;
      case 6:
        entry.type = SanEntry::Type::kUri;
        entry.value = std::string(gn.text());
        break;
      case 7:
        entry.type = SanEntry::Type::kIp;
        entry.value = format_san_ip(gn.content);
        break;
      default:
        entry.type = SanEntry::Type::kOther;
        entry.value = std::string(gn.text());
        break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

BasicConstraints parse_basic_constraints(const DerValue& extn_value) {
  BasicConstraints bc;
  DerReader outer(extn_value);
  const DerValue seq = outer.read(Tag::sequence(), "BasicConstraints");
  DerReader fields(seq);
  if (!fields.empty()) {
    const auto tag = fields.peek_tag();
    if (tag && tag->is_universal(tags::kBoolean)) {
      bc.is_ca = fields.read().as_boolean();
    }
  }
  if (!fields.empty()) {
    bc.path_len = static_cast<int>(fields.read().as_integer());
  }
  return bc;
}

std::uint16_t parse_key_usage(const DerValue& extn_value) {
  DerReader outer(extn_value);
  const DerValue bits = outer.read();
  if (!bits.tag.is_universal(tags::kBitString) || bits.content.empty()) {
    throw DerError("KeyUsage not a BIT STRING");
  }
  // content[0] = unused bits; following octets are the bit string,
  // bit 0 = MSB of first octet.
  std::uint16_t mask = 0;
  for (std::size_t i = 1; i < bits.content.size() && i <= 2; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      if (bits.content[i] & (0x80 >> bit)) {
        mask |= static_cast<std::uint16_t>(1u << ((i - 1) * 8 + bit));
      }
    }
  }
  return mask;
}

std::vector<asn1::Oid> parse_eku(const DerValue& extn_value) {
  std::vector<asn1::Oid> out;
  DerReader outer(extn_value);
  const DerValue seq = outer.read(Tag::sequence(), "ExtKeyUsage");
  DerReader items(seq);
  while (!items.empty()) out.push_back(items.read().as_oid());
  return out;
}

void parse_extensions(const DerValue& exts_explicit, Certificate& cert) {
  DerReader outer(exts_explicit);
  const DerValue exts = outer.read(Tag::sequence(), "Extensions");
  DerReader items(exts);
  while (!items.empty()) {
    const DerValue ext = items.read(Tag::sequence(), "Extension");
    DerReader fields(ext);
    const asn1::Oid id = fields.read().as_oid();
    DerValue value = fields.read();
    if (value.tag.is_universal(tags::kBoolean)) {
      value = fields.read();  // skip `critical`
    }
    if (!value.tag.is_universal(tags::kOctetString)) {
      throw DerError("Extension value not an OCTET STRING");
    }
    const DerValue inner{Tag::universal(tags::kOctetString), value.content,
                         value.full};
    if (id == asn1::oids::subject_alt_name()) {
      cert.san = parse_san(inner);
    } else if (id == asn1::oids::basic_constraints()) {
      cert.basic_constraints = parse_basic_constraints(inner);
    } else if (id == asn1::oids::key_usage()) {
      cert.key_usage_bits = parse_key_usage(inner);
    } else if (id == asn1::oids::ext_key_usage()) {
      cert.ext_key_usage = parse_eku(inner);
    }
    // Unknown extensions are retained only via cert.der.
  }
}

Certificate parse_impl(std::span<const std::uint8_t> der) {
  Certificate cert;
  cert.der.assign(der.begin(), der.end());

  DerReader top(der);
  const DerValue outer = top.read(Tag::sequence(), "Certificate");
  if (!top.empty()) throw DerError("trailing bytes after Certificate");

  DerReader cert_fields(outer);
  const DerValue tbs = cert_fields.read(Tag::sequence(), "TBSCertificate");
  cert.tbs_der.assign(tbs.full.begin(), tbs.full.end());

  DerReader tbs_fields(tbs);
  // version [0] EXPLICIT, DEFAULT v1
  cert.version = 1;
  {
    const auto tag = tbs_fields.peek_tag();
    if (tag && tag->is_context(0)) {
      const DerValue version_explicit = tbs_fields.read();
      DerReader v(version_explicit);
      cert.version = static_cast<int>(v.read().as_integer()) + 1;
    }
  }
  {
    const DerValue serial = tbs_fields.read();
    const auto bytes = serial.integer_bytes();
    cert.serial.assign(bytes.begin(), bytes.end());
    // Normalize: DER may carry a leading 0x00 for sign; drop it for the
    // conventional hex rendering unless the serial is literally zero.
    if (cert.serial.size() > 1 && cert.serial[0] == 0x00) {
      cert.serial.erase(cert.serial.begin());
    }
  }
  {
    const DerValue alg = tbs_fields.read(Tag::sequence(), "signature alg");
    DerReader alg_fields(alg);
    cert.signature_algorithm = alg_fields.read().as_oid();
  }
  cert.issuer = parse_name(tbs_fields.read(Tag::sequence(), "issuer"));
  {
    const DerValue validity = tbs_fields.read(Tag::sequence(), "validity");
    DerReader v(validity);
    cert.validity.not_before = v.read().as_time();
    cert.validity.not_after = v.read().as_time();
  }
  cert.subject = parse_name(tbs_fields.read(Tag::sequence(), "subject"));
  {
    const DerValue spki = tbs_fields.read(Tag::sequence(), "SPKI");
    DerReader spki_fields(spki);
    const DerValue alg = spki_fields.read(Tag::sequence(), "SPKI alg");
    DerReader alg_fields(alg);
    cert.spki_algorithm = alg_fields.read().as_oid();
    const auto key = spki_fields.read().as_bit_string();
    cert.public_key.assign(key.begin(), key.end());
  }
  while (!tbs_fields.empty()) {
    const DerValue field = tbs_fields.read();
    if (field.tag.is_context(3)) {
      parse_extensions(field, cert);
    }
    // [1]/[2] issuer/subjectUniqueID: skipped.
  }

  {
    const DerValue alg = cert_fields.read(Tag::sequence(), "outer sig alg");
    DerReader alg_fields(alg);
    const asn1::Oid outer_alg = alg_fields.read().as_oid();
    if (outer_alg != cert.signature_algorithm) {
      throw DerError("signature algorithm mismatch between TBS and outer");
    }
  }
  const auto sig = cert_fields.read().as_bit_string();
  cert.signature.assign(sig.begin(), sig.end());
  if (!cert_fields.empty()) throw DerError("trailing fields in Certificate");
  return cert;
}

}  // namespace

ParseResult parse_certificate(std::span<const std::uint8_t> der) {
  try {
    return parse_impl(der);
  } catch (const DerError& e) {
    return ParseError{e.what()};
  } catch (const std::exception& e) {
    // Hostile DER must yield a structured ParseError, never an exception
    // escaping into (possibly multi-threaded) callers. DerError covers
    // the grammar; this covers everything else the decode path can throw
    // (length_error from pathological lengths, bad_alloc, ...).
    return ParseError{std::string("unexpected parse failure: ") + e.what()};
  }
}

}  // namespace mtlscope::x509
