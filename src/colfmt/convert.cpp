#include "mtlscope/colfmt/convert.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "mtlscope/core/error_ledger.hpp"
#include "mtlscope/ingest/chunker.hpp"
#include "mtlscope/ingest/durable_io.hpp"
#include "mtlscope/ingest/source.hpp"
#include "mtlscope/zeek/parse_plan.hpp"

namespace mtlscope::colfmt {

namespace {

struct SslTraits {
  using Record = zeek::SslRecord;
  using Plan = zeek::SslPlan;
  static constexpr core::InputRole kRole = core::InputRole::kSsl;
  /// Phase B — the ssl chain-upgrade pass is the authoritative ssl parse.
  static constexpr core::LedgerPhase kPhase = core::LedgerPhase::kUpgrades;
  static Plan compile(const zeek::ColumnPlan& columns) {
    return zeek::SslPlan::compile(columns);
  }
  static zeek::TolerantStats parse(std::string_view body, const Plan& plan,
                                   std::vector<Record>& out,
                                   std::vector<zeek::RowIssue>* issues,
                                   std::size_t header_lines,
                                   std::size_t base_offset) {
    return zeek::parse_ssl_records_tolerant(body, plan, out, issues,
                                            header_lines, base_offset);
  }
};

struct X509Traits {
  using Record = zeek::X509Record;
  using Plan = zeek::X509Plan;
  static constexpr core::InputRole kRole = core::InputRole::kX509;
  /// Phase A — the x509 registry build is the authoritative x509 parse.
  static constexpr core::LedgerPhase kPhase = core::LedgerPhase::kRegistry;
  static Plan compile(const zeek::ColumnPlan& columns) {
    return zeek::X509Plan::compile(columns);
  }
  static zeek::TolerantStats parse(std::string_view body, const Plan& plan,
                                   std::vector<Record>& out,
                                   std::vector<zeek::RowIssue>* issues,
                                   std::size_t header_lines,
                                   std::size_t base_offset) {
    return zeek::parse_x509_records_tolerant(body, plan, out, issues,
                                             header_lines, base_offset);
  }
};

/// Tolerant chunked parse of one whole log — the conversion-side twin of
/// the executor's streaming pass: RecordChunker for bounded RSS, line
/// numbers offset by the header plus every prior chunk's line count, and
/// byte offsets anchored at each chunk's absolute position, so issue
/// coordinates match a run over the same file exactly. After each chunk
/// `drain` (when set) consumes and clears `out`, keeping memory O(chunk)
/// instead of O(file).
template <typename Traits>
bool parse_whole_log(
    const std::string& path, const ingest::ErrorPolicy& policy,
    std::size_t chunk_bytes, std::vector<typename Traits::Record>& out,
    core::ErrorLedger& ledger, std::uint64_t* file_bytes, std::string* error,
    const std::function<void(std::vector<typename Traits::Record>&)>& drain =
        {}) {
  ingest::IngestError open_error;
  const auto source = ingest::open_source(path, &open_error);
  if (source == nullptr) {
    if (error != nullptr) *error = open_error.to_string();
    return false;
  }
  if (file_bytes != nullptr) *file_bytes = source->size();
  const ingest::LogLayout layout = ingest::detect_log_layout(*source);
  const auto plan =
      Traits::compile(zeek::ColumnPlan::from_header(layout.header));
  std::size_t lines_so_far = static_cast<std::size_t>(
      std::count(layout.header.begin(), layout.header.end(), '\n'));

  ingest::RecordChunker chunker(*source, chunk_bytes, layout.body_begin,
                                source->size());
  ingest::Chunk chunk;
  std::vector<zeek::RowIssue> issues;
  while (chunker.next(chunk)) {
    issues.clear();
    const zeek::TolerantStats stats = Traits::parse(
        chunk.data, plan, out, &issues, lines_so_far, chunk.offset);
    lines_so_far += stats.lines;
    ledger.count_rows_ok(Traits::kRole, stats.rows_ok);
    if (!issues.empty()) {
      if (!policy.skip()) {
        const zeek::RowIssue& first = issues.front();
        if (error != nullptr) {
          *error = path + " @ byte " + std::to_string(first.byte_offset) +
                   ": " + first.reason;
        }
        return false;
      }
      for (zeek::RowIssue& issue : issues) {
        ledger.quarantine(
            Traits::kPhase,
            core::QuarantinedRecord{Traits::kRole, issue.byte_offset,
                                    issue.line, issue.raw_length,
                                    std::move(issue.reason),
                                    std::move(issue.digest)});
      }
      if (const auto violation = ledger.budget_violation(policy)) {
        if (error != nullptr) *error = path + ": " + *violation;
        return false;
      }
    }
    if (drain) drain(out);
    source->release(chunk.offset, chunk.data.size());
  }
  return true;
}

bool records_equal(const zeek::SslRecord& a, const zeek::SslRecord& b) {
  return a.ts == b.ts && a.uid == b.uid && a.orig_h == b.orig_h &&
         a.orig_p == b.orig_p && a.resp_h == b.resp_h &&
         a.resp_p == b.resp_p && a.version == b.version &&
         a.server_name == b.server_name && a.established == b.established &&
         a.cert_chain_fuids == b.cert_chain_fuids &&
         a.client_cert_chain_fuids == b.client_cert_chain_fuids;
}

bool records_equal(const zeek::X509Record& a, const zeek::X509Record& b) {
  return a.fuid == b.fuid && a.version == b.version && a.serial == b.serial &&
         a.subject == b.subject && a.issuer == b.issuer &&
         a.not_valid_before == b.not_valid_before &&
         a.not_valid_after == b.not_valid_after && a.key_alg == b.key_alg &&
         a.key_length == b.key_length && a.san_dns == b.san_dns &&
         a.san_email == b.san_email && a.san_uri == b.san_uri &&
         a.san_ip == b.san_ip && a.cert_der == b.cert_der;
}

template <typename Record>
bool compare_streams(const char* role, const std::vector<Record>& decoded,
                     const std::vector<Record>& reparsed,
                     std::string* error) {
  if (decoded.size() != reparsed.size()) {
    if (error != nullptr) {
      *error = std::string(role) + " row count mismatch: container has " +
               std::to_string(decoded.size()) + ", TSV reparse has " +
               std::to_string(reparsed.size());
    }
    return false;
  }
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!records_equal(decoded[i], reparsed[i])) {
      if (error != nullptr) {
        *error = std::string(role) + " row " + std::to_string(i) +
                 " diverges between container and TSV reparse";
      }
      return false;
    }
  }
  return true;
}

}  // namespace

bool compact_logs(const CompactRequest& request, CompactStats* stats,
                  std::string* error) {
  // The container streams into a dot-prefixed temp sibling and only
  // renames over the destination after finish() fsyncs the frames — an
  // aborted or crashed conversion never leaves a half container at the
  // published path (and a power loss after success cannot tear it:
  // durable_rename fsyncs the parent directory too).
  const std::string tmp_path = ingest::publish_tmp_path(request.out_path);
  ContainerWriter writer(tmp_path, request.writer);
  if (!writer.ok()) {
    if (error != nullptr) *error = writer.error();
    std::remove(tmp_path.c_str());
    return false;
  }

  core::ErrorLedger ledger;
  ContainerMeta meta;
  meta.ssl_path = request.ssl_path;
  meta.x509_path = request.x509_path;

  // x509 first, ssl second — the same A-then-B order a run parses in, so
  // abort-mode conversion fails on the same record a run would.
  std::vector<zeek::X509Record> x509_pending;
  std::vector<zeek::SslRecord> ssl_pending;
  const bool ok =
      parse_whole_log<X509Traits>(
          request.x509_path, request.errors, request.chunk_bytes,
          x509_pending, ledger, &meta.x509_bytes, error,
          [&writer](std::vector<zeek::X509Record>& rows) {
            for (const auto& row : rows) writer.add_x509(row);
            rows.clear();
          }) &&
      parse_whole_log<SslTraits>(
          request.ssl_path, request.errors, request.chunk_bytes, ssl_pending,
          ledger, &meta.ssl_bytes, error,
          [&writer](std::vector<zeek::SslRecord>& rows) {
            for (const auto& row : rows) writer.add_ssl(row);
            rows.clear();
          });
  if (!ok) {
    std::remove(tmp_path.c_str());
    return false;
  }

  ledger.finalize();
  meta.ssl_rows = writer.ssl_rows();
  meta.x509_rows = writer.x509_rows();
  writer.set_meta(meta);
  writer.set_ledger(ledger);
  std::string finish_error;
  if (!writer.finish(&finish_error)) {
    if (error != nullptr) *error = finish_error;
    std::remove(tmp_path.c_str());
    return false;
  }
  const auto published =
      ingest::durable_rename(tmp_path, request.out_path, "compact.finish");
  if (!published.ok) {
    if (error != nullptr) *error = published.message;
    std::remove(tmp_path.c_str());
    return false;
  }
  if (stats != nullptr) {
    stats->ssl_rows = writer.ssl_rows();
    stats->x509_rows = writer.x509_rows();
    stats->quarantined = ledger.quarantined_total();
    stats->blocks = writer.blocks_written();
  }
  return true;
}

bool verify_container(const std::string& container_path, std::string* report,
                      std::string* error, std::size_t chunk_bytes) {
  const auto reader = ContainerReader::open(container_path, error);
  if (!reader) return false;

  std::vector<zeek::SslRecord> decoded_ssl;
  std::vector<zeek::X509Record> decoded_x509;
  try {
    for (const FrameRef& block : reader->x509_blocks()) {
      auto rows = reader->decode_x509_block(block);
      decoded_x509.insert(decoded_x509.end(),
                          std::make_move_iterator(rows.begin()),
                          std::make_move_iterator(rows.end()));
    }
    for (const FrameRef& block : reader->ssl_blocks()) {
      auto rows = reader->decode_ssl_block(block);
      decoded_ssl.insert(decoded_ssl.end(),
                         std::make_move_iterator(rows.begin()),
                         std::make_move_iterator(rows.end()));
    }
  } catch (const core::StateError& e) {
    if (error != nullptr) {
      *error = container_path + ": block decode failed: " + e.what();
    }
    return false;
  }
  if (decoded_ssl.size() != reader->meta().ssl_rows ||
      decoded_x509.size() != reader->meta().x509_rows) {
    if (error != nullptr) {
      *error = container_path + ": meta row totals disagree with blocks";
    }
    return false;
  }

  // Fresh tolerant parse of the original TSV pair — always skip mode, so
  // the comparison covers the quarantine behaviour too.
  ingest::ErrorPolicy tolerant;
  tolerant.on_error = ingest::ErrorPolicy::Action::kSkip;
  core::ErrorLedger fresh;
  std::vector<zeek::X509Record> reparsed_x509;
  std::vector<zeek::SslRecord> reparsed_ssl;
  if (!parse_whole_log<X509Traits>(reader->meta().x509_path, tolerant,
                                   chunk_bytes, reparsed_x509, fresh, nullptr,
                                   error) ||
      !parse_whole_log<SslTraits>(reader->meta().ssl_path, tolerant,
                                  chunk_bytes, reparsed_ssl, fresh, nullptr,
                                  error)) {
    return false;
  }
  fresh.finalize();

  if (!compare_streams("x509", decoded_x509, reparsed_x509, error) ||
      !compare_streams("ssl", decoded_ssl, reparsed_ssl, error)) {
    return false;
  }
  const core::ErrorLedger stored = reader->ledger();
  for (const core::InputRole role :
       {core::InputRole::kSsl, core::InputRole::kX509}) {
    if (stored.quarantined(role) != fresh.quarantined(role)) {
      if (error != nullptr) {
        *error = std::string(core::input_role_name(role)) +
                 " quarantined-row count mismatch: container ledger has " +
                 std::to_string(stored.quarantined(role)) +
                 ", TSV reparse has " +
                 std::to_string(fresh.quarantined(role));
      }
      return false;
    }
  }

  if (report != nullptr) {
    *report = "verified " + std::to_string(decoded_ssl.size()) +
              " ssl rows, " + std::to_string(decoded_x509.size()) +
              " x509 rows, " + std::to_string(stored.quarantined_total()) +
              " quarantined rows against " + reader->meta().ssl_path +
              " + " + reader->meta().x509_path;
  }
  return true;
}

}  // namespace mtlscope::colfmt
